#!/usr/bin/env python
"""Interactive-style explorer for correlation manipulating circuits.

Sweeps every manipulating circuit against every RNG pairing and prints a
Table II-style matrix, then shows the two scaling knobs the paper
discusses: FSM save depth and series composition.

Run:  python examples/correlation_explorer.py [level_step]
"""

import sys

from repro.analysis import measure_pair_transform, render_table
from repro.core import (
    Decorrelator,
    Desynchronizer,
    IsolatorPair,
    SeriesPair,
    Synchronizer,
    TFMPair,
)
from repro.rng import LFSR


def build(design: str):
    if design == "synchronizer":
        return Synchronizer(1)
    if design == "desynchronizer":
        return Desynchronizer(1)
    if design == "decorrelator":
        return Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
    if design == "isolator":
        return IsolatorPair(1)
    return TFMPair(LFSR(8, seed=77))


def sweep_matrix(step: int) -> None:
    configs = [
        ("vdc", "halton3"),    # uncorrelated low-discrepancy
        ("lfsr", "vdc"),       # mediocre + good RNG
        ("vdc", "vdc"),        # maximally correlated
        ("halton3", "halton3"),
        ("sobol1", "sobol2"),  # uncorrelated Sobol dimensions
    ]
    designs = ["synchronizer", "desynchronizer", "decorrelator", "isolator", "tfm"]
    rows = []
    for design in designs:
        for rng_x, rng_y in configs:
            r = measure_pair_transform(build(design), rng_x, rng_y, step=step)
            rows.append(r.as_row())
    print(render_table(
        ["design", "X RNG", "Y RNG", "in SCC", "out SCC", "X' bias", "Y' bias"],
        rows,
        title=f"All circuits x all RNG pairings (N=256, level step={step})",
    ))


def depth_and_composition(step: int) -> None:
    rows = []
    for depth in (1, 2, 4, 8):
        r = measure_pair_transform(Synchronizer(depth), "lfsr", "vdc", step=step)
        rows.append([f"single, D={depth}", round(r.output_scc, 3), round(r.bias_x, 4)])
    for stages in (2, 3, 4):
        series = SeriesPair([Synchronizer(1) for _ in range(stages)])
        r = measure_pair_transform(series, "lfsr", "vdc", step=step,
                                   design_name=f"{stages} stages")
        rows.append([f"series x{stages}, D=1", round(r.output_scc, 3), round(r.bias_x, 4)])
    print()
    print(render_table(
        ["synchronizer variant", "out SCC", "X' bias"],
        rows,
        title="Two ways to buy more correlation: deeper FSM vs composition",
    ))
    print("Both converge toward SCC=+1 with diminishing returns; composition")
    print("compounds bias slightly faster (paper Section III-B).")


if __name__ == "__main__":
    step = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    sweep_matrix(step)
    depth_and_composition(step)
