#!/usr/bin/env python
"""Hardware design-space explorer for the correlation circuits.

Prints the area / power / energy landscape of every circuit in the
library's cost model, then walks the accuracy-vs-cost Pareto front for
the synchronizer-based max (save depth sweep) — the trade-off the paper
calls out in Section III ("more accurate SC functional units are larger
and consume more power").

Run:  python examples/design_tradeoffs.py
"""

import numpy as np

from repro.analysis import generate_level_batch, pair_levels, render_table
from repro.core import SyncMax
from repro.hardware import components, report
from repro.rng import Halton, VanDerCorput


def component_landscape() -> None:
    builders = [
        ("AND gate (multiply)", components.and_gate()),
        ("OR gate (sat-add/max)", components.or_gate()),
        ("XOR gate (subtract)", components.xor_gate()),
        ("MUX adder", components.mux_adder()),
        ("CA adder", components.ca_adder()),
        ("CA max (8-bit)", components.ca_max()),
        ("isolator", components.isolator()),
        ("synchronizer D=1", components.synchronizer(1)),
        ("desynchronizer D=1", components.desynchronizer(1)),
        ("sync max", components.sync_max()),
        ("sync min", components.sync_min()),
        ("desync sat-adder", components.desync_saturating_adder()),
        ("shuffle buffer D=4", components.shuffle_buffer(4)),
        ("decorrelator D=4", components.decorrelator(4)),
        ("TFM (8-bit)", components.tfm()),
        ("LFSR RNG (8-bit)", components.lfsr_rng()),
        ("D/S converter", components.d2s_converter()),
        ("S/D converter", components.s2d_converter()),
        ("regeneration unit", components.regenerator()),
    ]
    rows = []
    for name, netlist in builders:
        r = report(netlist)
        rows.append([name, r.area_um2, r.power_uw, r.energy_pj(256)])
    print(render_table(
        ["component", "area um2", "power uW", "energy pJ (N=256)"],
        rows, title="Component cost landscape (TSMC-65nm-calibrated model)",
    ))


def sync_max_pareto() -> None:
    xs, ys = pair_levels(256, 4)
    x_ld = generate_level_batch(xs, VanDerCorput(8), 256)
    y_ld = generate_level_batch(ys, Halton(3, 8), 256)
    rng = np.random.default_rng(0)
    x_rand = (rng.random((xs.size, 256)) < xs[:, None] / 256).astype(np.uint8)
    y_rand = (rng.random((ys.size, 256)) < ys[:, None] / 256).astype(np.uint8)
    expected = np.maximum(xs, ys) / 256
    rows = []
    for depth in (1, 2, 4, 8):
        op = SyncMax(depth=depth)
        err_ld = float(np.abs(op.compute(x_ld, y_ld).mean(axis=1) - expected).mean())
        err_rand = float(np.abs(op.compute(x_rand, y_rand).mean(axis=1) - expected).mean())
        cost = report(components.sync_max(depth))
        rows.append([depth, err_ld, err_rand, cost.area_um2, cost.power_uw,
                     cost.energy_pj(256)])
    print()
    print(render_table(
        ["save depth D", "err (LD inputs)", "err (random inputs)",
         "area um2", "power uW", "energy pJ"],
        rows, title="SyncMax accuracy-vs-cost (save depth sweep)",
    ))
    print("With low-discrepancy (LD) inputs D=1 is already near-exact and")
    print("deeper FSMs only add stuck-bit bias; with clumpy random streams a")
    print("little extra depth (D=2) helps before bias wins again. Cost grows")
    print("linearly with depth either way — the paper's D=1 is the sweet spot.")


if __name__ == "__main__":
    component_landscape()
    sync_max_pareto()
