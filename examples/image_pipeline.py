#!/usr/bin/env python
"""The paper's Section IV case study: Gaussian blur -> Roberts cross.

Runs the tiled SC accelerator in all three variants (no manipulation,
regeneration, synchronizer) over a synthetic image, prints the Table IV
style comparison, and renders the edge maps as ASCII art so the quality
difference is visible without a display.

Run:  python examples/image_pipeline.py [image_size]
"""

import sys

import numpy as np

from repro.pipeline import (
    AcceleratorConfig,
    SCAccelerator,
    blob_image,
    pipeline_reference,
)

ASCII_RAMP = " .:-=+*#%@"


def ascii_render(image: np.ndarray, width: int = 48) -> str:
    """Downsample an image to ASCII art (dark = strong edge)."""
    h, w = image.shape
    step = max(1, w // width)
    rows = []
    for r in range(0, h, step * 2):  # terminal cells are ~2x taller
        row = ""
        for c in range(0, w, step):
            patch = image[r : r + 2 * step, c : c + step]
            level = int(round(float(patch.mean()) * (len(ASCII_RAMP) - 1)))
            row += ASCII_RAMP[level]
        rows.append(row)
    return "\n".join(rows)


def main(size: int = 48) -> None:
    image = blob_image(size, blobs=4, seed=21)
    reference = pipeline_reference(image)
    print(f"input: {size}x{size} synthetic blob image; "
          f"reference edge map {reference.shape[0]}x{reference.shape[1]}")
    print("\nfloating-point reference edges:")
    print(ascii_render(reference / max(reference.max(), 1e-9)))

    print(f"\n{'variant':16s} {'MAE':>8s} {'area um2':>10s} {'E/frame nJ':>11s} "
          f"{'E/image nJ':>11s}")
    peak = max(reference.max(), 1e-9)
    for variant in ("none", "regeneration", "synchronizer"):
        acc = SCAccelerator(AcceleratorConfig(variant=variant))
        result = acc.process(image)
        print(f"{variant:16s} {result.mean_abs_error:8.4f} "
              f"{result.area_um2:10.0f} {result.energy_per_frame_nj:11.1f} "
              f"{result.energy_per_image_nj:11.0f}")
        if variant in ("none", "synchronizer"):
            print(f"\n'{variant}' SC edges:")
            print(ascii_render(np.clip(result.output / peak, 0, 1)))
            print()
    print("The no-manipulation variant hallucinates edge energy everywhere")
    print("(XOR overestimates |a-b| on weakly correlated streams); the")
    print("synchronizer variant matches regeneration at ~24% less energy.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
