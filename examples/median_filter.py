#!/usr/bin/env python
"""3x3 stochastic median filter built from the paper's SyncMax / SyncMin.

Median filtering is the classic SC image-processing showcase (salt &
pepper denoising): a 9-input median is a fixed network of 19
compare-exchange stages, and each compare-exchange is exactly one
{min, max} pair — i.e. one synchronizer feeding an AND and an OR (paper
Fig. 5). Without correlation manipulation a gate-only median network is
badly wrong on independently generated pixel streams; with synchronizers
it tracks the true median closely.

Run:  python examples/median_filter.py [image_size]
"""

import sys

import numpy as np

from repro.apps import median9_network
from repro.hardware import report
from repro.rng import LFSR


def salt_pepper(image: np.ndarray, fraction: float = 0.08, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    noisy = image.copy()
    mask = rng.random(image.shape) < fraction
    noisy[mask] = rng.integers(0, 2, mask.sum()).astype(np.float64)
    return noisy


def main(size: int = 24, n: int = 256) -> None:
    # A smooth ramp corrupted with salt & pepper noise.
    yy, xx = np.mgrid[0:size, 0:size]
    clean = (xx + yy) / (2 * (size - 1))
    noisy = salt_pepper(clean)

    # Gather 3x3 neighbourhoods for every interior pixel.
    h = w = size - 2
    neigh = np.empty((h * w, 9), dtype=np.float64)
    k = 0
    for dy in range(3):
        for dx in range(3):
            neigh[:, k] = noisy[dy : dy + h, dx : dx + w].reshape(-1)
            k += 1
    synced_net = median9_network(use_synchronizers=True)
    naive_net = median9_network(use_synchronizers=False)
    reference = synced_net.apply_values(neigh)[:, 0]
    assert np.allclose(reference, np.median(neigh, axis=1)), "network sanity"

    # Convert each neighbourhood pixel through a phase-rotated LFSR so the
    # nine operand streams are mutually (nearly) uncorrelated — the hard
    # case for gate-only min/max.
    base = LFSR(width=8).sequence(255)
    levels = np.rint(neigh * n).astype(np.int64)
    streams = np.empty((h * w, 9, n), dtype=np.uint8)
    for i in range(9):
        idx = (np.arange(n) + 29 * i) % 255
        streams[:, i, :] = (levels[:, i : i + 1] > base[idx][None, :]).astype(np.uint8)

    naive = naive_net.apply_streams(streams).mean(axis=-1)[:, 0]
    synced = synced_net.apply_streams(streams).mean(axis=-1)[:, 0]

    naive_err = np.abs(naive - reference).mean()
    synced_err = np.abs(synced - reference).mean()
    print(f"3x3 median filter over {h}x{w} pixels, N={n} bit streams")
    print(f"  gate-only network (AND/OR):     MAE vs true median = {naive_err:.4f}")
    print(f"  synchronizer network (Fig. 5):  MAE vs true median = {synced_err:.4f}")
    print(f"  improvement: {naive_err / max(synced_err, 1e-9):.1f}x")
    denoised = synced.reshape(h, w)
    residual = np.abs(denoised - clean[1:-1, 1:-1]).mean()
    print(f"  denoised-vs-clean MAE: {residual:.4f} "
          f"(noisy-vs-clean was {np.abs(noisy - clean).mean():.4f})")
    cost = report(synced_net.netlist())
    print(f"  per-pixel network hardware: {cost.area_um2:.0f} um2, "
          f"{cost.power_uw:.1f} uW (19 synchronizer-based compare-exchanges)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
