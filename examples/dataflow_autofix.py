#!/usr/bin/env python
"""Automatic correlation fix-up for an SC dataflow graph.

The paper's key deployment argument is that its circuits "can be inserted
at appropriate points in the computation" — unlike RNG-level correlation
control, which only acts at D/S conversion time. This example builds a
small SC program whose intermediate streams arrive at operators with the
*wrong* correlation, audits it, lets the auto-fixer splice in
synchronizers / desynchronizers / decorrelators, and prices the insertion
with the hardware model.

The program:  ``edge = max(|a - b|, threshold)`` and ``gain = a * b``
with sources drawn from a shared RNG bank (the realistic, RNG-amortised
configuration).

Run:  python examples/dataflow_autofix.py
"""

from repro.analysis import render_table
from repro.graph import SCGraph, autofix


def build_program() -> SCGraph:
    g = SCGraph()
    # a, b share one RNG spec -> SCC=+1; t is independent.
    g.source("a", 0.9, "vdc")
    g.source("b", 0.4, "vdc")
    g.source("t", 0.3, "halton3")
    g.op("diff", "sub", "a", "b")        # needs +1: satisfied (shared RNG)
    g.op("edge", "max", "diff", "t")     # needs +1: violated (independent)
    g.op("gain", "mul", "a", "b")        # needs  0: violated (shared RNG!)
    return g


def show_audit(graph: SCGraph, title: str) -> None:
    audit = graph.audit(256)
    rows = [
        [e.node, e.op,
         "any" if e.required_scc is None else f"{e.required_scc:+.0f}",
         round(e.measured_scc, 3), round(e.expected_value, 3),
         round(e.measured_value, 3), "VIOLATED" if e.violated else "ok"]
        for e in audit.entries
    ]
    print(render_table(
        ["node", "op", "req. SCC", "meas. SCC", "expected", "measured", "status"],
        rows, title=title,
    ))
    print()


def main() -> None:
    graph = build_program()
    show_audit(graph, "Before auto-fix")

    result = autofix(graph, iterations=3)  # compose stages until clean
    print(f"inserted {result.insertion_count} circuit(s):")
    for item in result.insertions:
        print(f"  - {item}")
    print(f"added hardware: {result.added_area_um2:.1f} um2, "
          f"{result.added_power_uw:.2f} uW")
    print()

    show_audit(result.fixed_graph, "After auto-fix")
    print(f"mean op error: {result.mean_error_before():.4f} -> "
          f"{result.mean_error_after():.4f}")


if __name__ == "__main__":
    main()
