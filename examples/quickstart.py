#!/usr/bin/env python
"""Quickstart: stochastic numbers, correlation, and how to manipulate it.

Walks through the paper's core story in five short acts:

1. encode values as bitstreams and do gate-level arithmetic;
2. see the same AND gate compute three different functions depending on
   operand correlation (paper Table I);
3. repair correlation in-stream with the synchronizer / desynchronizer /
   decorrelator;
4. use the improved max/min/saturating-add operators (paper Fig. 5);
5. check what this costs in hardware.

Run:  python examples/quickstart.py
"""

from repro import (
    AbsSubtractor,
    Bitstream,
    Decorrelator,
    Desynchronizer,
    DigitalToStochastic,
    Multiplier,
    Synchronizer,
    SyncMax,
    scc,
)
from repro.hardware import components, report
from repro.rng import LFSR, Halton, VanDerCorput


def act1_encoding():
    print("=" * 70)
    print("Act 1 — stochastic numbers")
    x = Bitstream("01000100")
    print(f"  {x.to01()} encodes {x.value} (two 1s / eight bits)")
    d2s = DigitalToStochastic(VanDerCorput(width=8))
    y = d2s.convert_value(0.75)
    print(f"  D/S(0.75) through a Van der Corput RNG -> value {y.value}")


def act2_correlation_is_function():
    print("=" * 70)
    print("Act 2 — one AND gate, three functions (paper Table I)")
    x = Bitstream("10101010")
    for label, y in [
        ("SCC=+1", Bitstream("10111011")),
        ("SCC=-1", Bitstream("11011101")),
        ("SCC= 0", Bitstream("11111100")),
    ]:
        z = x & y
        print(
            f"  {label}: X&Y = {z.to01()}  value={z.value:5.3f}  "
            f"(px=0.5, py=0.75 in every row; SCC={scc(x.bits, y.bits):+.0f})"
        )
    print("  -> min / max(0,x+y-1) / product, chosen purely by correlation")


def act3_manipulating_correlation():
    print("=" * 70)
    print("Act 3 — manipulating correlation in-stream (paper Fig. 3/4)")
    x = DigitalToStochastic(VanDerCorput(width=8)).convert_value(0.5)
    y = DigitalToStochastic(Halton(base=3, width=8)).convert_value(0.75)
    print(f"  fresh streams:        SCC = {scc(x.bits, y.bits):+.3f}")

    sx, sy = Synchronizer(depth=1).process_pair(x, y)
    print(f"  after synchronizer:   SCC = {scc(sx.bits, sy.bits):+.3f} "
          f"(values {sx.value:.3f}, {sy.value:.3f})")

    dx, dy = Desynchronizer(depth=1).process_pair(x, y)
    print(f"  after desynchronizer: SCC = {scc(dx.bits, dy.bits):+.3f}")

    shared = DigitalToStochastic(VanDerCorput(width=8))
    cx = shared.convert_value(0.5)
    cy = DigitalToStochastic(VanDerCorput(width=8)).convert_value(0.75)
    print(f"  same-RNG streams:     SCC = {scc(cx.bits, cy.bits):+.3f}")
    deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
    ux, uy = deco.process_pair(cx, cy)
    print(f"  after decorrelator:   SCC = {scc(ux.bits, uy.bits):+.3f}")


def act4_improved_operators():
    print("=" * 70)
    print("Act 4 — improved operators (paper Fig. 5)")
    x = DigitalToStochastic(VanDerCorput(width=8)).convert_value(0.3)
    y = DigitalToStochastic(Halton(base=3, width=8)).convert_value(0.8)
    bare_or = (x | y).value
    improved = SyncMax().compute(x, y).value
    print(f"  true max(0.3, 0.8) = 0.8")
    print(f"  bare OR gate       = {bare_or:.3f}  (overshoots: x+y-xy)")
    print(f"  synchronizer max   = {improved:.3f}")

    # The subtractor needs SCC=+1; fix it on the fly.
    sx, sy = Synchronizer().process_pair(x, y)
    diff = AbsSubtractor().compute(sx, sy)
    print(f"  |0.3 - 0.8| via synchronized XOR = {diff.value:.3f}")

    product = Multiplier().compute(x, y)
    print(f"  0.3 * 0.8 via AND (already uncorrelated) = {product.value:.3f}")


def act5_hardware_cost():
    print("=" * 70)
    print("Act 5 — what does it cost? (65nm-calibrated model)")
    for name, netlist in [
        ("OR gate (baseline max)", components.or_gate()),
        ("synchronizer max", components.sync_max()),
        ("correlation-agnostic max", components.ca_max()),
        ("regeneration unit", components.regenerator()),
    ]:
        r = report(netlist)
        print(f"  {name:26s} {r.area_um2:7.2f} um2  {r.power_uw:6.2f} uW  "
              f"{r.energy_pj(256):8.0f} pJ per 256-cycle op")
    print("  -> the paper's pitch: sync max is ~5x smaller and ~11x more")
    print("     energy-efficient than the CA max, at matching accuracy.")


if __name__ == "__main__":
    act1_encoding()
    act2_correlation_is_function()
    act3_manipulating_correlation()
    act4_improved_operators()
    act5_hardware_cost()
