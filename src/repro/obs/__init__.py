"""repro.obs — zero-dependency observability for the execution stack.

Span-based tracing, typed counters/gauges/histograms, and opt-in
memory profiling, permanently wired through every execution layer
(engine, kernels, streaming, parallel scheduler, runner, store, image
pipeline). Disabled is the default and costs one global check per
instrumentation point (``benchmarks/bench_obs.py`` enforces ≤ 2%
overhead on real workloads); enabling never changes any result bit
(property-tested via the cross-backend equivalence harness).

Quickstart::

    from repro import engine, obs
    from repro.engine.library import build_graph

    with obs.observe() as trace:
        plan = engine.compile_graph(build_graph("fsm_zoo"))
        plan.run_streaming(1 << 16, keep=())

    obs.write_chrome_trace(trace, "trace.json")   # load in Perfetto
    print(obs.profile_tree(trace))                # human tree
    print(obs.render_stats(obs.stats_doc(trace))) # metrics + hit rates

Cross-process traces come for free: forked workers (runner shards,
parallel span workers — even shard workers that fork span workers)
inherit the session, record against the same ``perf_counter`` anchor,
flush when their root span closes, and merge at every pool join — one
coherent timeline, summed metrics. See :mod:`repro.obs.tracer`.

Recording API (all no-ops while disabled):

* :func:`span` — ``with obs.span("engine.execute", length=n):``
* :func:`counter_add` / :func:`gauge_set` / :func:`histogram_record`
* :func:`start` / :func:`stop` / :func:`observe` — session lifecycle
* :func:`collect_children` — absorb forked workers' buffers (pool joins
  call this; user code rarely needs to)
"""

from . import metrics as _metrics
from . import tracer as _tracer
from .export import (
    merge_stats_docs,
    profile_tree,
    read_spool_trace,
    render_stats,
    stats_doc,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .tracer import (
    Span,
    Trace,
    Tracer,
    collect_children,
    current_tracer,
    drain_spool,
    enabled,
    observe,
    span,
    start,
    stop,
)

__all__ = [
    "Span", "Trace", "Tracer",
    "span", "counter_add", "gauge_set", "histogram_record",
    "start", "stop", "observe", "enabled", "collect_children",
    "current_tracer", "metrics_snapshot", "drain_spool",
    "to_chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "stats_doc", "render_stats", "profile_tree",
    "read_spool_trace", "merge_stats_docs",
]


def counter_add(name: str, value=1) -> None:
    """Add to a counter (merged by sum across processes); no-op while
    tracing is disabled."""
    if _tracer._TRACER is None:
        return
    _metrics.counter_add(name, value)


def gauge_set(name: str, value) -> None:
    """Set a gauge (last write wins across merges); no-op while disabled."""
    if _tracer._TRACER is None:
        return
    _metrics.gauge_set(name, value)


def histogram_record(name: str, value) -> None:
    """Record one histogram observation (count/sum/min/max + log2
    buckets); no-op while disabled."""
    if _tracer._TRACER is None:
        return
    _metrics.histogram_record(name, value)


def metrics_snapshot() -> dict:
    """The live registry as a JSON-ready dict (mid-session peek)."""
    return _metrics.snapshot()
