"""Trace exporters: Chrome trace-event JSON, flat stats doc, profile tree.

Three consumers, three formats:

* :func:`to_chrome_trace` — the Trace Event Format (``"X"`` complete
  events, microsecond timestamps) that ``chrome://tracing`` and Perfetto
  load directly. Every process contributes its own track (``pid``), and
  because all spans share one ``perf_counter`` anchor (exchanged at
  fork), parent and worker tracks align on a single timeline.
* :func:`stats_doc` — a flat JSON document: the merged metrics registry,
  derived cache-hit rates, and per-span-name aggregates. This is what
  ``repro stats`` renders and what the runner persists next to the
  result store.
* :func:`profile_tree` — the human ``--profile`` rendering: the span
  tree aggregated by call path, one line per path with call counts and
  wall/CPU totals.

:func:`validate_chrome_trace` is the event-schema check the CI
``obs-smoke`` job runs against a traced ``repro run`` artifact.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from .tracer import Trace

__all__ = [
    "to_chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "stats_doc", "render_stats", "profile_tree",
    "read_spool_trace", "merge_stats_docs",
]


# ---------------------------------------------------------------------- #
# Chrome trace-event JSON
# ---------------------------------------------------------------------- #

def to_chrome_trace(trace: Trace) -> Dict[str, Any]:
    """The session as a Trace Event Format document (Perfetto-loadable)."""
    events: List[Dict[str, Any]] = []
    origin = trace.meta.get("origin_pid")
    for pid in trace.processes:
        label = "repro" if pid == origin else f"repro worker {pid}"
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for rec in trace.spans:
        event = {
            "ph": "X",
            "name": rec["name"],
            "cat": rec["cat"],
            "ts": round(rec["t0"] * 1e6, 3),
            "dur": round(rec["dur"] * 1e6, 3),
            "pid": rec["pid"],
            "tid": rec["tid"],
            "args": dict(rec["args"]),
        }
        event["args"]["cpu_ms"] = round(rec["cpu"] * 1e3, 3)
        if "mem_peak" in rec:
            event["args"]["mem_net"] = rec["mem_net"]
            event["args"]["mem_peak"] = rec["mem_peak"]
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path) -> pathlib.Path:
    """Serialise :func:`to_chrome_trace` to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(trace), indent=1) + "\n")
    return path


def validate_chrome_trace(doc: Dict[str, Any]) -> Dict[str, int]:
    """Schema-check a Chrome trace document; raises ``ValueError`` on the
    first violation, returns event counts otherwise.

    Checks the fields the Trace Event Format requires of the phases we
    emit: ``"X"`` events carry a name and non-negative numeric
    ``ts``/``dur`` plus integer ``pid``/``tid``; ``"M"`` metadata events
    carry a name and args.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace document: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    counts = {"X": 0, "M": 0}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        phase = event.get("ph")
        if phase not in counts:
            raise ValueError(f"event {i}: unsupported phase {phase!r}")
        counts[phase] += 1
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"event {i}: missing name")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"event {i}: pid must be an integer")
        if not isinstance(event.get("tid"), int):
            raise ValueError(f"event {i}: tid must be an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"event {i}: {key} must be a non-negative number"
                    )
        if not isinstance(event.get("args", {}), dict):
            raise ValueError(f"event {i}: args must be an object")
    if counts["X"] == 0:
        raise ValueError("trace contains no complete ('X') events")
    return counts


# ---------------------------------------------------------------------- #
# Spool aggregation (long-lived servers)
# ---------------------------------------------------------------------- #

def _merge_metrics_snapshots(into: Dict[str, Any], other: Dict[str, Any]) -> None:
    """Pure (registry-free) twin of :func:`repro.obs.metrics.merge` —
    folds ``other`` into ``into`` with the same semantics: counters sum,
    gauges last-write-wins, histograms merge element-wise."""
    for name, value in other.get("counters", {}).items():
        counters = into.setdefault("counters", {})
        counters[name] = counters.get(name, 0) + value
    for name, value in other.get("gauges", {}).items():
        into.setdefault("gauges", {})[name] = value
    for name, theirs in other.get("histograms", {}).items():
        histograms = into.setdefault("histograms", {})
        hist = histograms.get(name)
        if hist is None:
            histograms[name] = {**theirs, "buckets": dict(theirs["buckets"])}
            continue
        hist["count"] += theirs["count"]
        hist["sum"] += theirs["sum"]
        hist["min"] = min(hist["min"], theirs["min"])
        hist["max"] = max(hist["max"], theirs["max"])
        for label, count in theirs["buckets"].items():
            hist["buckets"][label] = hist["buckets"].get(label, 0) + count


def read_spool_trace(paths: Union[List, tuple]) -> Trace:
    """Reassemble a :class:`Trace` from drained spool files.

    ``paths`` are JSONL files written by
    :func:`repro.obs.tracer.drain_spool` (the ``repro serve`` obs spool
    under ``<store>/obs/serve-<pid>.jsonl``). Records aggregate across
    every file and line — span lists concatenate with parent indices
    rebased, metrics deltas sum — so one server process's many
    connections, or several server processes sharing a store, collapse
    into a single coherent trace. Unreadable files and malformed lines
    are skipped (a server may be appending while we read; JSONL keeps
    complete lines valid).
    """
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    pids: List[int] = []
    for path in paths:
        try:
            lines = pathlib.Path(path).read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            offset = len(spans)
            for rec in record.get("spans", ()):
                if rec.get("parent", -1) >= 0:
                    rec["parent"] += offset
            spans.extend(record.get("spans", ()))
            _merge_metrics_snapshots(metrics, record.get("metrics", {}))
            pid = record.get("pid")
            if pid is not None and pid not in pids:
                pids.append(pid)
    return Trace(
        spans=spans,
        metrics=metrics,
        meta={"origin_pid": pids[0] if pids else None, "spooled": True},
    )


def merge_stats_docs(docs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold several stats documents into one.

    Metrics merge with snapshot semantics, span aggregates sum
    (``processes`` saturates at the max contribution — pids are already
    collapsed to counts per doc), and the derived rates are recomputed
    from the merged counters. ``meta`` keeps the first doc's fields and
    counts the sources. This is how ``repro stats`` lays serve-spool
    aggregates alongside a traced run's persisted document.
    """
    merged_metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    merged_spans: Dict[str, Dict[str, Any]] = {}
    meta: Dict[str, Any] = {}
    for doc in docs:
        if not meta:
            meta = dict(doc.get("meta", {}))
        _merge_metrics_snapshots(merged_metrics, doc.get("metrics", {}))
        for name, agg in doc.get("spans", {}).items():
            into = merged_spans.setdefault(
                name, {"count": 0, "wall_ms": 0.0, "cpu_ms": 0.0, "processes": 0}
            )
            into["count"] += agg["count"]
            into["wall_ms"] = round(into["wall_ms"] + agg["wall_ms"], 3)
            into["cpu_ms"] = round(into["cpu_ms"] + agg["cpu_ms"], 3)
            into["processes"] = max(into["processes"], agg["processes"])
    meta["merged_docs"] = len(docs)
    return {
        "meta": meta,
        "metrics": merged_metrics,
        "derived": _derived_rates(merged_metrics.get("counters", {})),
        "spans": merged_spans,
    }


# ---------------------------------------------------------------------- #
# Flat stats document
# ---------------------------------------------------------------------- #

def _rate(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    if total == 0:
        return None
    return hits / total


def _derived_rates(counters: Dict[str, Any]) -> Dict[str, Optional[float]]:
    return {
        "plan_cache_hit_rate": _rate(
            counters.get("engine.plan.cache.hit", 0),
            counters.get("engine.plan.cache.miss", 0),
        ),
        "seq_memo_hit_rate": _rate(
            counters.get("engine.seq_memo.hit", 0),
            counters.get("engine.seq_memo.miss", 0),
        ),
        "runner_cache_hit_rate": _rate(
            counters.get("runner.cache.hit", 0),
            counters.get("runner.cache.miss", 0),
        ),
        "store_read_hit_rate": _rate(
            counters.get("store.read.hit", 0),
            counters.get("store.read.miss", 0),
        ),
        # Fraction of served requests that rode a coalesced batch — the
        # serving layer's amortization quality in one number.
        "serve_coalesce_rate": _rate(
            counters.get("serve.coalesce.batched", 0),
            counters.get("serve.coalesce.solo", 0),
        ),
    }


def stats_doc(trace: Trace) -> Dict[str, Any]:
    """Flat JSON stats: metrics, derived hit rates, span aggregates."""
    derived = _derived_rates(trace.metrics.get("counters", {}))
    aggregates: Dict[str, Dict[str, Any]] = {}
    for rec in trace.spans:
        agg = aggregates.setdefault(
            rec["name"],
            {"count": 0, "wall_ms": 0.0, "cpu_ms": 0.0, "processes": []},
        )
        agg["count"] += 1
        agg["wall_ms"] += rec["dur"] * 1e3
        agg["cpu_ms"] += rec["cpu"] * 1e3
        if rec["pid"] not in agg["processes"]:
            agg["processes"].append(rec["pid"])
    for agg in aggregates.values():
        agg["wall_ms"] = round(agg["wall_ms"], 3)
        agg["cpu_ms"] = round(agg["cpu_ms"], 3)
        agg["processes"] = len(agg["processes"])
    return {
        "meta": dict(trace.meta),
        "metrics": trace.metrics,
        "derived": derived,
        "spans": aggregates,
    }


def render_stats(doc: Dict[str, Any]) -> str:
    """Human rendering of a stats document (the ``repro stats`` output)."""
    lines = []
    meta = doc.get("meta", {})
    duration = meta.get("duration_s")
    header = "observability stats"
    if duration is not None:
        header += f" — session {duration:.2f}s, origin pid {meta.get('origin_pid')}"
    lines.append(header)

    lines.append("derived rates:")
    for key, value in sorted(doc.get("derived", {}).items()):
        rendered = "n/a" if value is None else f"{100.0 * value:.1f}%"
        lines.append(f"  {key:28s} {rendered}")

    counters = doc.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:32s} {counters[name]}")
    gauges = doc.get("metrics", {}).get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:32s} {gauges[name]}")
    histograms = doc.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name:32s} n={hist['count']} sum={hist['sum']} "
                f"min={hist['min']} max={hist['max']}"
            )

    spans = doc.get("spans", {})
    if spans:
        lines.append("spans (by total wall time):")
        ordered = sorted(
            spans.items(), key=lambda item: item[1]["wall_ms"], reverse=True
        )
        for name, agg in ordered:
            lines.append(
                f"  {name:32s} {agg['count']:>5}x {agg['wall_ms']:>10.1f} ms "
                f"cpu {agg['cpu_ms']:>9.1f} ms  [{agg['processes']} proc]"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Profile tree
# ---------------------------------------------------------------------- #

def profile_tree(trace: Trace) -> str:
    """The ``--profile`` rendering: spans aggregated by call path.

    Children from forked workers hang under the path of their process's
    root span siblings only by name — each process's tree is built from
    its own parent links, then identical paths merge across processes
    (the per-path ``procs`` column says how many contributed).
    """
    paths: Dict[Tuple[str, ...], Dict[str, Any]] = {}
    # Parent links index the flat span list, so a span's path is its
    # ancestor chain of names (process-local by construction: cross-
    # process records never reference each other's indices).
    resolved: Dict[int, Tuple[str, ...]] = {}
    for index, rec in enumerate(trace.spans):
        parent = rec["parent"]
        base = resolved.get(parent, ()) if parent >= 0 else ()
        path = base + (rec["name"],)
        resolved[index] = path
        agg = paths.setdefault(
            path, {"count": 0, "wall_ms": 0.0, "cpu_ms": 0.0, "pids": set()}
        )
        agg["count"] += 1
        agg["wall_ms"] += rec["dur"] * 1e3
        agg["cpu_ms"] += rec["cpu"] * 1e3
        agg["pids"].add(rec["pid"])

    if not paths:
        return "(no spans recorded)"

    # Stable render order: depth-first, children under their parent,
    # siblings by descending wall time.
    def children_of(prefix: Tuple[str, ...]) -> List[Tuple[str, ...]]:
        kids = [p for p in paths if len(p) == len(prefix) + 1 and p[:-1] == prefix]
        return sorted(kids, key=lambda p: paths[p]["wall_ms"], reverse=True)

    lines = [f"{'span':44s} {'calls':>6} {'wall ms':>10} {'cpu ms':>10} {'procs':>6}"]

    def render(prefix: Tuple[str, ...]) -> None:
        for path in children_of(prefix):
            agg = paths[path]
            indent = "  " * (len(path) - 1)
            label = indent + path[-1]
            lines.append(
                f"{label:44s} {agg['count']:>6} {agg['wall_ms']:>10.1f} "
                f"{agg['cpu_ms']:>10.1f} {len(agg['pids']):>6}"
            )
            render(path)

    render(())
    return "\n".join(lines)
