"""Typed metrics registry: counters, gauges, histograms.

Process-global, lock-guarded (the lock is rebound in forked children by
the tracer's at-fork hook calling :func:`reset` — same hygiene as the
engine's sequence memos). The registry holds plain numbers, so a
snapshot is JSON-ready and two snapshots merge commutatively:

* **counters** merge by sum;
* **gauges** merge last-write-wins (child values overwrite, matching
  "most recent observation" semantics);
* **histograms** merge count/sum/min/max element-wise and add their
  log2 bucket counts.

The public recording entry points live in :mod:`repro.obs` and no-op
unless a tracing session is active; everything here assumes the caller
already checked.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Union

__all__ = [
    "counter_add", "gauge_set", "histogram_record",
    "snapshot", "merge", "reset",
]

Number = Union[int, float]

_LOCK = threading.Lock()
_COUNTERS: Dict[str, Number] = {}
_GAUGES: Dict[str, Number] = {}
_HISTOGRAMS: Dict[str, Dict[str, Any]] = {}


def _bucket(value: float) -> str:
    """Log2 bucket label: ``"<=2^k"`` with k = ceil(log2(value)), 0 for
    values ≤ 1 (negative values clamp into the bottom bucket)."""
    k = 0
    ceiling = 1.0
    while ceiling < value and k < 64:
        ceiling *= 2.0
        k += 1
    return f"<=2^{k}"


def counter_add(name: str, value: Number = 1) -> None:
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def gauge_set(name: str, value: Number) -> None:
    with _LOCK:
        _GAUGES[name] = value


def histogram_record(name: str, value: Number) -> None:
    with _LOCK:
        hist = _HISTOGRAMS.get(name)
        if hist is None:
            hist = {"count": 0, "sum": 0, "min": value, "max": value,
                    "buckets": {}}
            _HISTOGRAMS[name] = hist
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        label = _bucket(value)
        hist["buckets"][label] = hist["buckets"].get(label, 0) + 1


def snapshot() -> Dict[str, Any]:
    """A JSON-ready copy of the registry."""
    with _LOCK:
        return {
            "counters": dict(_COUNTERS),
            "gauges": dict(_GAUGES),
            "histograms": {
                name: {**hist, "buckets": dict(hist["buckets"])}
                for name, hist in _HISTOGRAMS.items()
            },
        }


def merge(other: Dict[str, Any]) -> None:
    """Fold another snapshot (a child's delta) into the live registry."""
    with _LOCK:
        for name, value in other.get("counters", {}).items():
            _COUNTERS[name] = _COUNTERS.get(name, 0) + value
        for name, value in other.get("gauges", {}).items():
            _GAUGES[name] = value
        for name, theirs in other.get("histograms", {}).items():
            hist = _HISTOGRAMS.get(name)
            if hist is None:
                _HISTOGRAMS[name] = {
                    **theirs, "buckets": dict(theirs["buckets"])
                }
                continue
            hist["count"] += theirs["count"]
            hist["sum"] += theirs["sum"]
            hist["min"] = min(hist["min"], theirs["min"])
            hist["max"] = max(hist["max"], theirs["max"])
            for label, count in theirs["buckets"].items():
                hist["buckets"][label] = hist["buckets"].get(label, 0) + count


def reset() -> None:
    """Zero the registry and rebind the lock (fork hygiene: the
    inherited lock may be held by a parent thread that does not exist in
    the child)."""
    global _LOCK
    _LOCK = threading.Lock()
    _COUNTERS.clear()
    _GAUGES.clear()
    _HISTOGRAMS.clear()
