"""Span tracing with cross-process aggregation.

One process-global :class:`Tracer` (the *session*) buffers spans; the
nesting stack is a :mod:`contextvars` variable, so concurrent threads
(and async callers) each see their own ancestry while sharing one span
buffer. When no session is active, :func:`span` returns a shared no-op
handle — the disabled path is one module-global load and an identity
check, cheap enough to leave instrumentation permanently wired into the
execution stack (``benchmarks/bench_obs.py`` enforces the ceiling).

Cross-process story (the at-fork pattern of the engine's memo caches):

* forked workers inherit the parent's session by address-space
  inheritance — including the **anchor**, the ``time.perf_counter()``
  origin taken at session start. ``perf_counter`` is CLOCK_MONOTONIC on
  Linux (system-wide, not per-process), so child span timestamps
  recorded as deltas against the inherited anchor land on the same
  timeline as the parent's;
* the ``os.register_at_fork`` hook gives every child a fresh span
  buffer, a reset nesting stack, and a zeroed metrics registry, and
  counts the fork into ``process.forks``;
* a child flushes when its **root span** (depth 0 in the child) closes:
  buffered spans plus the metrics delta append as one JSON line to a
  per-pid spool file (single writer per file — no locking). Exit hooks
  are useless here (forked pool workers die by ``os._exit``), so the
  flush is deterministic span-close work instead;
* the parent absorbs spool files via :func:`collect_children` — called
  after every pool join in :mod:`repro.engine.parallel`,
  :mod:`repro.runner.scheduler`, :mod:`repro.pipeline.accelerator`, and
  once more at :func:`stop`. In a *second-level* fork (runner shard
  worker → span workers) the mid-level worker's ``collect_children`` is
  a no-op: grandchild spool lines simply wait in the shared spool
  directory for the top-level parent, so nothing merges twice.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import metrics as _metrics

__all__ = ["Span", "Trace", "Tracer", "span", "start", "stop", "observe",
           "enabled", "collect_children", "current_tracer", "drain_spool",
           "adopt_session", "leave_session", "flush_in_child"]

_STACK: ContextVar[tuple] = ContextVar("repro_obs_stack", default=())

_TRACER: Optional["Tracer"] = None


@dataclass
class Trace:
    """A finished session: flat span records, merged metrics, metadata.

    ``spans`` is a list of plain dicts (JSON-ready) with keys ``name``,
    ``cat``, ``t0``/``dur`` (seconds relative to the session anchor),
    ``cpu`` (process CPU seconds), ``pid``, ``tid``, ``parent`` (index
    into this list, ``-1`` for roots), ``depth``, ``args`` and — when
    memory profiling was on — ``mem_net``/``mem_peak`` bytes.
    """

    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def processes(self) -> List[int]:
        """Distinct pids that contributed spans, origin first."""
        seen: List[int] = []
        for rec in self.spans:
            if rec["pid"] not in seen:
                seen.append(rec["pid"])
        return seen

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        return [rec for rec in self.spans if rec["name"] == name]


class Tracer:
    """One tracing session's mutable state (module-global singleton)."""

    __slots__ = (
        "anchor", "epoch", "spool", "memory", "spans", "in_child",
        "origin_pid", "own_tracemalloc",
    )

    def __init__(self, *, memory: bool = False, spool: Optional[str] = None):
        self.anchor = time.perf_counter()
        self.epoch = time.time()
        self.spool = spool or tempfile.mkdtemp(prefix="repro-obs-")
        self.memory = memory
        self.spans: List[Dict[str, Any]] = []
        self.in_child = False
        self.origin_pid = os.getpid()
        self.own_tracemalloc = False

    def now(self) -> float:
        return time.perf_counter() - self.anchor


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """A live span handle (context manager). Records on close."""

    __slots__ = ("_rec", "_token", "_cpu0", "_mem0")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        stack = _STACK.get()
        rec = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "t0": tracer.now(),
            "dur": 0.0,
            "cpu": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "parent": stack[-1] if stack else -1,
            "depth": len(stack),
            "args": attrs,
        }
        tracer.spans.append(rec)
        self._rec = rec
        self._token = _STACK.set(stack + (len(tracer.spans) - 1,))
        self._cpu0 = time.process_time()
        self._mem0 = None
        if tracer.memory:
            import tracemalloc
            if tracemalloc.is_tracing():
                self._mem0 = tracemalloc.get_traced_memory()[0]

    def annotate(self, **attrs) -> None:
        """Attach key/value attributes to the span while it is open."""
        self._rec["args"].update(attrs)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        tracer = _TRACER
        rec = self._rec
        _STACK.reset(self._token)
        rec["cpu"] = time.process_time() - self._cpu0
        if tracer is not None:
            rec["dur"] = tracer.now() - rec["t0"]
            if self._mem0 is not None:
                import tracemalloc
                current, peak = tracemalloc.get_traced_memory()
                rec["mem_net"] = current - self._mem0
                rec["mem_peak"] = peak
            if tracer.in_child and rec["depth"] == 0:
                _flush_child(tracer)
        return False


def span(name: str, **attrs):
    """Open a span named ``name``; no-op (and allocation-free apart from
    the kwargs dict) while tracing is disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, attrs)


def enabled() -> bool:
    """Is a tracing session active in this process?"""
    return _TRACER is not None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


# ---------------------------------------------------------------------- #
# Child flush / parent collect
# ---------------------------------------------------------------------- #

def _flush_child(tracer: Tracer) -> None:
    """Append this child's buffered spans + metrics delta to its spool
    file (one file per pid — a pool worker appends one line per task)."""
    record = {
        "pid": os.getpid(),
        "spans": tracer.spans,
        "metrics": _metrics.snapshot(),
    }
    tracer.spans = []
    _metrics.reset()
    path = os.path.join(tracer.spool, f"obs-{os.getpid()}.jsonl")
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")


def drain_spool(path) -> int:
    """Append the live session's buffered spans + metrics delta to the
    JSONL spool file at ``path``, then reset the buffers.

    The long-lived-server counterpart of a forked child's root-span
    flush: a process that never *ends* its session (``repro serve``)
    drains after every micro-batch flush instead, so its spans and
    counters are durably on disk — and visible to ``repro stats`` via
    :func:`repro.obs.read_spool_trace` — even if the server is later
    killed without a clean :func:`stop`. Records use the same JSONL
    shape as the fork spool (``{"pid", "spans", "metrics"}``); metrics
    reset on drain, so successive records carry disjoint deltas that sum
    back to session totals. Returns the number of spans drained; no-op
    (returns 0) while tracing is disabled or nothing is buffered.

    Spans still *open* in another thread at drain time are written with
    their creation-time snapshot (zero duration) and spans opened after
    the reset may mis-parent in the profile tree; counters, gauges, and
    histograms stay exact (they merge commutatively). Callers that care
    about span fidelity drain at quiet points — the server drains after
    each batch completes.
    """
    tracer = _TRACER
    if tracer is None:
        return 0
    record = {
        "pid": os.getpid(),
        "spans": tracer.spans,
        "metrics": _metrics.snapshot(),
    }
    if not record["spans"] and not any(record["metrics"].values()):
        return 0
    tracer.spans = []
    _metrics.reset()
    path = os.fspath(path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
    return len(record["spans"])


def collect_children() -> int:
    """Merge every spooled child record into the live session.

    Returns the number of records absorbed. No-op when tracing is
    disabled or when running *inside* a forked child (grandchild records
    then stay spooled for the top-level parent — second-level forks merge
    exactly once).
    """
    tracer = _TRACER
    if tracer is None or tracer.in_child:
        return 0
    absorbed = 0
    try:
        names = sorted(os.listdir(tracer.spool))
    except OSError:
        return 0
    for filename in names:
        if not filename.endswith(".jsonl"):
            continue
        path = os.path.join(tracer.spool, filename)
        try:
            with open(path) as fh:
                lines = fh.readlines()
            os.unlink(path)
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            offset = len(tracer.spans)
            for rec in record["spans"]:
                if rec["parent"] >= 0:
                    rec["parent"] += offset
            tracer.spans.extend(record["spans"])
            _metrics.merge(record["metrics"])
            absorbed += 1
    return absorbed


# ---------------------------------------------------------------------- #
# Persistent-worker adoption
# ---------------------------------------------------------------------- #
#
# Fork-per-call workers join the parent's session by address-space
# inheritance. The persistent pool's workers fork *once* — possibly
# before any session exists — so each pooled call primes them with the
# parent's (anchor, spool) and they adopt/leave the session explicitly.
# Adopted workers behave exactly like inherited ones: ``in_child`` is
# set, spans flush to the shared spool at root-span close, and
# ``collect_children`` in the parent merges each record exactly once.

def flush_in_child() -> None:
    """Spool whatever this child has buffered (root-span flush for spans
    closed since, plus the metrics delta). No-op outside a child session
    or with nothing buffered; a vanished spool directory (the parent's
    session already ended) just drops the buffers."""
    tracer = _TRACER
    if tracer is None or not tracer.in_child:
        return
    if not tracer.spans and not any(_metrics.snapshot().values()):
        return
    try:
        _flush_child(tracer)
    except OSError:
        tracer.spans = []
        _metrics.reset()


def adopt_session(anchor: float, spool: str) -> Tracer:
    """Join (as a child) the parent session identified by its anchor and
    spool directory. Re-adopting the same session is a cheap no-op;
    switching sessions flushes leftovers to the old spool first."""
    global _TRACER
    tracer = _TRACER
    if tracer is not None and tracer.in_child and tracer.spool == spool:
        tracer.anchor = anchor
        return tracer
    if tracer is not None:
        flush_in_child()
    _metrics.reset()
    tracer = Tracer(spool=spool)
    tracer.anchor = anchor
    tracer.in_child = True
    _STACK.set(())
    _TRACER = tracer
    return tracer


def leave_session() -> None:
    """Drop this child's session view (the parent traced last call but
    not this one); leftovers flush to the old spool first."""
    global _TRACER
    if _TRACER is None:
        return
    flush_in_child()
    _TRACER = None
    _metrics.reset()


# ---------------------------------------------------------------------- #
# Session lifecycle
# ---------------------------------------------------------------------- #

def start(*, memory: bool = False) -> Tracer:
    """Begin a tracing session in this process.

    ``memory=True`` additionally attributes :mod:`tracemalloc` net/peak
    bytes to every span (starts tracemalloc if it is not running).
    """
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("an observability session is already active")
    _metrics.reset()
    tracer = Tracer(memory=memory)
    if memory:
        import tracemalloc
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            tracer.own_tracemalloc = True
    _TRACER = tracer
    return tracer


def stop() -> Trace:
    """End the session: collect children, snapshot metrics, tear down."""
    global _TRACER
    tracer = _TRACER
    if tracer is None:
        raise RuntimeError("no observability session is active")
    collect_children()
    trace = Trace(
        spans=tracer.spans,
        metrics=_metrics.snapshot(),
        meta={
            "origin_pid": tracer.origin_pid,
            "started_unix": tracer.epoch,
            "duration_s": tracer.now(),
            "memory": tracer.memory,
        },
    )
    _metrics.reset()
    if tracer.own_tracemalloc:
        import tracemalloc
        tracemalloc.stop()
    _TRACER = None
    if not tracer.in_child:
        shutil.rmtree(tracer.spool, ignore_errors=True)
    return trace


class _Observation:
    """Context manager: start on enter, fill a Trace in place on exit
    (so ``with observe() as trace: ...`` reads results after the block)."""

    __slots__ = ("trace", "memory")

    def __init__(self, memory: bool = False):
        self.memory = memory
        self.trace = Trace()

    def __enter__(self) -> Trace:
        start(memory=self.memory)
        return self.trace

    def __exit__(self, *exc):
        finished = stop()
        self.trace.spans = finished.spans
        self.trace.metrics = finished.metrics
        self.trace.meta = finished.meta
        return False


def observe(*, memory: bool = False) -> _Observation:
    """``with observe() as trace:`` — trace the block, then read
    ``trace.spans`` / ``trace.metrics`` after it exits."""
    return _Observation(memory=memory)


# ---------------------------------------------------------------------- #
# Fork hygiene
# ---------------------------------------------------------------------- #

def _after_fork_in_child() -> None:
    tracer = _TRACER
    if tracer is None:
        return
    # Fresh buffers; the anchor and spool directory are inherited on
    # purpose (shared timeline, shared flush destination).
    tracer.in_child = True
    tracer.spans = []
    _STACK.set(())
    _metrics.reset()
    _metrics.counter_add("process.forks", 1)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)
