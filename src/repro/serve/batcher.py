"""Group execution: one engine pass serving many requests.

:func:`execute_group` is the **single code path** for every engine-bound
request the server answers — a solo request is simply a group of one.
That, plus the engine's row contract (*row i of a batched pass is
bit-identical to evaluating configuration i alone*), is the whole
byte-identity argument: there is no separate fast path whose output
could drift from the slow one.

Pipeline of one group (all requests share a
:func:`~repro.serve.protocol.group_key`):

1. **Store short-circuit** — each request's canonical identity is a
   content address in the shared
   :class:`~repro.runner.store.ResultStore`; hits skip the engine
   entirely (and skip counting toward the batch).
2. **Value merge** — the missing requests' source overrides merge into
   per-source ``(batch,)`` arrays; sources a request leaves unnamed get
   their graph-default value, so row *i* is exactly request *i*'s solo
   configuration. A group with no overrides anywhere collapses to a
   single shared row.
3. **Route** — the materialised footprint estimate
   (:func:`~repro.bitstream.streaming.materialized_batch_bytes`)
   decides between the materialised executor and the constant-memory
   tile scheduler (:func:`~repro.engine.streaming.run_streaming`,
   bit-identical by construction). Audits with overrides always use
   :func:`~repro.engine.executor.audit_batch` — the streaming auditor
   takes no per-source overrides (its N = 2^22 use case audits graph
   defaults), so the budget can only reroute *default-configuration*
   audits; this is the one documented load-shed gap.
4. **Split** — per-request results are rendered from their row
   (config-independent nodes have one shared row) and written back to
   the store.

This module is synchronous and socket-free on purpose: the asyncio
server calls it on a worker thread, tests and docs call it directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..engine.executor import audit_batch, run_batch
from ..engine.plan import ExecutionPlan
from ..engine.streaming import audit_streaming, run_streaming
from ..exceptions import GraphCompilationError
from ..bitstream.streaming import DEFAULT_TILE_WORDS, materialized_batch_bytes
from ..obs import counter_add
from ..obs import span as obs_span
from ..runner.store import ResultStore
from .protocol import ServeRequest, words_to_b64

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "execute_group",
    "merged_values",
    "store_key",
]

# 256 MiB of live packed buffers before a group sheds into streaming.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


def store_key(store: ResultStore, req: ServeRequest) -> str:
    """The content address of one request's deterministic result.

    Reuses the runner's shard-key scheme, so the code-relevant version
    is folded in: editing any engine source invalidates every cached
    serve response, exactly like runner shards.
    """
    return store.shard_key(
        spec="serve",
        label=req.kind,
        fn_ref=f"serve.{req.kind}",
        kwargs={
            "graph": req.graph,
            "length": req.length,
            "values": dict(req.values),
            "keep": list(req.keep) if req.keep is not None else None,
            "bits": req.bits,
            "encoding": req.encoding,
            "tolerance": req.tolerance if req.kind == "audit" else None,
        },
        seed=None,
    )


def merged_values(
    requests: List[ServeRequest], plan: ExecutionPlan
) -> Optional[Dict[str, np.ndarray]]:
    """Merge per-request source overrides into batched override arrays.

    Returns None when no request overrides anything (the whole group
    shares the graph-default single row). Otherwise every source any
    request names gets a ``(batch,)`` array whose row *i* is request
    *i*'s value — or the graph default where request *i* stayed silent —
    so each row reproduces that request's solo configuration exactly.
    """
    overridden = sorted({name for r in requests for name, _ in r.values})
    if not overridden:
        return None
    defaults = {s.name: s.value for s in plan.source_steps}
    merged: Dict[str, np.ndarray] = {}
    for name in overridden:
        merged[name] = np.array(
            [r.values_dict.get(name, defaults[name]) for r in requests],
            dtype=np.float64,
        )
    return merged


def _row(array: np.ndarray, i: int) -> int:
    """Row index of configuration ``i`` in a possibly-shared matrix
    (config-independent nodes carry one row for the whole batch)."""
    return min(i, array.shape[0] - 1)


def _render_run(run, i: int, req: ServeRequest) -> Dict[str, Any]:
    """Request ``i``'s deterministic payload from a (batched) run."""
    result: Dict[str, Any] = {
        "graph": req.graph,
        "length": req.length,
        "encoding": req.encoding,
        "values": {
            name: float(run.values(name)[_row(run.packed[name], i)])
            for name in run.names
        },
    }
    if req.bits:
        result["words"] = {
            name: words_to_b64(run.packed[name][_row(run.packed[name], i)])
            for name in run.names
        }
    return result


def _render_audit_batch(audit, i: int, req: ServeRequest) -> Dict[str, Any]:
    entries = [
        {
            "node": e.node,
            "op": e.op,
            "required_scc": e.required_scc,
            "measured_scc": float(e.measured_scc[i]),
            "expected_value": float(e.expected_value[i]),
            "measured_value": float(e.measured_value[i]),
            "violated": bool(e.violated[i]),
        }
        for e in audit.entries
    ]
    return {
        "graph": req.graph,
        "length": req.length,
        "tolerance": req.tolerance,
        "entries": entries,
        "violations": sum(e["violated"] for e in entries),
    }


def _render_audit_graph(audit, req: ServeRequest) -> Dict[str, Any]:
    """Same payload shape from a streaming :class:`GraphAudit` (scalar
    entries; only reachable for override-free groups, where every row is
    the shared default configuration)."""
    entries = [
        {
            "node": e.node,
            "op": e.op,
            "required_scc": e.required_scc,
            "measured_scc": float(e.measured_scc),
            "expected_value": float(e.expected_value),
            "measured_value": float(e.measured_value),
            "violated": bool(e.violated),
        }
        for e in audit.entries
    ]
    return {
        "graph": req.graph,
        "length": req.length,
        "tolerance": req.tolerance,
        "entries": entries,
        "violations": sum(e["violated"] for e in entries),
    }


def execute_group(
    requests: List[ServeRequest],
    plan: ExecutionPlan,
    *,
    store: Optional[ResultStore] = None,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    stream_jobs: int = 1,
    tile_words: int = DEFAULT_TILE_WORDS,
) -> List[Dict[str, Any]]:
    """Serve one coalesced group in a single engine pass.

    Args:
        requests: requests sharing one :func:`~repro.serve.protocol.group_key`.
        plan: the compiled plan all of them target.
        store: optional shared result store — hits short-circuit the
            engine; misses are written back (atomic, last-writer-wins).
        budget_bytes: materialised-footprint budget above which the
            group sheds into the streaming backend.
        stream_jobs / tile_words: parameters of the shed path.

    Returns one response dict per request, in request order:
    ``{"id", "ok": True, "result", "meta": {"route", "coalesced",
    "cached"}}``. The ``result`` payloads are byte-identical (canonical
    JSON) to serving each request alone.
    """
    if not requests:
        return []
    req0 = requests[0]
    results: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    cached = [False] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)

    if store is not None:
        for i, req in enumerate(requests):
            keys[i] = store_key(store, req)
            hit = store.get(keys[i])
            if hit is not None:
                results[i] = hit
                cached[i] = True

    misses = [i for i in range(len(requests)) if results[i] is None]
    route = "store"
    if misses:
        miss_reqs = [requests[i] for i in misses]
        values = merged_values(miss_reqs, plan)
        batch = len(miss_reqs) if values is not None else 1
        footprint = materialized_batch_bytes(len(plan.steps), batch, req0.length)
        shed = footprint > budget_bytes
        keep = list(req0.keep) if req0.keep is not None else None
        with obs_span(
            "serve.execute",
            kind=req0.kind, graph=req0.graph, length=req0.length,
            batch=len(miss_reqs), shed=shed,
        ):
            if req0.kind == "run":
                route = "batched"
                if shed:
                    try:
                        run = run_streaming(
                            plan, req0.length, values=values, keep=keep,
                            encoding=req0.encoding, tile_words=tile_words,
                            jobs=stream_jobs,
                        )
                        route = "streamed"
                    except GraphCompilationError:
                        # Plans with fsm-domain transforms have no
                        # streaming carriers; the budget cannot reroute
                        # them, so they take the materialised pass.
                        run = None
                    if route == "streamed":
                        for j, i in enumerate(misses):
                            results[i] = _render_run(run, j, requests[i])
                if route == "batched":
                    run = run_batch(
                        plan, req0.length, values=values, keep=keep,
                        encoding=req0.encoding,
                    )
                    for j, i in enumerate(misses):
                        results[i] = _render_run(run, j, requests[i])
            else:  # audit
                if shed and values is None:
                    try:
                        ga = audit_streaming(
                            plan, req0.length, tolerance=req0.tolerance,
                            tile_words=tile_words, jobs=stream_jobs,
                        )
                        route = "streamed"
                        for i in misses:
                            results[i] = _render_audit_graph(ga, requests[i])
                    except GraphCompilationError:
                        route = "batched"
                else:
                    route = "batched"
                if route == "batched":
                    ba = audit_batch(
                        plan, req0.length, values=values,
                        tolerance=req0.tolerance,
                    )
                    for j, i in enumerate(misses):
                        results[i] = _render_audit_batch(ba, j, requests[i])

        if store is not None:
            # Intra-group duplicates may write the same key twice; the
            # store's unique-temp atomic rename makes that a benign
            # last-writer-wins (both writers hold identical content).
            for i in misses:
                store.put(
                    keys[i],
                    results[i],
                    meta={"kind": requests[i].kind, "graph": requests[i].graph},
                )

    counter_add("serve.store.hit", sum(cached))
    return [
        {
            "id": req.id,
            "ok": True,
            "result": results[i],
            "meta": {
                "route": "store" if cached[i] else route,
                "coalesced": len(requests),
                "cached": cached[i],
            },
        }
        for i, req in enumerate(requests)
    ]
