"""Blocking JSON-lines client for the serving front-end.

One connection, synchronous request/response — plus
:meth:`ServeClient.request_many`, which pipelines a whole list of
requests before reading any response, so even a single connection's
requests can coalesce into one batched engine pass (responses arrive in
completion order and are re-matched by id).

One-liner (the README quickstart)::

    python -c "from repro.serve import ServeClient; \\
        print(ServeClient(port=7453).audit('depth8', 4096)['violations'])"
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional

from .protocol import DEFAULT_PORT, decode_line, encode_line

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (the message is its error)."""


class ServeClient:
    """Client for one server connection (context-manager friendly).

    The convenience methods (:meth:`run`, :meth:`audit`, :meth:`spec`,
    :meth:`ping`, :meth:`stats`, :meth:`shutdown`) return the response's
    ``result`` payload and raise :class:`ServeError` on failure;
    :meth:`request` / :meth:`request_many` return whole response objects
    (including ``meta``) and never raise on ``ok: false``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count()

    # -- connection -----------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol ---------------------------------------------------

    def _next_id(self) -> str:
        return f"c{next(self._ids)}"

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, wait for its response."""
        return self.request_many([payload])[0]

    def request_many(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline several requests on this connection.

        All requests are written before any response is read, so they
        can land in the same micro-batch window. Responses are matched
        by id and returned in *request* order.
        """
        self.connect()
        sent = []
        for payload in payloads:
            payload = dict(payload)
            if "id" not in payload:
                payload["id"] = self._next_id()
            sent.append(payload)
            self._sock.sendall(encode_line(payload))
        by_id: Dict[str, Dict[str, Any]] = {}
        wanted = {p["id"] for p in sent}
        while len(by_id) < len(sent):
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode_line(line)
            rid = response.get("id")
            if rid in wanted:
                by_id[rid] = response
        return [by_id[p["id"]] for p in sent]

    # -- convenience methods --------------------------------------------

    def _result(self, payload: Dict[str, Any]) -> Any:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response["result"]

    def run(
        self,
        graph: str,
        length: int = 256,
        *,
        values: Optional[Dict[str, float]] = None,
        keep: Optional[List[str]] = None,
        bits: bool = False,
        encoding: str = "unipolar",
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "run", "graph": graph, "length": length, "bits": bits,
            "encoding": encoding,
        }
        if values:
            payload["values"] = values
        if keep is not None:
            payload["keep"] = list(keep)
        return self._result(payload)

    def audit(
        self,
        graph: str,
        length: int = 256,
        *,
        values: Optional[Dict[str, float]] = None,
        tolerance: float = 0.35,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "audit", "graph": graph, "length": length,
            "tolerance": tolerance,
        }
        if values:
            payload["values"] = values
        return self._result(payload)

    def spec(
        self, name: str, *, fidelity: str = "smoke", seed: Optional[int] = None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": "spec", "spec": name, "fidelity": fidelity}
        if seed is not None:
            payload["seed"] = seed
        return self._result(payload)

    def ping(self) -> str:
        return self._result({"kind": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self._result({"kind": "stats"})

    def shutdown(self) -> str:
        return self._result({"kind": "shutdown"})
