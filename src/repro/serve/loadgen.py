"""Closed-loop load generator for the serving front-end.

``concurrency`` worker threads each hold one connection and issue
``per_worker`` sequential requests; wall-clock throughput and latency
percentiles come from the union of all workers' samples. Shared by
``repro bench-serve`` and ``benchmarks/bench_serve.py`` — the benchmark
harness layers the coalescing-on/off comparison and the byte-identity
assertion on top.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .client import ServeClient

__all__ = ["LoadReport", "run_load", "audit_request", "run_request"]


@dataclass
class LoadReport:
    """Outcome of one closed-loop load run."""

    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    responses: List[Dict[str, Any]] = field(repr=False, default_factory=list)

    @property
    def coalesced_max(self) -> int:
        """Largest batch any response rode in."""
        sizes = [
            r.get("meta", {}).get("coalesced", 1)
            for r in self.responses if r.get("ok")
        ]
        return max(sizes, default=0)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "coalesced_max": self.coalesced_max,
        }


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def audit_request(graph: str, length: int, i: int) -> Dict[str, Any]:
    """A depth-chain audit request with per-``i`` distinct source values
    (so coalesced groups exercise the batched value merge, not the
    single-shared-row degenerate case)."""
    return {
        "kind": "audit",
        "graph": graph,
        "length": length,
        "values": {"src0": round(0.05 + 0.9 * ((i * 37) % 97) / 96.0, 6)},
    }


def run_request(graph: str, length: int, i: int) -> Dict[str, Any]:
    """A run request with per-``i`` distinct source values."""
    return {
        "kind": "run",
        "graph": graph,
        "length": length,
        "values": {"src0": round(0.05 + 0.9 * ((i * 53) % 89) / 88.0, 6)},
    }


def run_load(
    host: str,
    port: int,
    *,
    concurrency: int,
    per_worker: int,
    make_request: Callable[[int], Dict[str, Any]],
    timeout: float = 300.0,
    keep_responses: bool = True,
) -> LoadReport:
    """Drive the server with ``concurrency`` closed-loop workers.

    ``make_request(i)`` builds the *i*-th global request (workers
    interleave ``i`` so value diversity spreads across the fleet).
    """
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    responses: List[List[Dict[str, Any]]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def worker(w: int) -> None:
        with ServeClient(host, port, timeout=timeout) as client:
            barrier.wait()
            for j in range(per_worker):
                i = w * per_worker + j
                t0 = time.perf_counter()
                try:
                    response = client.request(make_request(i))
                except (ConnectionError, OSError):
                    errors[w] += 1
                    return
                latencies[w].append((time.perf_counter() - t0) * 1000.0)
                if not response.get("ok"):
                    errors[w] += 1
                elif keep_responses:
                    responses[w].append(response)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=timeout)
    duration = time.perf_counter() - started

    flat_latencies = [x for per in latencies for x in per]
    flat_responses = [r for per in responses for r in per]
    total = len(flat_latencies)
    return LoadReport(
        requests=total,
        errors=sum(errors),
        duration_s=duration,
        throughput_rps=total / duration if duration > 0 else 0.0,
        p50_ms=_percentile(flat_latencies, 50.0),
        p99_ms=_percentile(flat_latencies, 99.0),
        responses=flat_responses,
    )
