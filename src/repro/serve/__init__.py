"""repro.serve — async micro-batching front-end over the engine.

A long-lived asyncio TCP server (stdlib-only) that accepts graph-audit,
graph-run, and spec-shard requests as JSON lines and **coalesces**
concurrent requests that share a structural plan into a single batched
engine pass:

* Requests are grouped by :func:`~repro.serve.protocol.group_key` —
  (kind, graph, length, keep, encoding[, tolerance]) — which is exactly
  the set of parameters that must match for their configurations to be
  rows of one :func:`~repro.engine.executor.run_batch` /
  :func:`~repro.engine.executor.audit_batch` call.
* The first request of a group opens a micro-batch **window**
  (:attr:`~repro.serve.server.ServeConfig.window_ms`, 2–10 ms); the
  group flushes when the window closes or when it reaches
  :attr:`~repro.serve.server.ServeConfig.max_batch`, whichever first.
* The engine's row contract — *row i of a batched pass is bit-identical
  to evaluating configuration i alone* — makes coalescing invisible:
  a request served in a batch of 40 returns byte-identical payload to
  the same request served solo. :func:`~repro.serve.batcher.execute_group`
  is the single code path for both (solo is a group of one).
* Groups whose materialised footprint
  (:func:`~repro.bitstream.streaming.materialized_batch_bytes`) exceeds
  the memory budget shed load into the constant-memory tile scheduler
  (:func:`~repro.engine.streaming.run_streaming`), still bit-identical.
* The LRU plan cache and the content-addressed result store are shared
  across all connections: a store hit short-circuits the engine
  entirely.

See ``docs/architecture.md`` ("Serving") for the request lifecycle and
``benchmarks/bench_serve.py`` for the enforced ≥3× coalescing
throughput floor.
"""

from .batcher import execute_group
from .client import ServeClient
from .loadgen import LoadReport, run_load
from .protocol import (
    DEFAULT_PORT,
    ServeRequest,
    decode_line,
    encode_line,
    group_key,
    parse_request,
)
from .server import SCServer, ServeConfig, ServerThread, serve_forever

__all__ = [
    "DEFAULT_PORT",
    "ServeRequest",
    "parse_request",
    "encode_line",
    "decode_line",
    "group_key",
    "execute_group",
    "ServeConfig",
    "SCServer",
    "ServerThread",
    "serve_forever",
    "ServeClient",
    "LoadReport",
    "run_load",
]
