"""The asyncio micro-batching server.

One event loop owns all connections and the micro-batch state; engine
passes run on a small thread pool (the engine releases the GIL inside
numpy kernels, and the plan cache / executor memos are lock-protected,
so concurrent groups are safe). Per group-key the lifecycle is:

* first request **opens a window** (``loop.call_later(window_ms)``),
* subsequent requests with the same key pile into the group,
* the group **flushes** when the window timer fires or the group hits
  ``max_batch`` — whichever comes first — into one
  :func:`~repro.serve.batcher.execute_group` call,
* each caller's future resolves with its own split-out response.

Requests are fully validated *before* joining a group (unknown graph,
unknown source, out-of-range value, unknown keep name → an immediate
error response), so a malformed request can never fail the batched pass
its neighbours are riding in.

Observability: the server opens an obs session if none is active and
spools deltas to ``<store>/obs/serve-<pid>.jsonl`` after every group
(:func:`repro.obs.drain_spool`), so ``repro stats --store <root>``
aggregates serving counters across connections and server restarts.
Counters mirror into a plain dict served by the ``stats`` request —
drains never zero the client-visible numbers.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..engine.library import GRAPH_LIBRARY, build_graph
from ..engine.plan import ExecutionPlan, compile_graph
from ..engine.pool import shutdown_pool
from ..bitstream.streaming import DEFAULT_TILE_WORDS
from ..runner.scheduler import run_spec
from ..runner.store import ResultStore
from .batcher import DEFAULT_BUDGET_BYTES, execute_group
from .protocol import (
    _MAX_LINE,
    ENGINE_KINDS,
    ProtocolError,
    ServeRequest,
    decode_line,
    encode_line,
    group_key,
    parse_request,
)

__all__ = ["ServeConfig", "SCServer", "ServerThread", "serve_forever"]


@dataclass
class ServeConfig:
    """Tunables of one server instance.

    ``window_ms`` in the 2–10 ms band trades a small first-request
    latency bump for large coalescing wins under concurrency;
    ``window_ms=0`` with ``max_batch=1`` disables coalescing entirely
    (the benchmark's control arm). ``store_root`` enables both the
    content-addressed response cache and the obs spool directory.
    """

    host: str = "127.0.0.1"
    port: int = 0
    window_ms: float = 3.0
    max_batch: int = 32
    budget_bytes: int = DEFAULT_BUDGET_BYTES
    stream_jobs: int = 1
    tile_words: int = DEFAULT_TILE_WORDS
    store_root: Optional[str] = None
    workers: int = 1


class SCServer:
    """Micro-batching TCP front-end over the engine (see module doc)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "serve.requests": 0,
            "serve.responses": 0,
            "serve.errors": 0,
            "serve.groups": 0,
            "serve.coalesce.batched": 0,
            "serve.coalesce.solo": 0,
        }
        self._store = (
            ResultStore(self.config.store_root)
            if self.config.store_root is not None else None
        )
        self._spool = (
            str(self._store.root / "obs" / f"serve-{os.getpid()}.jsonl")
            if self._store is not None else None
        )
        self._graphs: Dict[str, object] = {}
        self._plans: Dict[str, ExecutionPlan] = {}
        # group key -> [(request, future, enqueue_perf_counter)]
        self._groups: Dict[tuple, List[Tuple[ServeRequest, asyncio.Future, float]]] = {}
        self._timers: Dict[tuple, asyncio.TimerHandle] = {}
        self._tasks: set = set()
        self._pending = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stopped = asyncio.Event()
        self._owns_obs = False
        self._started_at = time.perf_counter()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        if not obs.enabled():
            obs.start()
            self._owns_obs = True
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="serve-engine",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=_MAX_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.perf_counter()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        self._stopped.set()

    async def close(self) -> None:
        """Flush every open window, finish in-flight groups, tear down.

        Idempotent: a second ``close`` (double-``shutdown`` request, or a
        signal racing a client shutdown) finds every handle already
        ``None`` and returns quietly. Drains both execution runtimes —
        the engine thread pool and the persistent process pool
        (:func:`repro.engine.pool.shutdown_pool`, itself idempotent; the
        shed path's ``run_streaming(jobs=...)`` starts a fresh one lazily
        if the server keeps running)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for key in list(self._groups):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        shutdown_pool()
        self._drain_obs()
        if self._owns_obs:
            obs.stop()
            self._owns_obs = False

    # ------------------------------------------------------------------ #
    # request validation and plan resolution
    # ------------------------------------------------------------------ #

    def _plan_for(self, graph: str) -> ExecutionPlan:
        """The compiled plan for a library graph.

        Graph instances are cached per name: ``graph_signature`` keys
        transform identity by object, so a *fresh* ``build_graph`` call
        every request would defeat the shared LRU plan cache. One graph
        instance per name keeps every connection hitting the same
        (signature, level) entry.
        """
        plan = self._plans.get(graph)
        if plan is None:
            self._graphs[graph] = build_graph(graph)
            plan = compile_graph(self._graphs[graph])
            self._plans[graph] = plan
        return plan

    def _validate(self, req: ServeRequest) -> ExecutionPlan:
        if req.graph not in GRAPH_LIBRARY:
            raise ProtocolError(
                f"unknown graph {req.graph!r}; "
                f"available: {', '.join(sorted(GRAPH_LIBRARY))}"
            )
        plan = self._plan_for(req.graph)
        sources = set(plan.source_names)
        for name, value in req.values:
            if name not in sources:
                raise ProtocolError(
                    f"unknown source {name!r} for graph {req.graph!r}"
                )
            if not 0.0 <= value <= 1.0:
                raise ProtocolError(
                    f"value for {name!r} must lie in [0, 1], got {value}"
                )
        if req.keep is not None:
            nodes = set(plan.semantic_order)
            unknown = [k for k in req.keep if k not in nodes]
            if unknown:
                raise ProtocolError(
                    f"unknown keep nodes for {req.graph!r}: {unknown}"
                )
        return plan

    # ------------------------------------------------------------------ #
    # micro-batch machinery
    # ------------------------------------------------------------------ #

    def _enqueue(self, req: ServeRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = group_key(req)
        group = self._groups.setdefault(key, [])
        group.append((req, future, time.perf_counter()))
        self._pending += 1
        obs.gauge_set("serve.queue.depth", self._pending)
        if len(group) >= self.config.max_batch:
            self._flush(key)
        elif len(group) == 1:
            delay = max(0.0, self.config.window_ms) / 1000.0
            self._timers[key] = loop.call_later(delay, self._flush, key)
        return future

    def _flush(self, key: tuple) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        group = self._groups.pop(key, None)
        if not group:
            return
        task = asyncio.ensure_future(self._run_group(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_group(
        self, group: List[Tuple[ServeRequest, asyncio.Future, float]]
    ) -> None:
        loop = asyncio.get_running_loop()
        flushed_at = time.perf_counter()
        requests = [req for req, _, _ in group]
        for _, _, enqueued_at in group:
            obs.histogram_record(
                "serve.window.latency_ms", (flushed_at - enqueued_at) * 1000.0
            )
        plan = self._plans[requests[0].graph]
        try:
            responses = await loop.run_in_executor(
                self._pool,
                partial(
                    execute_group,
                    requests,
                    plan,
                    store=self._store,
                    budget_bytes=self.config.budget_bytes,
                    stream_jobs=self.config.stream_jobs,
                    tile_words=self.config.tile_words,
                ),
            )
        except Exception as exc:  # noqa: BLE001 — becomes the error payload
            responses = [
                {"id": req.id, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
                for req in requests
            ]
            self._count("serve.errors", len(requests))
        self._count("serve.groups", 1)
        if len(group) > 1:
            self._count("serve.coalesce.batched", len(group))
        else:
            self._count("serve.coalesce.solo", 1)
        self._pending -= len(group)
        obs.gauge_set("serve.queue.depth", self._pending)
        for (_, future, _), response in zip(group, responses):
            if not future.done():
                future.set_result(response)
        self._drain_obs()

    def _count(self, name: str, value: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        obs.counter_add(name, value)

    def _drain_obs(self) -> None:
        """Spool the obs delta so ``repro stats`` can aggregate serving
        metrics across connections/restarts. Only when this server owns
        the session — inside a caller's ``obs.observe()`` (tests), the
        caller keeps its in-memory trace intact."""
        if self._owns_obs and self._spool is not None:
            obs.drain_spool(self._spool)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    def _stats_payload(self) -> dict:
        return {
            "pid": os.getpid(),
            "uptime_s": time.perf_counter() - self._started_at,
            "queue_depth": self._pending,
            "window_ms": self.config.window_ms,
            "max_batch": self.config.max_batch,
            "counters": dict(self.counters),
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()

        async def respond(obj: dict) -> None:
            async with write_lock:
                writer.write(encode_line(obj))
                await writer.drain()
            self._count("serve.responses", 1)

        async def respond_when_done(future: asyncio.Future) -> None:
            await respond(await future)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await respond(
                        {"id": None, "ok": False, "error": "request line too long"}
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                rid = None
                try:
                    obj = decode_line(line)
                    if isinstance(obj, dict):
                        rid = obj.get("id")
                    req = parse_request(obj)
                    self._count("serve.requests", 1)
                    if req.kind == "ping":
                        await respond({"id": req.id, "ok": True, "result": "pong"})
                    elif req.kind == "stats":
                        await respond(
                            {"id": req.id, "ok": True, "result": self._stats_payload()}
                        )
                    elif req.kind == "shutdown":
                        await respond({"id": req.id, "ok": True, "result": "stopping"})
                        self.request_shutdown()
                    elif req.kind == "spec":
                        task = asyncio.ensure_future(self._serve_spec(req, respond))
                        self._tasks.add(task)
                        task.add_done_callback(self._tasks.discard)
                    else:  # run / audit — micro-batched
                        self._validate(req)
                        future = self._enqueue(req)
                        task = asyncio.ensure_future(respond_when_done(future))
                        self._tasks.add(task)
                        task.add_done_callback(self._tasks.discard)
                except ProtocolError as exc:
                    self._count("serve.errors", 1)
                    await respond({"id": rid, "ok": False, "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle connection handlers; finishing
            # normally keeps the shutdown path quiet.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _serve_spec(self, req: ServeRequest, respond) -> None:
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                self._pool,
                partial(
                    run_spec,
                    req.spec,
                    fidelity=req.fidelity,
                    seed=req.seed,
                    store=self._store,
                    log=None,
                ),
            )
        except Exception as exc:  # noqa: BLE001 — becomes the error payload
            self._count("serve.errors", 1)
            await respond(
                {"id": req.id, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )
            return
        await respond(
            {
                "id": req.id,
                "ok": True,
                "result": {
                    "spec": report.spec,
                    "fidelity": report.fidelity,
                    "seed": report.seed,
                    "shard_count": report.shard_count,
                    "cache_hits": report.cache_hits,
                    "computed": report.computed,
                },
                "meta": {"route": "spec", "coalesced": 1, "cached": report.all_from_cache},
            }
        )
        self._drain_obs()


async def _amain(config: ServeConfig, *, announce=print) -> None:
    server = SCServer(config)
    await server.start()
    announce(f"[serve] listening on {config.host}:{server.port}")
    try:
        await server.wait_stopped()
    finally:
        await server.close()


def serve_forever(config: Optional[ServeConfig] = None, *, announce=print) -> None:
    """Blocking entry point (the ``repro serve`` command)."""
    asyncio.run(_amain(config or ServeConfig(), announce=announce))


class ServerThread:
    """A server on a background thread — the harness tests, benchmarks,
    and the equivalence helpers use this to serve and call from one
    process.

    ::

        with ServerThread(ServeConfig(window_ms=5.0)) as srv:
            client = ServeClient(port=srv.port)
            ...
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.server: Optional[SCServer] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.port is None:
            raise RuntimeError("server did not start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced by __enter__
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        server = SCServer(self.config)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 — surfaced by __enter__
            self._error = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        try:
            await server.wait_stopped()
        finally:
            await server.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
