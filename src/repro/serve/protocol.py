"""Wire protocol of the serving front-end: JSON lines over TCP.

Each request is one JSON object on one line; each response is one JSON
object on one line, matched to its request by ``id``. Responses may
arrive out of request order on a pipelined connection (different
micro-batch groups complete at different times) — clients match by id.

Request kinds:

``run``
    Evaluate a library graph: ``{"id", "kind": "run", "graph",
    "length", "values": {source: float}, "keep": [node, ...],
    "bits": false, "encoding": "unipolar"}``. ``values`` overrides
    source values (unnamed sources keep their graph defaults);
    ``keep`` selects which nodes to return (default: all); ``bits``
    additionally returns the packed streams base64-encoded.
``audit``
    Correlation audit: ``{"id", "kind": "audit", "graph", "length",
    "values", "tolerance"}`` — per-operator SCC / value-error entries.
``spec``
    Run one registered experiment spec through the shared result store:
    ``{"id", "kind": "spec", "spec", "fidelity", "seed"}``.
``ping`` / ``stats`` / ``shutdown``
    Liveness, server counters, graceful stop.

Responses: ``{"id", "ok": true, "result": {...}, "meta": {"route",
"coalesced", "cached"}}`` or ``{"id", "ok": false, "error": "..."}``.
The ``result`` object is the *deterministic payload* — byte-identical
(as canonical JSON) whether the request was served solo, coalesced into
any batch, load-shed into the streaming backend, or answered from the
result store. ``meta`` carries the routing facts that legitimately vary.

The protocol deliberately has **no per-request seed**: the engine's
source RNGs are deterministic sequence generators (VDC/Halton/LFSR), so
every response is reproducible by construction, and the serving layer
stays inside the process-wide default-seed universe that the engine's
sequence caches are keyed for.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_PORT",
    "KINDS",
    "ENGINE_KINDS",
    "ProtocolError",
    "ServeRequest",
    "parse_request",
    "request_to_wire",
    "encode_line",
    "decode_line",
    "group_key",
    "canonical_result",
    "words_to_b64",
    "b64_to_words",
]

DEFAULT_PORT = 7453

KINDS = frozenset({"run", "audit", "spec", "ping", "stats", "shutdown"})
# Kinds that go through the engine and are eligible for coalescing.
ENGINE_KINDS = frozenset({"run", "audit"})

_MAX_LINE = 1 << 24  # 16 MiB — bounds bits=True responses for huge N.


class ProtocolError(ValueError):
    """A malformed or out-of-contract request line."""


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, validated request.

    ``values`` is stored as a sorted tuple of ``(source, value)`` pairs
    so requests are hashable and canonical — two requests spelling the
    same overrides in different key order are the same request.
    """

    id: str
    kind: str
    graph: Optional[str] = None
    length: int = 256
    values: Tuple[Tuple[str, float], ...] = ()
    keep: Optional[Tuple[str, ...]] = None
    bits: bool = False
    encoding: str = "unipolar"
    tolerance: float = 0.35
    spec: Optional[str] = None
    fidelity: str = "smoke"
    seed: Optional[int] = None

    @property
    def values_dict(self) -> Dict[str, float]:
        return dict(self.values)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(obj: Any) -> ServeRequest:
    """Validate one decoded request object into a :class:`ServeRequest`.

    Raises :class:`ProtocolError` with a client-facing message on any
    malformed field; validation happens *before* the request joins a
    micro-batch group, so one bad request can never poison the batched
    engine pass its neighbours ride in.
    """
    _require(isinstance(obj, dict), "request must be a JSON object")
    kind = obj.get("kind")
    _require(kind in KINDS, f"unknown kind {kind!r}; expected one of {sorted(KINDS)}")
    rid = obj.get("id")
    _require(
        isinstance(rid, str) and 0 < len(rid) <= 128,
        "id must be a non-empty string (max 128 chars)",
    )

    if kind in ("ping", "stats", "shutdown"):
        return ServeRequest(id=rid, kind=kind)

    if kind == "spec":
        spec = obj.get("spec")
        _require(isinstance(spec, str) and spec, "spec requests need a spec name")
        fidelity = obj.get("fidelity", "smoke")
        _require(isinstance(fidelity, str), "fidelity must be a string")
        seed = obj.get("seed")
        _require(seed is None or isinstance(seed, int), "seed must be an integer")
        return ServeRequest(id=rid, kind=kind, spec=spec, fidelity=fidelity, seed=seed)

    graph = obj.get("graph")
    _require(isinstance(graph, str) and graph, f"{kind} requests need a graph name")
    length = obj.get("length", 256)
    _require(
        isinstance(length, int) and not isinstance(length, bool) and length > 0,
        "length must be a positive integer",
    )
    raw_values = obj.get("values") or {}
    _require(isinstance(raw_values, dict), "values must be an object")
    values = []
    for name, value in raw_values.items():
        _require(isinstance(name, str), "source names must be strings")
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"value for {name!r} must be a number",
        )
        values.append((name, float(value)))
    keep = obj.get("keep")
    if keep is not None:
        _require(
            isinstance(keep, list) and all(isinstance(k, str) for k in keep),
            "keep must be a list of node names",
        )
        keep = tuple(keep)
    bits = obj.get("bits", False)
    _require(isinstance(bits, bool), "bits must be a boolean")
    encoding = obj.get("encoding", "unipolar")
    _require(
        encoding in ("unipolar", "bipolar"),
        "encoding must be 'unipolar' or 'bipolar'",
    )
    tolerance = obj.get("tolerance", 0.35)
    _require(
        isinstance(tolerance, (int, float)) and not isinstance(tolerance, bool)
        and tolerance >= 0,
        "tolerance must be a non-negative number",
    )
    return ServeRequest(
        id=rid,
        kind=kind,
        graph=graph,
        length=length,
        values=tuple(sorted(values)),
        keep=keep,
        bits=bits,
        encoding=encoding,
        tolerance=float(tolerance),
    )


def request_to_wire(req: ServeRequest) -> Dict[str, Any]:
    """The wire object a :class:`ServeRequest` round-trips through."""
    obj: Dict[str, Any] = {"id": req.id, "kind": req.kind}
    if req.kind == "spec":
        obj["spec"] = req.spec
        obj["fidelity"] = req.fidelity
        if req.seed is not None:
            obj["seed"] = req.seed
    elif req.kind in ENGINE_KINDS:
        obj["graph"] = req.graph
        obj["length"] = req.length
        if req.values:
            obj["values"] = dict(req.values)
        if req.keep is not None:
            obj["keep"] = list(req.keep)
        if req.bits:
            obj["bits"] = True
        if req.encoding != "unipolar":
            obj["encoding"] = req.encoding
        if req.kind == "audit":
            obj["tolerance"] = req.tolerance
    return obj


def encode_line(obj: Any) -> bytes:
    """One protocol line: canonical JSON (sorted keys, no spaces) + LF."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Any:
    """Decode one protocol line; raises :class:`ProtocolError`."""
    if len(line) > _MAX_LINE:
        raise ProtocolError(f"line exceeds {_MAX_LINE} bytes")
    try:
        return json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from exc


def group_key(req: ServeRequest) -> tuple:
    """The coalescing key — everything that must match for two requests
    to be rows of the same batched engine pass.

    ``values`` is deliberately absent (per-row configurations are the
    batch axis); ``bits`` too (it only changes per-request rendering).
    ``keep`` and ``encoding`` shape the pass itself; ``tolerance``
    parameterises audit broadcasting.
    """
    key = (req.kind, req.graph, req.length, req.keep, req.encoding)
    if req.kind == "audit":
        key += (req.tolerance,)
    return key


def canonical_result(result: Any) -> str:
    """The canonical JSON text of a response ``result`` payload.

    This is the string the byte-identity guarantee is stated over:
    coalesced, solo, streamed, and store-served responses to the same
    request produce the *same canonical text*.
    """
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def words_to_b64(words: np.ndarray) -> str:
    """One stream's packed ``(words,)`` uint64 row as base64 text."""
    return base64.b64encode(
        np.ascontiguousarray(words, dtype="<u8").tobytes()
    ).decode("ascii")


def b64_to_words(text: str) -> np.ndarray:
    """Inverse of :func:`words_to_b64`."""
    return np.frombuffer(base64.b64decode(text.encode("ascii")), dtype="<u8")
