"""The SC dataflow graph: evaluation and correlation auditing.

:class:`SCGraph` is a DAG of :mod:`repro.graph.nodes`. It can:

* ``run(length)`` — simulate every stream;
* ``audit(length)`` — measure, at every operator, the SCC its operands
  actually arrived with versus the SCC its function requires, plus each
  node's value error against exact float semantics (so correlation damage
  is attributed to the operator where it happens).

The audit output feeds :func:`repro.graph.autofix.autofix`, which splices
in the paper's circuits where requirements are violated.

Both entry points are *backend-routed*: by default they compile the graph
through :mod:`repro.engine` (levelized packed-domain execution, plan
cached by graph structure) and fall back to the node-by-node interpreter
only for node kinds the engine cannot schedule. ``backend="interpreter"``
forces the reference path; the two produce bit-identical streams and
float-identical audits (enforced by ``tests/test_engine.py``). Batched
multi-configuration sweeps should call the engine directly:
``engine.compile(g).run_batch(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..bitstream.metrics import scc
from ..exceptions import CircuitConfigurationError
from .nodes import Node, OpNode, SourceNode

__all__ = ["SCGraph", "AuditEntry", "GraphAudit"]


@dataclass(frozen=True)
class AuditEntry:
    """Correlation/accuracy report for one operator node."""

    node: str
    op: str
    required_scc: Optional[float]
    measured_scc: float
    expected_value: float
    measured_value: float
    violated: bool

    @property
    def value_error(self) -> float:
        return abs(self.measured_value - self.expected_value)


@dataclass
class GraphAudit:
    """Full-graph audit: per-op entries plus per-node values."""

    entries: List[AuditEntry]
    values: Dict[str, float]
    expected: Dict[str, float]

    @property
    def violations(self) -> List[AuditEntry]:
        return [e for e in self.entries if e.violated]

    def total_output_error(self, outputs: Sequence[str]) -> float:
        return float(
            np.mean([abs(self.values[o] - self.expected[o]) for o in outputs])
        )


class SCGraph:
    """A directed acyclic graph of SC stream computations."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(self, node: Node) -> Node:
        """Add any node; inputs must already exist (insertion order is
        topological by construction)."""
        if node.name in self._nodes:
            raise CircuitConfigurationError(f"duplicate node name {node.name!r}")
        for dep in node.inputs:
            if dep not in self._nodes:
                raise CircuitConfigurationError(
                    f"node {node.name!r} references unknown input {dep!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node

    def source(self, name: str, value: float, rng_spec: str = "vdc", **kw) -> Node:
        """Add a :class:`SourceNode`."""
        return self.add(SourceNode(name, value, rng_spec, **kw))

    def op(self, name: str, op: str, a: str, b: str) -> Node:
        """Add an :class:`OpNode` computing ``op(a, b)``."""
        return self.add(OpNode(name, op, (a, b)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_names(self) -> List[str]:
        return list(self._order)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def op_nodes(self) -> List[OpNode]:
        return [n for n in (self._nodes[k] for k in self._order) if isinstance(n, OpNode)]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    _BACKENDS = ("auto", "engine", "interpreter")

    def _engine_plan(self, backend: str):
        """Compile through the engine; ``None`` means fall back (only
        allowed under ``backend="auto"``)."""
        from ..engine import compile_graph  # deferred: engine imports this module
        from ..exceptions import GraphCompilationError

        try:
            return compile_graph(self)
        except GraphCompilationError:
            if backend == "engine":
                raise
            return None

    def _check_backend(self, backend: str) -> None:
        if backend not in self._BACKENDS:
            raise CircuitConfigurationError(
                f"unknown backend {backend!r}; expected one of {self._BACKENDS}"
            )

    def run(self, length: int = 256, *, backend: str = "auto") -> Dict[str, np.ndarray]:
        """Simulate all streams; returns name -> (length,) bit array.

        ``backend="auto"`` (default) compiles through :mod:`repro.engine`
        and runs in the packed word domain; ``"interpreter"`` forces the
        node-by-node reference path. Both return bit-identical streams.
        """
        check_positive_int(length, name="length")
        self._check_backend(backend)
        if backend != "interpreter":
            plan = self._engine_plan(backend)
            if plan is not None:
                return plan.run(length)
        streams: Dict[str, np.ndarray] = {}
        for name in self._order:
            node = self._nodes[name]
            inputs = [streams[dep] for dep in node.inputs]
            streams[name] = node.emit(inputs, length)
        return streams

    def expected_values(self) -> Dict[str, float]:
        """Exact float semantics for every node."""
        values: Dict[str, float] = {}
        for name in self._order:
            node = self._nodes[name]
            values[name] = node.expected([values[dep] for dep in node.inputs])
        return values

    def audit(
        self, length: int = 256, *, tolerance: float = 0.35, backend: str = "auto"
    ) -> GraphAudit:
        """Measure operand SCC at every operator against its requirement.

        An operator is *violated* when its operands' measured SCC is more
        than ``tolerance`` away from the required value (requirement
        ``None`` never violates).

        Under the default engine backend, per-op SCC and node values run
        through the packed overlap/popcount kernels
        (:mod:`repro.bitstream.metrics`) — the same integer counts, hence
        float-identical entries to the interpreter path.
        """
        self._check_backend(backend)
        if backend != "interpreter":
            plan = self._engine_plan(backend)
            if plan is not None:
                from ..engine.executor import audit as _engine_audit

                return _engine_audit(plan, length, tolerance=tolerance)
        streams = self.run(length, backend="interpreter")
        expected = self.expected_values()
        values = {k: float(v.mean()) for k, v in streams.items()}
        entries: List[AuditEntry] = []
        for node in self.op_nodes():
            a, b = node.inputs
            measured = scc(streams[a], streams[b])
            required = node.required_scc
            violated = required is not None and abs(measured - required) > tolerance
            entries.append(
                AuditEntry(
                    node=node.name,
                    op=node.op,
                    required_scc=required,
                    measured_scc=measured,
                    expected_value=expected[node.name],
                    measured_value=values[node.name],
                    violated=violated,
                )
            )
        return GraphAudit(entries=entries, values=values, expected=expected)
