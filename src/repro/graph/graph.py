"""The SC dataflow graph: evaluation and correlation auditing.

:class:`SCGraph` is a DAG of :mod:`repro.graph.nodes`. It can:

* ``run(length)`` — simulate every stream;
* ``audit(length)`` — measure, at every operator, the SCC its operands
  actually arrived with versus the SCC its function requires, plus each
  node's value error against exact float semantics (so correlation damage
  is attributed to the operator where it happens).

The audit output feeds :func:`repro.graph.autofix.autofix`, which splices
in the paper's circuits where requirements are violated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..bitstream.metrics import scc
from ..exceptions import CircuitConfigurationError
from .nodes import Node, OpNode, SourceNode

__all__ = ["SCGraph", "AuditEntry", "GraphAudit"]


@dataclass(frozen=True)
class AuditEntry:
    """Correlation/accuracy report for one operator node."""

    node: str
    op: str
    required_scc: Optional[float]
    measured_scc: float
    expected_value: float
    measured_value: float
    violated: bool

    @property
    def value_error(self) -> float:
        return abs(self.measured_value - self.expected_value)


@dataclass
class GraphAudit:
    """Full-graph audit: per-op entries plus per-node values."""

    entries: List[AuditEntry]
    values: Dict[str, float]
    expected: Dict[str, float]

    @property
    def violations(self) -> List[AuditEntry]:
        return [e for e in self.entries if e.violated]

    def total_output_error(self, outputs: Sequence[str]) -> float:
        return float(
            np.mean([abs(self.values[o] - self.expected[o]) for o in outputs])
        )


class SCGraph:
    """A directed acyclic graph of SC stream computations."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(self, node: Node) -> Node:
        """Add any node; inputs must already exist (insertion order is
        topological by construction)."""
        if node.name in self._nodes:
            raise CircuitConfigurationError(f"duplicate node name {node.name!r}")
        for dep in node.inputs:
            if dep not in self._nodes:
                raise CircuitConfigurationError(
                    f"node {node.name!r} references unknown input {dep!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node

    def source(self, name: str, value: float, rng_spec: str = "vdc", **kw) -> Node:
        """Add a :class:`SourceNode`."""
        return self.add(SourceNode(name, value, rng_spec, **kw))

    def op(self, name: str, op: str, a: str, b: str) -> Node:
        """Add an :class:`OpNode` computing ``op(a, b)``."""
        return self.add(OpNode(name, op, (a, b)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_names(self) -> List[str]:
        return list(self._order)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def op_nodes(self) -> List[OpNode]:
        return [n for n in (self._nodes[k] for k in self._order) if isinstance(n, OpNode)]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def run(self, length: int = 256) -> Dict[str, np.ndarray]:
        """Simulate all streams; returns name -> (length,) bit array."""
        check_positive_int(length, name="length")
        streams: Dict[str, np.ndarray] = {}
        for name in self._order:
            node = self._nodes[name]
            inputs = [streams[dep] for dep in node.inputs]
            streams[name] = node.emit(inputs, length)
        return streams

    def expected_values(self) -> Dict[str, float]:
        """Exact float semantics for every node."""
        values: Dict[str, float] = {}
        for name in self._order:
            node = self._nodes[name]
            values[name] = node.expected([values[dep] for dep in node.inputs])
        return values

    def audit(self, length: int = 256, *, tolerance: float = 0.35) -> GraphAudit:
        """Measure operand SCC at every operator against its requirement.

        An operator is *violated* when its operands' measured SCC is more
        than ``tolerance`` away from the required value (requirement
        ``None`` never violates).
        """
        streams = self.run(length)
        expected = self.expected_values()
        values = {k: float(v.mean()) for k, v in streams.items()}
        entries: List[AuditEntry] = []
        for node in self.op_nodes():
            a, b = node.inputs
            measured = scc(streams[a], streams[b])
            required = node.required_scc
            violated = required is not None and abs(measured - required) > tolerance
            entries.append(
                AuditEntry(
                    node=node.name,
                    op=node.op,
                    required_scc=required,
                    measured_scc=measured,
                    expected_value=expected[node.name],
                    measured_value=values[node.name],
                    violated=violated,
                )
            )
        return GraphAudit(entries=entries, values=values, expected=expected)
