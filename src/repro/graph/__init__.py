"""SC dataflow graphs with correlation auditing and automatic fix-up.

Build a computation as a DAG of sources and operators, then:

* :meth:`SCGraph.audit` — measure the SCC every operator's operands
  actually arrive with, against the SCC its function requires;
* :func:`autofix` — splice the paper's synchronizer / desynchronizer /
  decorrelator in front of every violated operator, and price the
  insertion with the hardware model.

Example::

    g = SCGraph()
    g.source("a", 0.9, "vdc")
    g.source("b", 0.5, "vdc")        # same RNG: correlated with "a"!
    g.op("prod", "mul", "a", "b")    # multiply requires SCC = 0
    report = autofix(g)
    print(report.insertions)          # ['prod: decorrelator(D=4)']
"""

from .autofix import AutofixReport, autofix
from .graph import AuditEntry, GraphAudit, SCGraph
from .nodes import OP_LIBRARY, Node, OpNode, SourceNode, TransformNode

__all__ = [
    "SCGraph",
    "GraphAudit",
    "AuditEntry",
    "Node",
    "SourceNode",
    "OpNode",
    "TransformNode",
    "OP_LIBRARY",
    "autofix",
    "AutofixReport",
]
