"""Automatic insertion of correlation manipulating circuits.

The paper's pitch (Section I): unlike RNG-level correlation control, the
synchronizer / desynchronizer / decorrelator "can be inserted at
appropriate points in the computation". :func:`autofix` mechanises the
choice of points: audit the graph, and in front of every operator whose
operands violate its correlation requirement splice the matching circuit —

* requirement **+1** -> :class:`~repro.core.synchronizer.Synchronizer`,
* requirement **-1** -> :class:`~repro.core.desynchronizer.Desynchronizer`,
* requirement **0**  -> :class:`~repro.core.decorrelator.Decorrelator`
  (fresh LFSR address pair per insertion).

The returned report prices the inserted hardware with the cost model and
re-audits, so the accuracy-vs-area trade is explicit.

Every audit in the loop routes through :mod:`repro.engine` by default:
the audit → splice → re-audit sequence compiles each distinct graph
structure once, and repeated audits of the same fixed graph are plan
cache hits (no recompilation, shared RNG sequence memos). Pass
``backend="interpreter"`` to force the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core import Decorrelator, Desynchronizer, Synchronizer
from ..hardware import Netlist, components, report
from ..rng import LFSR
from .graph import SCGraph
from .nodes import Node, OpNode, SourceNode, TransformNode

__all__ = ["AutofixReport", "autofix"]


@dataclass
class AutofixReport:
    """Outcome of one auto-fix pass."""

    fixed_graph: SCGraph
    insertions: List[str] = field(default_factory=list)
    added_area_um2: float = 0.0
    added_power_uw: float = 0.0
    error_before: Dict[str, float] = field(default_factory=dict)
    error_after: Dict[str, float] = field(default_factory=dict)

    @property
    def insertion_count(self) -> int:
        return len(self.insertions)

    def mean_error_before(self) -> float:
        return sum(self.error_before.values()) / max(1, len(self.error_before))

    def mean_error_after(self) -> float:
        return sum(self.error_after.values()) / max(1, len(self.error_after))


def _transform_for(required: float, depth: int, seed_counter: List[int]):
    """Build the manipulating circuit and its netlist for a requirement."""
    if required == 1.0:
        return Synchronizer(depth=depth), components.synchronizer(depth)
    if required == -1.0:
        return Desynchronizer(depth=depth), components.desynchronizer(depth)
    # requirement 0: decorrelator with fresh, distinct address RNG seeds.
    seed_counter[0] += 2
    deco = Decorrelator(
        LFSR(8, seed=(seed_counter[0] % 254) + 1),
        LFSR(8, seed=((seed_counter[0] + 97) % 254) + 1),
        depth=4,
    )
    return deco, components.decorrelator(4)


def _fix_once(
    graph: SCGraph,
    violated: set,
    depth: int,
    round_index: int,
    seed_counter: List[int],
) -> tuple:
    """One insertion pass; returns (fixed graph, insertions, netlist)."""
    fixed = SCGraph()
    netlist = Netlist("autofix")
    insertions: List[str] = []
    for name in graph.node_names:
        node = graph.node(name)
        if isinstance(node, OpNode) and node.name in violated:
            a, b = node.inputs
            transform, cost = _transform_for(node.required_scc, depth, seed_counter)
            shared: dict = {}
            fix_a = TransformNode(f"{name}.fix{round_index}_a", transform, (a, b), 0, shared)
            fix_b = TransformNode(f"{name}.fix{round_index}_b", transform, (a, b), 1, shared)
            fixed.add(fix_a)
            fixed.add(fix_b)
            fixed.add(OpNode(name, node.op, (fix_a.name, fix_b.name)))
            netlist = netlist + cost
            insertions.append(f"{name}: {transform.name}")
        elif isinstance(node, SourceNode):
            fixed.add(SourceNode(node.name, node.value, node.rng_spec, **node.rng_kwargs))
        elif isinstance(node, OpNode):
            fixed.add(OpNode(node.name, node.op, node.inputs))
        else:
            # Pre-existing transform nodes are carried over unchanged.
            fixed.add(node)
    return fixed, insertions, netlist


def autofix(
    graph: SCGraph,
    *,
    length: int = 256,
    tolerance: float = 0.35,
    depth: int = 1,
    iterations: int = 1,
    backend: str = "auto",
) -> AutofixReport:
    """Audit ``graph`` and return a rebuilt graph with circuits inserted.

    The input graph is not modified. Inserted transform nodes are named
    ``<op>.fix<round>_a`` / ``_b``. With ``iterations > 1`` the pass
    repeats on the fixed graph, *composing* additional stages in front of
    operators that are still violated — the paper's Section III-B series
    composition, applied only where the first stage wasn't enough.
    ``backend`` selects the audit evaluation path (see
    :meth:`SCGraph.audit`); the default engine route caches one
    execution plan per distinct graph structure across the loop.
    """
    audit_before = graph.audit(length, tolerance=tolerance, backend=backend)
    seed_counter = [0]
    total_netlist = Netlist("autofix")
    all_insertions: List[str] = []
    current = graph
    violated = {e.node for e in audit_before.violations}
    for round_index in range(max(1, iterations)):
        if not violated:
            break
        current, insertions, netlist = _fix_once(
            current, violated, depth, round_index, seed_counter
        )
        total_netlist = total_netlist + netlist
        all_insertions.extend(insertions)
        violated = {
            e.node
            for e in current.audit(length, tolerance=tolerance, backend=backend).violations
        }

    audit_after = current.audit(length, tolerance=tolerance, backend=backend)
    cost = report(total_netlist)
    return AutofixReport(
        fixed_graph=current,
        insertions=all_insertions,
        added_area_um2=cost.area_um2,
        added_power_uw=cost.power_uw,
        error_before={e.node: e.value_error for e in audit_before.entries},
        error_after={e.node: e.value_error for e in audit_after.entries},
    )
