"""Nodes of an SC dataflow graph.

A graph node produces one stochastic-number stream per evaluation. Three
kinds exist:

* :class:`SourceNode` — a D/S-converted input value, bound to an RNG spec
  (the graph-level analogue of Fig. 2g);
* :class:`OpNode` — an arithmetic circuit from :mod:`repro.arith` with its
  declared operand-correlation requirement;
* :class:`TransformNode` — a correlation manipulating circuit from
  :mod:`repro.core` splicing a *pair* of upstream streams (this is what
  the auto-fixer inserts).

Each node also knows its *nominal* float semantics (``expected``), so the
graph can compare every stream against the exact value it should carry —
which is how correlation damage is localised to the operator that caused
it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fsm import PairTransform
from ..exceptions import CircuitConfigurationError
from ..rng import make_rng

__all__ = ["Node", "SourceNode", "OpNode", "TransformNode", "OP_LIBRARY",
           "mux_select_bits", "mux_select_window"]


class Node:
    """Base graph node. Subclasses implement :meth:`emit` and
    :meth:`expected`."""

    def __init__(self, name: str, inputs: Sequence[str] = ()) -> None:
        if not name or not isinstance(name, str):
            raise CircuitConfigurationError(f"node name must be a non-empty string, got {name!r}")
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)

    def emit(self, input_bits: List[np.ndarray], length: int) -> np.ndarray:
        """Produce this node's stream(s) from its inputs' streams."""
        raise NotImplementedError

    def expected(self, input_values: List[float]) -> float:
        """The exact value this node should carry."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, inputs={list(self.inputs)})"


class SourceNode(Node):
    """A graph input: ``value`` converted through ``rng_spec``.

    Sources sharing an ``rng_spec`` string produce identical comparator
    sequences and hence maximally correlated streams — exactly the RNG
    amortisation trade-off the paper describes.
    """

    def __init__(self, name: str, value: float, rng_spec: str = "vdc", **rng_kwargs) -> None:
        super().__init__(name, ())
        if not 0.0 <= value <= 1.0:
            raise CircuitConfigurationError(
                f"source {name!r}: value must be in [0, 1], got {value}"
            )
        self.value = float(value)
        self.rng_spec = rng_spec
        self.rng_kwargs = dict(rng_kwargs)

    def emit(self, input_bits: List[np.ndarray], length: int) -> np.ndarray:
        rng = make_rng(self.rng_spec, **self.rng_kwargs)
        level = int(round(self.value * length))
        return (level > rng.sequence(length)).astype(np.uint8)

    def expected(self, input_values: List[float]) -> float:
        return self.value


# Operator registry: name -> (op factory, expected fn, required SCC).
# ``required`` is +1 / -1 / 0 / None (agnostic); the MUX adder's select
# requirement is handled inside its emit (fresh low-discrepancy select).
# ``expected`` is the scalar exact-float semantics the interpreter uses;
# ``expected_batch`` is the vectorised twin the execution engine applies
# to whole configuration batches (python min/max/abs reject arrays).
def mux_select_window(start: int, stop: int) -> np.ndarray:
    """Bits ``[start, stop)`` of the scaled adder's 0.5 select stream.

    Single source of truth: the interpreter's emit below, the engine's
    packed mux kernel (:mod:`repro.engine.executor`), and the streaming
    executor's per-tile select (:mod:`repro.engine.streaming`) all derive
    from this comparator, so no backend can drift on select bits. The
    window is value-exact against the full sequence (windowed RNG
    contract, :meth:`repro.rng.base.StreamRNG.sequence_window`).
    """
    select_rng = make_rng("halton7")
    window = select_rng.sequence_window(start, stop)
    return (window < select_rng.modulus // 2).astype(np.uint8)


def mux_select_bits(length: int) -> np.ndarray:
    """The scaled adder's 0.5 select stream (fresh low-discrepancy RNG):
    the first ``length`` bits of :func:`mux_select_window`."""
    return mux_select_window(0, length)


def _mux_add_emit(bits: List[np.ndarray], length: int) -> np.ndarray:
    select = mux_select_bits(length)
    return np.where(select == 1, bits[1], bits[0]).astype(np.uint8)


OP_LIBRARY: Dict[str, dict] = {
    "mul": {
        "emit": lambda bits, n: (bits[0] & bits[1]).astype(np.uint8),
        "expected": lambda v: v[0] * v[1],
        "expected_batch": lambda v: v[0] * v[1],
        "required": 0.0,
    },
    "scaled_add": {
        "emit": _mux_add_emit,
        "expected": lambda v: 0.5 * (v[0] + v[1]),
        "expected_batch": lambda v: 0.5 * (v[0] + v[1]),
        "required": None,  # data inputs may be arbitrarily correlated
    },
    "sat_add": {
        "emit": lambda bits, n: (bits[0] | bits[1]).astype(np.uint8),
        "expected": lambda v: min(1.0, v[0] + v[1]),
        "expected_batch": lambda v: np.minimum(1.0, v[0] + v[1]),
        "required": -1.0,
    },
    "sub": {
        "emit": lambda bits, n: (bits[0] ^ bits[1]).astype(np.uint8),
        "expected": lambda v: abs(v[0] - v[1]),
        "expected_batch": lambda v: np.abs(v[0] - v[1]),
        "required": 1.0,
    },
    "max": {
        "emit": lambda bits, n: (bits[0] | bits[1]).astype(np.uint8),
        "expected": lambda v: max(v[0], v[1]),
        "expected_batch": lambda v: np.maximum(v[0], v[1]),
        "required": 1.0,
    },
    "min": {
        "emit": lambda bits, n: (bits[0] & bits[1]).astype(np.uint8),
        "expected": lambda v: min(v[0], v[1]),
        "expected_batch": lambda v: np.minimum(v[0], v[1]),
        "required": 1.0,
    },
}


class OpNode(Node):
    """A two-input arithmetic operator from :data:`OP_LIBRARY`."""

    def __init__(self, name: str, op: str, inputs: Sequence[str]) -> None:
        if op not in OP_LIBRARY:
            raise CircuitConfigurationError(
                f"unknown op {op!r}; available: {', '.join(sorted(OP_LIBRARY))}"
            )
        if len(inputs) != 2:
            raise CircuitConfigurationError(
                f"op node {name!r} needs exactly 2 inputs, got {len(inputs)}"
            )
        super().__init__(name, inputs)
        self.op = op

    @property
    def required_scc(self) -> Optional[float]:
        return OP_LIBRARY[self.op]["required"]

    def emit(self, input_bits: List[np.ndarray], length: int) -> np.ndarray:
        return OP_LIBRARY[self.op]["emit"](input_bits, length)

    def expected(self, input_values: List[float]) -> float:
        return OP_LIBRARY[self.op]["expected"](input_values)


class TransformNode(Node):
    """A correlation manipulating circuit spliced onto a stream pair.

    Emits one of the transform's two outputs (``port`` 0 or 1); the
    auto-fixer inserts *one shared transform instance* and two
    TransformNodes referencing it, so both outputs come from the same
    simulated pass (as in hardware).
    """

    def __init__(
        self,
        name: str,
        transform: PairTransform,
        inputs: Sequence[str],
        port: int,
        shared_cache: Optional[dict] = None,
    ) -> None:
        if len(inputs) != 2:
            raise CircuitConfigurationError(
                f"transform node {name!r} needs exactly 2 inputs"
            )
        if port not in (0, 1):
            raise CircuitConfigurationError(f"port must be 0 or 1, got {port}")
        super().__init__(name, inputs)
        self.transform = transform
        self.port = port
        # Shared between the port-0 and port-1 nodes of one insertion so
        # the pair transform runs once per evaluation.
        self._cache = shared_cache if shared_cache is not None else {}

    def emit(self, input_bits: List[np.ndarray], length: int) -> np.ndarray:
        key = id(self.transform)
        token = (input_bits[0].tobytes(), input_bits[1].tobytes())
        cached = self._cache.get(key)
        if cached is None or cached[0] != token:
            out_x, out_y = self.transform._process_bits(
                input_bits[0].reshape(1, -1), input_bits[1].reshape(1, -1)
            )
            self._cache[key] = (token, (out_x[0], out_y[0]))
        return self._cache[key][1][self.port]

    def expected(self, input_values: List[float]) -> float:
        # Value-preserving by design: port p carries input p's value.
        return input_values[self.port]
