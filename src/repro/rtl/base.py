"""Cycle-accurate scalar ("RTL-level") circuit models.

The paper validates its cycle-level simulator "against RTL simulation
traces" (Section IV-A). This subpackage plays the same role for this
reproduction: every sequential circuit has a second, *independent*
implementation written the way the RTL is written — one explicit state
register, one ``step()`` per clock edge, literal case-by-case transitions
straight from the paper's figures. The test suite drives both
implementations with the same stimuli and requires bit-identical traces,
so a bug would have to be made twice, in two different styles, to
survive.

These models are intentionally scalar and slow; use the vectorised
circuits in :mod:`repro.core` / :mod:`repro.arith` for experiments.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Tuple

__all__ = ["RTLModule", "PairRTL", "StreamRTL"]


class RTLModule(abc.ABC):
    """A clocked module: ``reset()`` then one ``step()`` per cycle."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return all state elements to their power-on values."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PairRTL(RTLModule):
    """Two-in / two-out clocked module (synchronizer-shaped)."""

    @abc.abstractmethod
    def step(self, x: int, y: int) -> Tuple[int, int]:
        """Consume one input bit pair, emit one output bit pair."""

    def trace(self, xs: Iterable[int], ys: Iterable[int]) -> Tuple[List[int], List[int]]:
        """Reset, then run a whole stimulus; returns both output streams."""
        self.reset()
        out_x: List[int] = []
        out_y: List[int] = []
        for x, y in zip(xs, ys):
            ox, oy = self.step(int(x), int(y))
            out_x.append(ox)
            out_y.append(oy)
        return out_x, out_y


class StreamRTL(RTLModule):
    """One-in / one-out clocked module (shuffle-buffer-shaped)."""

    @abc.abstractmethod
    def step(self, x: int) -> int:
        """Consume one input bit, emit one output bit."""

    def trace(self, xs: Iterable[int]) -> List[int]:
        self.reset()
        return [self.step(int(x)) for x in xs]
