"""RTL-style desynchronizer: the literal 4-state cycle of paper Fig. 3b.

States (depth 1):

* ``E0`` — queue empty, next save takes X's bit ("Initial State");
* ``HX`` — holding a saved X 1 ("Save Paired X Bit");
* ``E1`` — queue empty, next save takes Y's bit;
* ``HY`` — holding a saved Y 1 ("Save Paired Y Bit").

The cycle ``E0 -> HX -> E1 -> HY -> E0`` alternates which stream donates
the saved bit, which is what keeps the two output streams' biases
symmetric. Deeper instances keep a FIFO of (owner-tagged) saved 1s whose
owners provably alternate, so the queue is represented by a count plus the
head owner (the same representation the vectorised model uses — see
``repro.core.desynchronizer`` for the argument).
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

from .._validation import check_positive_int
from .base import PairRTL

__all__ = ["DesynchronizerRTL"]

E0, HX, E1, HY = "E0", "HX", "E1", "HY"


class DesynchronizerRTL(PairRTL):
    """Cycle-accurate desynchronizer with inspectable state."""

    def __init__(self, depth: int = 1) -> None:
        self._depth = check_positive_int(depth, name="depth")
        self.reset()

    @property
    def depth(self) -> int:
        return self._depth

    def reset(self) -> None:
        self._queue = deque()   # owner tags of saved 1s: "x" / "y"
        self._next_save = "x"

    @property
    def state(self):
        if self._depth == 1:
            if not self._queue:
                return E0 if self._next_save == "x" else E1
            return HX if self._queue[0] == "x" else HY
        return (len(self._queue), tuple(self._queue))

    def step(self, x: int, y: int) -> Tuple[int, int]:
        if x not in (0, 1) or y not in (0, 1):
            raise ValueError(f"bits must be 0/1, got ({x}, {y})")
        if x != y:                          # In: X ^ Y == 1 / pass through
            return x, y
        if x == 1:                          # both 1: try to unpair
            if len(self._queue) < self._depth:
                saved = self._next_save
                self._queue.append(saved)
                self._next_save = "y" if saved == "x" else "x"
                if saved == "x":            # X's 1 enters the queue
                    return 0, 1
                return 1, 0                 # Y's 1 enters the queue
            return 1, 1                     # saturated: pass through
        # both 0: emit the head saved 1 if any
        if self._queue:
            owner = self._queue.popleft()
            if not self._queue:
                # Queue drained: the next save takes the opposite stream of
                # the emitted owner (the Fig. 3b cycle's alternation).
                self._next_save = "y" if owner == "x" else "x"
            # Otherwise the tail is unchanged, so the pending next_save
            # (opposite of the tail) is already correct — a pop from the
            # head must not disturb it, or the queue's strict X/Y
            # alternation breaks.
            if owner == "x":
                return 1, 0
            return 0, 1
        return 0, 0
