"""RTL-style synchronizer: the literal FSM of paper Fig. 3a.

For ``depth == 1`` the machine is written with the paper's three named
states (S0 initial, S1 "save unpaired X bit", S2 "save unpaired Y bit")
and one explicit transition per figure edge. For deeper save depths the
state generalises to a signed surplus counter, matching the description in
Section III-B ("adding an equal number of states to the left and right of
the FSM").
"""

from __future__ import annotations

from typing import Tuple

from .._validation import check_positive_int
from .base import PairRTL

__all__ = ["SynchronizerRTL"]

S0, S1, S2 = "S0", "S1", "S2"


class SynchronizerRTL(PairRTL):
    """Cycle-accurate synchronizer with inspectable state.

    Attributes:
        state: for depth 1, one of ``"S0"``, ``"S1"``, ``"S2"`` (paper
            Fig. 3a names); for deeper instances, the signed surplus count.
    """

    def __init__(self, depth: int = 1) -> None:
        self._depth = check_positive_int(depth, name="depth")
        self.reset()

    @property
    def depth(self) -> int:
        return self._depth

    def reset(self) -> None:
        self._surplus = 0  # saved X 1s minus saved Y 1s

    @property
    def state(self):
        if self._depth == 1:
            return {0: S0, 1: S1, -1: S2}[self._surplus]
        return self._surplus

    def step(self, x: int, y: int) -> Tuple[int, int]:
        if x not in (0, 1) or y not in (0, 1):
            raise ValueError(f"bits must be 0/1, got ({x}, {y})")
        if self._depth == 1:
            return self._step_fig3a(x, y)
        return self._step_general(x, y)

    # ------------------------------------------------------------------ #
    # The literal Fig. 3a machine (depth 1)
    # ------------------------------------------------------------------ #

    def _step_fig3a(self, x: int, y: int) -> Tuple[int, int]:
        state = self.state
        if state == S0:
            if x == y:                      # In: X == Y / Out: X, Y
                return x, y
            if x == 1:                      # save unpaired X bit
                self._surplus = 1
                return 0, 0
            self._surplus = -1              # save unpaired Y bit
            return 0, 0
        if state == S1:                     # holding an unpaired X 1
            if x == y:                      # In: X == Y / Out: X, Y
                return x, y
            if x == 0:                      # pair saved X bit with Y's 1
                self._surplus = 0
                return 1, 1
            return 1, 0                     # saturated: pass through
        # state == S2: holding an unpaired Y 1
        if x == y:
            return x, y
        if y == 0:                          # pair saved Y bit with X's 1
            self._surplus = 0
            return 1, 1
        return 0, 1                         # saturated: pass through

    # ------------------------------------------------------------------ #
    # Generalised depth (Section III-B)
    # ------------------------------------------------------------------ #

    def _step_general(self, x: int, y: int) -> Tuple[int, int]:
        s = self._surplus
        if x == y:
            return x, y
        if x == 1:  # X surplus 1 arrives
            if s < 0:
                self._surplus = s + 1
                return 1, 1
            if s < self._depth:
                self._surplus = s + 1
                return 0, 0
            return 1, 0
        # Y surplus 1 arrives
        if s > 0:
            self._surplus = s - 1
            return 1, 1
        if s > -self._depth:
            self._surplus = s - 1
            return 0, 0
        return 0, 1
