"""RTL-style models of the sequential datapath circuits.

Scalar step-per-clock implementations of the shuffle buffer (Fig. 4b),
CORDIV divider (Fig. 2e), the correlation-agnostic serial-adder and
counter-max baselines, and the tracking forecast memory. Each mirrors its
vectorised counterpart's observable behaviour exactly; the equivalence is
enforced by ``tests/test_rtl_equivalence.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..rng import StreamRNG
from .base import PairRTL, StreamRTL

__all__ = [
    "ShuffleBufferRTL",
    "CorDivRTL",
    "CAAdderRTL",
    "CAMaxRTL",
    "TFMRTL",
    "IsolatorRTL",
]


class ShuffleBufferRTL(StreamRTL):
    """Depth-``D`` shuffle buffer: emit-and-replace at a random address.

    Addresses are drawn from the same rescaled RNG sequence the vectorised
    model uses, one per cycle.
    """

    def __init__(self, rng: StreamRNG, depth: int = 4, *, init: str = "half_ones") -> None:
        self._rng = rng
        self._depth = check_positive_int(depth, name="depth")
        self._init = init
        self._addresses: Optional[np.ndarray] = None
        self.reset()

    def reset(self) -> None:
        if self._init == "zeros":
            self._memory = [0] * self._depth
        elif self._init == "ones":
            self._memory = [1] * self._depth
        else:
            self._memory = [1 if i < self._depth // 2 else 0 for i in range(self._depth)]
        self._cycle = 0

    def _address(self) -> int:
        # Lazily fetch a long address sequence; extend if the trace is long.
        if self._addresses is None or self._cycle >= self._addresses.size:
            need = max(1024, 2 * (self._cycle + 1))
            self._addresses = self._rng.integers(need, self._depth)
        return int(self._addresses[self._cycle])

    def step(self, x: int) -> int:
        slot = self._address()
        out = self._memory[slot]
        self._memory[slot] = int(x)
        self._cycle += 1
        return out


class CorDivRTL(PairRTL):
    """CORDIV: mux steered by the divisor, D flip-flop holding the last
    in-divisor quotient bit."""

    def __init__(self, initial: int = 0) -> None:
        if initial not in (0, 1):
            raise ValueError(f"initial must be 0 or 1, got {initial}")
        self._initial = initial
        self.reset()

    def reset(self) -> None:
        self._held = self._initial

    def step(self, x: int, y: int) -> Tuple[int, int]:
        """Returns ``(quotient_bit, 0)`` (single-output circuit)."""
        if y == 1:
            self._held = int(x)
            return int(x), 0
        return self._held, 0


class CAAdderRTL(PairRTL):
    """Correlation-agnostic adder = serial full adder.

    ``sum = x ^ y ^ carry``... except the roles are swapped relative to a
    textbook FA: the *majority* is emitted as the stream bit (it carries
    weight 2 = one output 1) and the XOR is held as the new carry.
    """

    def reset(self) -> None:
        self._carry = 0

    def __init__(self) -> None:
        self.reset()

    def step(self, x: int, y: int) -> Tuple[int, int]:
        total = int(x) + int(y) + self._carry
        emit = 1 if total >= 2 else 0
        self._carry = total - 2 * emit
        return emit, 0


class CAMaxRTL(PairRTL):
    """Correlation-agnostic max: saturating up/down counter steering a mux."""

    def __init__(self, counter_bits: int = 6) -> None:
        self._bits = check_positive_int(counter_bits, name="counter_bits")
        self._limit = (1 << self._bits) - 1
        self._mid = 1 << (self._bits - 1)
        self.reset()

    def reset(self) -> None:
        self._counter = self._mid

    def step(self, x: int, y: int) -> Tuple[int, int]:
        out = int(x) if self._counter >= self._mid else int(y)
        self._counter = min(self._limit, max(0, self._counter + int(x) - int(y)))
        return out, 0


class TFMRTL(StreamRTL):
    """Tracking forecast memory: shift-based EMA register + comparator."""

    def __init__(
        self,
        rng: StreamRNG,
        bits: int = 8,
        *,
        shift: int = 3,
        initial: float = 0.5,
    ) -> None:
        self._rng = rng
        self._bits = check_positive_int(bits, name="bits")
        self._shift = check_non_negative_int(shift, name="shift")
        self._max = (1 << self._bits) - 1
        self._initial = int(round(initial * self._max))
        self._rand: Optional[np.ndarray] = None
        self.reset()

    def reset(self) -> None:
        self._estimate = self._initial
        self._cycle = 0

    def _random(self) -> int:
        if self._rand is None or self._cycle >= self._rand.size:
            need = max(1024, 2 * (self._cycle + 1))
            seq = self._rng.sequence(need)
            self._rand = (seq * (self._max + 1)) // self._rng.modulus
        return int(self._rand[self._cycle])

    def step(self, x: int) -> int:
        out = 1 if self._random() < self._estimate else 0
        if x == 1:
            delta = (self._max - self._estimate) >> self._shift
            if delta == 0 and self._estimate < self._max:
                delta = 1
        else:
            delta = -(self._estimate >> self._shift)
            if delta == 0 and self._estimate > 0:
                delta = -1
        self._estimate += delta
        self._cycle += 1
        return out


class IsolatorRTL(StreamRTL):
    """A chain of D flip-flops."""

    def __init__(self, delay: int = 1, *, fill: int = 0) -> None:
        self._delay = check_positive_int(delay, name="delay")
        if fill not in (0, 1):
            raise ValueError(f"fill must be 0 or 1, got {fill}")
        self._fill = fill
        self.reset()

    def reset(self) -> None:
        self._pipe = [self._fill] * self._delay

    def step(self, x: int) -> int:
        out = self._pipe[-1]
        self._pipe = [int(x)] + self._pipe[:-1]
        return out
