"""Cycle-accurate scalar (RTL-style) reference models.

Independent second implementations of every sequential circuit, written
as explicit per-clock state machines with the paper's state names. The
test suite proves them trace-equivalent to the vectorised circuits —
the reproduction's analogue of the paper's "verified against RTL
simulation traces".
"""

from .base import PairRTL, RTLModule, StreamRTL
from .datapath_rtl import (
    CAAdderRTL,
    CAMaxRTL,
    CorDivRTL,
    IsolatorRTL,
    ShuffleBufferRTL,
    TFMRTL,
)
from .desynchronizer_rtl import DesynchronizerRTL
from .synchronizer_rtl import SynchronizerRTL

__all__ = [
    "RTLModule",
    "PairRTL",
    "StreamRTL",
    "SynchronizerRTL",
    "DesynchronizerRTL",
    "ShuffleBufferRTL",
    "CorDivRTL",
    "CAAdderRTL",
    "CAMaxRTL",
    "TFMRTL",
    "IsolatorRTL",
]
