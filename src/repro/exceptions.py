"""Exception hierarchy for the :mod:`repro` stochastic-computing library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EncodingError(ReproError, ValueError):
    """A value or bitstream is invalid for the requested SN encoding."""


class LengthMismatchError(ReproError, ValueError):
    """Two bitstreams that must share a length do not."""


class RNGConfigurationError(ReproError, ValueError):
    """A random-number generator was configured with invalid parameters."""


class CircuitConfigurationError(ReproError, ValueError):
    """A circuit (FSM, buffer, converter, ...) has invalid parameters."""


class HardwareModelError(ReproError, ValueError):
    """The hardware cost model was asked for something it cannot provide."""


class PipelineError(ReproError, ValueError):
    """The image-processing pipeline was configured or driven incorrectly."""


class GraphCompilationError(ReproError, ValueError):
    """An SC dataflow graph cannot be compiled by the execution engine
    (unknown node kind, malformed batch overrides, ...). ``SCGraph.run``
    falls back to the interpreter when it catches this under
    ``backend="auto"``."""
