"""Domain converters between binary-encoded and stochastic representations.

* :class:`DigitalToStochastic` — comparator D/S converter (paper Fig. 2g).
* :class:`StochasticToDigital` — counter S/D converter (paper Fig. 2f).
* :class:`AccumulativeParallelCounter` — exact parallel-sum converter [3].
* :class:`Regenerator` — S/D + D/S correlation reset (the expensive
  baseline the paper's circuits replace).
"""

from .apc import AccumulativeParallelCounter
from .d2s import DigitalToStochastic
from .regenerator import Regenerator
from .s2d import StochasticToDigital

__all__ = [
    "DigitalToStochastic",
    "StochasticToDigital",
    "AccumulativeParallelCounter",
    "Regenerator",
]
