"""Digital-to-stochastic (D/S) converter — paper Fig. 2g.

The D/S converter holds a binary input ``x`` in ``[0, N]`` and compares it
each cycle against the RNG output ``r_t``; the stream bit is
``x > r_t``. If the RNG emits every residue ``0..N-1`` exactly once per
period (counter, VDC, full-period Halton), the generated SN has *exactly*
``x`` ones — no sampling noise, only quantisation.

Correlation control happens here: converting two values through converters
that share one RNG yields SCC = +1; through independent low-discrepancy
RNGs yields SCC ~ 0 (paper Section II-B).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..bitstream import Bitstream, BitstreamBatch, Encoding
from ..exceptions import EncodingError
from ..rng import StreamRNG

__all__ = ["DigitalToStochastic"]


class DigitalToStochastic:
    """Comparator-based D/S converter bound to one RNG.

    Args:
        rng: the random source driving the comparator.
        length: default stream length ``N`` (defaults to ``rng.modulus``,
            one full RNG period).
    """

    def __init__(self, rng: StreamRNG, length: int = None) -> None:
        self._rng = rng
        self._length = check_positive_int(
            rng.modulus if length is None else length, name="length"
        )

    @property
    def rng(self) -> StreamRNG:
        return self._rng

    @property
    def length(self) -> int:
        return self._length

    def _check_level(self, x: int) -> int:
        if not 0 <= x <= self._length:
            raise EncodingError(
                f"binary input must lie in [0, {self._length}], got {x}"
            )
        return int(x)

    def convert(self, x: int, *, encoding: Union[Encoding, str] = Encoding.UNIPOLAR) -> Bitstream:
        """Convert one binary level ``x`` (stream value ``x / N``)."""
        x = self._check_level(x)
        seq = self._rng.sequence(self._length)
        bits = (x > seq).astype(np.uint8)
        return Bitstream(bits, encoding)

    def convert_value(
        self, value: float, *, encoding: Union[Encoding, str] = Encoding.UNIPOLAR
    ) -> Bitstream:
        """Convert a real value in the encoding's range (quantised to N levels)."""
        enc = Encoding.coerce(encoding)
        lo, hi = enc.value_range
        if not lo <= value <= hi:
            raise EncodingError(f"value {value} outside [{lo}, {hi}] for {enc.value}")
        probability = value if enc is Encoding.UNIPOLAR else (value + 1.0) / 2.0
        return self.convert(int(round(probability * self._length)), encoding=enc)

    def convert_batch(
        self,
        levels: Sequence[int],
        *,
        encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    ) -> BitstreamBatch:
        """Convert many binary levels through this converter's single RNG.

        All resulting streams share the RNG sequence and are therefore
        maximally positively correlated with one another (SCC = +1 whenever
        neither stream is constant).
        """
        levels = np.asarray(levels, dtype=np.int64)
        if levels.ndim != 1:
            raise EncodingError("convert_batch expects a 1-D sequence of levels")
        if levels.size and (levels.min() < 0 or levels.max() > self._length):
            raise EncodingError(
                f"binary inputs must lie in [0, {self._length}]; "
                f"got range [{levels.min()}, {levels.max()}]"
            )
        seq = self._rng.sequence(self._length)
        bits = (levels[:, None] > seq[None, :]).astype(np.uint8)
        return BitstreamBatch(bits, encoding)

    def convert_values_batch(
        self,
        values: Sequence[float],
        *,
        encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    ) -> BitstreamBatch:
        """Vectorised :meth:`convert_value` (shared RNG, hence correlated)."""
        enc = Encoding.coerce(encoding)
        values = np.asarray(values, dtype=np.float64)
        lo, hi = enc.value_range
        if values.size and (values.min() < lo or values.max() > hi):
            raise EncodingError(f"values outside [{lo}, {hi}] for {enc.value}")
        probs = values if enc is Encoding.UNIPOLAR else (values + 1.0) / 2.0
        levels = np.rint(probs * self._length).astype(np.int64)
        return self.convert_batch(levels, encoding=enc)
