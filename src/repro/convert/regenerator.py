"""Regeneration: the S/D -> D/S correlation-reset baseline.

Regeneration (Ting & Hayes, paper reference [10]; Section II-B) converts an
SN back to binary with an S/D counter and immediately re-encodes it with a
D/S converter. This *resets* correlation:

* regenerating a group of SNs through converters sharing one RNG makes the
  group maximally positively correlated (what the image pipeline's
  "SC Regeneration" variant does before the edge detector);
* regenerating through independent RNGs decorrelates the group.

Regeneration is exact in value (counting loses nothing) but expensive: a
full S/D + D/S pair per stream plus the RNG, and a full-stream latency
bubble (the S/D must finish before the D/S can start — we model the
functional behaviour and charge the hardware cost in
:mod:`repro.hardware.components`).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..bitstream import Bitstream, BitstreamBatch
from ..exceptions import CircuitConfigurationError
from ..rng import StreamRNG
from .d2s import DigitalToStochastic
from .s2d import StochasticToDigital

__all__ = ["Regenerator"]


class Regenerator:
    """S/D + D/S regeneration unit.

    Args:
        rng: RNG used by the re-encoding D/S converter. Pass the *same*
            instance (or same-spec RNGs) to several calls to produce
            positively correlated outputs.
    """

    def __init__(self, rng: StreamRNG) -> None:
        self._rng = rng
        self._s2d = StochasticToDigital()

    @property
    def rng(self) -> StreamRNG:
        return self._rng

    def regenerate(self, stream: Bitstream) -> Bitstream:
        """Re-encode one stream; value is preserved exactly (same 1-count)
        whenever the RNG covers each residue once per period."""
        count = self._s2d.convert(stream)
        d2s = DigitalToStochastic(self._rng, length=stream.length)
        return d2s.convert(count, encoding=stream.encoding)

    def regenerate_batch(self, batch: BitstreamBatch) -> BitstreamBatch:
        """Re-encode a batch through the shared RNG.

        All outputs are driven by the same comparator sequence, so the
        regenerated group is maximally positively correlated — exactly the
        behaviour the image pipeline's regeneration variant relies on to
        feed the correlation-hungry edge detector.
        """
        counts = self._s2d.convert_batch(batch)
        d2s = DigitalToStochastic(self._rng, length=batch.length)
        return d2s.convert_batch(counts, encoding=batch.encoding)

    @staticmethod
    def regenerate_independent(
        streams: Sequence[Bitstream], rngs: Sequence[StreamRNG]
    ) -> List[Bitstream]:
        """Re-encode each stream with its own RNG (decorrelating variant)."""
        if len(streams) != len(rngs):
            raise CircuitConfigurationError(
                f"need one RNG per stream: {len(streams)} streams, {len(rngs)} RNGs"
            )
        s2d = StochasticToDigital()
        out = []
        for stream, rng in zip(streams, rngs):
            d2s = DigitalToStochastic(rng, length=stream.length)
            out.append(d2s.convert(s2d.convert(stream), encoding=stream.encoding))
        return out
