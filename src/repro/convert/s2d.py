"""Stochastic-to-digital (S/D) converter — paper Fig. 2f.

A binary up-counter that increments on every 1 in the stream; after ``N``
cycles the count *is* the binary value ``B`` with ``p = B / N``. This is
exact (counting loses nothing) but expensive in hardware: the paper notes
S/D and D/S converters cost one to two orders of magnitude more power and
area than SC arithmetic gates, which is precisely why mid-stream
regeneration (S/D + D/S) is worth replacing with the paper's correlation
manipulating circuits.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..bitstream import Bitstream, BitstreamBatch

__all__ = ["StochasticToDigital"]


class StochasticToDigital:
    """Counter-based S/D converter."""

    def convert(self, stream: Union[Bitstream, np.ndarray]) -> int:
        """Count the 1s of a single stream: the binary magnitude ``B``."""
        bits = stream.bits if isinstance(stream, Bitstream) else np.asarray(stream)
        return int(bits.sum())

    def convert_batch(self, batch: Union[BitstreamBatch, np.ndarray]) -> np.ndarray:
        """Per-stream 1-counts for a batch."""
        bits = batch.bits if isinstance(batch, BitstreamBatch) else np.asarray(batch)
        return bits.sum(axis=-1, dtype=np.int64)

    def to_value(self, stream: Union[Bitstream, np.ndarray]) -> float:
        """Unipolar value of the stream (``B / N``)."""
        bits = stream.bits if isinstance(stream, Bitstream) else np.asarray(stream)
        return float(bits.mean())
