"""Accumulative parallel counter (APC) — paper reference [3].

An APC sums *k* parallel stream bits per cycle into a binary accumulator.
After ``N`` cycles the accumulator holds ``sum_i B_i`` exactly — an
unscaled, higher-precision addition that sidesteps the MUX adder's 1/k
scale factor and its quantisation loss. The paper cites APCs as the
standard way to avoid "fatal levels of precision reduction".

The APC is correlation-agnostic: it counts 1s regardless of how the input
streams align.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..bitstream import BitstreamBatch

__all__ = ["AccumulativeParallelCounter"]


class AccumulativeParallelCounter:
    """Binary accumulator over parallel stochastic inputs."""

    def accumulate(self, batch: Union[BitstreamBatch, np.ndarray]) -> int:
        """Exact sum of 1s across all streams and cycles."""
        bits = batch.bits if isinstance(batch, BitstreamBatch) else np.asarray(batch)
        return int(bits.sum())

    def accumulate_value(self, batch: Union[BitstreamBatch, np.ndarray]) -> float:
        """The unscaled sum of stream values: ``sum_i p_i``."""
        bits = batch.bits if isinstance(batch, BitstreamBatch) else np.asarray(batch)
        if bits.ndim != 2:
            raise ValueError("accumulate_value expects a (k, N) batch")
        return float(bits.sum() / bits.shape[-1])

    def timeline(self, batch: Union[BitstreamBatch, np.ndarray]) -> np.ndarray:
        """Cycle-by-cycle accumulator contents (for RTL-level checks)."""
        bits = batch.bits if isinstance(batch, BitstreamBatch) else np.asarray(batch)
        if bits.ndim != 2:
            raise ValueError("timeline expects a (k, N) batch")
        return np.cumsum(bits.sum(axis=0, dtype=np.int64))
