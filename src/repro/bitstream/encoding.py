"""Stochastic-number encodings.

A stochastic number (SN) is a bitstream whose *value* is determined by the
fraction of 1s it contains. Two encodings are standard (paper Section II-A):

* **Unipolar** — 1s weigh +1, 0s weigh 0. A stream with ``k`` ones out of
  ``n`` bits encodes ``k / n`` in ``[0, 1]``.
* **Bipolar** — 1s weigh +1, 0s weigh -1. The same stream encodes
  ``(2k - n) / n`` in ``[-1, +1]``.

This module centralises the value maps so that every circuit in the library
agrees on them.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from ..exceptions import EncodingError


class Encoding(enum.Enum):
    """The two standard SN encodings."""

    UNIPOLAR = "unipolar"
    BIPOLAR = "bipolar"

    @classmethod
    def coerce(cls, value: Union["Encoding", str]) -> "Encoding":
        """Accept either an :class:`Encoding` member or its string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            names = ", ".join(m.value for m in cls)
            raise EncodingError(f"unknown encoding {value!r}; expected one of: {names}") from exc

    @property
    def value_range(self) -> tuple:
        """The closed interval of representable values."""
        if self is Encoding.UNIPOLAR:
            return (0.0, 1.0)
        return (-1.0, 1.0)


def ones_to_value(ones: np.ndarray, length: int, encoding: Encoding) -> np.ndarray:
    """Map 1-counts to encoded values.

    Args:
        ones: array (or scalar) of 1-counts.
        length: bitstream length ``n``.
        encoding: which SN encoding to use.

    Returns:
        The encoded value(s) as ``float64``.
    """
    ones = np.asarray(ones, dtype=np.float64)
    if length <= 0:
        raise EncodingError(f"bitstream length must be positive, got {length}")
    fraction = ones / float(length)
    if encoding is Encoding.UNIPOLAR:
        return fraction
    return 2.0 * fraction - 1.0


def value_to_ones(value: np.ndarray, length: int, encoding: Encoding) -> np.ndarray:
    """Map encoded values to the nearest representable 1-count.

    Rounds half away from the nearest even toward the closest representable
    probability; the inverse of :func:`ones_to_value` up to quantization.

    Raises:
        EncodingError: if any value is outside the encoding's range.
    """
    value = np.asarray(value, dtype=np.float64)
    lo, hi = encoding.value_range
    if np.any(value < lo) or np.any(value > hi):
        raise EncodingError(
            f"value out of range for {encoding.value}: expected [{lo}, {hi}]"
        )
    if encoding is Encoding.UNIPOLAR:
        fraction = value
    else:
        fraction = (value + 1.0) / 2.0
    return np.rint(fraction * length).astype(np.int64)


def probability_of(value: float, encoding: Encoding) -> float:
    """Return the probability of a 1 for an SN with the given encoded value."""
    lo, hi = encoding.value_range
    if not lo <= value <= hi:
        raise EncodingError(
            f"value {value} out of range for {encoding.value}: expected [{lo}, {hi}]"
        )
    if encoding is Encoding.UNIPOLAR:
        return float(value)
    return (float(value) + 1.0) / 2.0
