"""Deterministic and reference stream generators.

These builders create streams with *known, exact* structure. They are used
by tests and by the exhaustive experiment sweeps; streams generated from
hardware RNG models live in :mod:`repro.convert` (the D/S converter).

Three canonical shapes:

* :func:`exact_stream` — exactly ``k`` ones placed either evenly
  (low-discrepancy, the shape a VDC-driven D/S converter produces) or as a
  leading burst (the worst case for FSM-based circuits).
* :func:`bernoulli_stream` — i.i.d. random bits from a seeded numpy
  generator (a software "true random" SN source).
* :func:`correlated_pair` — a pair of streams with an exact target SCC of
  +1, -1, or 0 and exact values, used to drive Table I and the Fig. 2
  accuracy sweeps without relying on RNG quality.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .._validation import check_positive_int, check_probability
from ..exceptions import EncodingError
from .bitstream import Bitstream
from .encoding import Encoding

__all__ = [
    "exact_stream",
    "bernoulli_stream",
    "correlated_pair",
    "rotations",
]


def exact_stream(
    value: float,
    length: int,
    *,
    style: str = "even",
    encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
) -> Bitstream:
    """Create a stream with an exact 1-count.

    Args:
        value: target value under ``encoding`` (quantised to ``length``).
        length: stream length N.
        style: ``"even"`` spreads 1s uniformly (the pattern produced by a
            D/S converter driven by a perfectly uniform ramp); ``"burst"``
            front-loads all 1s; ``"tail"`` back-loads them.
        encoding: SN encoding of the result.

    Returns:
        A :class:`Bitstream` whose value is exactly the quantised target.
    """
    length = check_positive_int(length, name="length")
    encoding = Encoding.coerce(encoding)
    lo, hi = encoding.value_range
    if not lo <= value <= hi:
        raise EncodingError(f"value {value} outside [{lo}, {hi}] for {encoding.value}")
    if encoding is Encoding.BIPOLAR:
        probability = (value + 1.0) / 2.0
    else:
        probability = value
    k = int(round(probability * length))
    bits = np.zeros(length, dtype=np.uint8)
    if style == "even":
        if k:
            # Evenly spaced: bit t is 1 iff floor((t+1)*k/N) > floor(t*k/N).
            t = np.arange(length + 1, dtype=np.int64)
            marks = (t * k) // length
            bits = (marks[1:] > marks[:-1]).astype(np.uint8)
    elif style == "burst":
        bits[:k] = 1
    elif style == "tail":
        bits[length - k :] = 1
    else:
        raise ValueError(f"unknown style {style!r}; expected even/burst/tail")
    return Bitstream(bits, encoding)


def bernoulli_stream(
    probability: float,
    length: int,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Bitstream:
    """An i.i.d. Bernoulli stream (software random SN source)."""
    probability = check_probability(probability)
    length = check_positive_int(length, name="length")
    if rng is None:
        rng = np.random.default_rng(seed)
    bits = (rng.random(length) < probability).astype(np.uint8)
    return Bitstream(bits)


def correlated_pair(
    px: float,
    py: float,
    length: int,
    *,
    scc: int,
    seed: Optional[int] = None,
) -> Tuple[Bitstream, Bitstream]:
    """Build a pair of unipolar streams with an exact target correlation.

    Args:
        px, py: target values (quantised to ``length``).
        length: stream length N.
        scc: +1 (maximal overlap of 1s), -1 (minimal overlap), or 0
            (the 1s of ``y`` are spread independently of ``x`` by an evenly
            interleaved construction).
        seed: used only for ``scc=0`` to pick a random relative placement.

    Returns:
        ``(x, y)`` with exactly ``round(px*N)`` / ``round(py*N)`` ones.

    The +1 construction nests the smaller 1-set inside the larger; the -1
    construction makes the 1-sets as disjoint as possible; both achieve the
    mathematical extreme of the SCC metric for the given values.
    """
    length = check_positive_int(length, name="length")
    kx = int(round(check_probability(px, name="px") * length))
    ky = int(round(check_probability(py, name="py") * length))
    x = np.zeros(length, dtype=np.uint8)
    y = np.zeros(length, dtype=np.uint8)
    if scc == 1:
        x[:kx] = 1
        y[:ky] = 1
    elif scc == -1:
        x[:kx] = 1
        overlap_free = min(ky, length - kx)
        y[length - overlap_free :] = 1
        if ky > overlap_free:  # forced overlap when px + py > 1
            y[: ky - overlap_free] = 1
    elif scc == 0:
        # Spread x evenly; place y's ones by sampling positions with a
        # stratified permutation so that overlap ~ kx*ky/N in expectation.
        x = exact_stream(kx / length, length).bits.copy()
        rng = np.random.default_rng(seed)
        positions = rng.permutation(length)[:ky]
        y[positions] = 1
    else:
        raise ValueError(f"scc must be one of -1, 0, +1; got {scc}")
    return Bitstream(x), Bitstream(y)


def rotations(stream: Bitstream, count: int) -> Tuple[Bitstream, ...]:
    """Return ``count`` circular rotations of a stream (classic cheap way to
    reuse one RNG output for several "less correlated" SNs)."""
    count = check_positive_int(count, name="count")
    n = stream.length
    return tuple(
        Bitstream(np.roll(stream.bits, (i * n) // count), stream.encoding)
        for i in range(count)
    )
