"""Stochastic-number substrate: streams, batches, encodings, metrics.

This subpackage is the foundation of the library: everything else consumes
and produces the types defined here.

* :class:`~repro.bitstream.bitstream.Bitstream` — one stochastic number.
* :class:`~repro.bitstream.batch.BitstreamBatch` — a vectorised batch.
* :class:`~repro.bitstream.encoding.Encoding` — unipolar / bipolar value maps.
* :mod:`~repro.bitstream.metrics` — SCC (the paper's correlation metric),
  bias, and error measures.
* :mod:`~repro.bitstream.generation` — exact/reference stream constructors.
"""

from .batch import BitstreamBatch
from .bitstream import Bitstream
from .encoding import Encoding, ones_to_value, probability_of, value_to_ones
from .generation import bernoulli_stream, correlated_pair, exact_stream, rotations
from .metrics import (
    autocorrelation,
    bias,
    mean_absolute_error,
    overlap_counts,
    scc,
    scc_batch,
    value_of_bits,
)

__all__ = [
    "Bitstream",
    "BitstreamBatch",
    "Encoding",
    "ones_to_value",
    "value_to_ones",
    "probability_of",
    "exact_stream",
    "bernoulli_stream",
    "correlated_pair",
    "rotations",
    "scc",
    "scc_batch",
    "overlap_counts",
    "bias",
    "mean_absolute_error",
    "value_of_bits",
    "autocorrelation",
]
