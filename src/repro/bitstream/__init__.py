"""Stochastic-number substrate: streams, batches, encodings, metrics.

This subpackage is the foundation of the library: everything else consumes
and produces the types defined here.

* :class:`~repro.bitstream.bitstream.Bitstream` — one stochastic number.
* :class:`~repro.bitstream.batch.BitstreamBatch` — a vectorised batch
  (unpacked: one byte per bit).
* :class:`~repro.bitstream.packed.PackedBitstreamBatch` — the packed
  fast path (64 bits per uint64 word, popcount-based values/SCC).
* :class:`~repro.bitstream.encoding.Encoding` — unipolar / bipolar value maps.
* :mod:`~repro.bitstream.metrics` — SCC (the paper's correlation metric),
  bias, and error measures, in unpacked and packed variants.
* :mod:`~repro.bitstream.generation` — exact/reference stream constructors.

Dispatch layer
--------------

The ``batch_*`` helpers below are the *public* packed/unpacked dispatch:
the surface for sweep drivers and user code working on loose operands
(:func:`repro.analysis.experiments.fig2` muxes through ``batch_mux``).
The circuit classes themselves dispatch internally via
:func:`repro.arith._coerce.packed_pair` / ``unwrap`` — same rules,
private entry point — so changes to the routing policy must keep the two
in step. Each helper accepts any mix of :class:`PackedBitstreamBatch`,
:class:`BitstreamBatch`, :class:`Bitstream`, or raw bit arrays. The
rules are:

* **all packed** -> compute word-parallel, return packed;
* **anything unpacked in the mix** -> compute on unpacked uint8 bits,
  return the unpacked result (packed operands are unpacked first);
* sequential circuits never dispatch here — they unpack at their input
  boundary and repack at their output (see :mod:`repro.arith._coerce`).
"""

from typing import Union

import numpy as np

from .batch import BitstreamBatch
from .bitstream import Bitstream
from .encoding import Encoding, ones_to_value, probability_of, value_to_ones
from .generation import bernoulli_stream, correlated_pair, exact_stream, rotations
from .metrics import (
    autocorrelation,
    bias,
    mean_absolute_error,
    overlap_counts,
    overlap_counts_packed,
    popcount_words,
    scc,
    scc_batch,
    scc_batch_packed,
    value_of_bits,
)
from .metrics import scc_from_overlap_counts
from .packed import PackedBitstreamBatch, pack_bits, unpack_bits, words_per_stream
from .streaming import (
    DEFAULT_TILE_WORDS,
    OverlapAccumulator,
    PackedTileSource,
    TileAssembler,
    ValueAccumulator,
    iter_tiles,
    tile_bounds,
    tile_count,
)

__all__ = [
    "Bitstream",
    "BitstreamBatch",
    "PackedBitstreamBatch",
    # streaming tile layer
    "DEFAULT_TILE_WORDS",
    "tile_bounds",
    "tile_count",
    "iter_tiles",
    "PackedTileSource",
    "ValueAccumulator",
    "OverlapAccumulator",
    "TileAssembler",
    "scc_from_overlap_counts",
    "Encoding",
    "ones_to_value",
    "value_to_ones",
    "probability_of",
    "exact_stream",
    "bernoulli_stream",
    "correlated_pair",
    "rotations",
    "scc",
    "scc_batch",
    "scc_batch_packed",
    "overlap_counts",
    "overlap_counts_packed",
    "popcount_words",
    "pack_bits",
    "unpack_bits",
    "words_per_stream",
    "bias",
    "mean_absolute_error",
    "value_of_bits",
    "autocorrelation",
    # dispatch layer
    "BatchLike",
    "is_packed",
    "to_packed",
    "to_unpacked",
    "batch_and",
    "batch_or",
    "batch_xor",
    "batch_not",
    "batch_mux",
    "batch_values",
    "batch_scc",
]

BatchLike = Union[PackedBitstreamBatch, BitstreamBatch, Bitstream, np.ndarray]


def is_packed(x: BatchLike) -> bool:
    """True when ``x`` is in the packed (uint64-word) representation."""
    return isinstance(x, PackedBitstreamBatch)


def to_packed(x: BatchLike) -> PackedBitstreamBatch:
    """Coerce any stream-like operand into the packed representation."""
    return PackedBitstreamBatch.pack(x)


def to_unpacked(x: BatchLike) -> np.ndarray:
    """Coerce any stream-like operand into a ``(batch, N)`` uint8 matrix."""
    if isinstance(x, PackedBitstreamBatch):
        return x.unpack().bits
    if isinstance(x, BitstreamBatch):
        return x.bits
    if isinstance(x, Bitstream):
        return x.bits.reshape(1, -1)
    arr = np.asarray(x, dtype=np.uint8)
    return arr.reshape(1, -1) if arr.ndim == 1 else arr


def _dispatch_binary(x: BatchLike, y: BatchLike, word_op, bit_op):
    if is_packed(x) and is_packed(y):
        return word_op(x, y)
    return bit_op(to_unpacked(x), to_unpacked(y))


def batch_and(x: BatchLike, y: BatchLike):
    """AND two batches — word-parallel when both operands are packed."""
    return _dispatch_binary(x, y, lambda a, b: a & b, np.bitwise_and)


def batch_or(x: BatchLike, y: BatchLike):
    """OR two batches — word-parallel when both operands are packed."""
    return _dispatch_binary(x, y, lambda a, b: a | b, np.bitwise_or)


def batch_xor(x: BatchLike, y: BatchLike):
    """XOR two batches — word-parallel when both operands are packed."""
    return _dispatch_binary(x, y, lambda a, b: a ^ b, np.bitwise_xor)


def batch_not(x: BatchLike):
    """Complement a batch; the packed path masks the tail padding bits."""
    if is_packed(x):
        return ~x
    return (1 - to_unpacked(x)).astype(np.uint8)


def batch_mux(select: BatchLike, x: BatchLike, y: BatchLike):
    """2:1 mux (emit ``y`` where select=1, else ``x``) across representations."""
    if is_packed(select) and is_packed(x) and is_packed(y):
        return PackedBitstreamBatch.mux(select, x, y)
    sb, xb, yb = to_unpacked(select), to_unpacked(x), to_unpacked(y)
    return np.where(sb == 1, yb, xb).astype(np.uint8)


def batch_values(x: BatchLike) -> np.ndarray:
    """Per-stream encoded values for any representation.

    Encoding-carrying inputs (stream, batch, packed) report their encoded
    value; raw bit arrays have no encoding and report unipolar, matching
    the rest of the library.
    """
    if isinstance(x, (PackedBitstreamBatch, BitstreamBatch)):
        return np.atleast_1d(x.values)
    if isinstance(x, Bitstream):
        return np.atleast_1d(x.value)
    return np.atleast_1d(value_of_bits(to_unpacked(x)))


def batch_scc(x: BatchLike, y: BatchLike) -> np.ndarray:
    """Row-wise SCC for either representation (packed kernel when possible)."""
    if is_packed(x) and is_packed(y):
        return x.scc(y)
    return scc_batch(to_unpacked(x), to_unpacked(y))
