"""Correlation and error metrics for stochastic numbers.

The central quantity is the *stochastic computing correlation* (SCC) of
Alaghi & Hayes (ICCD 2013), which the paper uses throughout. For two
bitstreams ``X``, ``Y`` of length ``N`` define the overlap counts

* ``a`` — positions where both are 1,
* ``b`` — positions where X=1, Y=0,
* ``c`` — positions where X=0, Y=1,
* ``d`` — positions where both are 0,

then::

              ad - bc
    SCC = ---------------------------------------   if ad > bc
          N * min(a+b, a+c) - (a+b)(a+c)

              ad - bc
        = ---------------------------------------   otherwise
          (a+b)(a+c) - N * max((a+b)+(a+c)-N, 0)

(the paper writes the second clamp as ``max(a-d, 0)``; since
``a - d = (a+b) + (a+c) - N`` the two forms are identical). SCC is +1 for
maximally positively correlated streams, -1 for maximally negatively
correlated streams, and 0 for uncorrelated streams. Degenerate cases where
the denominator is 0 (a constant stream) are defined as SCC = 0, matching
the convention in the SC literature.

All functions accept either 1-D streams or 2-D ``(batch, N)`` matrices and
are fully vectorised over the batch dimension.

Packed fast path
----------------

The unpacked kernels above burn one byte per bit. For the hot sweeps
(65k+ pairs at N = 256) this module also ships *packed* kernels operating
on ``(batch, words)`` uint64 matrices as produced by
:func:`repro.bitstream.packed.pack_bits`: :func:`overlap_counts_packed`
and :func:`scc_batch_packed` compute the same ``a``/``b``/``c``/``d``
integers from word-parallel AND + popcount (``np.bitwise_count`` when
available, a byte lookup table otherwise), so the resulting SCC values are
bit-identical to the unpacked path:

    >>> import numpy as np
    >>> from repro.bitstream.metrics import scc, scc_batch_packed
    >>> from repro.bitstream.packed import pack_bits
    >>> x = np.array([[1, 0, 1, 0, 1, 0, 1, 0]], dtype=np.uint8)
    >>> y = np.array([[1, 0, 1, 1, 1, 0, 1, 1]], dtype=np.uint8)
    >>> scc(x[0], y[0]) == float(scc_batch_packed(pack_bits(x), pack_bits(y), 8)[0])
    True

Only the *combinational* counts have a packed form; :func:`autocorrelation`
(lagged, element-order dependent) has no packed fast path and always runs
on unpacked bits.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .._validation import as_bit_array, as_bit_matrix, check_same_length

__all__ = [
    "overlap_counts",
    "overlap_counts_packed",
    "popcount_words",
    "scc",
    "scc_batch",
    "scc_batch_packed",
    "scc_from_overlap_counts",
    "bias",
    "mean_absolute_error",
    "value_of_bits",
    "autocorrelation",
]

# Byte-wise popcount lookup table: fallback for numpy < 2.0 (which lacks
# ``np.bitwise_count``) and the reference the equivalence tests check the
# intrinsic against.
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_lut(words: np.ndarray) -> np.ndarray:
    """Lookup-table popcount over the trailing axis (any integer dtype)."""
    byte_view = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT_LUT[byte_view].sum(axis=-1, dtype=np.int64)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-row 1-counts of a packed ``(batch, words)`` uint64 matrix.

    Uses the ``np.bitwise_count`` intrinsic when the running numpy has it
    (>= 2.0), else a byte lookup table.
    """
    words = np.asarray(words)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return _popcount_lut(words)


def value_of_bits(bits: np.ndarray) -> Union[float, np.ndarray]:
    """Unipolar value (fraction of 1s) of a stream or batch of streams."""
    arr = as_bit_array(bits)
    if arr.ndim == 1:
        return float(arr.mean()) if arr.size else 0.0
    return arr.mean(axis=-1)


def overlap_counts(x, y) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return the SCC overlap counts ``(a, b, c, d)``.

    Works on 1-D streams (returns python ints wrapped in 0-d arrays) or 2-D
    batches (returns per-row count vectors).
    """
    xm = as_bit_matrix(x, name="x")
    ym = as_bit_matrix(y, name="y")
    check_same_length(xm, ym, context="overlap_counts")
    if xm.shape[0] != ym.shape[0]:
        if xm.shape[0] == 1:
            xm = np.broadcast_to(xm, ym.shape)
        elif ym.shape[0] == 1:
            ym = np.broadcast_to(ym, xm.shape)
        else:
            raise ValueError("batch sizes differ and neither is 1")
    xi = xm.astype(np.int64)
    yi = ym.astype(np.int64)
    a = (xi & yi).sum(axis=-1)
    b = (xi & (1 - yi)).sum(axis=-1)
    c = ((1 - xi) & yi).sum(axis=-1)
    d = ((1 - xi) & (1 - yi)).sum(axis=-1)
    return a, b, c, d


def _scc_from_counts(a, b, c, d) -> np.ndarray:
    """Vectorised SCC from overlap-count arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    n = a + b + c + d
    ones_x = a + b
    ones_y = a + c
    numerator = a * d - b * c
    pos_denom = n * np.minimum(ones_x, ones_y) - ones_x * ones_y
    neg_denom = ones_x * ones_y - n * np.maximum(ones_x + ones_y - n, 0.0)
    denom = np.where(numerator > 0, pos_denom, neg_denom)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(denom != 0, numerator / np.where(denom == 0, 1.0, denom), 0.0)
    return result


def scc_from_overlap_counts(a, b, c, d) -> np.ndarray:
    """Vectorised SCC from overlap-count arrays ``(a, b, c, d)``.

    Public so streaming consumers can *accumulate* the integer counts
    tile by tile (word popcounts per tile, summed) and compute the SCC
    once at the end — the floats are identical to the whole-stream
    kernels because the summed integers are.
    """
    return _scc_from_counts(a, b, c, d)


def scc(x, y) -> float:
    """SCC of two 1-D bitstreams (scalar convenience wrapper)."""
    a, b, c, d = overlap_counts(x, y)
    return float(_scc_from_counts(a, b, c, d)[0])


def scc_batch(x, y) -> np.ndarray:
    """Per-row SCC of two ``(batch, N)`` bit matrices.

    This is the unpacked path (one byte per bit). For packed uint64 words
    use :func:`scc_batch_packed`, which produces bit-identical results
    ~an order of magnitude faster at the paper's N = 256.
    """
    a, b, c, d = overlap_counts(x, y)
    return _scc_from_counts(a, b, c, d)


def overlap_counts_packed(
    x_words: np.ndarray, y_words: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Packed-word overlap counts ``(a, b, c, d)``.

    Args:
        x_words: ``(batch, words)`` uint64 matrix from
            :func:`repro.bitstream.packed.pack_bits` (tail bits zero).
        y_words: like ``x_words``; batch sizes must match or broadcast.
        n: the logical stream length in bits.

    One word-parallel AND plus three popcounts replace the four masked
    int64 sums of :func:`overlap_counts`: ``a`` is counted directly and
    ``b``, ``c``, ``d`` follow from the per-stream 1-counts and ``n``.
    """
    x_words = np.asarray(x_words)
    y_words = np.asarray(y_words)
    if x_words.shape[-1] != y_words.shape[-1]:
        raise ValueError(
            f"packed word counts differ ({x_words.shape[-1]} vs {y_words.shape[-1]})"
        )
    a = popcount_words(x_words & y_words)
    ones_x = popcount_words(x_words)
    ones_y = popcount_words(y_words)
    b = ones_x - a
    c = ones_y - a
    d = n - a - b - c
    return a, b, c, d


def scc_batch_packed(x_words: np.ndarray, y_words: np.ndarray, n: int) -> np.ndarray:
    """Per-row SCC of two packed ``(batch, words)`` uint64 matrices.

    Bit-identical to :func:`scc_batch` on the corresponding unpacked
    matrices (the integer overlap counts are the same, so the float math
    is too).
    """
    a, b, c, d = overlap_counts_packed(x_words, y_words, n)
    return _scc_from_counts(a, b, c, d)


def bias(output_bits, input_bits) -> Union[float, np.ndarray]:
    """Value deviation introduced by a transform: ``value(out) - value(in)``.

    The paper calls this *bias* (Section III-A): ideally a correlation
    manipulating circuit alters only the correlation, not the value, so the
    bias should be zero.
    """
    out_v = value_of_bits(output_bits)
    in_v = value_of_bits(input_bits)
    return out_v - in_v


def mean_absolute_error(measured, expected) -> float:
    """Mean absolute error between two value arrays (paper's accuracy metric)."""
    measured = np.asarray(measured, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if measured.shape != expected.shape:
        raise ValueError(
            f"shape mismatch in mean_absolute_error: {measured.shape} vs {expected.shape}"
        )
    if measured.size == 0:
        return 0.0
    return float(np.abs(measured - expected).mean())


def autocorrelation(bits, lag: int = 1) -> float:
    """Normalised autocorrelation of a single stream at the given lag.

    Used in diagnostics for RNG quality; returns 0 for constant streams.
    """
    arr = as_bit_array(bits).astype(np.float64)
    if arr.ndim != 1:
        raise ValueError("autocorrelation expects a 1-D stream")
    if not 0 < lag < arr.size:
        raise ValueError(f"lag must be in (0, {arr.size}), got {lag}")
    head = arr[:-lag]
    tail = arr[lag:]
    var = arr.var()
    if var == 0:
        return 0.0
    cov = ((head - arr.mean()) * (tail - arr.mean())).mean()
    return float(cov / var)
