"""Correlation and error metrics for stochastic numbers.

The central quantity is the *stochastic computing correlation* (SCC) of
Alaghi & Hayes (ICCD 2013), which the paper uses throughout. For two
bitstreams ``X``, ``Y`` of length ``N`` define the overlap counts

* ``a`` — positions where both are 1,
* ``b`` — positions where X=1, Y=0,
* ``c`` — positions where X=0, Y=1,
* ``d`` — positions where both are 0,

then::

              ad - bc
    SCC = ---------------------------------------   if ad > bc
          N * min(a+b, a+c) - (a+b)(a+c)

              ad - bc
        = ---------------------------------------   otherwise
          (a+b)(a+c) - N * max((a+b)+(a+c)-N, 0)

(the paper writes the second clamp as ``max(a-d, 0)``; since
``a - d = (a+b) + (a+c) - N`` the two forms are identical). SCC is +1 for
maximally positively correlated streams, -1 for maximally negatively
correlated streams, and 0 for uncorrelated streams. Degenerate cases where
the denominator is 0 (a constant stream) are defined as SCC = 0, matching
the convention in the SC literature.

All functions accept either 1-D streams or 2-D ``(batch, N)`` matrices and
are fully vectorised over the batch dimension.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .._validation import as_bit_array, as_bit_matrix, check_same_length

__all__ = [
    "overlap_counts",
    "scc",
    "scc_batch",
    "bias",
    "mean_absolute_error",
    "value_of_bits",
    "autocorrelation",
]


def value_of_bits(bits: np.ndarray) -> Union[float, np.ndarray]:
    """Unipolar value (fraction of 1s) of a stream or batch of streams."""
    arr = as_bit_array(bits)
    if arr.ndim == 1:
        return float(arr.mean()) if arr.size else 0.0
    return arr.mean(axis=-1)


def overlap_counts(x, y) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return the SCC overlap counts ``(a, b, c, d)``.

    Works on 1-D streams (returns python ints wrapped in 0-d arrays) or 2-D
    batches (returns per-row count vectors).
    """
    xm = as_bit_matrix(x, name="x")
    ym = as_bit_matrix(y, name="y")
    check_same_length(xm, ym, context="overlap_counts")
    if xm.shape[0] != ym.shape[0]:
        if xm.shape[0] == 1:
            xm = np.broadcast_to(xm, ym.shape)
        elif ym.shape[0] == 1:
            ym = np.broadcast_to(ym, xm.shape)
        else:
            raise ValueError("batch sizes differ and neither is 1")
    xi = xm.astype(np.int64)
    yi = ym.astype(np.int64)
    a = (xi & yi).sum(axis=-1)
    b = (xi & (1 - yi)).sum(axis=-1)
    c = ((1 - xi) & yi).sum(axis=-1)
    d = ((1 - xi) & (1 - yi)).sum(axis=-1)
    return a, b, c, d


def _scc_from_counts(a, b, c, d) -> np.ndarray:
    """Vectorised SCC from overlap-count arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    n = a + b + c + d
    ones_x = a + b
    ones_y = a + c
    numerator = a * d - b * c
    pos_denom = n * np.minimum(ones_x, ones_y) - ones_x * ones_y
    neg_denom = ones_x * ones_y - n * np.maximum(ones_x + ones_y - n, 0.0)
    denom = np.where(numerator > 0, pos_denom, neg_denom)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(denom != 0, numerator / np.where(denom == 0, 1.0, denom), 0.0)
    return result


def scc(x, y) -> float:
    """SCC of two 1-D bitstreams (scalar convenience wrapper)."""
    a, b, c, d = overlap_counts(x, y)
    return float(_scc_from_counts(a, b, c, d)[0])


def scc_batch(x, y) -> np.ndarray:
    """Per-row SCC of two ``(batch, N)`` bit matrices."""
    a, b, c, d = overlap_counts(x, y)
    return _scc_from_counts(a, b, c, d)


def bias(output_bits, input_bits) -> Union[float, np.ndarray]:
    """Value deviation introduced by a transform: ``value(out) - value(in)``.

    The paper calls this *bias* (Section III-A): ideally a correlation
    manipulating circuit alters only the correlation, not the value, so the
    bias should be zero.
    """
    out_v = value_of_bits(output_bits)
    in_v = value_of_bits(input_bits)
    return out_v - in_v


def mean_absolute_error(measured, expected) -> float:
    """Mean absolute error between two value arrays (paper's accuracy metric)."""
    measured = np.asarray(measured, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if measured.shape != expected.shape:
        raise ValueError(
            f"shape mismatch in mean_absolute_error: {measured.shape} vs {expected.shape}"
        )
    if measured.size == 0:
        return 0.0
    return float(np.abs(measured - expected).mean())


def autocorrelation(bits, lag: int = 1) -> float:
    """Normalised autocorrelation of a single stream at the given lag.

    Used in diagnostics for RNG quality; returns 0 for constant streams.
    """
    arr = as_bit_array(bits).astype(np.float64)
    if arr.ndim != 1:
        raise ValueError("autocorrelation expects a 1-D stream")
    if not 0 < lag < arr.size:
        raise ValueError(f"lag must be in (0, {arr.size}), got {lag}")
    head = arr[:-lag]
    tail = arr[lag:]
    var = arr.var()
    if var == 0:
        return 0.0
    cov = ((head - arr.mean()) * (tail - arr.mean())).mean()
    return float(cov / var)
