"""Tile iteration and streaming accumulation over packed bitstreams.

The packed backend stores a whole stream as ``(batch, words)`` uint64
matrices; every consumer so far materialises the full length. This module
is the constant-memory counterpart: streams are processed as fixed-size
**tiles** of ``tile_words`` 64-bit words (``tile_words * 64`` stream
bits), and whole-stream quantities are recovered from per-tile partial
sums instead of retained bits:

* :func:`tile_bounds` — the canonical tile decomposition of an N-bit
  stream: every tile but the last spans exactly ``tile_words * 64`` bits;
  the last covers the (possibly odd) tail. Tile starts are always
  word-aligned, so a tile's packed form occupies a contiguous word slice.
* :func:`iter_tiles` — tile views over an existing
  :class:`~repro.bitstream.packed.PackedBitstreamBatch` (zero-copy word
  slices).
* :class:`PackedTileSource` — a comparator D/S converter that emits
  packed words *per tile on demand* from a windowed RNG
  (:meth:`~repro.rng.base.StreamRNG.sequence_window`), so a batch of
  source streams never exists in memory at full length.
* :class:`ValueAccumulator` — per-row 1-count partial sums; the final
  values equal whole-stream popcount values exactly (integer sums).
* :class:`OverlapAccumulator` — pairwise overlap partial sums whose final
  SCC is float-identical to
  :func:`~repro.bitstream.metrics.scc_batch_packed` on the full streams.
* :class:`TileAssembler` — optional materialisation of selected streams:
  writes tile word slices into a preallocated full-length matrix (memory
  is spent only on streams a caller explicitly keeps).

Doctest — streaming SCC equals whole-stream SCC::

    >>> import numpy as np
    >>> from repro.bitstream.packed import pack_bits
    >>> from repro.bitstream.metrics import scc_batch_packed
    >>> from repro.bitstream.streaming import OverlapAccumulator, tile_bounds
    >>> rng = np.random.default_rng(7)
    >>> x = (rng.random((2, 1000)) < 0.3).astype(np.uint8)
    >>> y = (rng.random((2, 1000)) < 0.6).astype(np.uint8)
    >>> xw, yw = pack_bits(x), pack_bits(y)
    >>> acc = OverlapAccumulator(1000)
    >>> for start, stop in tile_bounds(1000, tile_words=3):
    ...     w0, w1 = start // 64, start // 64 + (stop - start + 63) // 64
    ...     acc.update(xw[:, w0:w1], yw[:, w0:w1])
    >>> bool(np.array_equal(acc.scc(), scc_batch_packed(xw, yw, 1000)))
    True
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from .._validation import check_stream_length, check_tile_words
from ..rng.base import StreamRNG
from .encoding import Encoding, ones_to_value
from .metrics import popcount_words, scc_from_overlap_counts
from .packed import (
    WORD_BITS,
    PackedBitstreamBatch,
    pack_bits_unchecked,
    words_per_stream,
)

__all__ = [
    "DEFAULT_TILE_WORDS",
    "tile_bounds",
    "tile_count",
    "iter_tiles",
    "PackedTileSource",
    "ValueAccumulator",
    "OverlapAccumulator",
    "TileAssembler",
    "materialized_batch_bytes",
]

# 4096 words = 2**18 bits = 32 KiB per stream row per tile: big enough to
# amortise python dispatch, small enough that a whole plan's working set
# stays cache-resident.
DEFAULT_TILE_WORDS = 4096


def materialized_batch_bytes(nodes: int, batch: int, length: int) -> int:
    """Packed-buffer bytes a *materialised* batched pass would hold live.

    The materialised executor keeps one ``(batch, words)`` uint64 matrix
    per scheduled node (liveness frees some early, but the bound is what
    a budget decision needs): ``nodes * batch * words_per_stream(length)
    * 8`` bytes. The serving layer compares this estimate against its
    memory budget to decide whether a coalesced group is safe to run
    through :func:`repro.engine.executor.run_batch` or must shed load
    into the constant-memory tile scheduler
    (:func:`repro.engine.streaming.run_streaming`), whose working set is
    O(batch × tile) regardless of N.

    >>> materialized_batch_bytes(nodes=10, batch=32, length=2**20)
    41943040
    """
    return int(nodes) * int(batch) * words_per_stream(length) * 8


def tile_count(length: int, tile_words: int = DEFAULT_TILE_WORDS) -> int:
    """Number of tiles covering an ``length``-bit stream."""
    length = check_stream_length(length)
    tile_bits = check_tile_words(tile_words) * WORD_BITS
    return (length + tile_bits - 1) // tile_bits


def tile_bounds(
    length: int, tile_words: int = DEFAULT_TILE_WORDS
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start_bit, stop_bit)`` for each tile of an N-bit stream.

    Starts are multiples of ``tile_words * 64`` (word-aligned); the final
    tile's ``stop`` is ``length`` itself, covering odd-length tails.
    """
    length = check_stream_length(length)
    tile_bits = check_tile_words(tile_words) * WORD_BITS
    for start in range(0, length, tile_bits):
        yield start, min(start + tile_bits, length)


def iter_tiles(
    batch: Union[PackedBitstreamBatch, np.ndarray],
    tile_words: int = DEFAULT_TILE_WORDS,
    *,
    length: Optional[int] = None,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start_bit, stop_bit, word_view)`` tiles of a packed batch.

    Accepts a :class:`PackedBitstreamBatch` or a raw ``(batch, words)``
    uint64 matrix (then ``length`` is required). Word views are zero-copy
    slices; the final view's trailing bits past ``stop_bit`` are zero by
    the packed tail convention.
    """
    if isinstance(batch, PackedBitstreamBatch):
        words, n = batch.words, batch.length
    else:
        if length is None:
            raise ValueError("length is required for raw word matrices")
        words, n = np.asarray(batch), check_stream_length(length)
        if words.ndim != 2 or words.shape[1] != words_per_stream(n):
            raise ValueError(
                f"word matrix shape {words.shape} cannot hold n={n} bits"
            )
    for start, stop in tile_bounds(n, tile_words):
        w0 = start // WORD_BITS
        w1 = w0 + (stop - start + WORD_BITS - 1) // WORD_BITS
        yield start, stop, words[:, w0:w1]


class PackedTileSource:
    """A comparator D/S converter emitting packed words tile by tile.

    The classic converter builds the full RNG sequence and compares every
    level against it at once. This source instead asks the RNG for just
    the ``[start, stop)`` window per tile and packs the comparator output
    immediately, so peak memory is O(tile) regardless of stream length —
    and the emitted bits are identical to the one-shot conversion
    (windowed sequences are value-exact).

    Args:
        levels: ``(batch,)`` integer comparison levels (a level ``L``
            yields a 1 wherever ``L > r_t``).
        rng: the comparator sequence generator.
    """

    def __init__(self, levels: np.ndarray, rng: StreamRNG) -> None:
        self._levels = np.atleast_1d(np.asarray(levels, dtype=np.int64))
        if self._levels.ndim != 1:
            raise ValueError("levels must be a scalar or 1-D array")
        self._rng = rng

    @property
    def batch_size(self) -> int:
        return int(self._levels.size)

    def tile(self, start: int, stop: int) -> np.ndarray:
        """Packed ``(batch, ceil((stop-start)/64))`` words for one tile."""
        window = self._rng.sequence_window(start, stop)
        # Comparator output is 0/1 by construction: skip re-validation
        # (np.packbits packs the bool matrix directly).
        return pack_bits_unchecked(self._levels[:, None] > window[None, :])


class ValueAccumulator:
    """Streaming per-row 1-counts; values without retaining any bits.

    Integer partial sums of word popcounts — the total equals the
    whole-stream popcount exactly, so :meth:`values` returns the same
    floats a materialised run would.
    """

    def __init__(self, length: int) -> None:
        self._length = check_stream_length(length)
        self._ones: Optional[np.ndarray] = None

    def update(self, tile_words_matrix: np.ndarray) -> None:
        counts = popcount_words(tile_words_matrix)
        if self._ones is None:
            self._ones = counts.copy()
        else:
            self._ones += counts

    def merge(self, other: "ValueAccumulator") -> None:
        """Fold another accumulator's partial counts into this one.

        Integer addition, so merging per-span partials in span order is
        exactly the sequential accumulation — the parallel tile
        scheduler's determinism hinges on this.
        """
        if other._ones is None:
            return
        if self._ones is None:
            self._ones = other._ones.copy()
        else:
            self._ones += other._ones

    @property
    def ones(self) -> np.ndarray:
        if self._ones is None:
            raise ValueError("no tiles accumulated yet")
        return self._ones

    def values(self, encoding: Union[Encoding, str] = Encoding.UNIPOLAR) -> np.ndarray:
        """Per-row encoded values of the accumulated stream."""
        return ones_to_value(self.ones, self._length, Encoding.coerce(encoding))


class OverlapAccumulator:
    """Streaming pairwise overlap counts for SCC.

    Accumulates ``a`` (both-ones) plus the per-stream 1-counts tile by
    tile; ``b``, ``c``, ``d`` follow from ``n`` at the end, exactly as in
    :func:`~repro.bitstream.metrics.overlap_counts_packed` — so the final
    SCC floats match the whole-stream kernel bit for bit.
    """

    def __init__(self, length: int) -> None:
        self._length = check_stream_length(length)
        self._a: Optional[np.ndarray] = None
        self._ones_x: Optional[np.ndarray] = None
        self._ones_y: Optional[np.ndarray] = None

    def update(self, x_tile: np.ndarray, y_tile: np.ndarray) -> None:
        a = popcount_words(x_tile & y_tile)
        ones_x = popcount_words(x_tile)
        ones_y = popcount_words(y_tile)
        if self._a is None:
            self._a, self._ones_x, self._ones_y = a.copy(), ones_x.copy(), ones_y.copy()
        else:
            self._a += a
            self._ones_x = self._ones_x + ones_x
            self._ones_y = self._ones_y + ones_y

    def merge(self, other: "OverlapAccumulator") -> None:
        """Fold another accumulator's partial overlap counts into this
        one (integer sums — see :meth:`ValueAccumulator.merge`)."""
        if other._a is None:
            return
        if self._a is None:
            self._a = other._a.copy()
            self._ones_x = other._ones_x.copy()
            self._ones_y = other._ones_y.copy()
        else:
            self._a += other._a
            self._ones_x = self._ones_x + other._ones_x
            self._ones_y = self._ones_y + other._ones_y

    def counts(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The accumulated ``(a, b, c, d)`` overlap counts."""
        if self._a is None:
            raise ValueError("no tiles accumulated yet")
        b = self._ones_x - self._a
        c = self._ones_y - self._a
        d = self._length - self._a - b - c
        return self._a, b, c, d

    def scc(self) -> np.ndarray:
        """Per-row SCC of the accumulated pair."""
        return scc_from_overlap_counts(*self.counts())


class TileAssembler:
    """Materialise one stream from its tiles into a full packed matrix.

    The streaming executor keeps memory O(tile) by default; streams a
    caller explicitly asks to keep are assembled here — the only place a
    full-length buffer is allocated, and only for those streams.
    """

    def __init__(self, rows: int, length: int) -> None:
        self._length = check_stream_length(length)
        self._words = np.zeros((rows, words_per_stream(length)), dtype="<u8")

    def write(self, start: int, tile_words_matrix: np.ndarray) -> None:
        """Install one tile (``start`` must be word-aligned, as produced
        by :func:`tile_bounds`)."""
        if start % WORD_BITS:
            raise ValueError(f"tile start {start} is not word-aligned")
        w0 = start // WORD_BITS
        self._words[:, w0 : w0 + tile_words_matrix.shape[1]] = tile_words_matrix

    def packed(
        self, encoding: Union[Encoding, str] = Encoding.UNIPOLAR
    ) -> PackedBitstreamBatch:
        return PackedBitstreamBatch(self._words, self._length, encoding)

    @property
    def words(self) -> np.ndarray:
        return self._words
