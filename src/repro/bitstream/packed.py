"""Packed-bit backend: 64 stream bits per machine word.

The unpacked :class:`~repro.bitstream.batch.BitstreamBatch` spends one byte
per bit, so every gate op and SCC sweep moves 8x the memory the data needs.
This module stores the same streams as ``(batch, words)`` uint64 matrices
(``np.packbits`` little-endian at the boundaries) and runs the hot
combinational kernels word-parallel:

* gate ops ``&``/``|``/``^``/``~`` are single bitwise ops on 64-bit words;
* values come from popcounts
  (:func:`~repro.bitstream.metrics.popcount_words`);
* SCC comes from the packed overlap-count kernel
  (:func:`~repro.bitstream.metrics.overlap_counts_packed`).

:class:`PackedBitstreamBatch` mirrors the
:class:`~repro.bitstream.batch.BitstreamBatch` API so the two are
interchangeable anywhere only combinational ops are involved. Sequential
FSM circuits (synchronizer, desynchronizer, decorrelator, CORDIV, CA
max/adder) must see individual bits in time order, so they accept packed
operands only via explicit unpack -> process -> repack conversions (the
:mod:`repro.arith._coerce` layer does this automatically).

Bit layout: bit ``t`` of a stream lives at bit ``t % 64`` of word
``t // 64`` (little-endian within and across words). Tail bits of the last
word — positions >= N when N is not a multiple of 64 — are always zero;
every kernel that could set them (``~``, XNOR) masks them back out.

    >>> import numpy as np
    >>> from repro.bitstream import BitstreamBatch, PackedBitstreamBatch
    >>> batch = BitstreamBatch(np.eye(3, 100, dtype=np.uint8))
    >>> packed = PackedBitstreamBatch.pack(batch)
    >>> packed
    PackedBitstreamBatch(batch=3, n=100, words=2, encoding=unipolar)
    >>> bool(np.array_equal(packed.unpack().bits, batch.bits))
    True
    >>> (~packed).ones.tolist()    # NOT masks the 28 tail padding bits
    [99, 99, 99]
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from .._validation import as_bit_matrix, check_stream_length
from ..exceptions import EncodingError, LengthMismatchError
from .batch import BitstreamBatch
from .bitstream import Bitstream
from .encoding import Encoding, ones_to_value
from .metrics import popcount_words, scc_batch_packed

__all__ = [
    "WORD_BITS",
    "PackedBitstreamBatch",
    "pack_bits",
    "pack_bits_unchecked",
    "unpack_bits",
    "words_per_stream",
]

WORD_BITS = 64

# Explicit little-endian uint64 so pack/unpack round-trips are
# byte-order-independent (the uint8 <-> uint64 reinterpretation below
# otherwise changes meaning on big-endian hosts).
_WORD_DTYPE = np.dtype("<u8")


def words_per_stream(n: int) -> int:
    """Number of 64-bit words needed for an ``n``-bit stream."""
    n = check_stream_length(n, name="stream length")
    return (n + WORD_BITS - 1) // WORD_BITS


def _tail_mask(n: int) -> np.uint64:
    """Mask of the valid bits in the last word (all-ones when 64 | n)."""
    used = n % WORD_BITS
    if used == 0:
        return _WORD_DTYPE.type(0xFFFFFFFFFFFFFFFF)
    return _WORD_DTYPE.type((1 << used) - 1)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(batch, N)`` 0/1 matrix into ``(batch, ceil(N/64))`` words.

    Bit ``t`` goes to bit ``t % 64`` of word ``t // 64``; tail bits of the
    last word are zero. 1-D input is treated as a single-stream batch.
    """
    return pack_bits_unchecked(as_bit_matrix(bits))


def pack_bits_unchecked(arr: np.ndarray) -> np.ndarray:
    """:func:`pack_bits` without the 0/1 content validation.

    For internal hot paths whose input is *constructed* as a 2-D 0/1
    matrix (comparator outputs, kernel outputs): the ``np.unique`` scan
    of :func:`~repro._validation.as_bit_matrix` costs more than the pack
    itself on per-tile calls. Accepts uint8 or bool rows.
    """
    n = arr.shape[1]
    byte_matrix = np.packbits(arr, axis=-1, bitorder="little")
    want_bytes = words_per_stream(n) * (WORD_BITS // 8)
    if byte_matrix.shape[1] != want_bytes:
        pad = np.zeros(
            (byte_matrix.shape[0], want_bytes - byte_matrix.shape[1]), dtype=np.uint8
        )
        byte_matrix = np.concatenate([byte_matrix, pad], axis=1)
    return np.ascontiguousarray(byte_matrix).view(_WORD_DTYPE)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: words back to a ``(batch, n)`` uint8 matrix."""
    words = np.asarray(words, dtype=_WORD_DTYPE)
    if words.ndim == 1:
        words = words.reshape(1, -1)
    if words.shape[1] != words_per_stream(n):
        raise LengthMismatchError(
            f"packed matrix has {words.shape[1]} words, "
            f"but n={n} needs {words_per_stream(n)}"
        )
    byte_matrix = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(byte_matrix, axis=-1, bitorder="little", count=n)


class PackedBitstreamBatch:
    """A batch of stochastic numbers stored 64 bits per uint64 word.

    Mirrors :class:`~repro.bitstream.batch.BitstreamBatch` (values, SCC,
    gate operators) but runs everything word-parallel. Build one with
    :meth:`pack` or :meth:`~repro.bitstream.batch.BitstreamBatch.to_packed`;
    get bits back with :meth:`unpack`.
    """

    __slots__ = ("_words", "_length", "_encoding")

    def __init__(
        self,
        words: np.ndarray,
        length: int,
        encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    ) -> None:
        words = np.asarray(words, dtype=_WORD_DTYPE)
        if words.ndim == 1:
            words = words.reshape(1, -1)
        if words.ndim != 2 or words.size == 0:
            raise EncodingError("PackedBitstreamBatch needs a non-empty (batch, words) matrix")
        if words.shape[1] != words_per_stream(length):
            raise LengthMismatchError(
                f"{words.shape[1]} words cannot hold n={length} "
                f"(need {words_per_stream(length)})"
            )
        mask = _tail_mask(length)
        if (words[:, -1] & ~mask).any():
            words = words.copy()
            words[:, -1] &= mask
        self._words = words
        self._length = int(length)
        self._encoding = Encoding.coerce(encoding)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def pack(
        cls,
        source: Union[BitstreamBatch, Bitstream, np.ndarray, Iterable],
        encoding: Union[Encoding, str, None] = None,
    ) -> "PackedBitstreamBatch":
        """Pack a :class:`BitstreamBatch`, :class:`Bitstream`, or bit matrix.

        ``encoding`` overrides the source's encoding; raw arrays default to
        unipolar, matching the rest of the library.
        """
        if isinstance(source, cls):
            if encoding is None or Encoding.coerce(encoding) is source.encoding:
                return source
            return cls(source._words, source._length, encoding)
        if isinstance(source, (BitstreamBatch, Bitstream)):
            if encoding is None:
                encoding = source.encoding
            bits = source.bits
        else:
            bits = source
        if encoding is None:
            encoding = Encoding.UNIPOLAR
        arr = as_bit_matrix(bits)
        if arr.size == 0:
            raise EncodingError("PackedBitstreamBatch cannot be empty")
        return cls(pack_bits(arr), arr.shape[1], encoding)

    def unpack(self) -> BitstreamBatch:
        """Expand back into an unpacked :class:`BitstreamBatch`."""
        return BitstreamBatch(unpack_bits(self._words, self._length), self._encoding)

    def stream(self, index: int) -> Bitstream:
        """Extract one row as an (unpacked) :class:`Bitstream`."""
        return Bitstream(
            unpack_bits(self._words[index], self._length)[0], self._encoding
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def words(self) -> np.ndarray:
        """The underlying ``(batch, words)`` little-endian uint64 matrix."""
        return self._words

    @property
    def encoding(self) -> Encoding:
        return self._encoding

    @property
    def batch_size(self) -> int:
        return int(self._words.shape[0])

    @property
    def length(self) -> int:
        """Logical stream length N in bits (not the word count)."""
        return self._length

    @property
    def ones(self) -> np.ndarray:
        """Per-stream 1-counts via word popcount."""
        return popcount_words(self._words)

    @property
    def values(self) -> np.ndarray:
        """Per-stream encoded values as a ``float64`` vector."""
        return ones_to_value(self.ones, self._length, self._encoding)

    def __len__(self) -> int:
        return self.batch_size

    def __iter__(self):
        for i in range(self.batch_size):
            yield self.stream(i)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def scc(self, other: "PackedBitstreamBatch") -> np.ndarray:
        """Row-wise SCC against another packed batch (word-parallel)."""
        self._check_compatible(other, context="packed SCC")
        return scc_batch_packed(self._words, other._words, self._length)

    # ------------------------------------------------------------------ #
    # Gate operators (word-parallel)
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "PackedBitstreamBatch", *, context: str) -> None:
        if self._length != other._length:
            raise LengthMismatchError(
                f"{context}: bitstream lengths differ ({self._length} vs {other._length})"
            )
        if self._encoding is not other._encoding:
            raise EncodingError(f"{context} requires matching encodings")

    def _binary_op(self, other: "PackedBitstreamBatch", op) -> "PackedBitstreamBatch":
        if not isinstance(other, PackedBitstreamBatch):
            return NotImplemented
        self._check_compatible(other, context="packed bitwise operation")
        return PackedBitstreamBatch(
            op(self._words, other._words), self._length, self._encoding
        )

    def __and__(self, other: "PackedBitstreamBatch") -> "PackedBitstreamBatch":
        return self._binary_op(other, np.bitwise_and)

    def __or__(self, other: "PackedBitstreamBatch") -> "PackedBitstreamBatch":
        return self._binary_op(other, np.bitwise_or)

    def __xor__(self, other: "PackedBitstreamBatch") -> "PackedBitstreamBatch":
        return self._binary_op(other, np.bitwise_xor)

    def __invert__(self) -> "PackedBitstreamBatch":
        inverted = ~self._words
        inverted[:, -1] &= _tail_mask(self._length)
        return PackedBitstreamBatch(inverted, self._length, self._encoding)

    def xnor(self, other: "PackedBitstreamBatch") -> "PackedBitstreamBatch":
        """Word-parallel XNOR (the bipolar multiplier's gate), tail-masked."""
        return ~(self ^ other)

    @staticmethod
    def mux(
        select: "PackedBitstreamBatch",
        x: "PackedBitstreamBatch",
        y: "PackedBitstreamBatch",
    ) -> "PackedBitstreamBatch":
        """Word-parallel 2:1 mux: emits ``y`` where select=1, else ``x``.

        Tail bits stay zero without masking: the select's tail is zero, so
        the tail picks ``x``'s (zero) tail bits.
        """
        x._check_compatible(y, context="packed mux data inputs")
        if select._length != x._length:
            raise LengthMismatchError(
                f"packed mux select length {select._length} != data length {x._length}"
            )
        words = (select._words & y._words) | (~select._words & x._words)
        return PackedBitstreamBatch(words, x._length, x._encoding)

    def __repr__(self) -> str:
        return (
            f"PackedBitstreamBatch(batch={self.batch_size}, n={self._length}, "
            f"words={self._words.shape[1]}, encoding={self._encoding.value})"
        )
