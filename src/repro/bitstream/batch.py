"""Batched stochastic numbers.

The paper's experiments sweep *all* input value pairs at ``N = 256``
(65,000+ pairs). Simulating those one stream at a time in Python would be
hopeless, so every circuit in this library operates on
``(batch, N)`` uint8 matrices where the batch axis is vectorised with numpy
and only the time axis (when a circuit is sequential) is a Python loop.

:class:`BitstreamBatch` is a light wrapper over such a matrix providing
values, SCC against another batch, and the same gate operators as
:class:`~repro.bitstream.bitstream.Bitstream`.

This is the *unpacked* representation: one byte per bit, indexable along
the time axis, required by the sequential FSM circuits. For combinational
work (gate ops, values, SCC) the packed representation
(:class:`~repro.bitstream.packed.PackedBitstreamBatch`, via
:meth:`BitstreamBatch.to_packed`) holds 64 bits per uint64 word and is
~an order of magnitude faster at the paper's N = 256.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from .._validation import as_bit_matrix, check_same_length
from ..exceptions import EncodingError
from .bitstream import Bitstream
from .encoding import Encoding, ones_to_value
from .metrics import scc_batch

__all__ = ["BitstreamBatch"]


class BitstreamBatch:
    """A batch of equally long stochastic numbers sharing one encoding."""

    __slots__ = ("_bits", "_encoding")

    def __init__(
        self,
        bits: Union[np.ndarray, Iterable],
        encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    ) -> None:
        arr = as_bit_matrix(bits)
        if arr.size == 0:
            raise EncodingError("BitstreamBatch cannot be empty")
        self._bits = arr
        self._encoding = Encoding.coerce(encoding)

    @classmethod
    def from_streams(cls, streams: Iterable[Bitstream]) -> "BitstreamBatch":
        """Stack individual :class:`Bitstream` objects into a batch."""
        streams = list(streams)
        if not streams:
            raise EncodingError("cannot build a batch from zero streams")
        encoding = streams[0].encoding
        length = streams[0].length
        for s in streams[1:]:
            if s.encoding is not encoding:
                raise EncodingError("all streams in a batch must share an encoding")
            if s.length != length:
                raise EncodingError("all streams in a batch must share a length")
        return cls(np.stack([s.bits for s in streams]), encoding)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def bits(self) -> np.ndarray:
        """The underlying ``(batch, N)`` uint8 matrix."""
        return self._bits

    @property
    def encoding(self) -> Encoding:
        return self._encoding

    @property
    def batch_size(self) -> int:
        return int(self._bits.shape[0])

    @property
    def length(self) -> int:
        return int(self._bits.shape[1])

    @property
    def ones(self) -> np.ndarray:
        """Per-stream 1-counts."""
        return self._bits.sum(axis=1, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        """Per-stream encoded values as a ``float64`` vector."""
        return ones_to_value(self.ones, self.length, self._encoding)

    def stream(self, index: int) -> Bitstream:
        """Extract one row as a :class:`Bitstream`."""
        return Bitstream(self._bits[index], self._encoding)

    def to_packed(self) -> "PackedBitstreamBatch":
        """Pack into the 64-bit-word fast-path representation.

        >>> import numpy as np
        >>> batch = BitstreamBatch(np.ones((2, 10), dtype=np.uint8))
        >>> batch.to_packed().values.tolist()
        [1.0, 1.0]
        """
        from .packed import PackedBitstreamBatch

        return PackedBitstreamBatch.pack(self)

    def __len__(self) -> int:
        return self.batch_size

    def __iter__(self):
        for i in range(self.batch_size):
            yield self.stream(i)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def scc(self, other: "BitstreamBatch") -> np.ndarray:
        """Row-wise SCC against another batch of the same shape."""
        return scc_batch(self._bits, other._bits)

    # ------------------------------------------------------------------ #
    # Gate operators
    # ------------------------------------------------------------------ #

    def _binary_op(self, other: "BitstreamBatch", op) -> "BitstreamBatch":
        if not isinstance(other, BitstreamBatch):
            return NotImplemented
        check_same_length(self._bits, other._bits, context="batch bitwise operation")
        if self._encoding is not other._encoding:
            raise EncodingError("batch bitwise operations require matching encodings")
        return BitstreamBatch(op(self._bits, other._bits), self._encoding)

    def __and__(self, other: "BitstreamBatch") -> "BitstreamBatch":
        return self._binary_op(other, np.bitwise_and)

    def __or__(self, other: "BitstreamBatch") -> "BitstreamBatch":
        return self._binary_op(other, np.bitwise_or)

    def __xor__(self, other: "BitstreamBatch") -> "BitstreamBatch":
        return self._binary_op(other, np.bitwise_xor)

    def __invert__(self) -> "BitstreamBatch":
        return BitstreamBatch(1 - self._bits, self._encoding)

    def __repr__(self) -> str:
        return (
            f"BitstreamBatch(batch={self.batch_size}, n={self.length}, "
            f"encoding={self._encoding.value})"
        )
