"""The :class:`Bitstream` value type — a single stochastic number.

A :class:`Bitstream` wraps an immutable numpy ``uint8`` array of 0s and 1s
together with an :class:`~repro.bitstream.encoding.Encoding`. It provides
value inspection, the paper's literal-string constructor (so the worked
examples from Fig. 1 and Table I can be written down directly), and the
gate-level operators used throughout SC (``&``, ``|``, ``^``, ``~``).

Gate operators return plain bit-level results; they do *not* interpret
correlation. Interpreting an AND as a multiply (or a min, or a saturating
subtract) is the job of the circuits in :mod:`repro.arith`, which document
their correlation requirements.

Single streams always compute on unpacked uint8 bits — at one stream the
pack/unpack round trip costs more than it saves. The batched fast path is
:class:`~repro.bitstream.packed.PackedBitstreamBatch`: its ``&``/``|``/
``^``/``~`` run word-parallel on uint64 words and produce bit-identical
results, as do its ``values`` and ``scc``. Sequential transforms
(``delayed``, the FSM circuits in :mod:`repro.core`) have **no** packed
form and always fall back to unpacked bits:

    >>> from repro.bitstream import BitstreamBatch
    >>> x = Bitstream("01010101")
    >>> y = Bitstream("00110011")
    >>> packed = BitstreamBatch.from_streams([x]).to_packed()
    >>> other = BitstreamBatch.from_streams([y]).to_packed()
    >>> (x & y).value == float((packed & other).values[0])
    True
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from .._validation import as_bit_array, check_same_length
from ..exceptions import EncodingError, LengthMismatchError
from .encoding import Encoding, ones_to_value

__all__ = ["Bitstream"]


class Bitstream:
    """An immutable stochastic number.

    Args:
        bits: the bit content — a numpy array, an iterable of 0/1 ints, or a
            string like ``"01010101"``.
        encoding: ``Encoding.UNIPOLAR`` (default) or ``Encoding.BIPOLAR``
            (or their string names).

    Examples:
        >>> x = Bitstream("01010101")
        >>> x.value
        0.5
        >>> y = Bitstream("11111100")
        >>> (x & y).value          # uncorrelated AND = multiply (Fig. 1a)
        0.375
    """

    __slots__ = ("_bits", "_encoding")

    def __init__(
        self,
        bits: Union[np.ndarray, Iterable[int], str],
        encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    ) -> None:
        arr = as_bit_array(bits)
        if arr.ndim != 1:
            raise EncodingError(f"Bitstream expects 1-D bits, got ndim={arr.ndim}")
        if arr.size == 0:
            raise EncodingError("Bitstream cannot be empty")
        arr.setflags(write=False)
        self._bits = arr
        self._encoding = Encoding.coerce(encoding)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def bits(self) -> np.ndarray:
        """The underlying read-only ``uint8`` bit array."""
        return self._bits

    @property
    def encoding(self) -> Encoding:
        """The SN encoding used to interpret the bits as a value."""
        return self._encoding

    @property
    def length(self) -> int:
        """Number of bits ``N`` (determines precision, roughly log2(N))."""
        return int(self._bits.size)

    @property
    def ones(self) -> int:
        """Number of 1 bits."""
        return int(self._bits.sum())

    @property
    def value(self) -> float:
        """The encoded value (unipolar: ones/N; bipolar: (2*ones - N)/N)."""
        return float(ones_to_value(self.ones, self.length, self._encoding))

    @property
    def probability(self) -> float:
        """Probability of a 1 (the unipolar value, whatever the encoding)."""
        return self.ones / self.length

    def with_encoding(self, encoding: Union[Encoding, str]) -> "Bitstream":
        """Reinterpret the same bits under a different encoding."""
        return Bitstream(self._bits, encoding)

    def to01(self) -> str:
        """Render the stream as a compact 0/1 string (paper notation)."""
        return "".join("1" if b else "0" for b in self._bits)

    # ------------------------------------------------------------------ #
    # Gate-level operators
    # ------------------------------------------------------------------ #

    def _binary_op(self, other: "Bitstream", op) -> "Bitstream":
        if not isinstance(other, Bitstream):
            return NotImplemented
        check_same_length(self._bits, other._bits, context="bitwise operation")
        if self._encoding is not other._encoding:
            raise EncodingError(
                "bitwise operations require matching encodings "
                f"({self._encoding.value} vs {other._encoding.value})"
            )
        return Bitstream(op(self._bits, other._bits), self._encoding)

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_and)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_or)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_xor)

    def __invert__(self) -> "Bitstream":
        return Bitstream(1 - self._bits, self._encoding)

    def delayed(self, cycles: int = 1, fill: int = 0) -> "Bitstream":
        """Shift the stream right by ``cycles`` positions (D flip-flops).

        This is the *isolator* primitive of Ting & Hayes: the first
        ``cycles`` output bits take the value ``fill`` and the final
        ``cycles`` input bits are dropped.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        if cycles == 0:
            return self
        if fill not in (0, 1):
            raise ValueError(f"fill must be 0 or 1, got {fill}")
        cycles = min(cycles, self.length)
        shifted = np.concatenate(
            [np.full(cycles, fill, dtype=np.uint8), self._bits[: self.length - cycles]]
        )
        return Bitstream(shifted, self._encoding)

    # ------------------------------------------------------------------ #
    # Equality / representation
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return (
            self._encoding is other._encoding
            and self.length == other.length
            and bool(np.array_equal(self._bits, other._bits))
        )

    def __hash__(self) -> int:
        return hash((self._encoding, self._bits.tobytes()))

    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        return iter(int(b) for b in self._bits)

    def __repr__(self) -> str:
        shown = self.to01() if self.length <= 32 else self.to01()[:32] + "..."
        return (
            f"Bitstream({shown!r}, value={self.value:.4g}, "
            f"n={self.length}, encoding={self._encoding.value})"
        )
