"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the registered experiments;
* ``run <experiment> [--step N] [--out FILE]`` — run one experiment and
  print its paper-vs-measured table;
* ``all [--step N] [--out-dir DIR]`` — run every experiment;
* ``costs`` — print the hardware component cost landscape.

The step flag trades sweep resolution for speed (1 = the paper's
exhaustive setting; tests and quick looks use 8-32).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .analysis import ALL_EXPERIMENTS, render_table, run_experiment
from .hardware import components, report

__all__ = ["main", "build_parser"]

_STEPPED = {"fig2", "table2", "table3", "ablation_save_depth",
            "ablation_composition", "ablation_buffer_depth", "propagation"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Correlation Manipulating Circuits for "
        "Stochastic Computing' (DATE 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    run_p.add_argument("--step", type=int, default=4,
                       help="level sweep step (1 = paper-exhaustive)")
    run_p.add_argument("--out", type=pathlib.Path, default=None,
                       help="also write the table to this file")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--step", type=int, default=4)
    all_p.add_argument("--out-dir", type=pathlib.Path, default=None)

    sub.add_parser("costs", help="print the hardware cost landscape")
    return parser


def _run_one(experiment: str, step: int):
    kwargs = {"step": step} if experiment in _STEPPED else {}
    return run_experiment(experiment, **kwargs)


def _cmd_list() -> int:
    for name in ALL_EXPERIMENTS:
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        print(f"  {name:24s} {doc[0] if doc else ''}")
    return 0


def _cmd_run(experiment: str, step: int, out: Optional[pathlib.Path]) -> int:
    result = _run_one(experiment, step)
    text = result.to_text()
    print(text)
    if out is not None:
        out.write_text(text + "\n")
    return 0 if result.all_checks_pass else 1


def _cmd_all(step: int, out_dir: Optional[pathlib.Path]) -> int:
    status = 0
    for name in ALL_EXPERIMENTS:
        result = _run_one(name, step)
        print(result.to_text())
        print()
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.to_text() + "\n")
        if not result.all_checks_pass:
            status = 1
    return status


def _cmd_costs() -> int:
    rows = []
    for name in ("and_gate", "or_gate", "xor_gate", "mux_adder", "ca_adder",
                 "ca_max", "isolator", "synchronizer", "desynchronizer",
                 "sync_max", "sync_min", "desync_saturating_adder",
                 "shuffle_buffer", "decorrelator", "tfm", "lfsr_rng",
                 "d2s_converter", "s2d_converter", "regenerator"):
        r = report(getattr(components, name)())
        rows.append([name, r.area_um2, r.power_uw, r.energy_pj(256)])
    print(render_table(
        ["component", "area um2", "power uW", "energy pJ (N=256)"], rows,
        title="Hardware component costs (65nm-calibrated model)",
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.step, args.out)
    if args.command == "all":
        return _cmd_all(args.step, args.out_dir)
    return _cmd_costs()


if __name__ == "__main__":
    sys.exit(main())
