"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the registered experiments;
* ``run <experiment> [--step N] [--out FILE]`` — run one experiment and
  print its paper-vs-measured table;
* ``all [--step N] [--out-dir DIR]`` — run every experiment;
* ``costs`` — print the hardware component cost landscape;
* ``engine <graph>`` — compile a named graph through
  :mod:`repro.engine` and print its execution plan (levels, packed vs
  FSM nodes, plan-cache hits/misses) next to the audit table;
* ``audit <graph> [--fix]`` — engine-backed correlation audit of a
  named graph, optionally with the autofix pass applied.

The step flag trades sweep resolution for speed (1 = the paper's
exhaustive setting; tests and quick looks use 8-32). Named graphs come
from :data:`repro.engine.library.GRAPH_LIBRARY`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .analysis import ALL_EXPERIMENTS, render_table, run_experiment
from .engine import GRAPH_LIBRARY
from .hardware import components, report

__all__ = ["main", "build_parser"]

_STEPPED = {"fig2", "table2", "table3", "ablation_save_depth",
            "ablation_composition", "ablation_buffer_depth", "propagation"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Correlation Manipulating Circuits for "
        "Stochastic Computing' (DATE 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    run_p.add_argument("--step", type=int, default=4,
                       help="level sweep step (1 = paper-exhaustive)")
    run_p.add_argument("--out", type=pathlib.Path, default=None,
                       help="also write the table to this file")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--step", type=int, default=4)
    all_p.add_argument("--out-dir", type=pathlib.Path, default=None)

    sub.add_parser("costs", help="print the hardware cost landscape")

    engine_p = sub.add_parser(
        "engine", help="compile a named graph and show its execution plan"
    )
    engine_p.add_argument("graph", choices=sorted(GRAPH_LIBRARY))
    engine_p.add_argument("--length", type=int, default=256,
                          help="stream length N for the audit")
    engine_p.add_argument("--tolerance", type=float, default=0.35)

    audit_p = sub.add_parser(
        "audit", help="engine-backed correlation audit of a named graph"
    )
    audit_p.add_argument("graph", choices=sorted(GRAPH_LIBRARY))
    audit_p.add_argument("--length", type=int, default=256)
    audit_p.add_argument("--tolerance", type=float, default=0.35)
    audit_p.add_argument("--fix", action="store_true",
                         help="also run autofix and re-audit the fixed graph")
    return parser


def _run_one(experiment: str, step: int):
    kwargs = {"step": step} if experiment in _STEPPED else {}
    return run_experiment(experiment, **kwargs)


def _cmd_list() -> int:
    for name in ALL_EXPERIMENTS:
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        print(f"  {name:24s} {doc[0] if doc else ''}")
    return 0


def _cmd_run(experiment: str, step: int, out: Optional[pathlib.Path]) -> int:
    result = _run_one(experiment, step)
    text = result.to_text()
    print(text)
    if out is not None:
        out.write_text(text + "\n")
    return 0 if result.all_checks_pass else 1


def _cmd_all(step: int, out_dir: Optional[pathlib.Path]) -> int:
    status = 0
    for name in ALL_EXPERIMENTS:
        result = _run_one(name, step)
        print(result.to_text())
        print()
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.to_text() + "\n")
        if not result.all_checks_pass:
            status = 1
    return status


def _audit_table(audit, title: str) -> str:
    rows = [
        [e.node, e.op,
         "-" if e.required_scc is None else e.required_scc,
         round(e.measured_scc, 3), round(e.expected_value, 3),
         round(e.measured_value, 3), "VIOLATED" if e.violated else "ok"]
        for e in audit.entries
    ]
    return render_table(
        ["node", "op", "req SCC", "meas SCC", "expected", "measured", "status"],
        rows, title=title,
    )


def _cmd_engine(graph_name: str, length: int, tolerance: float) -> int:
    from .engine import build_graph, cache_info, compile_graph

    graph = build_graph(graph_name)
    before = cache_info()
    plan = compile_graph(graph)
    after = cache_info()
    outcome = "hit" if after["hits"] > before["hits"] else "miss"
    print(plan.describe())
    print(f"plan cache: {outcome} (total {after['hits']} hits / "
          f"{after['misses']} misses, {after['size']} plans cached)")
    print()
    audit = plan.audit(length, tolerance=tolerance)
    print(_audit_table(audit, f"Engine audit — {graph_name} (N={length})"))
    print(f"violations: {len(audit.violations)}/{len(audit.entries)}")
    return 0


def _cmd_audit(graph_name: str, length: int, tolerance: float, fix: bool) -> int:
    from .engine import build_graph
    from .graph import autofix

    graph = build_graph(graph_name)
    audit = graph.audit(length, tolerance=tolerance)
    print(_audit_table(audit, f"Correlation audit — {graph_name} (N={length})"))
    print(f"violations: {len(audit.violations)}/{len(audit.entries)}")
    if fix:
        report_ = autofix(graph, length=length, tolerance=tolerance, iterations=4)
        print()
        if report_.insertions:
            for insertion in report_.insertions:
                print(f"  inserted {insertion}")
        else:
            print("  nothing to fix")
        print(f"added hardware: {report_.added_area_um2:.1f} um2, "
              f"{report_.added_power_uw:.2f} uW")
        fixed_audit = report_.fixed_graph.audit(length, tolerance=tolerance)
        print(_audit_table(fixed_audit, "After autofix"))
        return 0 if not fixed_audit.violations else 1
    return 0 if not audit.violations else 1


def _cmd_costs() -> int:
    rows = []
    for name in ("and_gate", "or_gate", "xor_gate", "mux_adder", "ca_adder",
                 "ca_max", "isolator", "synchronizer", "desynchronizer",
                 "sync_max", "sync_min", "desync_saturating_adder",
                 "shuffle_buffer", "decorrelator", "tfm", "lfsr_rng",
                 "d2s_converter", "s2d_converter", "regenerator"):
        r = report(getattr(components, name)())
        rows.append([name, r.area_um2, r.power_uw, r.energy_pj(256)])
    print(render_table(
        ["component", "area um2", "power uW", "energy pJ (N=256)"], rows,
        title="Hardware component costs (65nm-calibrated model)",
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.step, args.out)
    if args.command == "all":
        return _cmd_all(args.step, args.out_dir)
    if args.command == "engine":
        return _cmd_engine(args.graph, args.length, args.tolerance)
    if args.command == "audit":
        return _cmd_audit(args.graph, args.length, args.tolerance, args.fix)
    return _cmd_costs()


if __name__ == "__main__":
    sys.exit(main())
