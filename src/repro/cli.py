"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the registered experiments;
* ``run <spec|all> [--fidelity F] [--jobs N] [--seed S] [--force]`` —
  run experiments through :mod:`repro.runner`: declarative specs expand
  into shards, shards run on a process pool, and payloads land in the
  content-addressed result store so repeated runs are cache hits.
  ``run --list`` enumerates the specs with grid sizes and shard counts;
  the legacy ``--step N`` / ``--out FILE`` flags keep working;
* ``all [--step N] [--out-dir DIR]`` — legacy alias for ``run all``;
* ``stats [--store DIR]`` — render the newest recorded observability
  stats document (written by traced/profiled runs) from the store;
* ``report [--fidelity F] [--out-dir DIR] [--md FILE] [--check]`` —
  regenerate the published artifacts (``benchmarks/results``-style
  tables, EXPERIMENTS.md) from the store without re-running anything;
* ``costs`` — print the hardware component cost landscape;
* ``engine <graph>`` — compile a named graph through
  :mod:`repro.engine` and print its execution plan (levels, packed vs
  FSM nodes, plan-cache hits/misses) next to the audit table;
* ``audit <graph> [--fix]`` — engine-backed correlation audit of a
  named graph, optionally with the autofix pass applied;
* ``serve [--port P] [--window-ms W] [--max-batch B]`` — long-lived
  micro-batching front-end (:mod:`repro.serve`): concurrent run/audit
  requests sharing a plan coalesce into single batched engine passes,
  byte-identical to solo service;
* ``client <kind> [target]`` — one-shot request against a running
  server (``ping`` / ``stats`` / ``run`` / ``audit`` / ``spec`` /
  ``shutdown``), response printed as JSON;
* ``bench-serve [--concurrency C]`` — closed-loop load against a
  running server, printing throughput and latency percentiles.

Fidelity presets trade sweep resolution for runtime (``exhaustive`` is
the paper's setting and what the benchmark suite archives; ``smoke`` is
CI-sized). ``--store DIR`` (or ``$REPRO_STORE``) relocates the result
store, ``--seed S`` makes every factory-made seedable RNG derive from S
and is recorded in each stored result's content address. Named graphs
come from :data:`repro.engine.library.GRAPH_LIBRARY`.

Observability (:mod:`repro.obs`): ``run``/``all``/``engine`` accept
``--trace out.json`` (Chrome trace-event JSON, Perfetto-loadable) and
``--profile`` (human span tree on stdout). Traced runs also persist the
trace and a stats document under ``<store>/obs/`` — artifacts keyed by
wall-clock stamp, deliberately *outside* the content-addressed object
space (like ``--jobs``, tracing never changes a result bit, so it must
not change a content address either). ``run``/``all`` print one summary
line per spec by default; ``-v`` restores the per-shard cache hit/miss
lines (now routed through the ``repro.runner`` logger).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from ._validation import check_jobs, check_stream_length, check_tile_words
from .analysis import ALL_EXPERIMENTS, render_table
from .engine import GRAPH_LIBRARY
from .exceptions import CircuitConfigurationError, EncodingError
from .hardware import components, report

__all__ = ["main", "build_parser"]


def _length_arg(text: str) -> int:
    """Argparse type for stream lengths — the library's central
    validator (:func:`repro._validation.check_stream_length`) instead of
    an ad-hoc bound, so the CLI and the APIs reject exactly the same
    values with the same rules (odd lengths allowed)."""
    try:
        return check_stream_length(int(text))
    except (ValueError, EncodingError) as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _tile_words_arg(text: str) -> int:
    """Argparse type for tile sizes via the central validator."""
    try:
        return check_tile_words(int(text))
    except (ValueError, CircuitConfigurationError) as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _jobs_arg(text: str) -> int:
    """Argparse type for worker counts via the central validator."""
    try:
        return check_jobs(int(text))
    except (ValueError, CircuitConfigurationError) as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_pool_args(sub_parser: argparse.ArgumentParser) -> None:
    """``--pool`` / ``--no-pool``: flip the persistent worker-pool
    runtime for this invocation. Results are bit-identical either way —
    the pool only changes wall-clock time (like ``--jobs``)."""
    group = sub_parser.add_mutually_exclusive_group()
    group.add_argument("--pool", dest="pool", action="store_true",
                       default=None,
                       help="use the persistent worker-pool runtime for "
                            "--jobs > 1 (the default; REPRO_NO_POOL=1 "
                            "flips the default off)")
    group.add_argument("--no-pool", dest="pool", action="store_false",
                       help="fork workers per call instead of keeping a "
                            "warm pool (identical results, slower repeats)")


def _add_obs_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("-v", "--verbose", action="store_true",
                            help="per-shard cache hit/miss lines (default "
                                 "prints only run summaries)")
    sub_parser.add_argument("--trace", type=pathlib.Path, default=None,
                            help="record the run and write a Chrome "
                                 "trace-event JSON (Perfetto-loadable)")
    sub_parser.add_argument("--profile", action="store_true",
                            help="record the run and print the span "
                                 "profile tree")


def build_parser() -> argparse.ArgumentParser:
    from .runner import FIDELITIES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Correlation Manipulating Circuits for "
        "Stochastic Computing' (DATE 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run experiments through the runner")
    run_p.add_argument("experiment", nargs="?", default=None,
                       choices=sorted(ALL_EXPERIMENTS) + ["all"],
                       help="spec name, or 'all' for every registered spec")
    run_p.add_argument("fidelity_pos", nargs="?", default=None,
                       choices=FIDELITIES, metavar="fidelity",
                       help="fidelity preset as a positional shorthand "
                            "('repro run table2 smoke')")
    run_p.add_argument("--list", action="store_true", dest="list_specs",
                       help="enumerate registered specs with grid sizes and "
                            "shard counts, then exit")
    # --step predates the fidelity presets; the two would silently fight
    # over the sweep resolution, so they are mutually exclusive.
    fidelity_group = run_p.add_mutually_exclusive_group()
    fidelity_group.add_argument("--fidelity", choices=FIDELITIES, default=None,
                                help="parameter preset (default: 'default', "
                                     "the historical CLI settings)")
    fidelity_group.add_argument("--step", type=int, default=4,
                                help="legacy level-sweep step override "
                                     "(1 = paper-exhaustive)")
    _add_pool_args(run_p)
    run_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for shard execution")
    run_p.add_argument("--seed", type=int, default=None,
                       help="run-level RNG seed, recorded in stored results")
    run_p.add_argument("--force", action="store_true",
                       help="recompute shards even when cached")
    run_p.add_argument("--store", type=pathlib.Path, default=None,
                       help="result store directory (default: $REPRO_STORE "
                            "or ./.repro-store)")
    run_p.add_argument("--out", type=pathlib.Path, default=None,
                       help="also write the table(s) to this file")
    _add_obs_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment (alias of 'run all')")
    all_p.add_argument("--out-dir", type=pathlib.Path, default=None)
    all_fidelity_group = all_p.add_mutually_exclusive_group()
    all_fidelity_group.add_argument("--step", type=int, default=4)
    all_fidelity_group.add_argument("--fidelity", choices=FIDELITIES, default=None)
    all_p.add_argument("--jobs", type=int, default=1)
    _add_pool_args(all_p)
    all_p.add_argument("--seed", type=int, default=None)
    all_p.add_argument("--force", action="store_true")
    all_p.add_argument("--store", type=pathlib.Path, default=None)
    _add_obs_args(all_p)

    stats_p = sub.add_parser(
        "stats", help="render the newest observability stats from the store"
    )
    stats_p.add_argument("--store", type=pathlib.Path, default=None,
                         help="result store directory (default: $REPRO_STORE "
                              "or ./.repro-store)")

    report_p = sub.add_parser(
        "report", help="regenerate published artifacts from the result store"
    )
    report_p.add_argument("--fidelity", choices=FIDELITIES, default="exhaustive")
    report_p.add_argument("--seed", type=int, default=None)
    report_p.add_argument("--store", type=pathlib.Path, default=None)
    report_p.add_argument("--out-dir", type=pathlib.Path,
                          default=pathlib.Path("benchmarks/results"),
                          help="where the <experiment>.txt archives go")
    report_p.add_argument("--md", type=pathlib.Path, default=None,
                          help="also roll everything into this EXPERIMENTS.md")
    report_p.add_argument("--check", action="store_true",
                          help="compare against existing archives instead of "
                               "writing; non-zero exit on drift")

    sub.add_parser("costs", help="print the hardware cost landscape")

    engine_p = sub.add_parser(
        "engine", help="compile a named graph and show its execution plan"
    )
    engine_p.add_argument("graph", choices=sorted(GRAPH_LIBRARY))
    engine_p.add_argument("--length", type=_length_arg, default=256,
                          help="stream length N for the audit")
    engine_p.add_argument("--tolerance", type=float, default=0.35)
    engine_p.add_argument("--streaming", action="store_true",
                          help="audit through the constant-memory tile "
                               "scheduler (long N stay feasible)")
    engine_p.add_argument("--tile-words", type=_tile_words_arg, default=4096,
                          help="streaming tile size in 64-bit words")
    engine_p.add_argument("--jobs", type=_jobs_arg, default=1,
                          help="span workers for the parallel tile "
                               "scheduler (streaming only; results are "
                               "bit-identical at any count)")
    _add_pool_args(engine_p)
    engine_p.add_argument("--no-optimize", action="store_true",
                          help="compile the faithful one-step-per-node plan "
                               "(skip structural CSE / arena allocation; the "
                               "audit is float-identical either way)")
    engine_p.add_argument("--profile", action="store_true",
                          help="trace the compile + audit and print the "
                               "span profile tree")
    engine_p.add_argument("--trace", type=pathlib.Path, default=None,
                          help="write a Chrome trace-event JSON of the "
                               "compile + audit (Perfetto-loadable)")

    audit_p = sub.add_parser(
        "audit", help="engine-backed correlation audit of a named graph"
    )
    audit_p.add_argument("graph", choices=sorted(GRAPH_LIBRARY))
    audit_p.add_argument("--length", type=_length_arg, default=256)
    audit_p.add_argument("--tolerance", type=float, default=0.35)
    audit_p.add_argument("--fix", action="store_true",
                         help="also run autofix and re-audit the fixed graph")

    from .serve.protocol import DEFAULT_PORT

    serve_p = sub.add_parser(
        "serve", help="long-lived micro-batching engine server"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="TCP port (0 picks a free one)")
    serve_p.add_argument("--window-ms", type=float, default=3.0,
                         help="micro-batch window; concurrent requests "
                              "sharing a plan coalesce within it")
    serve_p.add_argument("--max-batch", type=int, default=32,
                         help="flush a group early at this size")
    serve_p.add_argument("--budget-mb", type=int, default=256,
                         help="materialised-footprint budget before a "
                              "group sheds into streaming execution")
    _add_pool_args(serve_p)
    serve_p.add_argument("--jobs", type=_jobs_arg, default=1,
                         help="span workers for shed streaming passes")
    serve_p.add_argument("--workers", type=int, default=1,
                         help="engine worker threads")
    serve_p.add_argument("--tile-words", type=_tile_words_arg, default=4096)
    serve_p.add_argument("--store", type=pathlib.Path, default=None,
                         help="result store for the response cache and obs "
                              "spool (default: $REPRO_STORE or "
                              "./.repro-store)")
    serve_p.add_argument("--no-store", action="store_true",
                         help="disable the response cache and obs spool")

    client_p = sub.add_parser(
        "client", help="send one request to a running server"
    )
    client_p.add_argument("kind",
                          choices=["ping", "stats", "run", "audit", "spec",
                                   "shutdown"])
    client_p.add_argument("target", nargs="?", default=None,
                          help="graph name (run/audit) or spec name (spec)")
    client_p.add_argument("--host", default="127.0.0.1")
    client_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    client_p.add_argument("--length", type=_length_arg, default=256)
    client_p.add_argument("--tolerance", type=float, default=0.35)
    client_p.add_argument("--value", action="append", default=[],
                          metavar="SOURCE=V",
                          help="source value override (repeatable)")
    client_p.add_argument("--fidelity", default="smoke")
    client_p.add_argument("--seed", type=int, default=None)

    bench_serve_p = sub.add_parser(
        "bench-serve", help="closed-loop load against a running server"
    )
    bench_serve_p.add_argument("--host", default="127.0.0.1")
    bench_serve_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    bench_serve_p.add_argument("--concurrency", type=int, default=16)
    bench_serve_p.add_argument("--requests", type=int, default=8,
                               help="requests per worker")
    bench_serve_p.add_argument("--graph", choices=sorted(GRAPH_LIBRARY),
                               default="depth8")
    bench_serve_p.add_argument("--length", type=_length_arg, default=16384)
    bench_serve_p.add_argument("--kind", choices=["audit", "run"],
                               default="audit")
    return parser


def _cmd_list() -> int:
    for name in ALL_EXPERIMENTS:
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        print(f"  {name:24s} {doc[0] if doc else ''}")
    return 0


def _make_store(path: Optional[pathlib.Path]):
    from .runner import ResultStore, default_store

    return default_store() if path is None else ResultStore(path)


def _cmd_run_list(fidelity: str) -> int:
    from .runner import SPEC_REGISTRY

    rows = []
    for name, spec in SPEC_REGISTRY.items():
        params = spec.params(fidelity)
        rows.append([name, spec.shard_count(params), spec.grid_summary(params)])
    print(render_table(
        ["spec", "shards", "grid"],
        rows,
        title=f"Registered experiment specs (fidelity={fidelity})",
    ))
    total = sum(r[1] for r in rows)
    print(f"{len(rows)} specs, {total} shards total")
    return 0


def _install_runner_logging(verbose: bool) -> None:
    """Route the ``repro.runner`` logger to the *current* ``sys.stdout``.

    Per-shard cache hit/miss lines are logged at DEBUG and shown only
    with ``-v``; run summaries (INFO) always print. The handler is
    re-bound on every CLI invocation because test harnesses replace
    ``sys.stdout`` per test — the previous invocation's handler (tagged
    ``_repro_cli``) is dropped to avoid duplicate lines."""
    import logging

    logger = logging.getLogger("repro.runner")
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stdout)
    handler.setLevel(logging.DEBUG if verbose else logging.INFO)
    handler._repro_cli = True
    logger.addHandler(handler)


def _obs_dir(store) -> pathlib.Path:
    """Trace artifacts live beside the object store, not inside it:
    tracing never changes a result bit, so it must never change a
    content address (same carve-out as ``--jobs``)."""
    return store.root / "obs"


def _persist_observation(trace, store, trace_path: Optional[pathlib.Path],
                         profile: bool) -> None:
    import json
    import os
    import time as _time

    from . import obs

    if trace_path is not None:
        obs.write_chrome_trace(trace, trace_path)
        print(f"[obs] chrome trace written to {trace_path}")
    directory = _obs_dir(store)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = _time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
    obs.write_chrome_trace(trace, directory / f"trace-{stamp}.json")
    (directory / f"stats-{stamp}.json").write_text(
        json.dumps(obs.stats_doc(trace), indent=1, sort_keys=True) + "\n"
    )
    if profile:
        print(obs.profile_tree(trace))


def _schedule(names: List[str], args):
    """The one scheduling path both ``run`` and ``all`` share: resolve
    fidelity (legacy ``--step`` is an override on the default preset —
    argparse keeps it mutually exclusive with ``--fidelity``), run, and
    print each table."""
    from . import obs
    from .runner import run_many

    _install_runner_logging(args.verbose)
    fidelity_pos = getattr(args, "fidelity_pos", None)
    fidelity = fidelity_pos or args.fidelity or "default"
    overrides = (
        {"step": args.step}
        if args.fidelity is None and fidelity_pos is None else None
    )
    store = _make_store(args.store)
    observed = args.trace is not None or args.profile

    def _run():
        return run_many(
            names,
            fidelity=fidelity,
            jobs=args.jobs,
            seed=args.seed,
            force=args.force,
            store=store,
            overrides=overrides,
        )

    if observed:
        with obs.observe() as trace:
            reports = _run()
        _persist_observation(trace, store, args.trace, args.profile)
    else:
        reports = _run()
    status = 0
    for rep in reports:
        print(rep.result.to_text())
        print()
        if not rep.result.all_checks_pass:
            status = 1
    return reports, status


def _cmd_stats(args) -> int:
    import json

    from . import obs

    store = _make_store(args.store)
    directory = _obs_dir(store)
    docs = sorted(directory.glob("stats-*.json")) if directory.exists() else []
    spools = sorted(directory.glob("serve-*.jsonl")) if directory.exists() else []
    if not docs and not spools:
        print(f"error: no stats documents under {directory} "
              "(run with --trace or --profile first)", file=sys.stderr)
        return 1
    merged = []
    if docs:
        newest = docs[-1]
        print(f"[obs] {newest}")
        merged.append(json.loads(newest.read_text()))
    if spools:
        # Serve spools are per-process delta streams; one read aggregates
        # every connection's counters across server restarts.
        print(f"[obs] {len(spools)} serve spool(s) under {directory}")
        merged.append(obs.stats_doc(obs.read_spool_trace(spools)))
    doc = merged[0] if len(merged) == 1 else obs.merge_stats_docs(merged)
    print(obs.render_stats(doc))
    return 0


def _cmd_run(args) -> int:
    if args.list_specs:
        return _cmd_run_list(args.fidelity or "default")
    if args.experiment is None:
        print("error: provide a spec name, 'all', or --list", file=sys.stderr)
        return 2
    names = (list(ALL_EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    reports, status = _schedule(names, args)
    if args.out is not None:
        args.out.write_text(
            "\n\n".join(rep.result.to_text() for rep in reports) + "\n"
        )
    return status


def _cmd_all(args) -> int:
    reports, status = _schedule(list(ALL_EXPERIMENTS), args)
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for rep in reports:
            (args.out_dir / f"{rep.result.experiment_id}.txt").write_text(
                rep.result.to_text() + "\n"
            )
    return status


def _cmd_report(args) -> int:
    from .runner import load_results, write_archives, write_experiments_md

    store = _make_store(args.store)
    results = load_results(store, fidelity=args.fidelity, seed=args.seed)
    problems = write_archives(results, args.out_dir, check=args.check)
    if args.md is not None:
        if args.check:
            # --check is a read-only drift check: never mutate the tree.
            print(f"[report] --check: skipping write of {args.md}")
        else:
            write_experiments_md(results, args.md)
    return 0 if problems == 0 else 1


def _audit_table(audit, title: str) -> str:
    rows = [
        [e.node, e.op,
         "-" if e.required_scc is None else e.required_scc,
         round(e.measured_scc, 3), round(e.expected_value, 3),
         round(e.measured_value, 3), "VIOLATED" if e.violated else "ok"]
        for e in audit.entries
    ]
    return render_table(
        ["node", "op", "req SCC", "meas SCC", "expected", "measured", "status"],
        rows, title=title,
    )


def _cmd_engine(
    graph_name: str, length: int, tolerance: float,
    streaming: bool = False, tile_words: int = 4096, jobs: int = 1,
    profile: bool = False, trace_path: Optional[pathlib.Path] = None,
    no_optimize: bool = False,
) -> int:
    import contextlib

    from . import obs
    from .engine import build_graph, cache_info, compile_graph

    observed = profile or trace_path is not None
    context = obs.observe() if observed else contextlib.nullcontext()
    with context as trace:
        graph = build_graph(graph_name)
        before = cache_info()
        plan = compile_graph(graph, optimize=not no_optimize)
        after = cache_info()
        outcome = "hit" if after["hits"] > before["hits"] else "miss"
        print(plan.describe())
        print(f"plan cache: {outcome} (total {after['hits']} hits / "
              f"{after['misses']} misses, {after['size']} plans cached)")
        print()
        if streaming:
            from .bitstream.streaming import tile_count

            audit = plan.audit_streaming(
                length, tile_words=tile_words, tolerance=tolerance, jobs=jobs
            )
            tiles = tile_count(length, tile_words)
            suffix = f", jobs={jobs}" if jobs > 1 else ""
            title = (f"Streaming audit — {graph_name} "
                     f"(N={length}, {tiles} tiles x {tile_words} words{suffix})")
        else:
            audit = plan.audit(length, tolerance=tolerance)
            title = f"Engine audit — {graph_name} (N={length})"
        print(_audit_table(audit, title))
        print(f"violations: {len(audit.violations)}/{len(audit.entries)}")
    if observed:
        if trace_path is not None:
            obs.write_chrome_trace(trace, trace_path)
            print(f"[obs] chrome trace written to {trace_path}")
        if profile:
            print(obs.profile_tree(trace))
    return 0


def _cmd_audit(graph_name: str, length: int, tolerance: float, fix: bool) -> int:
    from .engine import build_graph
    from .graph import autofix

    graph = build_graph(graph_name)
    audit = graph.audit(length, tolerance=tolerance)
    print(_audit_table(audit, f"Correlation audit — {graph_name} (N={length})"))
    print(f"violations: {len(audit.violations)}/{len(audit.entries)}")
    if fix:
        report_ = autofix(graph, length=length, tolerance=tolerance, iterations=4)
        print()
        if report_.insertions:
            for insertion in report_.insertions:
                print(f"  inserted {insertion}")
        else:
            print("  nothing to fix")
        print(f"added hardware: {report_.added_area_um2:.1f} um2, "
              f"{report_.added_power_uw:.2f} uW")
        fixed_audit = report_.fixed_graph.audit(length, tolerance=tolerance)
        print(_audit_table(fixed_audit, "After autofix"))
        return 0 if not fixed_audit.violations else 1
    return 0 if not audit.violations else 1


def _cmd_costs() -> int:
    rows = []
    for name in ("and_gate", "or_gate", "xor_gate", "mux_adder", "ca_adder",
                 "ca_max", "isolator", "synchronizer", "desynchronizer",
                 "sync_max", "sync_min", "desync_saturating_adder",
                 "shuffle_buffer", "decorrelator", "tfm", "lfsr_rng",
                 "d2s_converter", "s2d_converter", "regenerator"):
        r = report(getattr(components, name)())
        rows.append([name, r.area_um2, r.power_uw, r.energy_pj(256)])
    print(render_table(
        ["component", "area um2", "power uW", "energy pJ (N=256)"], rows,
        title="Hardware component costs (65nm-calibrated model)",
    ))
    return 0


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, serve_forever

    store_root = None
    if not args.no_store:
        store_root = str(_make_store(args.store).root)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        budget_bytes=args.budget_mb * 1024 * 1024,
        stream_jobs=args.jobs,
        tile_words=args.tile_words,
        store_root=store_root,
        workers=args.workers,
    )
    try:
        serve_forever(config)
    except KeyboardInterrupt:
        print("[serve] interrupted")
    return 0


def _parse_value_overrides(pairs: List[str]) -> dict:
    values = {}
    for pair in pairs:
        name, _, text = pair.partition("=")
        if not name or not text:
            raise SystemExit(f"error: --value expects SOURCE=V, got {pair!r}")
        try:
            values[name] = float(text)
        except ValueError:
            raise SystemExit(f"error: --value {pair!r}: not a number")
    return values


def _cmd_client(args) -> int:
    import json

    from .serve import ServeClient

    payload = {"kind": args.kind}
    if args.kind in ("run", "audit"):
        if args.target is None:
            print("error: run/audit need a graph name", file=sys.stderr)
            return 2
        payload.update(graph=args.target, length=args.length)
        values = _parse_value_overrides(args.value)
        if values:
            payload["values"] = values
        if args.kind == "audit":
            payload["tolerance"] = args.tolerance
    elif args.kind == "spec":
        if args.target is None:
            print("error: spec requests need a spec name", file=sys.stderr)
            return 2
        payload.update(spec=args.target, fidelity=args.fidelity)
        if args.seed is not None:
            payload["seed"] = args.seed
    with ServeClient(args.host, args.port) as client:
        response = client.request(payload)
    print(json.dumps(response, indent=1, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_bench_serve(args) -> int:
    from .serve import ServeClient
    from .serve.loadgen import audit_request, run_load, run_request

    make = audit_request if args.kind == "audit" else run_request
    report_ = run_load(
        args.host, args.port,
        concurrency=args.concurrency,
        per_worker=args.requests,
        make_request=lambda i: make(args.graph, args.length, i),
    )
    print(render_table(
        ["requests", "errors", "rps", "p50 ms", "p99 ms", "max batch"],
        [[report_.requests, report_.errors,
          round(report_.throughput_rps, 1), round(report_.p50_ms, 2),
          round(report_.p99_ms, 2), report_.coalesced_max]],
        title=(f"bench-serve — {args.kind} {args.graph} N={args.length}, "
               f"concurrency {args.concurrency}"),
    ))
    with ServeClient(args.host, args.port) as client:
        counters = client.stats()["counters"]
    batched = counters.get("serve.coalesce.batched", 0)
    solo = counters.get("serve.coalesce.solo", 0)
    print(f"server counters: batched={batched} solo={solo}")
    return 0 if report_.errors == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "pool", None) is not None:
        from .engine.pool import set_default_pool

        set_default_pool(args.pool)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "engine":
        return _cmd_engine(args.graph, args.length, args.tolerance,
                           args.streaming, args.tile_words, args.jobs,
                           args.profile, args.trace, args.no_optimize)
    if args.command == "audit":
        return _cmd_audit(args.graph, args.length, args.tolerance, args.fix)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args)
    return _cmd_costs()


if __name__ == "__main__":
    sys.exit(main())
