"""Compare-exchange networks over stochastic numbers.

Sorting and rank-order filtering are the showcase applications for
accurate SC min/max (the paper's Fig. 5 operators): a compare-exchange
(CE) is exactly one ``{min, max}`` pair, so any sorting network lifts
directly to the SC domain. This module provides:

* :class:`CompareExchangeNetwork` — run any CE schedule with pluggable
  min/max ops (gate-only baselines or the synchronizer-based designs);
* :func:`median9_network` / :func:`median5_network` — the classic
  fixed-depth median networks;
* :func:`bitonic_network` — a full bitonic sorter for power-of-two widths;
* hardware costing of a network instance.

The float-reference path (:meth:`CompareExchangeNetwork.apply_values`)
runs the same schedule on plain numbers, so tests can verify that a
schedule really sorts / selects the median before trusting it on streams.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int
from ..arith.maxmin import AndMin, OrMax
from ..core.improved_ops import SyncMax, SyncMin
from ..exceptions import CircuitConfigurationError
from ..hardware import Netlist, components

__all__ = [
    "CompareExchangeNetwork",
    "median9_network",
    "median5_network",
    "bitonic_network",
]

Schedule = List[Tuple[int, int]]

# The classic fixed 19-CE median-of-9 schedule (median lands at slot 4).
_MEDIAN9: Schedule = [
    (0, 1), (3, 4), (6, 7),
    (1, 2), (4, 5), (7, 8),
    (0, 1), (3, 4), (6, 7),
    (0, 3), (5, 8), (4, 7),
    (3, 6), (1, 4), (2, 5),
    (4, 7), (4, 2), (6, 4),
    (4, 2),
]

# 7-CE median-of-5 (median lands at slot 2).
_MEDIAN5: Schedule = [
    (0, 1), (3, 4), (0, 3), (1, 4), (1, 2), (2, 3), (1, 2),
]


class CompareExchangeNetwork:
    """A fixed schedule of compare-exchange stages.

    Each schedule entry ``(a, b)`` replaces slot ``a`` with
    ``min(a, b)`` and slot ``b`` with ``max(a, b)``.

    Args:
        width: number of input lanes.
        schedule: CE pairs, applied in order.
        output_slots: which lanes carry the result (e.g. ``(4,)`` for the
            median-of-9 network, ``range(width)`` for a full sorter).
        use_synchronizers: pick the paper's SyncMin/SyncMax (default) or
            the bare AND/OR gates (the inaccurate baseline).
        sync_depth: synchronizer save depth when enabled.
    """

    def __init__(
        self,
        width: int,
        schedule: Schedule,
        output_slots: Sequence[int],
        *,
        use_synchronizers: bool = True,
        sync_depth: int = 1,
    ) -> None:
        self.width = check_positive_int(width, name="width")
        for a, b in schedule:
            if not (0 <= a < width and 0 <= b < width) or a == b:
                raise CircuitConfigurationError(
                    f"invalid compare-exchange pair ({a}, {b}) for width {width}"
                )
        self.schedule = list(schedule)
        self.output_slots = tuple(output_slots)
        for slot in self.output_slots:
            if not 0 <= slot < width:
                raise CircuitConfigurationError(f"output slot {slot} out of range")
        self.use_synchronizers = bool(use_synchronizers)
        self._sync_depth = check_positive_int(sync_depth, name="sync_depth")
        if use_synchronizers:
            self._min_op = SyncMin(depth=sync_depth)
            self._max_op = SyncMax(depth=sync_depth)
        else:
            self._min_op = AndMin()
            self._max_op = OrMax()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def apply_values(self, values: np.ndarray) -> np.ndarray:
        """Float reference: run the schedule on plain numbers.

        Args:
            values: ``(..., width)`` array.

        Returns:
            ``(..., len(output_slots))`` selected outputs.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape[-1] != self.width:
            raise CircuitConfigurationError(
                f"expected trailing dim {self.width}, got {values.shape[-1]}"
            )
        lanes = [values[..., i].copy() for i in range(self.width)]
        for a, b in self.schedule:
            lo = np.minimum(lanes[a], lanes[b])
            hi = np.maximum(lanes[a], lanes[b])
            lanes[a], lanes[b] = lo, hi
        return np.stack([lanes[s] for s in self.output_slots], axis=-1)

    def apply_streams(self, streams: np.ndarray) -> np.ndarray:
        """Run the schedule on SC streams.

        Args:
            streams: ``(batch, width, N)`` uint8 stream lanes.

        Returns:
            ``(batch, len(output_slots), N)`` output streams.
        """
        streams = np.asarray(streams, dtype=np.uint8)
        if streams.ndim != 3 or streams.shape[1] != self.width:
            raise CircuitConfigurationError(
                f"expected (batch, {self.width}, N) streams, got {streams.shape}"
            )
        lanes = [streams[:, i, :] for i in range(self.width)]
        for a, b in self.schedule:
            lo = self._min_op.compute(lanes[a], lanes[b])
            hi = self._max_op.compute(lanes[a], lanes[b])
            lanes[a], lanes[b] = lo, hi
        return np.stack([lanes[s] for s in self.output_slots], axis=1)

    # ------------------------------------------------------------------ #
    # Hardware
    # ------------------------------------------------------------------ #

    def netlist(self) -> Netlist:
        """Hardware cost of one network instance (one CE = min + max)."""
        if self.use_synchronizers:
            ce = components.sync_min(self._sync_depth) + components.sync_max(self._sync_depth)
        else:
            ce = components.and_gate() + components.or_gate()
        return (ce * len(self.schedule)).renamed(
            f"ce_network[{len(self.schedule)} stages]"
        )


def median9_network(**kwargs) -> CompareExchangeNetwork:
    """The fixed 19-stage median-of-9 network (3x3 median filter core)."""
    return CompareExchangeNetwork(9, _MEDIAN9, output_slots=(4,), **kwargs)


def median5_network(**kwargs) -> CompareExchangeNetwork:
    """The fixed 7-stage median-of-5 network."""
    return CompareExchangeNetwork(5, _MEDIAN5, output_slots=(2,), **kwargs)


def bitonic_network(width: int, **kwargs) -> CompareExchangeNetwork:
    """A full bitonic sorter for power-of-two ``width`` (ascending)."""
    check_positive_int(width, name="width")
    if width & (width - 1):
        raise CircuitConfigurationError(f"bitonic width must be a power of two, got {width}")
    schedule: Schedule = []
    k = 2
    while k <= width:
        j = k // 2
        while j >= 1:
            for i in range(width):
                partner = i ^ j
                if partner > i:
                    if i & k:
                        schedule.append((partner, i))  # descending region
                    else:
                        schedule.append((i, partner))
            j //= 2
        k *= 2
    return CompareExchangeNetwork(width, schedule, output_slots=range(width), **kwargs)
