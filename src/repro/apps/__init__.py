"""Application layer: rank-order networks built on the paper's operators.

Sorting and median filtering lift onto SC via compare-exchange networks in
which every stage is one synchronizer-based {min, max} pair (Fig. 5)."""

from .networks import (
    CompareExchangeNetwork,
    bitonic_network,
    median5_network,
    median9_network,
)

__all__ = [
    "CompareExchangeNetwork",
    "median9_network",
    "median5_network",
    "bitonic_network",
]
