"""Area / power / energy reporting on top of netlists.

Energy model: an SC operation over a stream of length ``N`` runs for ``N``
cycles, so ``energy = power x N x T_eff`` where ``T_eff`` is the effective
cycle time. ``T_eff`` is calibrated from the paper's own Table III: every
row satisfies ``energy_pJ ~ power_uW x 634 us`` at N = 256, giving
``T_eff = 634/256 ~ 2.48 us``. (That figure folds the authors' clocking
and measurement conventions into one constant; since every design shares
it, energy *ratios* — the quantities the paper argues with — are
unaffected by its absolute value.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import HardwareModelError
from .netlist import Netlist

__all__ = ["EFFECTIVE_CYCLE_US", "CostReport", "report"]

# Effective cycle time implied by Table III (see module docstring).
EFFECTIVE_CYCLE_US = 2.48


@dataclass(frozen=True)
class CostReport:
    """Hardware cost summary for one design."""

    name: str
    area_um2: float
    power_uw: float

    def energy_pj(self, cycles: int, cycle_us: float = EFFECTIVE_CYCLE_US) -> float:
        """Energy in pJ for a ``cycles``-long operation.

        ``power[uW] x time[us] = energy[pJ]``.
        """
        if cycles <= 0:
            raise HardwareModelError(f"cycles must be positive, got {cycles}")
        if cycle_us <= 0:
            raise HardwareModelError(f"cycle_us must be positive, got {cycle_us}")
        return self.power_uw * cycles * cycle_us

    def energy_nj(self, cycles: int, cycle_us: float = EFFECTIVE_CYCLE_US) -> float:
        """Energy in nJ for a ``cycles``-long operation."""
        return self.energy_pj(cycles, cycle_us) / 1000.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.area_um2:.2f} um2, {self.power_uw:.2f} uW"
        )


def report(netlist: Netlist) -> CostReport:
    """Summarise a netlist into a :class:`CostReport`."""
    return CostReport(
        name=netlist.name,
        area_um2=netlist.area_um2,
        power_uw=netlist.power_uw,
    )
