"""Structural netlists: bags of standard cells with activity factors.

A :class:`Netlist` is the unit of hardware accounting. Component builders
(:mod:`repro.hardware.components`) assemble one netlist per circuit;
netlists compose with ``+`` (instantiating blocks side by side) and ``*``
(arrays of identical units), so an accelerator's cost is literally the sum
of its parts — the same arithmetic the paper's Table IV does over kernels,
converters, RNGs, and synchronizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..exceptions import HardwareModelError
from .gatelib import GateSpec, cell

__all__ = ["NetlistEntry", "Netlist"]


@dataclass(frozen=True)
class NetlistEntry:
    """``count`` instances of ``gate`` switching at ``activity`` (x nominal)."""

    gate: GateSpec
    count: float
    activity: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise HardwareModelError(f"negative cell count for {self.gate.name}")
        if self.activity <= 0:
            raise HardwareModelError(f"activity must be positive for {self.gate.name}")

    @property
    def area_um2(self) -> float:
        return self.gate.area_um2 * self.count

    @property
    def power_uw(self) -> float:
        return self.gate.power_uw * self.count * self.activity


class Netlist:
    """A named collection of cell instances."""

    def __init__(self, name: str, entries: Iterable[NetlistEntry] = ()) -> None:
        self._name = str(name)
        self._entries: Tuple[NetlistEntry, ...] = tuple(entries)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, name: str, **cells: float) -> "Netlist":
        """Shorthand: ``Netlist.build("foo", DFF=2, GATE=11)``."""
        return cls(name, [NetlistEntry(cell(c), n) for c, n in cells.items()])

    def with_entry(self, cell_name: str, count: float, activity: float = 1.0) -> "Netlist":
        """Return a copy with one more entry appended."""
        return Netlist(
            self._name,
            self._entries + (NetlistEntry(cell(cell_name), count, activity),),
        )

    def renamed(self, name: str) -> "Netlist":
        return Netlist(name, self._entries)

    def scaled_activity(self, factor: float) -> "Netlist":
        """Uniformly rescale every entry's activity (trace-level knob)."""
        if factor <= 0:
            raise HardwareModelError(f"activity factor must be positive, got {factor}")
        return Netlist(
            self._name,
            tuple(
                NetlistEntry(e.gate, e.count, e.activity * factor) for e in self._entries
            ),
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._name

    @property
    def entries(self) -> Tuple[NetlistEntry, ...]:
        return self._entries

    @property
    def area_um2(self) -> float:
        """Total cell area in um^2."""
        return sum(e.area_um2 for e in self._entries)

    @property
    def power_uw(self) -> float:
        """Total average power in uW."""
        return sum(e.power_uw for e in self._entries)

    def gate_count(self) -> float:
        """Total cell instances (diagnostic)."""
        return sum(e.count for e in self._entries)

    def cell_histogram(self) -> Dict[str, float]:
        """Instance counts per cell type."""
        hist: Dict[str, float] = {}
        for e in self._entries:
            hist[e.gate.name] = hist.get(e.gate.name, 0.0) + e.count
        return hist

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #

    def __add__(self, other: "Netlist") -> "Netlist":
        if not isinstance(other, Netlist):
            return NotImplemented
        return Netlist(f"{self._name}+{other._name}", self._entries + other._entries)

    def __mul__(self, count: int) -> "Netlist":
        if not isinstance(count, int):
            return NotImplemented
        if count < 0:
            raise HardwareModelError(f"cannot instantiate {count} copies of {self._name}")
        return Netlist(
            f"{count}x{self._name}",
            tuple(
                NetlistEntry(e.gate, e.count * count, e.activity) for e in self._entries
            ),
        )

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return (
            f"Netlist({self._name!r}, area={self.area_um2:.2f}um2, "
            f"power={self.power_uw:.2f}uW)"
        )
