"""Standard-cell library for the gate-level cost model.

The paper reports area/power/energy from a TSMC 65nm Synopsys flow
(Design Compiler + IC Compiler + PrimeTime, post-place-and-route power on
random traces). That flow is not reproducible here, so the library
substitutes a *calibrated structural model*: every circuit is decomposed
into the standard cells below, and area/power are the weighted sums of
per-cell constants.

Calibration anchors (documented in DESIGN.md):

* A 2-input combinational gate is pinned to the paper's standalone OR/AND
  op (Table III: 2.16 um^2, ~0.26 uW).
* The flip-flop constants are chosen so the synchronizer-based max lands
  at the paper's 48.6 um^2 / 4.89 uW.
* Energy uses the effective cycle time implied by Table III
  (energy = power x N x T_eff with T_eff ~ 2.48 us; see
  :mod:`repro.hardware.costs`).

What the model preserves is the *relative* cost of designs — gate-count
ratios — which is what the paper's conclusions (5.2x, 11.6x, 3.0x, 24%)
rest on. Activity-dependent power differences between identical netlists
(the paper's sync-min vs sync-max) are captured by an explicit per-entry
activity factor rather than trace simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..exceptions import HardwareModelError

__all__ = ["GateSpec", "STDCELLS", "cell"]


@dataclass(frozen=True)
class GateSpec:
    """One standard cell: name, area in um^2, nominal power in uW.

    Power is the average (leakage + dynamic) draw at the calibration
    activity; netlist entries can scale it with an activity factor.
    """

    name: str
    area_um2: float
    power_uw: float

    def __post_init__(self) -> None:
        if self.area_um2 <= 0 or self.power_uw <= 0:
            raise HardwareModelError(
                f"cell {self.name!r} must have positive area and power "
                f"(got {self.area_um2}, {self.power_uw})"
            )


STDCELLS: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in (
        GateSpec("INV", 0.72, 0.05),
        GateSpec("NAND2", 1.44, 0.09),
        GateSpec("NOR2", 1.44, 0.09),
        GateSpec("AND2", 2.16, 0.25),   # anchor: paper's standalone AND op
        GateSpec("OR2", 2.16, 0.26),    # anchor: paper's standalone OR op
        GateSpec("XOR2", 2.88, 0.30),
        GateSpec("XNOR2", 2.88, 0.30),
        GateSpec("MUX2", 2.88, 0.28),
        GateSpec("AOI21", 2.16, 0.12),
        GateSpec("GATE", 2.16, 0.12),   # generic FSM/datapath logic gate
        GateSpec("DFF", 12.0, 1.80),    # anchor: synchronizer max total
        GateSpec("SRAM_BIT", 1.80, 0.08),
    )
}


def cell(name: str) -> GateSpec:
    """Look up a cell by name.

    Raises:
        HardwareModelError: for unknown cells (lists the library).
    """
    try:
        return STDCELLS[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown cell {name!r}; library has: {', '.join(sorted(STDCELLS))}"
        ) from None
