"""Netlist builders for every circuit in the library.

Each builder returns a :class:`~repro.hardware.netlist.Netlist` decomposing
the circuit into standard cells. Decompositions follow the structural
descriptions in the paper (Figs. 2-5) and its references; the cell
constants are calibrated per :mod:`repro.hardware.gatelib`.

Conventions:

* ``width`` is the binary precision ``log2(N)`` (8 for the paper's
  N = 256 experiments).
* FSM state registers are sized as ``ceil(log2(#states))`` flip-flops with
  a few logic gates per state bit for next-state and output decode.
* Activity factors: counters and TFMs toggle far more than FSMs that
  mostly pass bits through; their entries carry explicit activity
  multipliers (the static stand-in for the paper's random-trace power
  simulation).
"""

from __future__ import annotations

import math

from .._validation import check_positive_int
from .netlist import Netlist, NetlistEntry
from .gatelib import cell

__all__ = [
    "or_gate",
    "and_gate",
    "xor_gate",
    "mux_adder",
    "isolator",
    "lfsr_rng",
    "comparator",
    "d2s_converter",
    "s2d_converter",
    "regenerator",
    "synchronizer",
    "desynchronizer",
    "sync_max",
    "sync_min",
    "desync_saturating_adder",
    "ca_adder",
    "ca_max",
    "shuffle_buffer",
    "decorrelator",
    "tfm",
    "gaussian_blur_kernel",
    "roberts_cross_kernel",
]


def _state_bits(states: int) -> int:
    return max(1, math.ceil(math.log2(states)))


# ---------------------------------------------------------------------- #
# Combinational SC operators (paper Fig. 2)
# ---------------------------------------------------------------------- #

def or_gate() -> Netlist:
    """Bare OR: the paper's baseline max / saturating adder."""
    return Netlist.build("or_gate", OR2=1)


def and_gate() -> Netlist:
    """Bare AND: the paper's multiplier / baseline min."""
    return Netlist.build("and_gate", AND2=1)


def xor_gate() -> Netlist:
    """Bare XOR: the correlated subtractor."""
    return Netlist.build("xor_gate", XOR2=1)


def mux_adder() -> Netlist:
    """MUX scaled adder (select stream generation charged separately)."""
    return Netlist.build("mux_adder", MUX2=1)


def isolator() -> Netlist:
    """One D flip-flop (Ting & Hayes isolator)."""
    return Netlist.build("isolator", DFF=1)


# ---------------------------------------------------------------------- #
# Number sources and converters
# ---------------------------------------------------------------------- #

def lfsr_rng(width: int = 8) -> Netlist:
    """Maximal-length LFSR: ``width`` flip-flops + feedback XORs."""
    width = check_positive_int(width, name="width")
    return Netlist(
        "lfsr_rng",
        (
            NetlistEntry(cell("DFF"), width, activity=1.0),
            NetlistEntry(cell("XOR2"), max(1, width // 3)),
        ),
    )


def comparator(width: int = 8) -> Netlist:
    """``width``-bit magnitude comparator (~3 gates/bit)."""
    width = check_positive_int(width, name="width")
    return Netlist.build("comparator", GATE=3 * width)


def d2s_converter(width: int = 8) -> Netlist:
    """D/S converter: input hold register + comparator (RNG shared,
    charged separately)."""
    width = check_positive_int(width, name="width")
    return Netlist(
        "d2s",
        (
            NetlistEntry(cell("DFF"), width, activity=0.5),  # held input
            NetlistEntry(cell("GATE"), 3 * width),
        ),
    )


def s2d_converter(width: int = 8) -> Netlist:
    """S/D converter: ``width``-bit ripple counter."""
    width = check_positive_int(width, name="width")
    return Netlist(
        "s2d",
        (
            NetlistEntry(cell("DFF"), width, activity=1.2),
            NetlistEntry(cell("GATE"), width, activity=1.2),
        ),
    )


def regenerator(width: int = 8) -> Netlist:
    """Regeneration unit: S/D counter feeding a D/S comparator.

    The counter doubles as the hold register for the re-encoding phase, so
    the unit is one counter + one comparator (~165 um^2 at width 8 — the
    per-unit area increment implied by the paper's Table IV).
    """
    width = check_positive_int(width, name="width")
    return Netlist(
        "regenerator",
        (
            NetlistEntry(cell("DFF"), width, activity=1.2),
            NetlistEntry(cell("GATE"), width, activity=1.2),
            NetlistEntry(cell("GATE"), 3 * width),
        ),
    )


# ---------------------------------------------------------------------- #
# The paper's correlation manipulating circuits
# ---------------------------------------------------------------------- #

def synchronizer(depth: int = 1) -> Netlist:
    """Synchronizer FSM (Fig. 3a): ``2*depth + 1`` states."""
    depth = check_positive_int(depth, name="depth")
    bits = _state_bits(2 * depth + 1)
    return Netlist.build("synchronizer", DFF=bits, GATE=3 + 4 * bits)


def desynchronizer(depth: int = 1) -> Netlist:
    """Desynchronizer FSM (Fig. 3b): ``2*(depth + 1)`` states."""
    depth = check_positive_int(depth, name="depth")
    bits = _state_bits(2 * (depth + 1))
    return Netlist.build("desynchronizer", DFF=bits, GATE=4 + 4 * bits)


def sync_max(depth: int = 1) -> Netlist:
    """Improved maximum: synchronizer + OR (Fig. 5a)."""
    return (synchronizer(depth) + or_gate()).renamed("sync_max")


def sync_min(depth: int = 1) -> Netlist:
    """Improved minimum: synchronizer + AND (Fig. 5b)."""
    return (synchronizer(depth) + and_gate()).renamed("sync_min")


def desync_saturating_adder(depth: int = 1) -> Netlist:
    """Improved saturating adder: desynchronizer + OR (Fig. 5c)."""
    return (desynchronizer(depth) + or_gate()).renamed("desync_sat_add")


def shuffle_buffer(depth: int = 4) -> Netlist:
    """Shuffle buffer (Fig. 4b): ``depth`` bit cells + decode + output mux."""
    depth = check_positive_int(depth, name="depth")
    return Netlist(
        "shuffle_buffer",
        (
            NetlistEntry(cell("DFF"), depth),
            NetlistEntry(cell("GATE"), 2 * depth),   # address decode + enables
            NetlistEntry(cell("MUX2"), depth - 1),   # output mux tree
        ),
    )


def decorrelator(depth: int = 4) -> Netlist:
    """Decorrelator (Fig. 4a): two shuffle buffers (aux RNGs charged
    separately, as they are shared infrastructure)."""
    return (shuffle_buffer(depth) * 2).renamed("decorrelator")


def tfm(bits: int = 8) -> Netlist:
    """Tracking forecast memory: EMA register + shifter-adder + comparator.

    Larger than the decorrelator because parts are binary-encoded
    arithmetic (paper Section V).
    """
    bits = check_positive_int(bits, name="bits")
    return Netlist(
        "tfm",
        (
            NetlistEntry(cell("DFF"), bits, activity=1.5),
            NetlistEntry(cell("GATE"), 5 * bits, activity=1.5),  # EMA update
            NetlistEntry(cell("GATE"), 3 * bits),                # comparator
        ),
    )


# ---------------------------------------------------------------------- #
# Correlation-agnostic baselines
# ---------------------------------------------------------------------- #

def ca_adder() -> Netlist:
    """Correlation-agnostic adder (serial full adder + carry flip-flop)."""
    return Netlist(
        "ca_adder",
        (
            NetlistEntry(cell("DFF"), 1),
            NetlistEntry(cell("XOR2"), 2),  # sum path x ^ y ^ carry
            NetlistEntry(cell("GATE"), 3),  # majority carry logic
        ),
    )


def ca_max(counter_bits: int = 8) -> Netlist:
    """Correlation-agnostic max (SC-DCNN): saturating up/down counter,
    lead compare, steering mux. Counter datapaths toggle constantly, hence
    the high activity factor (matches the paper's 56.7 uW)."""
    counter_bits = check_positive_int(counter_bits, name="counter_bits")
    return Netlist(
        "ca_max",
        (
            NetlistEntry(cell("DFF"), counter_bits, activity=2.5),
            NetlistEntry(cell("GATE"), 8 * counter_bits, activity=2.5),
            NetlistEntry(cell("GATE"), 5, activity=2.5),
            NetlistEntry(cell("MUX2"), 1),
        ),
    )


# ---------------------------------------------------------------------- #
# Image pipeline kernels (Section IV)
# ---------------------------------------------------------------------- #

def gaussian_blur_kernel() -> Netlist:
    """3x3 SC Gaussian blur: a 16-slot weighted mux tree (15 MUX2) plus
    select decode; select RNG shared across the tile, charged separately."""
    return Netlist(
        "gaussian_blur_kernel",
        (
            NetlistEntry(cell("MUX2"), 15),
            NetlistEntry(cell("GATE"), 6),
        ),
    )


def roberts_cross_kernel() -> Netlist:
    """Roberts cross ED: two XOR subtractors + one MUX scaled adder."""
    return Netlist(
        "roberts_cross_kernel",
        (
            NetlistEntry(cell("XOR2"), 2),
            NetlistEntry(cell("MUX2"), 1),
        ),
    )
