"""Gate-level area / power / energy model.

Substitutes for the paper's TSMC 65nm Synopsys flow with a calibrated
structural model (see DESIGN.md, "Substitutions"):

* :mod:`~repro.hardware.gatelib` — the standard-cell constants;
* :mod:`~repro.hardware.netlist` — composable cell-bag netlists;
* :mod:`~repro.hardware.components` — one netlist builder per circuit;
* :mod:`~repro.hardware.costs` — area/power reports and the Table III
  energy convention.
"""

from . import components
from .costs import EFFECTIVE_CYCLE_US, CostReport, report
from .gatelib import STDCELLS, GateSpec, cell
from .netlist import Netlist, NetlistEntry

__all__ = [
    "GateSpec",
    "STDCELLS",
    "cell",
    "Netlist",
    "NetlistEntry",
    "CostReport",
    "report",
    "EFFECTIVE_CYCLE_US",
    "components",
]
