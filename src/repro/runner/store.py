"""Content-addressed on-disk result store.

Every shard payload is stored under a key that hashes everything the
payload depends on::

    key = sha256(spec, shard label, shard fn reference, kwargs,
                 seed, code version)

so caching, resume-after-interrupt, and staleness detection all fall out
of plain key lookups: re-running an experiment whose inputs and code are
unchanged is a pure cache hit; interrupting a run loses only the shards
in flight; editing any source file under :mod:`repro` changes the code
version and silently invalidates every cached payload (the stale objects
remain on disk until :meth:`ResultStore.prune_stale`).

Alongside the object store, each completed run writes a *manifest* —
``(spec, fidelity, seed) -> ordered shard keys + resolved params`` — the
recipe :mod:`repro.runner.report` follows to reassemble published
artifacts without re-executing anything.

Layout::

    <root>/objects/<key[:2]>/<key>.json   one shard payload + metadata
    <root>/manifests/<spec>--<fidelity>--<seed>.json
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

from ..obs import counter_add
from ..obs import span as obs_span

__all__ = ["ResultStore", "code_version", "jsonify", "DEFAULT_STORE_ENV"]

DEFAULT_STORE_ENV = "REPRO_STORE"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file — the "code-relevant version"
    folded into each content address. Computed once per process."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def jsonify(obj: Any) -> Any:
    """Recursively convert payloads to JSON-native types.

    numpy scalars/arrays become Python scalars/lists (value-exact: float
    round-trips through JSON preserve every bit via shortest-repr), tuples
    become lists, dataclasses become dicts."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return jsonify(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return jsonify(obj.tolist())
    return obj


def _seed_tag(seed: Optional[int]) -> str:
    return "default" if seed is None else str(seed)


def _write_atomic(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically and last-writer-wins-safe.

    The temp file gets a *unique* name per writer (``mkstemp``), so two
    processes (or threads) racing to store the same content key each
    write their own complete file and the final ``os.replace`` publishes
    whichever finished last — a reader can never observe a torn record.
    A shared ``.tmp`` sibling name would let writer B truncate the file
    writer A is about to rename into place.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        # Don't leave orphaned temp files behind on write failure or
        # KeyboardInterrupt; the replace above is the success path.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed shard-payload store with run manifests."""

    def __init__(self, root, *, version: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.version = version if version is not None else code_version()

    # ------------------------------------------------------------------ #
    # keys and paths
    # ------------------------------------------------------------------ #

    def shard_key(
        self,
        spec: str,
        label: str,
        fn_ref: str,
        kwargs: Mapping[str, Any],
        seed: Optional[int],
    ) -> str:
        """The content address of one shard's payload."""
        material = json.dumps(
            {
                "spec": spec,
                "shard": label,
                "fn": fn_ref,
                "kwargs": jsonify(dict(kwargs)),
                "seed": seed,
                "code": self.version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _object_path(self, key: str) -> pathlib.Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _manifest_path(
        self, spec: str, fidelity: str, seed: Optional[int]
    ) -> pathlib.Path:
        return self.root / "manifests" / f"{spec}--{fidelity}--{_seed_tag(seed)}.json"

    # ------------------------------------------------------------------ #
    # objects
    # ------------------------------------------------------------------ #

    def __contains__(self, key: str) -> bool:
        return self._object_path(key).exists()

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None."""
        path = self._object_path(key)
        if not path.exists():
            counter_add("store.read.miss")
            return None
        with obs_span("store.read", key=key[:12]):
            counter_add("store.read.hit")
            return json.loads(path.read_text())["payload"]

    def put(self, key: str, payload: Any, meta: Optional[Mapping[str, Any]] = None) -> pathlib.Path:
        """Store one shard payload (atomic via rename)."""
        with obs_span("store.write", key=key[:12]):
            counter_add("store.write")
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            record = {
                "key": key,
                "code_version": self.version,
                "meta": jsonify(dict(meta or {})),
                "payload": jsonify(payload),
            }
            _write_atomic(path, json.dumps(record, indent=1) + "\n")
            return path

    def entries(self) -> Iterator[dict]:
        """All stored object records (full metadata, no payload order)."""
        objects = self.root / "objects"
        if not objects.exists():
            return
        for path in sorted(objects.rglob("*.json")):
            yield json.loads(path.read_text())

    def stale_keys(self) -> List[str]:
        """Keys written by a different code version than the current one."""
        return [e["key"] for e in self.entries() if e.get("code_version") != self.version]

    def prune_stale(self) -> int:
        """Delete stale objects; returns how many were removed."""
        removed = 0
        for key in self.stale_keys():
            self._object_path(key).unlink(missing_ok=True)
            removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # manifests
    # ------------------------------------------------------------------ #

    def write_manifest(
        self,
        spec: str,
        fidelity: str,
        seed: Optional[int],
        params: Mapping[str, Any],
        shard_keys: List[Dict[str, str]],
    ) -> pathlib.Path:
        """Record the ordered shard keys of a completed run."""
        path = self._manifest_path(spec, fidelity, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        manifest = {
            "spec": spec,
            "fidelity": fidelity,
            "seed": seed,
            "code_version": self.version,
            "params": jsonify(dict(params)),
            "shards": shard_keys,
        }
        _write_atomic(path, json.dumps(manifest, indent=1) + "\n")
        return path

    def read_manifest(
        self, spec: str, fidelity: str, seed: Optional[int]
    ) -> Optional[dict]:
        path = self._manifest_path(spec, fidelity, seed)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def manifests(self) -> Iterator[dict]:
        directory = self.root / "manifests"
        if not directory.exists():
            return
        for path in sorted(directory.glob("*.json")):
            yield json.loads(path.read_text())
