"""Declarative experiment specifications.

Every entry of :data:`repro.analysis.experiments.ALL_EXPERIMENTS` (plus
the ablations and the propagation study, which were already registered
there) is described here as an :class:`ExperimentSpec`: a parameter grid
per fidelity preset (``smoke`` / ``default`` / ``exhaustive``), a
top-level *shard function* (one independent work unit — for the
pair-sweep experiments one configuration of the sweep, i.e. one batched
packed/kernel pass), and a *merge function* assembling shard payloads
into the final :class:`~repro.analysis.experiments.ExperimentResult`.

The spec layer is pure bookkeeping: expanding a spec yields
:class:`Shard` objects whose ``fn``/``kwargs`` the scheduler can run in
any order, in any process (the shard functions are top-level and
picklable), and whose payloads the content-addressed store
(:mod:`repro.runner.store`) can cache individually. ``exhaustive``
fidelity reproduces the benchmark-suite settings exactly, so archives
regenerated from the store are byte-identical to
``benchmarks/results/``; ``default`` matches the historical CLI
defaults; ``smoke`` is the CI-sized preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..analysis import experiments as _exp
from ..analysis.experiments import ExperimentResult
from ..analysis.sweeps import pair_count

__all__ = [
    "FIDELITIES",
    "EXECUTION_PARAMS",
    "Shard",
    "ExperimentSpec",
    "SPEC_REGISTRY",
    "get_spec",
    "merge_single",
    "content_params",
]

FIDELITIES = ("smoke", "default", "exhaustive")

# Parameters that control *how* a shard executes, never *what* it
# computes — its payload is bit-identical at any value (the parallel tile
# scheduler's contract, tests/test_parallel_streaming.py, and the plan
# optimizer's, tests/test_optimizer.py). They are excluded from content
# addresses, stored metadata, and manifests, so a run at ``jobs=4`` or
# ``optimize=False`` hits the cache of — and archives byte-identically
# to — a run at the defaults.
EXECUTION_PARAMS = frozenset({"jobs", "optimize"})


def content_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """``params`` with execution-only keys stripped — the portion that
    participates in content addressing and manifests."""
    return {k: v for k, v in params.items() if k not in EXECUTION_PARAMS}


def merge_single(params: Mapping[str, Any], payloads: List[dict]) -> ExperimentResult:
    """Merge for single-shard specs: the payload *is* the serialized
    :class:`ExperimentResult` (the worker dataclass-dicts it)."""
    return ExperimentResult(**payloads[0])


@dataclass(frozen=True)
class Shard:
    """One independent work unit of an expanded spec."""

    spec: str
    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any]

    @property
    def fn_ref(self) -> str:
        """Stable textual reference to the shard function (part of the
        content-address, so moving/renaming a shard function invalidates
        its cached payloads)."""
        return f"{self.fn.__module__}:{self.fn.__qualname__}"

    @property
    def content_kwargs(self) -> Dict[str, Any]:
        """The kwargs that determine the payload — execution-only keys
        (:data:`EXECUTION_PARAMS`) stripped, so e.g. ``jobs`` never
        perturbs a shard's content address."""
        return content_params(self.kwargs)


def _default_label(value: Any) -> str:
    if isinstance(value, (tuple, list)):
        return "/".join(str(v) for v in value)
    return str(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: fidelity-preset parameter grids that
    expand into independent shards plus a merge recipe."""

    name: str
    title: str
    shard_fn: Callable[..., Any]
    merge_fn: Callable[[Mapping[str, Any], List[dict]], ExperimentResult]
    fidelities: Mapping[str, Mapping[str, Any]]
    axis: Optional[str] = None        # params key holding the shard-axis values
    axis_arg: Optional[str] = None    # shard_fn kwarg receiving one axis value
    label_fn: Callable[[Any], str] = _default_label

    def params(
        self,
        fidelity: str = "default",
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The resolved parameter dict for a fidelity preset, with
        explicit per-call overrides (e.g. the CLI's legacy ``--step``)
        applied on top."""
        if fidelity not in self.fidelities:
            raise KeyError(
                f"spec {self.name!r} has no fidelity {fidelity!r}; "
                f"available: {', '.join(self.fidelities)}"
            )
        params = dict(self.fidelities[fidelity])
        for key, value in (overrides or {}).items():
            if value is None:
                continue
            if key in params:
                params[key] = value
        return params

    def shards(self, params: Mapping[str, Any]) -> List[Shard]:
        """Expand resolved params into independent shards."""
        if self.axis is None:
            return [Shard(self.name, 0, self.name, self.shard_fn, dict(params))]
        values = params[self.axis]
        base = {k: v for k, v in params.items() if k != self.axis}
        return [
            Shard(
                self.name,
                i,
                self.label_fn(value),
                self.shard_fn,
                {**base, self.axis_arg: value},
            )
            for i, value in enumerate(values)
        ]

    def shard_count(self, params: Mapping[str, Any]) -> int:
        return 1 if self.axis is None else len(params[self.axis])

    def grid_summary(self, params: Mapping[str, Any]) -> str:
        """Human-readable grid description for ``run --list``."""
        parts = []
        if "n" in params and "step" in params:
            parts.append(f"{pair_count(params['n'], params['step'])} pairs/shard")
        for key, value in params.items():
            if key in ("n", "step") or key == self.axis or key in EXECUTION_PARAMS:
                continue
            parts.append(f"{key}={value}")
        if self.axis is not None:
            parts.append(f"{self.axis}={len(params[self.axis])}")
        if "step" in params:
            parts.append(f"step={params['step']}")
        return ", ".join(parts) if parts else "-"


def _stepped(smoke_step: int, default_step: int, exhaustive_step: int, **extra):
    """Fidelity presets for the N=256 pair-sweep experiments."""
    return {
        "smoke": {"n": 256, "step": smoke_step, **extra},
        "default": {"n": 256, "step": default_step, **extra},
        "exhaustive": {"n": 256, "step": exhaustive_step, **extra},
    }


_FAULT_RATES_DEFAULT = (0.0, 0.001, 0.005, 0.01, 0.05, 0.1)
_FAULT_RATES_EXHAUSTIVE = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def _build_registry() -> Dict[str, ExperimentSpec]:
    trivial = {"smoke": {}, "default": {}, "exhaustive": {}}
    specs = [
        ExperimentSpec(
            name="table1",
            title="Table I — AND-gate functions vs. correlation",
            shard_fn=_exp.table1,
            merge_fn=merge_single,
            fidelities=trivial,
        ),
        ExperimentSpec(
            name="fig1",
            title="Fig. 1 — worked multiply / scaled-add examples",
            shard_fn=_exp.fig1,
            merge_fn=merge_single,
            fidelities=trivial,
        ),
        ExperimentSpec(
            name="fig2",
            title="Fig. 2 — operator accuracy under required vs. wrong correlation",
            shard_fn=_exp._fig2_shard,
            merge_fn=_exp._fig2_merge,
            axis="rows",
            axis_arg="row",
            fidelities=_stepped(4, 4, 1, rows=_exp._FIG2_ROWS),
        ),
        ExperimentSpec(
            name="table2",
            title="Table II — SCC before/after the correlation manipulating circuits",
            shard_fn=_exp._table2_shard,
            merge_fn=_exp._table2_merge,
            axis="configs",
            axis_arg="config",
            fidelities=_stepped(4, 4, 1, configs=tuple(_exp._TABLE2_PAPER)),
            label_fn=lambda c: f"{c[0]}/{c[1]}+{c[2]}",
        ),
        ExperimentSpec(
            name="table3",
            title="Table III — max/min designs: error, bias, area, power, energy",
            shard_fn=_exp._table3_shard,
            merge_fn=_exp._table3_merge,
            axis="designs",
            axis_arg="design",
            fidelities=_stepped(4, 4, 1, designs=_exp._TABLE3_DESIGNS),
        ),
        ExperimentSpec(
            name="table4",
            title="Table IV — image pipeline: error, area, energy per variant",
            shard_fn=_exp._table4_shard,
            merge_fn=_exp._table4_merge,
            axis="variants",
            axis_arg="variant",
            fidelities={
                # Smaller images only: short streams break the
                # manipulation_improves_quality shape check.
                "smoke": {"image_size": 20, "stream_length": 256,
                          "variants": _exp._TABLE4_VARIANTS},
                "default": {"image_size": 32, "stream_length": 256,
                            "variants": _exp._TABLE4_VARIANTS},
                "exhaustive": {"image_size": 32, "stream_length": 256,
                               "variants": _exp._TABLE4_VARIANTS},
            },
        ),
        ExperimentSpec(
            name="claims",
            title="Prose claims — measured vs paper",
            shard_fn=_exp.claims,
            merge_fn=merge_single,
            fidelities=trivial,
        ),
        ExperimentSpec(
            name="ablation_save_depth",
            title="Ablation — FSM save depth",
            shard_fn=_exp._ablation_save_depth_shard,
            merge_fn=_exp._ablation_save_depth_merge,
            axis="depths",
            axis_arg="depth",
            fidelities={
                "smoke": {"n": 256, "step": 4, "depths": (1, 2, 4, 8)},
                "default": {"n": 256, "step": 4, "depths": (1, 2, 4, 8)},
                "exhaustive": {"n": 256, "step": 2, "depths": (1, 2, 4, 8, 16)},
            },
            label_fn=lambda d: f"D={d}",
        ),
        ExperimentSpec(
            name="ablation_composition",
            title="Ablation — series composition of D=1 synchronizers",
            shard_fn=_exp._ablation_composition_shard,
            merge_fn=_exp._ablation_composition_merge,
            axis="stages",
            axis_arg="stages",
            fidelities={
                "smoke": {"n": 256, "step": 4, "stages": (1, 2, 3, 4)},
                "default": {"n": 256, "step": 4, "stages": (1, 2, 3, 4)},
                "exhaustive": {"n": 256, "step": 2, "stages": (1, 2, 3, 4, 6, 8)},
            },
            label_fn=lambda k: f"x{k}",
        ),
        ExperimentSpec(
            name="ablation_buffer_depth",
            title="Ablation — shuffle buffer depth / init policy",
            shard_fn=_exp._ablation_buffer_depth_shard,
            merge_fn=_exp._ablation_buffer_depth_merge,
            axis="depths",
            axis_arg="depth",
            fidelities={
                "smoke": {"n": 256, "step": 8, "depths": (2, 4, 8, 16)},
                "default": {"n": 256, "step": 4, "depths": (2, 4, 8, 16)},
                "exhaustive": {"n": 256, "step": 2, "depths": (2, 4, 8, 16, 32)},
            },
            label_fn=lambda d: f"D={d}",
        ),
        ExperimentSpec(
            name="fault_tolerance",
            title="Error tolerance — SC stream vs binary word under bit flips",
            shard_fn=_exp.fault_tolerance,
            merge_fn=merge_single,
            fidelities={
                # trials < 256 makes sc_beats_binary_at_every_rate flaky.
                "smoke": {"rates": _FAULT_RATES_DEFAULT, "trials": 256},
                "default": {"rates": _FAULT_RATES_DEFAULT, "trials": 256},
                "exhaustive": {"rates": _FAULT_RATES_EXHAUSTIVE, "trials": 512},
            },
        ),
        ExperimentSpec(
            name="propagation",
            title="Correlation propagation through SC operators",
            shard_fn=_exp.propagation,
            merge_fn=merge_single,
            fidelities=_stepped(4, 4, 1),
        ),
        ExperimentSpec(
            name="power_breakdown",
            title="Accelerator power breakdown by block",
            shard_fn=_exp.power_breakdown,
            merge_fn=merge_single,
            fidelities=trivial,
        ),
        ExperimentSpec(
            name="long_stream",
            title="Long-stream convergence — SCC/value vs N (streaming execution)",
            shard_fn=_exp._long_stream_shard,
            merge_fn=_exp._long_stream_merge,
            axis="exponents",
            axis_arg="exponent",
            fidelities={
                # One shard per stream length 2^e; each runs through the
                # constant-memory streaming executor, so even the 2^22
                # shard fits in a CI worker. ``jobs`` (an execution
                # param — see EXECUTION_PARAMS) fans each shard's audit
                # across the parallel tile scheduler.
                "smoke": {"tile_words": 2048, "jobs": 1,
                          "exponents": _exp._LONG_STREAM_EXPONENTS_SMOKE},
                "default": {"tile_words": 4096, "jobs": 1,
                            "exponents": _exp._LONG_STREAM_EXPONENTS_DEFAULT},
                "exhaustive": {"tile_words": 4096, "jobs": 1,
                               "exponents": _exp._LONG_STREAM_EXPONENTS_EXHAUSTIVE},
            },
            label_fn=lambda e: f"N=2^{e}",
        ),
    ]
    registry = {spec.name: spec for spec in specs}
    missing = set(_exp.ALL_EXPERIMENTS) - set(registry)
    if missing:  # keep the two registries in lock-step
        raise RuntimeError(f"experiments without a runner spec: {sorted(missing)}")
    return registry


SPEC_REGISTRY: Dict[str, ExperimentSpec] = _build_registry()


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec; raises ``KeyError`` with the available names."""
    if name not in SPEC_REGISTRY:
        raise KeyError(
            f"unknown experiment spec {name!r}; "
            f"available: {', '.join(SPEC_REGISTRY)}"
        )
    return SPEC_REGISTRY[name]
