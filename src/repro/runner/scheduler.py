"""Sharded, cached experiment scheduling.

:func:`run_many` is the one path from "experiment definition" to
"result": expand each requested spec into shards (:mod:`.spec`), look
every shard up in the content-addressed store (:mod:`.store`), execute
only the misses — inline for ``jobs=1``, on the persistent worker pool
(:mod:`repro.engine.pool`, warm caches across shards *and* runs) or a
per-run ``ProcessPoolExecutor`` when the pool declines — and merge
payloads (cached and fresh are byte-for-byte the same representation)
into :class:`ExperimentResult` objects, recording a manifest per run so
:mod:`.report` can regenerate artifacts later.

Shards from *all* requested specs are scheduled onto one shared pool, so
``run all`` load-balances the 15 Table II kernel passes alongside the
small single-shard experiments instead of draining one spec at a time.
Workers are forked where the platform allows it (no re-import cost) and
re-used across shards, so per-process caches — engine plans, compiled
FSM kernels — amortize exactly as in a serial run. ``jobs`` is an
execution-only parameter on every lane: store payloads are bit-identical
at any worker count and with the pool on or off.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..engine.pool import pool_call
from ..obs import collect_children, counter_add
from ..obs import span as obs_span
from .spec import SPEC_REGISTRY, ExperimentSpec, Shard, content_params, get_spec
from .store import DEFAULT_STORE_ENV, ResultStore
from .workers import ShardTask, execute_shard

__all__ = ["RunReport", "run_spec", "run_many", "run_all", "default_store"]

logger = logging.getLogger("repro.runner")

# Default ``log=`` sentinel: route through the ``repro.runner`` logger —
# per-shard cache hit/miss lines at DEBUG (quiet unless ``-v`` installs a
# DEBUG handler), run summaries at INFO. Passing an explicit callable
# restores the old behaviour (every line through the callable); ``None``
# silences everything.
_LOG_DEFAULT = object()


def default_store() -> ResultStore:
    """The store named by ``$REPRO_STORE``, else ``./.repro-store``."""
    return ResultStore(os.environ.get(DEFAULT_STORE_ENV, ".repro-store"))


@dataclass
class RunReport:
    """Outcome of scheduling one spec."""

    spec: str
    fidelity: str
    seed: Optional[int]
    params: Dict[str, Any]
    result: ExperimentResult
    shard_count: int
    cache_hits: int
    computed: int
    elapsed_s: float

    @property
    def all_from_cache(self) -> bool:
        return self.computed == 0


def _pool(jobs: int, tasks: int) -> ProcessPoolExecutor:
    workers = max(1, min(jobs, tasks))
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork: pay the spawn import cost
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def run_many(
    names: Sequence[str],
    *,
    fidelity: str = "default",
    jobs: int = 1,
    seed: Optional[int] = None,
    force: bool = False,
    store: Optional[ResultStore] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    log: Any = _LOG_DEFAULT,
) -> List[RunReport]:
    """Run several specs, pooling their shards.

    Args:
        names: spec names (see :data:`~repro.runner.spec.SPEC_REGISTRY`).
        fidelity: ``smoke`` / ``default`` / ``exhaustive`` preset.
        jobs: worker processes; 1 executes inline (no pool).
        seed: run-level seed — threaded to every shard (ambient
            :func:`~repro.rng.factory.default_seed` + explicit ``seed=``
            kwarg where accepted) and folded into every content address.
        force: recompute even when cached.
        store: result store; defaults to :func:`default_store`.
        overrides: per-call param overrides (the CLI's legacy ``--step``).
        log: sink for progress lines. Default routes through the
            ``repro.runner`` logger — per-shard lines at DEBUG, summaries
            at INFO. An explicit callable receives every line (the old
            behaviour); ``None`` silences.

    Returns one :class:`RunReport` per requested spec, in request order.
    """
    if log is _LOG_DEFAULT:
        detail, info = logger.debug, logger.info
    elif log is None:
        detail = info = lambda message: None
    else:
        detail = info = log
    store = store if store is not None else default_store()
    started = time.perf_counter()

    with obs_span("runner.run_many", specs=len(names), jobs=jobs):
        plans: List[Dict[str, Any]] = []
        pending: Dict[str, ShardTask] = {}  # key -> task, deduplicated
        with obs_span("runner.plan") as plan_span:
            for name in names:
                spec = get_spec(name)
                params = spec.params(fidelity, overrides)
                shards = spec.shards(params)
                plan = {"spec": spec, "params": params, "shards": shards,
                        "keys": [], "hits": 0}
                for shard in shards:
                    # Execution-only kwargs (jobs) are stripped from the
                    # address: a shard's payload is bit-identical at any
                    # worker count, so runs at different ``jobs`` share
                    # cache entries.
                    key = store.shard_key(
                        shard.spec, shard.label, shard.fn_ref,
                        shard.content_kwargs, seed,
                    )
                    plan["keys"].append(key)
                    if not force and key in store:
                        plan["hits"] += 1
                        counter_add("runner.cache.hit")
                        detail(f"[runner] cache hit {shard.spec}[{shard.label}] ({key[:12]})")
                    elif key not in pending:
                        counter_add("runner.cache.miss")
                        detail(f"[runner] cache miss {shard.spec}[{shard.label}] -> scheduled")
                        pending[key] = ShardTask(
                            shard.spec, shard.index, shard.label, shard.fn,
                            shard.kwargs, seed,
                        )
                plans.append(plan)

            total = sum(len(p["shards"]) for p in plans)
            plan_span.annotate(shards=total, cached=total - len(pending),
                               scheduled=len(pending))
        info(
            f"[runner] {len(plans)} spec(s), {total} shard(s): "
            f"{total - len(pending)} cached, {len(pending)} to compute "
            f"(fidelity={fidelity}, jobs={jobs}, seed={'default' if seed is None else seed})"
        )

        computed: Dict[str, dict] = {}
        if pending:
            # Persist each payload the moment it lands: an interrupt or a
            # failing shard then loses only the shards still in flight —
            # the store's resume-after-interrupt contract.
            def _finish(key: str, payload: dict) -> None:
                task = pending[key]
                computed[key] = payload
                store.put(
                    key,
                    payload,
                    meta={
                        "spec": task.spec,
                        "shard": task.label,
                        "kwargs": content_params(task.kwargs),
                        "seed": seed,
                        "fidelity": fidelity,
                    },
                )

            items = list(pending.items())
            if jobs <= 1:
                for key, task in items:
                    _finish(key, execute_shard(task))
            else:
                # Prefer the persistent pool (warm plan/kernel caches
                # across shards *and* across runs); shards stream back in
                # completion order, so each payload still persists the
                # moment it lands. The pool declining (disabled, nested
                # fork, busy) falls back to the per-run fork pool below —
                # shard payloads are bit-identical either way, a failing
                # shard re-raises its original exception type on both
                # lanes, and shard workers on both lanes may themselves
                # fork span workers (pool processes are non-daemonic on
                # purpose).
                with pool_call(min(jobs, len(items))) as call:
                    if call is not None:
                        counter_add("runner.pooled")
                        keys = [key for key, _ in items]
                        for index, payload in call.imap(
                            "repro.runner.workers:execute_shard",
                            [(task,) for _, task in items],
                        ):
                            _finish(keys[index], payload)
                    else:
                        try:
                            with _pool(jobs, len(items)) as pool:
                                futures = {
                                    pool.submit(execute_shard, task): key
                                    for key, task in items
                                }
                                for future in as_completed(futures):
                                    _finish(futures[future], future.result())
                        finally:
                            # Absorb the shard workers' span/metric
                            # buffers (flushed when each worker's root
                            # span closed; a no-op with tracing off).
                            collect_children()

        reports: List[RunReport] = []
        for plan in plans:
            spec: ExperimentSpec = plan["spec"]
            payloads = []
            for key in plan["keys"]:
                payload = computed.get(key)
                if payload is None:
                    payload = store.get(key)
                payloads.append(payload)
            result = spec.merge_fn(plan["params"], payloads)
            store.write_manifest(
                spec.name, fidelity, seed, content_params(plan["params"]),
                [{"label": shard.label, "key": key}
                 for shard, key in zip(plan["shards"], plan["keys"])],
            )
            reports.append(
                RunReport(
                    spec=spec.name,
                    fidelity=fidelity,
                    seed=seed,
                    params=plan["params"],
                    result=result,
                    shard_count=len(plan["shards"]),
                    cache_hits=plan["hits"],
                    computed=len(plan["shards"]) - plan["hits"],
                    elapsed_s=0.0,
                )
            )

    elapsed = time.perf_counter() - started
    for report in reports:
        report.elapsed_s = elapsed
        info(
            f"[runner] {report.spec}: {report.shard_count} shard(s), "
            f"{report.cache_hits} cache hit(s), {report.computed} computed"
        )
    info(f"[runner] done in {elapsed:.2f}s")
    return reports


def run_spec(
    name: str,
    *,
    fidelity: str = "default",
    jobs: int = 1,
    seed: Optional[int] = None,
    force: bool = False,
    store: Optional[ResultStore] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    log: Any = _LOG_DEFAULT,
) -> RunReport:
    """Run one spec (see :func:`run_many`)."""
    return run_many(
        [name], fidelity=fidelity, jobs=jobs, seed=seed, force=force,
        store=store, overrides=overrides, log=log,
    )[0]


def run_all(
    *,
    fidelity: str = "default",
    jobs: int = 1,
    seed: Optional[int] = None,
    force: bool = False,
    store: Optional[ResultStore] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    log: Any = _LOG_DEFAULT,
) -> List[RunReport]:
    """Run every registered spec on one shared worker pool."""
    return run_many(
        list(SPEC_REGISTRY), fidelity=fidelity, jobs=jobs, seed=seed,
        force=force, store=store, overrides=overrides, log=log,
    )
