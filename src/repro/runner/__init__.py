"""Declarative experiment orchestration.

The runner is the one path from "experiment definition" to "published
artifact":

1. :mod:`~repro.runner.spec` — every experiment as a declarative
   :class:`~repro.runner.spec.ExperimentSpec`: fidelity presets
   (``smoke`` / ``default`` / ``exhaustive``) that expand into
   independent shards (one batched packed/kernel pass each);
2. :mod:`~repro.runner.scheduler` — shards from all requested specs on
   one shared process pool, executing only what the store can't serve;
3. :mod:`~repro.runner.store` — a content-addressed result store (key =
   spec + params + seed + code version) giving caching,
   resume-after-interrupt, and staleness detection for free;
4. :mod:`~repro.runner.report` — regenerates the published artifacts
   (``benchmarks/results/*.txt``, EXPERIMENTS.md) from the store,
   byte-identical to the benchmark harness's archives.

CLI: ``python -m repro run <spec|all> [--fidelity F] [--jobs N]
[--seed S] [--force]`` and ``python -m repro report``.
"""

from .report import StoredResult, load_results, write_archives, write_experiments_md
from .scheduler import RunReport, default_store, run_all, run_many, run_spec
from .spec import FIDELITIES, SPEC_REGISTRY, ExperimentSpec, Shard, get_spec
from .store import ResultStore, code_version, jsonify
from .workers import ShardTask, execute_shard

__all__ = [
    "FIDELITIES",
    "SPEC_REGISTRY",
    "ExperimentSpec",
    "Shard",
    "get_spec",
    "ResultStore",
    "code_version",
    "jsonify",
    "ShardTask",
    "execute_shard",
    "RunReport",
    "run_spec",
    "run_many",
    "run_all",
    "default_store",
    "StoredResult",
    "load_results",
    "write_archives",
    "write_experiments_md",
]
