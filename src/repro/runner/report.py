"""Artifact regeneration from the result store.

``python -m repro report`` replays run manifests: for each
``(spec, fidelity, seed)`` manifest whose shard payloads are all present
(and written by the current code version), the spec's merge function
reassembles the :class:`ExperimentResult` and the renderer writes the
same artifacts the benchmark harness archives — ``<experiment>.txt``
tables byte-identical to ``benchmarks/results/`` plus an
``EXPERIMENTS.md`` roll-up — without re-executing a single shard.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..analysis.experiments import ExperimentResult
from .spec import SPEC_REGISTRY
from .store import ResultStore

__all__ = ["StoredResult", "load_results", "write_archives", "write_experiments_md"]


@dataclass(frozen=True)
class StoredResult:
    """One manifest reassembled from the store (or why it couldn't be)."""

    spec: str
    fidelity: str
    seed: Optional[int]
    result: Optional[ExperimentResult]
    missing: int          # shard payloads absent from the store
    stale: bool           # manifest written by a different code version

    @property
    def complete(self) -> bool:
        return self.result is not None


def load_results(
    store: ResultStore,
    *,
    fidelity: str = "exhaustive",
    seed: Optional[int] = None,
    specs: Optional[List[str]] = None,
) -> List[StoredResult]:
    """Reassemble every requested spec's result from its manifest."""
    names = list(SPEC_REGISTRY) if specs is None else specs
    out: List[StoredResult] = []
    for name in names:
        manifest = store.read_manifest(name, fidelity, seed)
        if manifest is None:
            out.append(StoredResult(name, fidelity, seed, None, -1, False))
            continue
        stale = manifest.get("code_version") != store.version
        payloads = [store.get(shard["key"]) for shard in manifest["shards"]]
        missing = sum(1 for p in payloads if p is None)
        if missing or stale:
            out.append(StoredResult(name, fidelity, seed, None, missing, stale))
            continue
        result = SPEC_REGISTRY[name].merge_fn(manifest["params"], payloads)
        out.append(StoredResult(name, fidelity, seed, result, 0, False))
    return out


def write_archives(
    results: List[StoredResult],
    out_dir,
    *,
    check: bool = False,
    log: Optional[Callable[[str], None]] = print,
) -> int:
    """Write (or, with ``check``, diff) the ``<experiment>.txt`` archives.

    Returns the number of problems: incomplete specs plus, in check mode,
    files that differ from the regenerated text — so callers can gate CI
    on ``write_archives(...) == 0``.
    """
    emit = (lambda message: None) if log is None else log
    out_dir = pathlib.Path(out_dir)
    problems = 0
    for stored in results:
        if not stored.complete:
            reason = (
                "no manifest" if stored.missing < 0
                else "stale code version" if stored.stale
                else f"{stored.missing} shard payload(s) missing"
            )
            emit(f"[report] {stored.spec}: incomplete ({reason}) — "
                 f"run `repro run {stored.spec} --fidelity {stored.fidelity}` first")
            problems += 1
            continue
        text = stored.result.to_text() + "\n"
        path = out_dir / f"{stored.result.experiment_id}.txt"
        if check:
            current = path.read_text() if path.exists() else None
            if current == text:
                emit(f"[report] {stored.spec}: {path} up to date")
            else:
                emit(f"[report] {stored.spec}: {path} DIFFERS from the store")
                problems += 1
        else:
            out_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            emit(f"[report] {stored.spec}: wrote {path}")
    return problems


def write_experiments_md(
    results: List[StoredResult],
    path,
    *,
    log: Optional[Callable[[str], None]] = print,
) -> pathlib.Path:
    """Roll every complete result into one EXPERIMENTS.md-style document."""
    emit = (lambda message: None) if log is None else log
    path = pathlib.Path(path)
    complete = [s for s in results if s.complete]
    lines = [
        "# Experiments",
        "",
        "Regenerated from the content-addressed result store by",
        "`python -m repro report` — every table interleaves measured values",
        "with the paper's published ones. Do not edit by hand.",
        "",
    ]
    for stored in complete:
        status = "PASS" if stored.result.all_checks_pass else "FAIL"
        lines.append(f"## {stored.result.experiment_id} — {status}")
        lines.append("")
        lines.append("```")
        lines.append(stored.result.to_text())
        lines.append("```")
        lines.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines))
    emit(f"[report] wrote {path} ({len(complete)} experiment(s))")
    return path
