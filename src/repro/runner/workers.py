"""Shard execution — the code that runs inside worker processes.

:func:`execute_shard` is the single entry point the scheduler submits to
its ``ProcessPoolExecutor`` (and calls inline for ``--jobs 1``). It is
deliberately thin: install the ambient seed, call the shard function,
serialize the payload. Everything heavyweight the shards rely on — the
engine plan cache, the compiled FSM kernel cache, the Sobol
direction-number cache — is process-global state that workers accumulate
naturally, so consecutive shards scheduled onto the same worker re-use
each other's compilations exactly like the serial path does.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Optional

from ..analysis.experiments import ExperimentResult
from ..obs import span as obs_span
from ..rng.factory import default_seed
from .store import jsonify

__all__ = ["ShardTask", "execute_shard"]

# Worker cache hygiene: forked workers inherit the engine's module-level
# sequence/select memos (and their locks) *as of the fork instant* —
# including, in a threaded parent, a lock held by a thread that does not
# exist in the child. The ``os.register_at_fork`` hooks in
# ``repro.engine.executor`` / ``repro.engine.streaming`` rebind fresh
# locks and drop those memos in every forked child, and spawn-started
# workers import fresh modules, so shards always start with clean,
# unlocked caches — no per-shard reset is needed here.
#
# Shards may themselves fork: a shard running with ``jobs > 1`` (the
# ``long_stream`` audits) spawns the parallel tile scheduler's span
# workers (``repro.engine.parallel``) from *this* worker process. The
# same at-fork hooks fire on that second-level fork, so nested span
# workers also start with fresh locks; jobs-within-jobs multiplies
# process counts, which is why the CLI threads one ``--jobs`` value to
# either the shard pool or the tile scheduler, not both.


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to run one shard (picklable)."""

    spec: str
    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


@lru_cache(maxsize=None)
def _accepts_seed(fn: Callable[..., Any]) -> bool:
    try:
        return "seed" in inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False


def execute_shard(task: ShardTask) -> dict:
    """Run one shard and return its JSON-ready payload.

    The run-level seed reaches the shard two ways: as an explicit
    ``seed=`` kwarg when the shard function declares one, and as the
    ambient :func:`repro.rng.factory.default_seed` every factory-made
    seedable RNG picks up. Payloads returning an
    :class:`~repro.analysis.experiments.ExperimentResult` (the
    single-shard specs) are dataclass-serialized; everything goes through
    :func:`~repro.runner.store.jsonify` so the scheduler merges the same
    value-exact representation it would read back from the store.
    """
    kwargs = dict(task.kwargs)
    if task.seed is not None and _accepts_seed(task.fn) and "seed" not in kwargs:
        kwargs["seed"] = task.seed
    # In a forked pool worker this is the root span: closing it flushes
    # the worker's span/metric buffers for the scheduler to collect.
    with obs_span("runner.shard", spec=task.spec, shard=task.label):
        with default_seed(task.seed):
            payload = task.fn(**kwargs)
        if isinstance(payload, ExperimentResult):
            payload = jsonify(payload)
        return jsonify(payload)
