"""Bit-flip fault injection: quantifying SC's error-tolerance claim.

The paper's opening pitch for stochastic computing includes "improved
error tolerance": because every bit of an SN carries equal weight ``1/N``,
a soft error flips the value by at most ``1/N``, whereas a single flip in
a binary-encoded (BE) word can be worth half the full scale. This module
provides the fault machinery used by the error-tolerance benchmark:

* :func:`flip_bits` — i.i.d. bit flips on a stream batch;
* :func:`flip_binary_words` — the same fault rate applied to BE words;
* :func:`fault_sweep` — value-error-vs-fault-rate curves for both
  representations (the cross-over argument), including a faulted pass
  through an SC operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ._validation import as_bit_matrix, check_positive_int
from .exceptions import ReproError

__all__ = ["flip_bits", "flip_binary_words", "FaultPoint", "fault_sweep"]


def _check_rate(rate: float) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ReproError(f"fault rate must be in [0, 1], got {rate}")
    return rate


def flip_bits(
    bits: np.ndarray,
    rate: float,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Flip each bit of a stream (batch) independently with ``rate``."""
    arr = as_bit_matrix(bits)
    rate = _check_rate(rate)
    if rng is None:
        rng = np.random.default_rng(seed)
    mask = (rng.random(arr.shape) < rate).astype(np.uint8)
    return arr ^ mask


def flip_binary_words(
    words: np.ndarray,
    width: int,
    rate: float,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Flip each of the ``width`` bits of each word independently.

    Models the same physical fault rate hitting a binary-encoded register
    instead of a stochastic stream.
    """
    words = np.asarray(words, dtype=np.int64)
    width = check_positive_int(width, name="width")
    rate = _check_rate(rate)
    if words.size and (words.min() < 0 or words.max() >= (1 << width)):
        raise ReproError(f"words out of range for width {width}")
    if rng is None:
        rng = np.random.default_rng(seed)
    flips = rng.random((words.size, width)) < rate
    masks = (flips * (1 << np.arange(width))).sum(axis=1).astype(np.int64)
    return words ^ masks


@dataclass(frozen=True)
class FaultPoint:
    """Error measurements at one fault rate."""

    rate: float
    sc_value_error: float
    be_value_error: float
    sc_multiply_error: float

    def as_row(self) -> list:
        return [
            self.rate,
            round(self.sc_value_error, 4),
            round(self.be_value_error, 4),
            round(self.sc_multiply_error, 4),
        ]


def fault_sweep(
    rates: Sequence[float] = (0.0, 0.001, 0.005, 0.01, 0.05, 0.1),
    *,
    n: int = 256,
    width: int = 8,
    trials: int = 64,
    seed: int = 0,
) -> List[FaultPoint]:
    """Value error vs fault rate for SC streams and BE words.

    For each rate: encode ``trials`` random values both ways, inject
    faults at the same per-bit rate, and measure mean absolute value
    error; additionally push two faulted SC streams through an AND
    multiplier to show the error tolerance composes through computation.
    """
    check_positive_int(trials, name="trials")
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, 1 << width, size=trials)
    values = levels / (1 << width)

    # Exact SC encodings (evenly spread 1s, the VDC shape).
    t = np.arange(n + 1, dtype=np.int64)
    streams = np.zeros((trials, n), dtype=np.uint8)
    for i, level in enumerate(levels):
        k = int(level * n) // (1 << width)
        marks = (t * k) // n
        streams[i] = (marks[1:] > marks[:-1]).astype(np.uint8)

    partner_levels = rng.integers(0, 1 << width, size=trials)
    partner_values = partner_levels / (1 << width)
    partners = np.zeros((trials, n), dtype=np.uint8)
    offset = n // 2
    for i, level in enumerate(partner_levels):
        k = int(level * n) // (1 << width)
        marks = (t * k) // n
        partners[i] = np.roll((marks[1:] > marks[:-1]).astype(np.uint8), offset)

    points: List[FaultPoint] = []
    for rate in rates:
        fault_rng = np.random.default_rng(seed + int(rate * 1e6) + 1)
        sc_faulted = flip_bits(streams, rate, rng=fault_rng)
        sc_error = float(np.abs(sc_faulted.mean(axis=1) - values).mean())

        be_faulted = flip_binary_words(levels, width, rate, rng=fault_rng)
        be_error = float(
            np.abs(be_faulted / (1 << width) - values).mean()
        )

        partner_faulted = flip_bits(partners, rate, rng=fault_rng)
        product = (sc_faulted & partner_faulted).mean(axis=1)
        mul_error = float(np.abs(product - values * partner_values).mean())

        points.append(
            FaultPoint(
                rate=float(rate),
                sc_value_error=sc_error,
                be_value_error=be_error,
                sc_multiply_error=mul_error,
            )
        )
    return points
