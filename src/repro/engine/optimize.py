"""Plan optimizer: structural CSE, dead-node elimination, arena buffers.

:func:`repro.engine.plan.compile_graph` compiles graphs *faithfully* —
every node in the source graph becomes a scheduled step, and every step
gets its own full-length buffer. The paper's manipulation circuits are
structurally redundant by construction (synchronizer / desynchronizer /
decorrelator stages replicated across operand pairs that share the same
RNG sources, sweep builders that duplicate whole subtrees per
configuration), so a faithful schedule recomputes identical subtrees and
allocates identical buffers many times over. This module rewrites the
compiled plan into an :class:`OptimizedPlan` that computes each distinct
value once, schedules only what the caller can observe, and recycles
buffers the moment they die — under the repo's standing contract that a
fast path must be **bit-/float-identical** to the reference it replaces.

Three passes, all strictly bit-safe:

1. **Structural CSE (hash-consing).** Value numbering over the
   topological schedule: a source is keyed by
   ``(value, rng_spec, rng_kwargs)`` — the full generator identity,
   seed and rotation included — an operator by
   ``(op, value-numbers of its operands)`` (operands of the symmetric
   word kernels AND/OR/XOR are canonically ordered; the MUX scaled adder
   is direction-sensitive and is not reordered), and a transform port by
   ``(id(transform), operand value-numbers, port)``. Steps whose key has
   been seen before are dropped from the schedule and recorded in an
   *alias map*; consumers re-point at the representative. Equal keys
   emit equal bits by induction, so merging never changes any stream.

2. **Dead-node elimination** (per call, :func:`dce_plan`). When a caller
   asks for a subset of outputs (``keep=``, runner shards that only read
   sink values), steps outside the ancestor cone of the requested nodes
   are pruned and buffer lifetimes recomputed for the smaller schedule.
   Audits keep everything *by design* — an audit's entire point is to
   measure every operator — so the audit entry points never prune.

3. **Arena allocation** (:class:`BufferArena`). The plan's existing
   buffer-lifetime analysis (``free_after``) already knows when each
   buffer dies; the optimized executor returns dead buffers to a
   shape-keyed free list and serves new ones from it, evaluating
   operators with in-place ufunc kernels. Peak memory drops toward the
   live-set bound and the per-node ``np.empty`` churn disappears. The
   streaming walk shares one arena across all fused super-steps of a
   run, so widened chains (see
   :meth:`~repro.engine.plan.ExecutionPlan.fused_schedule`) ping-pong
   through a common scratch pool instead of two private slots per chain.

Source merges and batch overrides
---------------------------------

CSE merges two sources only when their *graph* values and generators are
identical — but :func:`~repro.engine.executor.run_batch` can override
values per source *name*, and an override can make two structurally
identical sources diverge at run time. The plan therefore keeps its
unoptimized twin (:attr:`OptimizedPlan.raw`), and every entry point asks
:meth:`OptimizedPlan.for_execution` whether the resolved per-source
levels are consistent with the recorded merges; if any merged pair
diverges, the call transparently executes the raw plan instead. The
check is a handful of small integer-array comparisons; the fallback is
counted on ``engine.optimize.fallback``.

The DCE memo follows the PR 5 lock-hook pattern: a module lock guards
the LRU, and an ``os.register_at_fork`` hook rebinds the lock and drops
the memo in every forked child (pruned plans are pure caches; losing
them costs one re-prune).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..obs import counter_add
from .plan import ExecutionPlan, PlanStep, _ellipsize

__all__ = [
    "OptimizeReport",
    "OptimizedPlan",
    "BufferArena",
    "optimize_plan",
    "dce_plan",
    "default_optimize",
    "set_default_optimize",
    "dce_cache_info",
    "clear_dce_cache",
]

# Word kernels that are bitwise-symmetric in their two operands (AND, OR,
# XOR): swapping operands changes no output bit, and SCC/expected-value
# are symmetric too, so their operands can be canonically ordered for
# value numbering. The MUX scaled adder selects *between* its operands
# and must keep their order.
_COMMUTATIVE_OPS = frozenset({"mul", "sat_add", "sub", "max", "min"})

# ---------------------------------------------------------------------- #
# Module default (the `repro engine --no-optimize` escape hatch flips it
# per call; REPRO_NO_OPTIMIZE=1 flips it process-wide, which is how the
# CI optimizer-smoke job proves store bytes are independent of the
# optimization level).
# ---------------------------------------------------------------------- #

_DEFAULT_OPTIMIZE = os.environ.get("REPRO_NO_OPTIMIZE", "") not in ("1", "true", "yes")


def default_optimize() -> bool:
    """The process-wide default optimization switch."""
    return _DEFAULT_OPTIMIZE


def set_default_optimize(flag: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _DEFAULT_OPTIMIZE
    previous = _DEFAULT_OPTIMIZE
    _DEFAULT_OPTIMIZE = bool(flag)
    return previous


# ---------------------------------------------------------------------- #
# Rewrite report
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class OptimizeReport:
    """What the optimizer did to one plan (``plan.describe()`` renders
    it; the counters mirror it into :mod:`repro.obs`)."""

    sources_merged: int = 0
    ops_merged: int = 0
    transforms_merged: int = 0
    merges: Tuple[Tuple[str, str], ...] = ()   # (duplicate, representative)

    @property
    def merged(self) -> int:
        return self.sources_merged + self.ops_merged + self.transforms_merged


# ---------------------------------------------------------------------- #
# Shared plan-rebuild helpers (used by CSE and DCE alike)
# ---------------------------------------------------------------------- #

def _relink(raw_steps: List[PlanStep]) -> Tuple[PlanStep, ...]:
    """Recompute levels and buffer lifetimes for a rewritten schedule.

    ``free_after`` must be re-derived whenever steps are merged or
    pruned: a buffer's last consumer may have moved (CSE fans consumers
    into the representative) or vanished (DCE), and a stale lifetime
    would either leak a buffer for the whole run or — worse, with the
    arena recycling freed buffers — release one that a surviving
    consumer still needs.
    """
    level_of: Dict[str, int] = {}
    steps: List[PlanStep] = []
    for s in raw_steps:
        level = 0 if not s.inputs else 1 + max(level_of[d] for d in s.inputs)
        level_of[s.name] = level
        steps.append(replace(s, level=level, free_after=()))

    last_use = {s.name: i for i, s in enumerate(steps)}
    for i, s in enumerate(steps):
        for dep in s.inputs:
            last_use[dep] = max(last_use[dep], i)
    free_at: Dict[int, List[str]] = {}
    for name, i in last_use.items():
        free_at.setdefault(i, []).append(name)
    return tuple(
        replace(s, free_after=tuple(free_at.get(i, ())))
        for i, s in enumerate(steps)
    )


def _levels_of(steps: Tuple[PlanStep, ...]) -> List[List[str]]:
    depth = 1 + max((s.level for s in steps), default=-1)
    levels: List[List[str]] = [[] for _ in range(depth)]
    for s in steps:
        levels[s.level].append(s.name)
    return levels


# ---------------------------------------------------------------------- #
# The optimized plan
# ---------------------------------------------------------------------- #

@dataclass
class OptimizedPlan(ExecutionPlan):
    """An :class:`ExecutionPlan` whose schedule has been rewritten by
    structural CSE.

    ``steps`` contains only *representative* computations; ``alias``
    maps every merged-away node name to its representative. The plan
    still answers for the full source graph: keep/override/audit names
    resolve through the alias map, and the raw twin stays attached for
    the override-divergence fallback.
    """

    raw: ExecutionPlan = None
    alias: Dict[str, str] = field(default_factory=dict)
    report: OptimizeReport = field(default_factory=OptimizeReport)
    # Source merge classes: (representative, (duplicates...)) — the
    # subset of the alias map whose validity depends on run-time
    # overrides (op/transform merges can never be invalidated: their
    # operands are value-numbered, so equal keys stay equal).
    source_merges: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    # -- identity / level ------------------------------------------------

    @property
    def optimize_level(self) -> int:
        return 1

    @property
    def alias_map(self) -> Dict[str, str]:
        return self.alias

    def resolve(self, name: str) -> str:
        return self.alias.get(name, name)

    # -- semantic (pre-rewrite) views ------------------------------------

    @property
    def semantic_steps(self) -> Tuple[PlanStep, ...]:
        return self.raw.steps

    @property
    def semantic_order(self) -> List[str]:
        return [s.name for s in self.raw.steps]

    @property
    def source_steps(self) -> List[PlanStep]:
        """All *source-graph* source steps (merged names included), so
        override resolution covers every name a caller can spell."""
        return [s for s in self.raw.steps if s.kind == "source"]

    @property
    def source_names(self) -> List[str]:
        return [s.name for s in self.source_steps]

    def expected_values(self) -> Dict[str, float]:
        # Semantic floats for every source-graph node — the same loop,
        # and therefore the same floats, as the interpreter's.
        return self.raw.expected_values()

    # -- execution-time selection ----------------------------------------

    def for_execution(self, resolved_levels: Dict[str, np.ndarray]) -> ExecutionPlan:
        """This plan when the resolved overrides are consistent with
        every recorded source merge, else the raw twin.

        ``resolved_levels`` maps every source-graph source name to its
        per-configuration binary levels; a merge survives only if all
        members resolved to identical arrays (they always do unless the
        caller overrode a merged name explicitly and differently).
        """
        for rep, dups in self.source_merges:
            rep_levels = resolved_levels[rep]
            for dup in dups:
                if not np.array_equal(resolved_levels[dup], rep_levels):
                    counter_add("engine.optimize.fallback")
                    return self.raw
        return self

    # -- reporting --------------------------------------------------------

    def _describe_optimized(self) -> List[str]:
        r = self.report
        lines = [
            "optimized: "
            f"{r.merged} merged ({r.sources_merged} sources, "
            f"{r.ops_merged} ops, {r.transforms_merged} transforms), "
            f"{len(self.raw.steps)} -> {len(self.steps)} steps"
        ]
        for dup, rep in r.merges[:8]:
            lines.append(f"  {_ellipsize(dup)} == {_ellipsize(rep)}")
        if len(r.merges) > 8:
            lines.append(f"  … {len(r.merges) - 8} more")
        return lines


def optimize_plan(raw: ExecutionPlan) -> OptimizedPlan:
    """Rewrite a compiled plan with structural CSE / hash-consing.

    Returns an :class:`OptimizedPlan` (even when nothing merged — the
    uniform type carries the report, the alias map, and the execution
    fast paths). Bit-safety: two steps merge only when their value
    numbers prove they compute identical words for every configuration
    consistent with the merge (see :meth:`OptimizedPlan.for_execution`
    for the one run-time caveat, per-source overrides).
    """
    vn: Dict[tuple, str] = {}
    alias: Dict[str, str] = {}
    kept_steps: List[PlanStep] = []
    merges: List[Tuple[str, str]] = []
    merged_kinds = {"source": 0, "op": 0, "transform": 0}
    group_of: Dict[tuple, int] = {}

    for s in raw.steps:
        inputs = tuple(alias.get(d, d) for d in s.inputs)
        if s.kind == "source":
            key = ("src", s.value, s.rng_spec, s.rng_kwargs)
        elif s.kind == "op":
            operands = tuple(sorted(inputs)) if s.op in _COMMUTATIVE_OPS else inputs
            key = ("op", s.op, operands)
        else:
            key = ("fsm", id(s.transform), inputs, s.port)
        rep = vn.get(key)
        if rep is not None:
            alias[s.name] = rep
            merges.append((s.name, rep))
            merged_kinds[s.kind] += 1
            continue
        vn[key] = s.name
        if s.kind == "transform":
            # Transform groups can coalesce when value numbering proves
            # two insertions read identical operand streams; regroup on
            # the rewritten inputs so each distinct (circuit, operands)
            # pair steps its FSM exactly once.
            group_key = (id(s.transform), inputs)
            group = group_of.setdefault(group_key, len(group_of))
            kept_steps.append(replace(s, inputs=inputs, group=group))
        else:
            kept_steps.append(replace(s, inputs=inputs))

    steps = _relink(kept_steps)

    source_classes: Dict[str, List[str]] = {}
    for dup, rep in merges:
        # Walk to the final representative (aliases never chain here —
        # reps are always kept steps — but be defensive).
        while rep in alias:
            rep = alias[rep]
        if any(t.name == rep and t.kind == "source" for t in steps):
            source_classes.setdefault(rep, []).append(dup)

    if merges:
        counter_add("engine.optimize.cse_merged", len(merges))

    return OptimizedPlan(
        steps=steps,
        levels=_levels_of(steps),
        signature=raw.signature,
        raw=raw,
        alias=alias,
        report=OptimizeReport(
            sources_merged=merged_kinds["source"],
            ops_merged=merged_kinds["op"],
            transforms_merged=merged_kinds["transform"],
            merges=tuple(merges),
        ),
        source_merges=tuple(
            (rep, tuple(dups)) for rep, dups in source_classes.items()
        ),
    )


# ---------------------------------------------------------------------- #
# Dead-node elimination (per call — the keep set is a call argument)
# ---------------------------------------------------------------------- #

_DCE_CACHE_MAX = 64
_DCE_LOCK = threading.Lock()
# Keyed by (plan signature, optimize level, needed frozenset): plans with
# equal signatures are interchangeable by the plan-cache contract, so the
# derived pruned plan is too.
_DCE_CACHE: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
_DCE_STATS = {"hits": 0, "misses": 0}


def _reinit_after_fork() -> None:
    # PR 5 lock-hook pattern: a forked child inherits the lock in
    # whatever state a parent thread left it; rebind a fresh one and
    # drop the memo (pure cache; losing it costs one re-prune).
    global _DCE_LOCK
    _DCE_LOCK = threading.Lock()
    _DCE_CACHE.clear()


if hasattr(os, "register_at_fork"):  # not on Windows (spawn starts clean)
    os.register_at_fork(after_in_child=_reinit_after_fork)


def dce_cache_info() -> Dict[str, int]:
    """Pruned-plan memo statistics."""
    with _DCE_LOCK:
        return {
            "hits": _DCE_STATS["hits"],
            "misses": _DCE_STATS["misses"],
            "size": len(_DCE_CACHE),
            "maxsize": _DCE_CACHE_MAX,
        }


def clear_dce_cache() -> None:
    """Drop every memoised pruned plan and reset the counters."""
    with _DCE_LOCK:
        _DCE_CACHE.clear()
        _DCE_STATS["hits"] = 0
        _DCE_STATS["misses"] = 0


def dce_plan(plan: ExecutionPlan, needed: FrozenSet[str]) -> ExecutionPlan:
    """The plan restricted to the ancestor cone of ``needed``.

    ``needed`` must name steps of ``plan``'s own schedule (callers
    resolve aliases first). Steps outside the cone are pruned and buffer
    lifetimes recomputed; a transform whose partner port falls outside
    the cone still runs its FSM once — the surviving port's step computes
    the pair, exactly as when both ports are scheduled. Pruning a node
    nobody requested can change no requested bit: the cone contains, by
    construction, every step whose output can reach a requested one.
    """
    names = {s.name for s in plan.steps}
    if needed >= names:
        return plan
    key = (plan.signature, getattr(plan, "optimize_level", 0), needed)
    with _DCE_LOCK:
        cached = _DCE_CACHE.get(key)
        if cached is not None:
            _DCE_STATS["hits"] += 1
            _DCE_CACHE.move_to_end(key)
            return cached
        _DCE_STATS["misses"] += 1

    step_by_name = {s.name: s for s in plan.steps}
    cone: set = set()
    stack = list(needed)
    while stack:
        name = stack.pop()
        if name in cone:
            continue
        cone.add(name)
        stack.extend(step_by_name[name].inputs)

    kept = [s for s in plan.steps if s.name in cone]
    pruned_count = len(plan.steps) - len(kept)
    if pruned_count == 0:
        pruned: ExecutionPlan = plan
    else:
        steps = _relink(kept)
        pruned = ExecutionPlan(
            steps=steps, levels=_levels_of(steps), signature=plan.signature
        )
        counter_add("engine.optimize.dce_pruned", pruned_count)

    with _DCE_LOCK:
        _DCE_CACHE[key] = pruned
        while len(_DCE_CACHE) > _DCE_CACHE_MAX:
            _DCE_CACHE.popitem(last=False)
    return pruned


# ---------------------------------------------------------------------- #
# Arena allocation
# ---------------------------------------------------------------------- #

class BufferArena:
    """A shape-keyed free list of uint64 word buffers.

    One arena serves one evaluation walk (it is not thread-safe and is
    never shared across runs): :meth:`take` pops a dead buffer of the
    right shape or allocates a fresh one, :meth:`release` returns a
    buffer whose last consumer has run. The executor drives it from the
    plan's ``free_after`` lifetime analysis; the streaming walk shares
    one arena across every fused super-step of a run, so chain interiors
    from different chains recycle the same scratch words.
    """

    __slots__ = ("_free", "hits", "misses")

    def __init__(self) -> None:
        self._free: Dict[tuple, List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def take(self, rows: int, words: int) -> np.ndarray:
        """A writable ``(rows, words)`` uint64 buffer (contents
        unspecified — every kernel writes the full buffer)."""
        return self.take_shape((rows, words), "<u8")

    def take_shape(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A writable buffer of arbitrary shape/dtype — the accelerator's
        unpacked uint8 window scratch recycles through the same pool."""
        key = (shape, np.dtype(dtype).str)
        bucket = self._free.get(key)
        if bucket:
            self.hits += 1
            return bucket.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, buffer: np.ndarray) -> None:
        """Return a dead buffer to the pool (caller guarantees no live
        reader remains)."""
        key = (buffer.shape, buffer.dtype.str)
        self._free.setdefault(key, []).append(buffer)

    def flush_counters(self) -> None:
        """Post the reuse tallies to :mod:`repro.obs` (once per walk —
        no per-buffer instrumentation cost)."""
        if self.hits:
            counter_add("engine.arena.reuse", self.hits)
        if self.misses:
            counter_add("engine.arena.alloc", self.misses)
        self.hits = 0
        self.misses = 0
