"""Batched packed-domain evaluation of compiled execution plans.

One :func:`run_batch` call evaluates a plan against a whole *batch of
input configurations* at once: every source becomes a ``(batch, words)``
uint64 matrix (comparator D/S conversion vectorised over the batch, then
``np.packbits``), every combinational operator is a word-parallel gate,
and only the sequential steps unpack — process — repack at the
boundaries the plan marked. Sequential steps in the ``kernel`` domain
stay batched *and* time-parallel: their ``_process_bits`` dispatches to
the compiled transition-table / gather kernels of :mod:`repro.kernels`,
so no per-bit python loop runs anywhere in the schedule; ``fsm``-domain
steps fall back to the per-cycle reference loop. A 1k-point design sweep
is therefore one engine call instead of 1k graph interpretations.

Bit-exactness contract: for any graph the engine accepts,

* ``run(plan, n)`` returns streams **bit-identical** to
  ``SCGraph.run(n, backend="interpreter")``;
* ``audit(plan, n)`` returns a :class:`~repro.graph.graph.GraphAudit`
  whose entries are **float-identical** to the interpreter's (the packed
  overlap kernels in :mod:`repro.bitstream.metrics` produce the same
  integer counts, hence the same SCC floats, and popcount values equal
  byte-sum means).

``tests/test_engine.py`` enforces both across odd lengths, both
encodings, and every FSM node type.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from .._validation import check_stream_length
from ..arith._coerce import broadcast_pair
from ..bitstream.encoding import Encoding, ones_to_value
from ..bitstream.metrics import popcount_words, scc_batch_packed
from ..bitstream.packed import (
    PackedBitstreamBatch,
    pack_bits_unchecked,
    unpack_bits,
    words_per_stream,
)
from ..exceptions import GraphCompilationError
from ..graph.graph import AuditEntry, GraphAudit
from ..graph.nodes import OP_LIBRARY, mux_select_bits
from ..obs import counter_add
from ..obs import span as obs_span
from ..rng import make_rng
from .plan import ExecutionPlan, PlanStep

__all__ = [
    "EngineRun",
    "BatchAuditEntry",
    "BatchAudit",
    "run",
    "run_batch",
    "audit",
    "audit_batch",
    "mux_words",
    "clear_sequence_cache",
]

# ---------------------------------------------------------------------- #
# Shared-sequence memos (deterministic, so caching is free speedup for
# the audit -> splice -> re-audit loop, which replays the same RNGs).
#
# The memos are module-level and therefore shared by every thread that
# evaluates plans in one process; all mutation happens under _SEQ_LOCK so
# a concurrent eviction can never leave a half-written dict behind. The
# cached arrays themselves are safe to share (treated as read-only by
# every consumer). Forked worker processes inherit a snapshot of the
# parent's caches *and locks*; the ``os.register_at_fork`` hook below
# rebinds a fresh lock and drops the memos in every child, so a fork
# taken while a parent thread held the lock can never deadlock a worker.
# ---------------------------------------------------------------------- #

_SEQ_CACHE_MAX = 128
_SEQ_LOCK = threading.Lock()
_SEQ_CACHE: Dict[tuple, np.ndarray] = {}
# The MUX scaled adder's 0.5 select stream, packed, keyed by length —
# the bits come from the interpreter's own mux_select_bits helper.
_SELECT_CACHE: Dict[int, np.ndarray] = {}


def _reinit_after_fork() -> None:
    # A forked child inherits _SEQ_LOCK in whatever state some parent
    # thread left it — possibly held by a thread that does not exist in
    # the child, where acquiring it would deadlock forever. Rebind a
    # fresh lock and drop the memos (pure caches; losing them costs one
    # regeneration).
    global _SEQ_LOCK
    _SEQ_LOCK = threading.Lock()
    _SEQ_CACHE.clear()
    _SELECT_CACHE.clear()


if hasattr(os, "register_at_fork"):  # not on Windows (spawn starts clean)
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _rng_sequence(spec: str, kwargs: Tuple[Tuple[str, object], ...], length: int) -> np.ndarray:
    key = (spec, kwargs, length)
    with _SEQ_LOCK:
        seq = _SEQ_CACHE.get(key)
    if seq is None:
        counter_add("engine.seq_memo.miss")
        # Generation runs outside the lock (it can be slow); a racing
        # thread may generate the same sequence twice, but both results
        # are identical, so last-write-wins is harmless.
        seq = make_rng(spec, **dict(kwargs)).sequence(length)
        with _SEQ_LOCK:
            if len(_SEQ_CACHE) >= _SEQ_CACHE_MAX:
                _SEQ_CACHE.clear()
            _SEQ_CACHE[key] = seq
    else:
        counter_add("engine.seq_memo.hit")
    return seq


def _select_words(length: int) -> np.ndarray:
    with _SEQ_LOCK:
        words = _SELECT_CACHE.get(length)
    if words is None:
        words = pack_bits_unchecked(mux_select_bits(length).reshape(1, -1))
        with _SEQ_LOCK:
            if len(_SELECT_CACHE) >= _SEQ_CACHE_MAX:
                _SELECT_CACHE.clear()
            _SELECT_CACHE[length] = words
    return words


def clear_sequence_cache() -> None:
    """Drop the memoised RNG/select sequences.

    Exposed as :func:`repro.engine.clear_sequence_cache` (test isolation
    hook; forked workers are reset automatically by the at-fork hook)."""
    with _SEQ_LOCK:
        _SEQ_CACHE.clear()
        _SELECT_CACHE.clear()
    from .streaming import clear_select_tile_cache
    clear_select_tile_cache()


# ---------------------------------------------------------------------- #
# Word-domain operator kernels (one entry per OP_LIBRARY op)
# ---------------------------------------------------------------------- #

def mux_words(select: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Word-domain 2:1 mux: emits ``y`` where select=1, else ``x``.

    Tail bits stay zero: the select's tail is zero, so the tail takes
    ``x``'s (zero) tail bits — same argument as
    :meth:`PackedBitstreamBatch.mux`. Public because the image pipeline's
    engine-routed detector reuses it on raw word matrices.
    """
    return (select & y) | (~select & x)


_OP_KERNELS = {
    "mul": lambda a, b, sel: a & b,
    "sat_add": lambda a, b, sel: a | b,
    "sub": lambda a, b, sel: a ^ b,
    "max": lambda a, b, sel: a | b,
    "min": lambda a, b, sel: a & b,
    "scaled_add": lambda a, b, sel: mux_words(sel, a, b),
}


def _mux_words_into(a: np.ndarray, b: np.ndarray, sel: np.ndarray, out: np.ndarray) -> None:
    """In-place 2:1 mux via the branchless identity
    ``a ^ ((a ^ b) & sel)`` — bit-for-bit equal to
    ``(sel & b) | (~sel & a)`` (sel=1 picks ``b``, sel=0 picks ``a``,
    tail bits take ``a``'s zero tail) with zero temporaries."""
    np.bitwise_xor(a, b, out=out)
    np.bitwise_and(out, sel, out=out)
    np.bitwise_xor(out, a, out=out)


# In-place twins of _OP_KERNELS: same boolean functions, written through
# ``out=`` into an arena buffer instead of allocating (the mux identity
# above replaces the three temporaries of the expression form). ``out``
# never aliases an operand — operands are live (their release point is
# after this step), so the arena cannot have handed their buffer out.
_INPLACE_KERNELS = {
    "mul": lambda a, b, sel, out: np.bitwise_and(a, b, out=out),
    "sat_add": lambda a, b, sel, out: np.bitwise_or(a, b, out=out),
    "sub": lambda a, b, sel, out: np.bitwise_xor(a, b, out=out),
    "max": lambda a, b, sel, out: np.bitwise_or(a, b, out=out),
    "min": lambda a, b, sel, out: np.bitwise_and(a, b, out=out),
    "scaled_add": _mux_words_into,
}

# Source comparator packing works through (rows, chunk-bits) boolean
# transients of at most this many words per chunk — a full (rows, N)
# bit matrix is 8x the size of the packed result and dominates peak
# memory at large N. Chunks are word-aligned, so chunked packing is
# byte-identical to one-shot packing.
_SOURCE_CHUNK_WORDS = 128


def _pack_source_chunked(
    out: np.ndarray, lv: np.ndarray, seq: np.ndarray, length: int
) -> None:
    col = lv[:, None]
    chunk_bits = _SOURCE_CHUNK_WORDS * 64
    for start in range(0, length, chunk_bits):
        stop = min(start + chunk_bits, length)
        w0 = start // 64
        out[:, w0 : w0 + words_per_stream(stop - start)] = pack_bits_unchecked(
            col > seq[None, start:stop]
        )


def _batch_expected(op: str, inputs: List[np.ndarray]) -> np.ndarray:
    """Vectorised exact semantics (the scalar OP_LIBRARY ``expected``
    entries use python ``min``/``max``/``abs``, which reject arrays)."""
    fn = OP_LIBRARY[op].get("expected_batch")
    if fn is not None:
        return fn(inputs)
    return OP_LIBRARY[op]["expected"](inputs)


# ---------------------------------------------------------------------- #
# Batch override resolution
# ---------------------------------------------------------------------- #

def _resolve_levels(
    plan: ExecutionPlan,
    length: int,
    values: Optional[Dict[str, Union[float, np.ndarray]]],
    levels: Optional[Dict[str, Union[int, np.ndarray]]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
    """Per-source binary levels and nominal float values.

    Returns ``(levels, nominal_values, batch_size)`` where each entry is
    a 1-D int64/float64 array of size 1 (configuration-independent) or
    the common batch size.
    """
    values = dict(values or {})
    levels = dict(levels or {})
    sources = set(plan.source_names)
    for key in set(values) | set(levels):
        if key not in sources:
            raise GraphCompilationError(f"override for unknown source {key!r}")
        if key in values and key in levels:
            raise GraphCompilationError(
                f"source {key!r} given both a value and a level override"
            )

    resolved_levels: Dict[str, np.ndarray] = {}
    nominal: Dict[str, np.ndarray] = {}
    batch = 1
    # source_steps covers the *source graph* (on an optimized plan that
    # includes merged-away sources), so every name a caller can override
    # resolves — and for_execution can compare merged classes member by
    # member.
    for step in plan.source_steps:
        name = step.name
        if name in levels:
            lv = np.atleast_1d(np.asarray(levels[name]))
            if not np.issubdtype(lv.dtype, np.integer):
                raise GraphCompilationError(
                    f"level override for {name!r} must be integer, got {lv.dtype}"
                )
            lv = lv.astype(np.int64)
            if lv.size and (lv.min() < 0 or lv.max() > length):
                raise GraphCompilationError(
                    f"level override for {name!r} must lie in [0, {length}]"
                )
            val = lv / float(length)
        else:
            v = np.atleast_1d(np.asarray(values.get(name, step.value), dtype=np.float64))
            # Written so NaN fails too (NaN comparisons are all False).
            if not np.all((v >= 0.0) & (v <= 1.0)):
                raise GraphCompilationError(
                    f"value override for {name!r} must lie in [0, 1]"
                )
            # Same rounding as SourceNode.emit's int(round(value * length)):
            # np.rint and python round() are both IEEE round-half-even.
            lv = np.rint(v * length).astype(np.int64)
            val = v
        if lv.ndim != 1:
            raise GraphCompilationError(
                f"override for {name!r} must be a scalar or 1-D array"
            )
        if lv.size > 1:
            if batch > 1 and lv.size != batch:
                raise GraphCompilationError(
                    f"override batch sizes disagree ({batch} vs {lv.size})"
                )
            batch = int(lv.size)
        resolved_levels[name] = lv
        nominal[name] = np.asarray(val, dtype=np.float64)
    return resolved_levels, nominal, batch


# ---------------------------------------------------------------------- #
# Core evaluation walk
# ---------------------------------------------------------------------- #

def _execute(
    plan: ExecutionPlan,
    length: int,
    *,
    levels: Dict[str, np.ndarray],
    keep: Optional[Iterable[str]],
    want_values: bool,
    want_op_scc: bool,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Walk the schedule; returns ``(kept_words, values, op_scc)``,
    every dict keyed by *source-graph* (semantic) node names.

    ``keep=None`` keeps every node's words; otherwise intermediate
    buffers are freed as soon as their last consumer has run.

    Optimizer integration happens here, once for every entry point:
    :meth:`~repro.engine.plan.ExecutionPlan.for_execution` picks the
    optimized schedule or its raw twin (overrides can split a source
    merge), dead-node elimination prunes to the keep cone when the
    caller is not auditing, the walk recycles buffers through a
    :class:`~repro.engine.optimize.BufferArena`, and merged-away names
    are expanded back so callers see every name they asked for.
    """
    keep_set = None if keep is None else set(keep)
    semantic = plan.semantic_order
    if keep_set is not None:
        unknown = keep_set - set(semantic)
        if unknown:
            raise GraphCompilationError(f"keep names not in graph: {sorted(unknown)}")
    exec_plan = plan.for_execution(levels)
    use_arena = exec_plan.optimize_level >= 1
    sched_keep = (
        None if keep_set is None
        else {exec_plan.resolve(n) for n in keep_set}
    )
    walk_plan = exec_plan
    if (
        sched_keep is not None
        and not want_values
        and not want_op_scc
        and exec_plan.optimize_level >= 1
    ):
        # Audits never prune (their entire point is to measure every
        # operator); a words-only call walks just the ancestor cone of
        # what the caller will actually read.
        from .optimize import dce_plan

        walk_plan = dce_plan(exec_plan, frozenset(sched_keep))
    with obs_span("engine.execute", steps=len(walk_plan.steps), length=length):
        kept, node_values, op_scc = _execute_steps(
            walk_plan, length, levels=levels, keep_set=sched_keep,
            want_values=want_values, want_op_scc=want_op_scc,
            use_arena=use_arena,
        )
    if exec_plan.alias_map:
        # Expand representatives back to every requested source-graph
        # name (shared arrays — a merged duplicate *is* its
        # representative's stream, that is the whole point).
        resolve = exec_plan.resolve
        names = semantic if keep_set is None else keep_set
        kept = {n: kept[resolve(n)] for n in names if resolve(n) in kept}
        if want_values:
            node_values = {n: node_values[resolve(n)] for n in semantic}
        if want_op_scc:
            op_scc = {
                s.name: op_scc[resolve(s.name)]
                for s in plan.semantic_steps if s.kind == "op"
            }
    return kept, node_values, op_scc


def _execute_steps(
    plan: ExecutionPlan,
    length: int,
    *,
    levels: Dict[str, np.ndarray],
    keep_set: Optional[set],
    want_values: bool,
    want_op_scc: bool,
    use_arena: bool = False,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    words: Dict[str, np.ndarray] = {}
    kept: Dict[str, np.ndarray] = {}
    node_values: Dict[str, np.ndarray] = {}
    op_scc: Dict[str, np.ndarray] = {}
    group_out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    select = None
    arena = None
    n_words = words_per_stream(length)
    if use_arena:
        from .optimize import BufferArena

        arena = BufferArena()

    for step in plan.steps:
        if step.kind == "source":
            seq = _rng_sequence(step.rng_spec, step.rng_kwargs, length)
            lv = levels[step.name]
            if arena is not None:
                out = arena.take(lv.size, n_words)
                _pack_source_chunked(out, lv, seq, length)
            else:
                out = pack_bits_unchecked(lv[:, None] > seq[None, :])
        elif step.kind == "op":
            a, b = (words[d] for d in step.inputs)
            if step.op == "scaled_add" and select is None:
                select = _select_words(length)
            if want_op_scc:
                op_scc[step.name] = scc_batch_packed(a, b, length)
            if arena is not None:
                out = arena.take(max(a.shape[0], b.shape[0]), n_words)
                _INPLACE_KERNELS[step.op](a, b, select, out)
            else:
                out = _OP_KERNELS[step.op](a, b, select)
        else:  # transform (kernel or fsm domain; both unpack -> step -> repack,
               # kernel-domain circuits dispatch to repro.kernels inside
               # _process_bits and keep the whole batch time-parallel)
            if step.group not in group_out:
                xw, yw = (words[d] for d in step.inputs)
                xb = unpack_bits(xw, length)
                yb = unpack_bits(yw, length)
                xb, yb = broadcast_pair(xb, yb)
                ox, oy = step.transform._process_bits(xb, yb)
                group_out[step.group] = (pack_bits_unchecked(ox), pack_bits_unchecked(oy))
            out = group_out[step.group][step.port]

        words[step.name] = out
        if want_values:
            node_values[step.name] = popcount_words(out) / float(length)
        if keep_set is None or step.name in keep_set:
            kept[step.name] = out
        for dead in step.free_after:
            if keep_set is not None and dead not in keep_set:
                buf = words.pop(dead, None)
                # Dead buffers feed the arena's free list; transform
                # outputs stay out of it — their group_out entry lives
                # until the walk ends, and a partner port scheduled
                # after this free point must still read its own words.
                if (
                    arena is not None
                    and buf is not None
                    and buf.shape[1] == n_words
                    and plan.step(dead).kind != "transform"
                ):
                    arena.release(buf)
    if arena is not None:
        arena.flush_counters()
    return kept, node_values, op_scc


# ---------------------------------------------------------------------- #
# Public entry points
# ---------------------------------------------------------------------- #

@dataclass
class EngineRun:
    """Result of one batched engine evaluation.

    ``packed`` maps node name → ``(rows, words)`` uint64 matrix, where
    ``rows`` is 1 for configuration-independent nodes and ``batch_size``
    for nodes downstream of an overridden source.
    """

    length: int
    batch_size: int
    encoding: Encoding
    packed: Dict[str, np.ndarray]

    @property
    def names(self) -> List[str]:
        return list(self.packed)

    def words(self, name: str) -> np.ndarray:
        return self.packed[name]

    def stream_batch(self, name: str) -> PackedBitstreamBatch:
        """One node's streams as a :class:`PackedBitstreamBatch`."""
        return PackedBitstreamBatch(self.packed[name], self.length, self.encoding)

    def bits(self, name: str) -> np.ndarray:
        """One node's streams unpacked to a ``(rows, length)`` uint8 matrix."""
        return unpack_bits(self.packed[name], self.length)

    def values(self, name: str) -> np.ndarray:
        """Per-configuration encoded values of one node."""
        return ones_to_value(
            popcount_words(self.packed[name]), self.length, self.encoding
        )


def run_batch(
    plan: ExecutionPlan,
    length: int = 256,
    *,
    values: Optional[Dict[str, Union[float, np.ndarray]]] = None,
    levels: Optional[Dict[str, Union[int, np.ndarray]]] = None,
    keep: Optional[Iterable[str]] = None,
    encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
) -> EngineRun:
    """Evaluate one plan against a batch of input configurations.

    Args:
        plan: a compiled :class:`ExecutionPlan`.
        length: stream length N.
        values: per-source value overrides — scalar or ``(batch,)``
            float arrays in [0, 1]; sources not named keep their graph
            value. Row ``i`` of the result is bit-identical to
            interpreting the graph with configuration ``i``.
        levels: per-source *binary level* overrides (integers compared
            directly against the RNG sequence); mutually exclusive with
            ``values`` per source.
        keep: node names whose streams to retain (default: all).
            Intermediate buffers are freed at their last use.
        encoding: value interpretation of the returned streams.
    """
    check_stream_length(length)
    resolved, _, batch = _resolve_levels(plan, length, values, levels)
    kept, _, _ = _execute(
        plan, length, levels=resolved, keep=keep,
        want_values=False, want_op_scc=False,
    )
    return EngineRun(
        length=length,
        batch_size=batch,
        encoding=Encoding.coerce(encoding),
        packed=kept,
    )


def run(plan: ExecutionPlan, length: int = 256) -> Dict[str, np.ndarray]:
    """Single-configuration evaluation, interpreter-shaped output:
    name → ``(length,)`` uint8 bit array, bit-identical to
    ``SCGraph.run(length, backend="interpreter")``."""
    result = run_batch(plan, length)
    return {name: result.bits(name)[0] for name in plan.semantic_order}


def audit(plan: ExecutionPlan, length: int = 256, *, tolerance: float = 0.35) -> GraphAudit:
    """Engine-backed audit, float-identical to the interpreter's.

    Per-op SCC goes through :func:`scc_batch_packed` (same integer
    overlap counts as the unpacked kernel), values through popcounts.
    """
    check_stream_length(length)
    resolved, _, _ = _resolve_levels(plan, length, None, None)
    _, node_values, op_scc = _execute(
        plan, length, levels=resolved, keep=(),
        want_values=True, want_op_scc=True,
    )
    expected = plan.expected_values()
    values = {name: float(v[0]) for name, v in node_values.items()}
    entries: List[AuditEntry] = []
    for step in plan.semantic_steps:
        if step.kind != "op":
            continue
        required = OP_LIBRARY[step.op]["required"]
        measured = float(op_scc[step.name][0])
        violated = required is not None and abs(measured - required) > tolerance
        entries.append(
            AuditEntry(
                node=step.name,
                op=step.op,
                required_scc=required,
                measured_scc=measured,
                expected_value=expected[step.name],
                measured_value=values[step.name],
                violated=violated,
            )
        )
    return GraphAudit(entries=entries, values=values, expected=expected)


@dataclass(frozen=True)
class BatchAuditEntry:
    """Vectorised audit record for one operator across a config batch."""

    node: str
    op: str
    required_scc: Optional[float]
    measured_scc: np.ndarray      # (batch,)
    expected_value: np.ndarray    # (batch,)
    measured_value: np.ndarray    # (batch,)
    violated: np.ndarray          # (batch,) bool

    @property
    def value_error(self) -> np.ndarray:
        return np.abs(self.measured_value - self.expected_value)

    @property
    def violation_rate(self) -> float:
        return float(np.mean(self.violated))


@dataclass
class BatchAudit:
    """Full-graph audit across a batch of input configurations."""

    entries: List[BatchAuditEntry]
    values: Dict[str, np.ndarray]
    expected: Dict[str, np.ndarray]
    batch_size: int

    def entry(self, node: str) -> BatchAuditEntry:
        for e in self.entries:
            if e.node == node:
                return e
        raise KeyError(node)

    def mean_value_error(self, node: str) -> float:
        return float(np.mean(np.abs(self.values[node] - self.expected[node])))


def _expected_batch(plan: ExecutionPlan, nominal: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    expected: Dict[str, np.ndarray] = {}
    for step in plan.semantic_steps:
        if step.kind == "source":
            expected[step.name] = nominal[step.name]
        elif step.kind == "op":
            expected[step.name] = np.asarray(
                _batch_expected(step.op, [expected[d] for d in step.inputs]),
                dtype=np.float64,
            )
        else:
            expected[step.name] = expected[step.inputs[step.port]]
    return expected


def audit_batch(
    plan: ExecutionPlan,
    length: int = 256,
    *,
    values: Optional[Dict[str, Union[float, np.ndarray]]] = None,
    levels: Optional[Dict[str, Union[int, np.ndarray]]] = None,
    tolerance: float = 0.35,
) -> BatchAudit:
    """Audit a whole configuration batch in one pass.

    Row ``i`` of every entry equals the interpreter's scalar audit of
    configuration ``i``; the SCC measurements run through the packed
    overlap kernels once per operator instead of once per (operator,
    configuration) pair.
    """
    check_stream_length(length)
    resolved, nominal, batch = _resolve_levels(plan, length, values, levels)
    _, node_values, op_scc = _execute(
        plan, length, levels=resolved, keep=(),
        want_values=True, want_op_scc=True,
    )
    expected = _expected_batch(plan, nominal)
    # .copy(): np.broadcast_to returns read-only views, and callers get
    # writable arrays from every other analysis API in the repo.
    broadcast = lambda a: np.broadcast_to(np.atleast_1d(a), (batch,)).copy()  # noqa: E731
    entries: List[BatchAuditEntry] = []
    for step in plan.semantic_steps:
        if step.kind != "op":
            continue
        required = OP_LIBRARY[step.op]["required"]
        measured = broadcast(op_scc[step.name])
        if required is None:
            violated = np.zeros(batch, dtype=bool)
        else:
            violated = np.abs(measured - required) > tolerance
        entries.append(
            BatchAuditEntry(
                node=step.name,
                op=step.op,
                required_scc=required,
                measured_scc=measured,
                expected_value=broadcast(expected[step.name]),
                measured_value=broadcast(node_values[step.name]),
                violated=violated,
            )
        )
    return BatchAudit(
        entries=entries,
        values={k: broadcast(v) for k, v in node_values.items()},
        expected={k: broadcast(v) for k, v in expected.items()},
        batch_size=batch,
    )
