"""Constant-memory tile streaming over compiled execution plans.

:mod:`repro.engine.executor` materialises every node's full-length packed
buffer — O(nodes × N × batch) memory, which walls off the long-stream
regime (N ≥ 2^20) where the paper's SCC and value estimates converge.
This module pumps fixed-size **word tiles** through the whole plan
instead:

1. the stream is split into tiles of ``tile_words`` uint64 words
   (:func:`repro.bitstream.streaming.tile_bounds`);
2. per tile, sources emit packed words on demand from *windowed* RNG
   sequences (:class:`~repro.bitstream.streaming.PackedTileSource` — no
   full-length comparator sequence ever exists), combinational ops run
   word-parallel on the tile, and sequential transforms advance
   *carriers* (:mod:`repro.kernels.streaming`) that hold FSM state across
   tile boundaries;
3. whole-stream quantities come from streaming accumulators — popcount
   partial sums for values, overlap partial sums for pairwise SCC — so
   nothing about a node needs retaining beyond a handful of integers.
   Full streams are assembled only for nodes the caller explicitly keeps.

On top of the tile walk sits a **fusion pass**
(:meth:`~repro.engine.plan.ExecutionPlan.fused_schedule`): runs of
adjacent packed ops whose intermediates nobody else reads collapse into
one super-step evaluated in a single pass over the tile, with interior
results ping-ponging between two reusable scratch buffers (in-place
ufunc kernels — zero interior allocation, zero interior accumulation).

Bit-exactness contract (enforced by ``tests/test_streaming.py`` for
every :mod:`repro.engine.library` graph, both encodings, odd lengths,
batches ≥ 1, across tile sizes):

* :func:`run_streaming` with ``keep`` covering a node reproduces
  :func:`repro.engine.executor.run_batch`'s words for it **bit for
  bit**, at every tile size;
* :func:`audit_streaming` returns a
  :class:`~repro.graph.graph.GraphAudit` **float-identical** to
  :func:`repro.engine.executor.audit` (the accumulated integer counts
  equal the whole-stream counts, so the derived floats are equal too).

Memory model: O(batch × tile_words) per live node within a tile, plus
O(batch) integers per accumulated node, plus O(batch × N/64) *only* for
explicitly kept nodes. ``keep=()`` is the constant-memory configuration
the ``long_stream`` experiment and the N=2^22 CI smoke run in.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from .._validation import check_jobs, check_stream_length, check_tile_words
from ..arith._coerce import broadcast_pair
from ..bitstream.encoding import Encoding, ones_to_value
from ..bitstream.packed import pack_bits_unchecked, unpack_bits, words_per_stream
from ..bitstream.streaming import (
    DEFAULT_TILE_WORDS,
    OverlapAccumulator,
    PackedTileSource,
    TileAssembler,
    ValueAccumulator,
    tile_bounds,
    tile_count,
)
from ..exceptions import GraphCompilationError
from ..graph.graph import AuditEntry, GraphAudit
from ..graph.nodes import OP_LIBRARY, mux_select_window
from ..kernels.streaming import PairCarrier, make_pair_carrier
from ..obs import counter_add
from ..obs import span as obs_span
from ..rng import make_rng
from .executor import _OP_KERNELS, _resolve_levels
from .plan import ExecutionPlan, FusedChain

__all__ = ["StreamingRun", "run_streaming", "audit_streaming"]

_WORD_DTYPE = np.dtype("<u8")

# ---------------------------------------------------------------------- #
# Select-tile memo. The MUX scaled adder's 0.5 select stream is one
# deterministic sequence, and a tile of it is keyed by (start, stop)
# alone — independent of stream length — so tiles computed for one run
# serve every later run (the long_stream sweep's shards share all their
# early tiles). The halton7 radical inverse is the single most expensive
# per-tile computation, so this memo matters; the cap bounds it to a few
# MB at the default tile size (eviction degrades to recomputation, never
# to wrong bits). Guarded by a lock like the executor's sequence memos;
# cleared by repro.engine.clear_sequence_cache.
# ---------------------------------------------------------------------- #

_SELECT_TILE_MAX = 64
_SELECT_TILE_LOCK = threading.Lock()
_SELECT_TILE_CACHE: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()


def _reinit_after_fork() -> None:
    # Same rationale as the executor's fork hook: the inherited lock may
    # be held by a thread that does not exist in the child.
    global _SELECT_TILE_LOCK
    _SELECT_TILE_LOCK = threading.Lock()
    _SELECT_TILE_CACHE.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _select_tile(start: int, stop: int) -> np.ndarray:
    key = (start, stop)
    with _SELECT_TILE_LOCK:
        words = _SELECT_TILE_CACHE.get(key)
        if words is not None:
            _SELECT_TILE_CACHE.move_to_end(key)
            return words
    words = pack_bits_unchecked(mux_select_window(start, stop).reshape(1, -1))
    with _SELECT_TILE_LOCK:
        _SELECT_TILE_CACHE[key] = words
        while len(_SELECT_TILE_CACHE) > _SELECT_TILE_MAX:
            _SELECT_TILE_CACHE.popitem(last=False)
    return words


def clear_select_tile_cache() -> None:
    """Drop the memoised select tiles (invoked by
    :func:`repro.engine.clear_sequence_cache`)."""
    with _SELECT_TILE_LOCK:
        _SELECT_TILE_CACHE.clear()


# ---------------------------------------------------------------------- #
# In-place word kernels for fused super-steps
# ---------------------------------------------------------------------- #

def _mux_into(a, b, select, out):
    # The mux identity ``((x ^ y) & s) ^ x == (s & y) | (~s & x)`` runs
    # the scaled adder in-place with no scratch operand.
    np.bitwise_xor(a, b, out=out)
    np.bitwise_and(out, select, out=out)
    np.bitwise_xor(out, a, out=out)


_INPLACE_KERNELS = {
    "mul": lambda a, b, sel, out: np.bitwise_and(a, b, out=out),
    "min": lambda a, b, sel, out: np.bitwise_and(a, b, out=out),
    "sat_add": lambda a, b, sel, out: np.bitwise_or(a, b, out=out),
    "max": lambda a, b, sel, out: np.bitwise_or(a, b, out=out),
    "sub": lambda a, b, sel, out: np.bitwise_xor(a, b, out=out),
    "scaled_add": _mux_into,
}


class _CompiledChain:
    """One fused super-step, prepared once per run.

    Each member is resolved to ``(kernel, a_ref, b_ref, rows, dead)``
    where a ref is an env name (``str``, read from the tile environment)
    or an earlier member index (``int``, read from chain scratch) — so
    the per-tile inner loop does no string matching and no shape
    broadcasting. Interior scratch comes from the walk's *shared*
    :class:`~repro.engine.optimize.BufferArena`: each member's output is
    released the moment its last in-chain consumer has run (``dead``
    lists the member indices dying after this member), so widened chains
    with multi-consumer interiors hold exactly their live set, and every
    chain in the walk recycles one common pool instead of two private
    ping-pong slots per chain. Only the head's buffer is chain-private:
    it outlives the evaluation (the tile environment, accumulators, and
    assemblers read it after the chain returns) and is reallocated only
    when the tile shape changes (the final partial tile)."""

    __slots__ = ("name", "members", "_head_buf")

    def __init__(self, chain: FusedChain, rows: Dict[str, int]) -> None:
        self.name = chain.name
        position = {s.name: i for i, s in enumerate(chain.steps)}
        head = len(chain.steps) - 1
        last_use: Dict[int, int] = {}
        for i, step in enumerate(chain.steps):
            for dep in step.inputs:
                j = position.get(dep)
                if j is not None:
                    last_use[j] = i
        dying: Dict[int, List[int]] = {}
        for j, i in last_use.items():
            if j != head:
                dying.setdefault(i, []).append(j)
        members = []
        for i, step in enumerate(chain.steps):
            a_name, b_name = step.inputs
            members.append((
                _INPLACE_KERNELS[step.op],
                position.get(a_name, a_name),
                position.get(b_name, b_name),
                rows[step.name],
                tuple(dying.get(i, ())),
            ))
        self.members = members
        self._head_buf: Optional[np.ndarray] = None

    def evaluate(
        self,
        env: Dict[str, np.ndarray],
        select: Optional[np.ndarray],
        tile_word_count: int,
        arena,
    ) -> np.ndarray:
        members = self.members
        outs: List[Optional[np.ndarray]] = [None] * len(members)
        head = len(members) - 1
        for i, (kernel, a_ref, b_ref, r, dead) in enumerate(members):
            a = outs[a_ref] if type(a_ref) is int else env[a_ref]
            b = outs[b_ref] if type(b_ref) is int else env[b_ref]
            if i == head:
                out = self._head_buf
                if out is None or out.shape[0] != r or out.shape[1] != tile_word_count:
                    out = np.empty((r, tile_word_count), dtype=_WORD_DTYPE)
                    self._head_buf = out
            else:
                # Never aliases a/b: the arena holds only dead buffers,
                # and a live operand's release point is after this call.
                out = arena.take(r, tile_word_count)
            kernel(a, b, select, out)
            outs[i] = out
            for j in dead:
                arena.release(outs[j])
        return outs[head]


# ---------------------------------------------------------------------- #
# Rows (batch-dimension) propagation
# ---------------------------------------------------------------------- #

def _propagate_rows(plan: ExecutionPlan, levels: Dict[str, np.ndarray]) -> Dict[str, int]:
    """Per-node row counts — 1 for configuration-independent nodes,
    ``batch`` downstream of an overridden source (matches the executor's
    numpy broadcasting exactly)."""
    rows: Dict[str, int] = {}
    for step in plan.steps:
        if step.kind == "source":
            rows[step.name] = int(levels[step.name].size)
        else:
            rows[step.name] = max(rows[d] for d in step.inputs)
    return rows


# ---------------------------------------------------------------------- #
# Core tile walk
# ---------------------------------------------------------------------- #

def _keep_and_exposed(
    plan: ExecutionPlan,
    exec_plan: ExecutionPlan,
    keep: Optional[Iterable[str]],
    want_values_all: bool,
    want_op_scc: bool,
) -> Tuple[set, set, set, set, set]:
    """Resolve ``keep`` and derive the value-accumulated and fusion-
    exposed node sets (shared by the sequential and parallel walks).

    ``keep`` is validated against the *semantic* (source-graph) names of
    ``plan``; the returned ``keep_set``/``value_nodes``/``exposed`` are
    resolved to ``exec_plan``'s schedule representatives, while
    ``keep_sem``/``value_sem`` retain the caller's spelling for the
    alias expansion at the end of the walk."""
    semantic = set(plan.semantic_order)
    if keep is None:
        keep_sem = semantic
    else:
        keep_sem = set(keep)
        unknown = keep_sem - semantic
        if unknown:
            raise GraphCompilationError(f"keep names not in graph: {sorted(unknown)}")
    resolve = exec_plan.resolve
    keep_set = {resolve(n) for n in keep_sem}
    value_sem = semantic if want_values_all else set(keep_sem)
    value_nodes = {resolve(n) for n in value_sem}
    exposed = set(keep_set) | value_nodes
    if want_op_scc:
        for step in exec_plan.steps:
            if step.kind == "op":
                exposed.update(step.inputs)
    return keep_sem, keep_set, value_sem, value_nodes, exposed


def _expand_aliases(
    plan: ExecutionPlan,
    exec_plan: ExecutionPlan,
    kept: Dict[str, np.ndarray],
    ones: Dict[str, np.ndarray],
    op_scc: Dict[str, np.ndarray],
    keep_sem: set,
    value_sem: set,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Re-key walk results (schedule representatives) back to every
    requested source-graph name — merged duplicates share their
    representative's arrays, which is the whole point of the merge."""
    if not exec_plan.alias_map:
        return kept, ones, op_scc
    resolve = exec_plan.resolve
    kept = {
        n: kept[resolve(n)]
        for n in plan.semantic_order
        if n in keep_sem and resolve(n) in kept
    }
    ones = {n: ones[resolve(n)] for n in value_sem if resolve(n) in ones}
    op_scc = {
        s.name: op_scc[resolve(s.name)]
        for s in plan.semantic_steps
        if s.kind == "op" and resolve(s.name) in op_scc
    }
    return kept, ones, op_scc


def _make_sources(
    plan: ExecutionPlan, levels: Dict[str, np.ndarray]
) -> Dict[str, PackedTileSource]:
    return {
        step.name: PackedTileSource(
            levels[step.name], make_rng(step.rng_spec, **dict(step.rng_kwargs))
        )
        for step in plan.steps
        if step.kind == "source"
    }


def _make_carriers(
    plan: ExecutionPlan,
    length: int,
    rows: Dict[str, int],
    start: int = 0,
) -> Dict[int, PairCarrier]:
    """One carrier per transform group, positioned at ``start`` (0 for
    the sequential walk; a span's first bit for parallel spans)."""
    carriers: Dict[int, PairCarrier] = {}
    for step in plan.steps:
        if step.kind == "transform" and step.group not in carriers:
            batch = max(rows[d] for d in step.inputs)
            carrier = make_pair_carrier(step.transform, length, batch, start)
            if carrier is None:
                raise GraphCompilationError(
                    f"transform {step.name!r} ({step.transform.name}) has no "
                    f"chunk-resumable streaming carrier; evaluate this plan "
                    f"with run()/audit() instead"
                )
            carriers[step.group] = carrier
    return carriers


def _walk_tiles(
    schedule: List,
    sources: Dict[str, PackedTileSource],
    carriers: Dict[int, PairCarrier],
    bounds: Iterable[Tuple[int, int]],
    *,
    needs_select: bool,
    vacc: Dict[str, ValueAccumulator],
    sccacc: Dict[str, OverlapAccumulator],
    writers: Dict[str, TileAssembler],
) -> None:
    """Pump the given tiles through a compiled schedule — the one inner
    loop shared by the sequential executor and each parallel span worker
    (:mod:`repro.engine.parallel`). Tile ``bounds`` carry *absolute*
    stream offsets, so sources window their RNGs and flush-tail carriers
    count remaining cycles identically in either caller."""
    from .optimize import BufferArena

    # One arena for the whole walk: every fused chain's interior scratch
    # comes from (and returns to) this pool, so chains recycle each
    # other's buffers tile after tile.
    arena = BufferArena()
    # Tile/word totals accumulate in local ints and post once after the
    # walk — no per-tile instrumentation cost.
    tiles_done = 0
    words_done = 0
    with obs_span("engine.stream.walk") as walk:
        for start, stop in bounds:
            tile_len = stop - start
            tile_word_count = (tile_len + 63) // 64
            tiles_done += 1
            words_done += tile_word_count
            select = _select_tile(start, stop) if needs_select else None
            env: Dict[str, np.ndarray] = {}
            group_out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

            for item in schedule:
                if isinstance(item, _CompiledChain):
                    env[item.name] = item.evaluate(env, select, tile_word_count, arena)
                    name = item.name
                elif item.kind == "source":
                    env[item.name] = sources[item.name].tile(start, stop)
                    name = item.name
                elif item.kind == "op":
                    a, b = (env[d] for d in item.inputs)
                    if sccacc and item.name in sccacc:
                        sccacc[item.name].update(a, b)
                    env[item.name] = _OP_KERNELS[item.op](a, b, select)
                    name = item.name
                else:  # transform
                    if item.group not in group_out:
                        xw, yw = (env[d] for d in item.inputs)
                        xb = unpack_bits(xw, tile_len)
                        yb = unpack_bits(yw, tile_len)
                        xb, yb = broadcast_pair(xb, yb)
                        ox, oy = carriers[item.group].step(xb, yb)
                        group_out[item.group] = (pack_bits_unchecked(ox), pack_bits_unchecked(oy))
                    env[item.name] = group_out[item.group][item.port]
                    name = item.name

                if name in vacc:
                    vacc[name].update(env[name])
                if name in writers:
                    writers[name].write(start, env[name])
        walk.annotate(tiles=tiles_done, words=words_done)
    arena.flush_counters()
    counter_add("engine.stream.tiles", tiles_done)
    counter_add("engine.stream.words", words_done)


def _stream_execute(
    plan: ExecutionPlan,
    length: int,
    *,
    levels: Dict[str, np.ndarray],
    keep: Optional[Iterable[str]],
    tile_words: int,
    fuse: bool,
    want_values_all: bool,
    want_op_scc: bool,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
    """Walk every tile through the (possibly fused) schedule.

    Returns ``(kept_words, ones, op_scc, fused_chains)`` where ``ones``
    maps accumulated node names to integer 1-counts and ``op_scc`` maps
    op names to per-row SCC arrays.
    """
    with obs_span("engine.stream", length=length, tile_words=tile_words):
        exec_plan = plan.for_execution(levels)
        keep_sem, keep_set, value_sem, value_nodes, exposed = _keep_and_exposed(
            plan, exec_plan, keep, want_values_all, want_op_scc
        )
        rows = _propagate_rows(exec_plan, levels)

        # Carriers are built for the *unpruned* schedule, before any
        # dead-node elimination: a transform without a streaming carrier
        # must be rejected whether or not the caller's keep set reaches
        # it (same contract as the unoptimized path).
        carriers = _make_carriers(exec_plan, length, rows)

        walk_plan = exec_plan
        if (
            keep is not None
            and not want_values_all
            and not want_op_scc
            and exec_plan.optimize_level >= 1
        ):
            from .optimize import dce_plan

            walk_plan = dce_plan(exec_plan, frozenset(keep_set))

        schedule = walk_plan.fused_schedule(exposed if fuse else None)
        fused_chains = sum(1 for item in schedule if isinstance(item, FusedChain))

        sources = _make_sources(walk_plan, levels)

        vacc = {name: ValueAccumulator(length) for name in value_nodes}
        sccacc: Dict[str, OverlapAccumulator] = {}
        if want_op_scc:
            sccacc = {
                s.name: OverlapAccumulator(length)
                for s in walk_plan.steps if s.kind == "op"
            }
        assemblers = {name: TileAssembler(rows[name], length) for name in keep_set}
        schedule = [
            _CompiledChain(item, rows) if isinstance(item, FusedChain) else item
            for item in schedule
        ]

        needs_select = any(
            s.op == "scaled_add" for s in walk_plan.steps if s.kind == "op"
        )

        _walk_tiles(
            schedule, sources, carriers, tile_bounds(length, tile_words),
            needs_select=needs_select, vacc=vacc, sccacc=sccacc,
            writers=assemblers,
        )

        kept = {
            name: assemblers[name].words
            for name in walk_plan.node_order if name in assemblers
        }
        ones = {name: acc.ones for name, acc in vacc.items()}
        op_scc = {name: acc.scc() for name, acc in sccacc.items()}
        kept, ones, op_scc = _expand_aliases(
            plan, exec_plan, kept, ones, op_scc, keep_sem, value_sem
        )
        return kept, ones, op_scc, fused_chains


# ---------------------------------------------------------------------- #
# Public entry points
# ---------------------------------------------------------------------- #

@dataclass
class StreamingRun:
    """Result of one tile-streamed evaluation.

    ``packed`` holds full word matrices only for the nodes the caller
    kept; ``ones`` holds accumulated 1-counts for kept nodes (plus any
    value-accumulated ones), from which :meth:`values` derives the same
    floats a materialised run would.
    """

    length: int
    batch_size: int
    encoding: Encoding
    tile_words: int
    tiles: int
    fused_super_steps: int
    packed: Dict[str, np.ndarray]
    ones: Dict[str, np.ndarray]

    @property
    def names(self) -> List[str]:
        return list(self.packed)

    def words(self, name: str) -> np.ndarray:
        """A kept node's full ``(rows, words)`` uint64 matrix."""
        return self.packed[name]

    def bits(self, name: str) -> np.ndarray:
        """A kept node's streams unpacked to ``(rows, length)`` uint8."""
        return unpack_bits(self.packed[name], self.length)

    def values(self, name: str) -> np.ndarray:
        """Per-configuration encoded values from the streaming popcount
        accumulator (no bits were retained to compute these)."""
        return ones_to_value(self.ones[name], self.length, self.encoding)


def run_streaming(
    plan: ExecutionPlan,
    length: int = 256,
    *,
    tile_words: int = DEFAULT_TILE_WORDS,
    values: Optional[Dict[str, Union[float, np.ndarray]]] = None,
    levels: Optional[Dict[str, Union[int, np.ndarray]]] = None,
    keep: Optional[Iterable[str]] = None,
    encoding: Union[Encoding, str] = Encoding.UNIPOLAR,
    fuse: bool = True,
    jobs: int = 1,
) -> StreamingRun:
    """Evaluate a plan by pumping word tiles through the whole schedule.

    Bit-identical to :func:`repro.engine.executor.run_batch` on every
    node it keeps, at every tile size — but memory scales with
    ``tile_words``, not ``length``, for everything *not* kept.

    Args:
        plan: a compiled :class:`~repro.engine.plan.ExecutionPlan` whose
            transforms all have streaming carriers (every kernel-domain
            circuit does; plans with ``fsm``-domain nodes are rejected).
        length: stream length N (odd lengths fine; the last tile is
            partial).
        tile_words: tile size in 64-bit words (``tile_words * 64`` bits
            per tile).
        values / levels: per-source overrides, as in ``run_batch``.
        keep: node names to materialise at full length. **Default keeps
            every node** (matching ``run_batch``); pass ``()`` or a small
            subset for constant-memory execution. Kept nodes also get
            streaming value accumulators.
        encoding: value interpretation of results.
        fuse: collapse runs of adjacent packed ops into fused super-steps
            (single pass over the tile, no interior buffers). Never
            changes any bit — only which intermediates exist.
        jobs: worker processes for the parallel tile scheduler
            (:mod:`repro.engine.parallel`): tiles are split into
            contiguous spans whose carrier entry states come from a
            prefix scan over composed state maps, so results stay
            bit-identical to ``jobs=1`` at every tile size. ``1`` (the
            default) runs the sequential walk; plans whose carriers do
            not compose (series compositions) silently fall back to it.
    """
    check_stream_length(length)
    check_tile_words(tile_words)
    check_jobs(jobs)
    resolved, _, batch = _resolve_levels(plan, length, values, levels)
    if jobs > 1:
        from .parallel import _parallel_stream_execute
        kept, ones, _, fused = _parallel_stream_execute(
            plan, length, levels=resolved, keep=keep, tile_words=tile_words,
            fuse=fuse, want_values_all=False, want_op_scc=False, jobs=jobs,
        )
    else:
        kept, ones, _, fused = _stream_execute(
            plan, length, levels=resolved, keep=keep, tile_words=tile_words,
            fuse=fuse, want_values_all=False, want_op_scc=False,
        )
    return StreamingRun(
        length=length,
        batch_size=batch,
        encoding=Encoding.coerce(encoding),
        tile_words=tile_words,
        tiles=tile_count(length, tile_words),
        fused_super_steps=fused,
        packed=kept,
        ones=ones,
    )


def audit_streaming(
    plan: ExecutionPlan,
    length: int = 256,
    *,
    tile_words: int = DEFAULT_TILE_WORDS,
    tolerance: float = 0.35,
    jobs: int = 1,
) -> GraphAudit:
    """Streaming graph audit — float-identical to
    :func:`repro.engine.executor.audit` at any tile size, with O(tile)
    memory.

    Node values accumulate as popcount partial sums and per-op SCC as
    overlap partial sums; the summed integers equal the whole-stream
    counts, so every derived float matches the materialised audit
    exactly. This is what makes N = 2^22 correlation audits (the
    ``long_stream`` experiment) possible at all. ``jobs > 1`` runs the
    prefix-scanned parallel tile scheduler; the merged integer partial
    sums equal the sequential sums, so every derived float is identical.
    """
    check_stream_length(length)
    check_tile_words(tile_words)
    check_jobs(jobs)
    resolved, _, _ = _resolve_levels(plan, length, None, None)
    if jobs > 1:
        from .parallel import _parallel_stream_execute
        _, ones, op_scc, _ = _parallel_stream_execute(
            plan, length, levels=resolved, keep=(), tile_words=tile_words,
            fuse=True, want_values_all=True, want_op_scc=True, jobs=jobs,
        )
    else:
        _, ones, op_scc, _ = _stream_execute(
            plan, length, levels=resolved, keep=(), tile_words=tile_words,
            fuse=True, want_values_all=True, want_op_scc=True,
        )
    expected = plan.expected_values()
    node_values = {
        name: float(count[0]) / float(length) for name, count in ones.items()
    }
    entries: List[AuditEntry] = []
    for step in plan.semantic_steps:
        if step.kind != "op":
            continue
        required = OP_LIBRARY[step.op]["required"]
        measured = float(op_scc[step.name][0])
        violated = required is not None and abs(measured - required) > tolerance
        entries.append(
            AuditEntry(
                node=step.name,
                op=step.op,
                required_scc=required,
                measured_scc=measured,
                expected_value=expected[step.name],
                measured_value=node_values[step.name],
                violated=violated,
            )
        )
    return GraphAudit(entries=entries, values=node_values, expected=expected)
