"""Named example graphs for the CLI, benchmarks, and equivalence tests.

Each builder returns a fresh :class:`~repro.graph.graph.SCGraph`; the CLI
``engine`` / ``audit`` subcommands and ``benchmarks/bench_engine.py``
resolve graphs by name through :func:`build_graph`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core import Decorrelator, Desynchronizer, IsolatorPair, Synchronizer, TFMPair
from ..graph.graph import SCGraph
from ..graph.nodes import TransformNode
from ..rng import LFSR

__all__ = [
    "GRAPH_LIBRARY",
    "build_graph",
    "depth_chain_graph",
    "long_stream_graph",
    "mux_chain_graph",
]


def correlated_multiply_graph() -> SCGraph:
    """Two same-RNG sources (SCC=+1) feeding a multiply (needs SCC=0)."""
    g = SCGraph()
    g.source("a", 0.75, "vdc")
    g.source("b", 0.5, "vdc")
    g.op("prod", "mul", "a", "b")
    return g


def uncorrelated_subtract_graph() -> SCGraph:
    """Two independent sources feeding a subtract (needs SCC=+1)."""
    g = SCGraph()
    g.source("a", 0.8, "vdc")
    g.source("b", 0.3, "halton3")
    g.op("diff", "sub", "a", "b")
    return g


def mixed_pipeline_graph() -> SCGraph:
    """A small heterogeneous pipeline: sub -> max chain plus a scaled add."""
    g = SCGraph()
    g.source("a", 0.9, "vdc")
    g.source("b", 0.2, "halton3")
    g.source("c", 0.5, "halton5")
    g.op("diff", "sub", "a", "b")
    g.op("peak", "max", "diff", "c")
    g.op("avg", "scaled_add", "peak", "a")
    return g


def _splice(g: SCGraph, transform, a: str, b: str, stem: str) -> List[str]:
    """Insert one pair transform (both ports share one FSM pass)."""
    shared: dict = {}
    g.add(TransformNode(f"{stem}_x", transform, (a, b), 0, shared))
    g.add(TransformNode(f"{stem}_y", transform, (a, b), 1, shared))
    return [f"{stem}_x", f"{stem}_y"]


def fsm_zoo_graph() -> SCGraph:
    """Every FSM transform type in one graph: synchronizer,
    desynchronizer, decorrelator, isolator, and TFM nodes feeding ops —
    the engine's pack/unpack boundary stress test."""
    g = SCGraph()
    g.source("a", 0.7, "vdc")
    g.source("b", 0.4, "halton3")
    g.source("c", 0.6, "vdc")
    g.source("d", 0.5, "vdc")
    sx, sy = _splice(g, Synchronizer(depth=1), "a", "b", "sync")
    g.op("diff", "sub", sx, sy)
    dx, dy = _splice(g, Desynchronizer(depth=1), "a", "c", "desync")
    g.op("sat", "sat_add", dx, dy)
    kx, ky = _splice(
        g, Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4), "c", "d", "deco"
    )
    g.op("prod", "mul", kx, ky)
    ix, iy = _splice(g, IsolatorPair(delay=1), "diff", "sat", "iso")
    g.op("peak", "max", ix, iy)
    tx, ty = _splice(g, TFMPair(LFSR(8, seed=77)), "prod", "peak", "tfm")
    g.op("out", "scaled_add", tx, ty)
    return g


def depth_chain_graph(depth: int = 8, values=None) -> SCGraph:
    """A depth-``depth`` combinational chain over ``depth + 1`` sources.

    The benchmark workload: every level consumes the previous level's
    output plus a fresh source, cycling through the correlation-sensitive
    operator zoo. ``src0..src<depth>`` are the sweepable inputs;
    ``values`` optionally fixes their source values (defaults to 0.5
    everywhere — the engine's batched sweeps override them per
    configuration instead of rebuilding the graph).
    """
    ops = ["mul", "scaled_add", "max", "sat_add", "min", "sub"]
    specs = ["vdc", "halton3", "halton5", "halton7", "lfsr"]
    if values is None:
        values = [0.5] * (depth + 1)
    if len(values) != depth + 1:
        raise ValueError(f"need {depth + 1} source values, got {len(values)}")
    g = SCGraph()
    g.source("src0", float(values[0]), specs[0])
    prev = "src0"
    for i in range(1, depth + 1):
        src = f"src{i}"
        g.source(src, float(values[i]), specs[i % len(specs)])
        node = f"n{i}"
        g.op(node, ops[(i - 1) % len(ops)], prev, src)
        prev = node
    return g


def depth8_graph() -> SCGraph:
    """The benchmark's depth-8 chain (see :func:`depth_chain_graph`)."""
    return depth_chain_graph(8)


def mux_chain_graph(depth: int = 64, sources: int = 3) -> SCGraph:
    """A deep MUX scaled-add chain over a few period-cached sources.

    The SC weighted-sum construction taken to depth: every level is a
    2:1 scaled add of the running sum with one of ``sources`` recycled
    inputs. This is the fusion benchmark's workload — one long run of
    packed combinational nodes with single-consumer intermediates, i.e.
    one fused super-step — and the op mix (MUX) is the one whose
    in-place kernel beats the allocating kernel hardest.
    """
    specs = ["vdc", "lfsr", "counter"]
    g = SCGraph()
    for i in range(sources):
        g.source(f"src{i}", 0.35 + 0.1 * (i % 3), specs[i % len(specs)])
    prev = "src0"
    for i in range(1, depth + 1):
        g.op(f"n{i}", "scaled_add", prev, f"src{i % sources}")
        prev = f"n{i}"
    return g


#: The source quadruple every ``cse_sweep`` tree re-declares privately:
#: name stem -> (value, rng_spec, rng kwargs).
_CSE_SWEEP_SOURCES = (
    ("a", 0.8, "vdc", {}),
    ("b", 0.3, "halton3", {}),
    ("c", 0.6, "halton5", {}),
    ("d", 0.45, "lfsr", {"seed": 29}),
)


def cse_sweep_graph(copies: int = 16) -> SCGraph:
    """A CSE-heavy sweep workload: ``copies`` structurally identical
    depth-4 operator trees, each over its *own* copies of one source
    quadruple, each finished by one op against a tree-private weight.

    Faithful compilation schedules ``copies * 4`` sources and
    ``copies * 5`` ops — every tree re-packs identical comparator
    sources and recomputes the identical depth-4 interior — while
    structural CSE collapses both to one instance
    (``4 + copies`` sources, ``4 + copies`` ops). This is the optimizer
    benchmark's workload, and a realistic shape: batched design sweeps
    duplicate whole operand subtrees — inputs included — per
    configuration by construction (the paper's Table II/III sweeps
    replicate the same synchronizer/decorrelator stages, with their
    source pairs, across every operand pair).
    """
    g = SCGraph()
    span = max(1, copies - 1)
    for t in range(copies):
        p = f"t{t}_"
        for stem, value, spec, kwargs in _CSE_SWEEP_SOURCES:
            g.source(p + stem, value, spec, **kwargs)
        g.op(p + "m", "mul", p + "a", p + "b")
        g.op(p + "s", "scaled_add", p + "m", p + "c")
        g.op(p + "x", "sub", p + "s", p + "d")
        g.op(p + "r", "max", p + "x", p + "b")
        g.source(p + "w", 0.2 + 0.55 * (t / span), "halton7")
        g.op(p + "out", "min", p + "r", p + "w")
    return g


def long_stream_graph(width: int = 22) -> SCGraph:
    """The paper's three manipulation stages with width-matched RNGs.

    The library graphs drive their comparators with 8-bit RNGs, which is
    exact at the paper's N = 256 but saturates for N > 256 (every level
    exceeds the modulus). This graph widens the source registers to
    ``width`` bits so D/S conversion stays meaningful up to N = 2**width
    — the long-stream convergence regime the ``long_stream`` experiment
    sweeps:

    * synchronizer on an uncorrelated (VDC, Halton) pair feeding the
      XOR subtractor (requires SCC = +1);
    * desynchronizer on a maximally correlated shared-VDC pair feeding
      the OR saturating adder (requires SCC = -1);
    * decorrelator on the same correlated pair feeding the AND
      multiplier (requires SCC = 0). Its 8-bit address LFSRs are kept
      narrow on purpose: hardware reuses a short address generator
      cyclically regardless of stream length.
    """
    g = SCGraph()
    g.source("a", 0.7, "vdc", width=width)
    g.source("b", 0.4, "halton3", width=width)
    sx, sy = _splice(g, Synchronizer(depth=1), "a", "b", "sync")
    g.op("diff", "sub", sx, sy)
    g.source("c", 0.5, "vdc", width=width)
    g.source("d", 0.3, "vdc", width=width)
    dx, dy = _splice(g, Desynchronizer(depth=1), "c", "d", "desync")
    g.op("sat", "sat_add", dx, dy)
    kx, ky = _splice(
        g, Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4), "c", "d", "deco"
    )
    g.op("prod", "mul", kx, ky)
    return g


GRAPH_LIBRARY: Dict[str, Callable[[], SCGraph]] = {
    "correlated_multiply": correlated_multiply_graph,
    "uncorrelated_subtract": uncorrelated_subtract_graph,
    "mixed_pipeline": mixed_pipeline_graph,
    "fsm_zoo": fsm_zoo_graph,
    "depth8": depth8_graph,
    "cse_sweep": cse_sweep_graph,
}


def build_graph(name: str) -> SCGraph:
    """Build a named example graph (fresh instance per call)."""
    if name not in GRAPH_LIBRARY:
        raise KeyError(
            f"unknown graph {name!r}; available: {', '.join(sorted(GRAPH_LIBRARY))}"
        )
    return GRAPH_LIBRARY[name]()
