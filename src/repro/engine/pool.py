"""Persistent execution runtime: warm forked workers + shared-memory arenas.

Every parallel entry point in the repo — the engine's span scheduler
(:mod:`repro.engine.parallel`), the runner's shard pool
(:mod:`repro.runner.scheduler`), the accelerator's streaming backend
(:mod:`repro.pipeline.accelerator`), and the serving layer's over-budget
shed path (which sheds into ``run_streaming(jobs=stream_jobs)``) — used
to pay a fresh ``fork`` per call: a new ``ProcessPoolExecutor`` whose
children start with cold kernel and sequence caches (the at-fork hooks
drop every memo on purpose, to rebind locks) and whose results travel
back through pickle. For sweeps of many small-to-medium calls that setup
dominates the compute.

This module keeps **one process-wide pool of long-lived forked workers**
instead:

* :func:`get_pool` lazily forks up to ``jobs`` workers the first time a
  parallel call wants them and reuses them for every later call. Workers
  keep their caches warm across calls: compiled plans arrive at most once
  per worker (a token-keyed LRU — ``engine.pool.plan.hit`` counts the
  repeats), and kernel tables, RNG sequence windows, and select-tile
  memos accumulate per worker exactly as they would in a serial process.
* :func:`pool_call` is the dispatch protocol. The caller names a heavy
  *context object* (an execution plan, an accelerator) that is pickled to
  each worker at most once, plus a per-call payload; each worker installs
  both through a module-level *installer* function and then executes
  tasks sent as ``("module:function", args)`` messages — one in flight
  per worker, dynamically balanced, with results streamed back in
  completion order. A worker that dies (OOM-killed, segfaulted) is
  respawned, re-primed, and its task retried once.
* :class:`SharedArena` hands large arrays between parent and workers
  zero-copy: named ``multiprocessing.shared_memory`` segments, recycled
  through a size-class free list exactly like the optimizer's
  :class:`~repro.engine.optimize.BufferArena` recycles word buffers.
  Packed uint64 ``keep=`` materialisations are written by span workers
  *directly into the parent's result segment* (:class:`SharedSink`), and
  big parent→worker operands (image patch stacks, regeneration counts)
  travel as segment descriptors (:meth:`SharedArena.wrap` /
  :func:`unwrap`). When segments are unavailable (no ``/dev/shm``,
  platform quirks) everything silently degrades to pickle — same bits,
  one more copy.

Fallback rules — ``pool_call`` yields ``None`` and the caller runs its
legacy fork-per-call (or inline) path when:

* the pool default is off (``REPRO_NO_POOL=1``, ``--no-pool``,
  :func:`set_default_pool`), or ``jobs <= 1``;
* the platform has no ``fork`` start method;
* this process is itself a forked child (a pool worker, a fork-per-call
  span worker, a runner shard) — nested persistent pools would leak
  processes, so children always fall back (``engine.pool.fallback``
  counters tell the story in ``repro stats``);
* another thread is mid-call on the pool (``engine.pool.fallback.busy``)
  — the serving layer can shed two streams concurrently, and the second
  must not queue behind the first;
* the context or payload does not pickle
  (``engine.pool.fallback.unpicklable``);
* priming fails worker-side — the context pickled in the parent but did
  not unpickle or install in the worker
  (``engine.pool.fallback.prime``).

Error semantics match the fork-per-call lanes: a task that raises
re-raises the *original* exception from ``imap``/``map`` (chained to a
:class:`PoolTaskError` carrying the worker traceback), exactly as
``future.result()`` re-raises it on the legacy lanes, so callers
catching specific types behave the same on either runtime. Every reply
carries the request's ``seq`` and is validated against it; when a call
is abandoned mid-flight, ``end`` waits out (or revives) still-running
workers before their replies could desync the protocol or their shared
segments are recycled.

Observability: workers adopt the parent's tracing session *per call*
(anchor + spool travel in the prime message, so a session started after
the pool forked still reaches every worker), flush their buffered spans
at root-span close exactly like fork-per-call workers, take a final
flush on shutdown, and the parent absorbs spools via
``collect_children()`` after every call — records merge exactly once.
Bit-identity to the fork-per-call path is enforced by
``tests/helpers.assert_backends_equivalent(pool="both")`` and the
hypothesis property in ``tests/test_pool.py``.
"""

from __future__ import annotations

import atexit
import contextlib
import importlib
import os
import pickle
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import collect_children, counter_add

__all__ = [
    "SharedArena",
    "SharedSink",
    "WorkerPool",
    "PoolTaskError",
    "default_pool",
    "set_default_pool",
    "get_pool",
    "shutdown_pool",
    "pool_call",
    "unwrap",
]


# ---------------------------------------------------------------------- #
# Process-wide default (mirrors the optimizer's REPRO_NO_OPTIMIZE knob;
# the CLI's --pool/--no-pool flags flip it per invocation, and the CI
# pool-smoke job proves result bytes are independent of the runtime).
# ---------------------------------------------------------------------- #

_DEFAULT_POOL = os.environ.get("REPRO_NO_POOL", "") not in ("1", "true", "yes")


def default_pool() -> bool:
    """The process-wide default for the persistent-pool runtime."""
    return _DEFAULT_POOL


def set_default_pool(flag: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _DEFAULT_POOL
    previous = _DEFAULT_POOL
    _DEFAULT_POOL = bool(flag)
    return previous


# Arrays below this size travel by pickle even when segments are
# available — a segment attach round-trip costs more than copying a few
# KB through a pipe.
_SHARE_THRESHOLD = 1 << 16

# Per-worker context cache: how many distinct heavy context objects
# (plans, accelerators) each worker retains between calls.
_WORKER_CACHE = 16

# A task whose worker dies is retried on a fresh worker this many times
# before the call fails — one respawn covers a stray OOM kill without
# looping forever on a task that reliably kills its host.
_TASK_RETRIES = 1

# How long an aborted call waits for each still-running worker to finish
# before killing it. An abandoned dispatch (``imap`` raised on one
# worker's error while others were mid-task) cannot recycle its shared
# segments while a stale worker might still write into them, so
# ``PoolCall.end`` waits out — or revives — every in-flight worker.
_DRAIN_TIMEOUT = 5.0

_SHM_PREFIX = "repro_pool"


# ---------------------------------------------------------------------- #
# SharedArena: freelist-recycled named shared-memory segments
# ---------------------------------------------------------------------- #

def _shm_module():
    try:
        from multiprocessing import shared_memory
        return shared_memory
    except ImportError:  # stripped-down builds
        return None


def _untrack(shm) -> None:
    """Detach a segment from the resource tracker.

    Workers attach to parent-owned segments and exit via ``os._exit``;
    before Python 3.13 every attach registers with the tracker, which
    would later unlink segments the parent still owns and warn about
    leaks. The parent keeps its own create-time registrations (its
    ``unlink`` balances them)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker layout varies by version
        pass


class SharedArena:
    """A size-class free list of named shared-memory segments.

    The cross-process twin of the optimizer's
    :class:`~repro.engine.optimize.BufferArena`: :meth:`take` pops a
    recycled segment of the right size class (next power of two) or
    creates a fresh one; :meth:`release_all` returns every segment handed
    out for the current call to the free list once the call's results
    have been copied out. Segments are created and unlinked **only by the
    parent**; workers attach read/write views by name
    (:func:`attach_view`) and never own anything. :meth:`shutdown`
    unlinks everything — the CI pool-smoke job asserts ``/dev/shm`` holds
    no ``repro_pool_*`` residue after the suite.
    """

    __slots__ = ("_free", "_live", "_counter", "_prefix", "_ok",
                 "hits", "misses")

    def __init__(self) -> None:
        self._free: Dict[int, List[Any]] = {}
        self._live: Dict[str, Any] = {}
        self._counter = 0
        self._prefix = f"{_SHM_PREFIX}_{os.getpid()}"
        self._ok: Optional[bool] = None
        self.hits = 0
        self.misses = 0

    def available(self) -> bool:
        """Can this platform serve named segments? Probed once."""
        if self._ok is None:
            shm_mod = _shm_module()
            if shm_mod is None:
                self._ok = False
            else:
                try:
                    probe = shm_mod.SharedMemory(
                        name=f"{self._prefix}_probe", create=True, size=64
                    )
                    probe.close()
                    probe.unlink()
                    self._ok = True
                except Exception:  # noqa: BLE001 — any failure means "pickle"
                    self._ok = False
        return self._ok

    def take(self, nbytes: int):
        """A live segment with capacity ≥ ``nbytes``, or ``None`` when
        segments are unavailable (callers then fall back to pickle)."""
        if not self.available():
            return None
        size = 1 << max(12, int(nbytes - 1).bit_length())
        bucket = self._free.get(size)
        if bucket:
            shm = bucket.pop()
            self.hits += 1
        else:
            shm_mod = _shm_module()
            try:
                shm = shm_mod.SharedMemory(
                    name=f"{self._prefix}_{self._counter}", create=True,
                    size=size,
                )
            except Exception:  # noqa: BLE001 — e.g. /dev/shm full
                return None
            self._counter += 1
            self.misses += 1
        self._live[shm.name] = shm
        return shm

    def empty(self, shape: Tuple[int, ...], dtype) -> Tuple[np.ndarray, Optional[tuple]]:
        """A zero-filled parent-side array over a shared segment plus its
        descriptor, or ``(plain array, None)`` when segments are
        unavailable. Workers attach the descriptor and write slices
        in-place — the zero-copy ``keep=`` hand-off."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        shm = self.take(max(1, nbytes))
        if shm is None:
            return np.zeros(shape, dtype=dtype), None
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        view[...] = 0
        return view, ("__shm__", shm.name, tuple(shape), dtype.str)

    def wrap(self, obj):
        """``obj``, or a segment descriptor when it is a large array —
        the parent→worker zero-copy path for operands. Non-arrays and
        small arrays pass through untouched (pickle is cheaper)."""
        if not isinstance(obj, np.ndarray) or obj.nbytes < _SHARE_THRESHOLD:
            return obj
        shm = self.take(obj.nbytes)
        if shm is None:
            return obj
        view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=shm.buf)
        view[...] = obj
        return ("__shm__", shm.name, tuple(obj.shape), obj.dtype.str)

    def release_all(self) -> None:
        """Return every live segment to the free list (call end: results
        have been copied out, operands are no longer read)."""
        for shm in self._live.values():
            size = 1 << max(12, int(shm.size - 1).bit_length()) \
                if shm.size & (shm.size - 1) else shm.size
            self._free.setdefault(max(4096, size), []).append(shm)
        self._live.clear()

    def flush_counters(self) -> None:
        if self.hits:
            counter_add("engine.pool.shm.reuse", self.hits)
        if self.misses:
            counter_add("engine.pool.shm.alloc", self.misses)
        self.hits = 0
        self.misses = 0

    def shutdown(self) -> None:
        """Close and unlink every segment this arena ever created."""
        for bucket in (list(self._live.values()),
                       [s for b in self._free.values() for s in b]):
            for shm in bucket:
                with contextlib.suppress(Exception):
                    shm.close()
                with contextlib.suppress(Exception):
                    shm.unlink()
        self._live.clear()
        self._free.clear()


# Worker-side attachment cache: one SharedMemory handle per segment name,
# kept for the worker's lifetime (the parent recycles names through its
# free list, so a cached mapping stays valid across calls).
_ATTACHED: Dict[str, Any] = {}


def attach_view(desc: tuple) -> np.ndarray:
    """The array view a ``("__shm__", name, shape, dtype)`` descriptor
    names, attached (and cached) in this process."""
    _, name, shape, dtype = desc
    shm = _ATTACHED.get(name)
    if shm is None:
        shm_mod = _shm_module()
        shm = shm_mod.SharedMemory(name=name)
        _untrack(shm)
        _ATTACHED[name] = shm
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def unwrap(obj):
    """Resolve a :meth:`SharedArena.wrap` result back to its array; pass
    anything else through unchanged (the task functions call this
    unconditionally, so the same code serves the pooled and forked
    paths)."""
    if isinstance(obj, tuple) and len(obj) == 4 and obj[0] == "__shm__":
        return attach_view(obj)
    return obj


class SharedSink:
    """A kept node's assembler writing straight into the parent's shared
    result segment (the zero-copy counterpart of
    :class:`repro.engine.parallel._SpanSink`): tile writes land at
    absolute word offsets, and since spans partition the word range no
    two workers touch the same bytes."""

    __slots__ = ("_view",)

    def __init__(self, desc: tuple) -> None:
        self._view = attach_view(desc)

    def write(self, start: int, tile_words_matrix: np.ndarray) -> None:
        w = start // 64
        self._view[:, w : w + tile_words_matrix.shape[1]] = tile_words_matrix


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #

def _resolve_fn(ref: str):
    """The module-level function a ``"module:function"`` reference names
    (restricted to this package — task references are code, not data)."""
    module_name, _, func_name = ref.partition(":")
    if not module_name.startswith("repro"):
        raise ValueError(f"task reference outside repro: {ref!r}")
    return getattr(importlib.import_module(module_name), func_name)


def _sync_session(obs_state, seed) -> None:
    """Match this worker's ambient state to the parent's at call time:
    tracing session (anchor + spool — the pool may predate the session)
    and ambient RNG seed. Fork-per-call workers get both by inheritance;
    persistent workers forked once, so the prime message carries them."""
    from ..obs import tracer as _tracer
    from ..rng import factory as _factory

    if obs_state is None:
        _tracer.leave_session()
    else:
        _tracer.adopt_session(*obs_state)
    _factory.set_default_seed(seed)


def _worker_main(conn, parent_conn, ppid: int) -> None:
    contexts: "OrderedDict[int, Any]" = OrderedDict()
    with contextlib.suppress(Exception):
        parent_conn.close()  # our copy of the parent's pipe end
    with contextlib.suppress(Exception):
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)

    def _final_flush() -> None:
        with contextlib.suppress(Exception):
            from ..obs import tracer as _tracer

            _tracer.flush_in_child()

    while True:
        try:
            # Poll with a timeout so an orphaned worker (parent
            # SIGKILLed — no EOF, other workers hold inherited pipe
            # ends open) notices the re-parenting and exits.
            while not conn.poll(30.0):
                if os.getppid() != ppid:
                    os._exit(0)
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        kind = msg[0]
        if kind == "stop":
            _final_flush()
            with contextlib.suppress(Exception):
                conn.close()
            os._exit(0)
        if kind == "end":
            installer_ref = msg[1]
            with contextlib.suppress(Exception):
                if installer_ref is not None:
                    _resolve_fn(installer_ref)(None, None)
            continue
        seq = msg[1]
        try:
            if kind == "call":
                _, _, obs_state, seed, installer_ref, token, ctx_blob, payload_blob = msg
                _sync_session(obs_state, seed)
                context = None
                if token is not None:
                    context = (
                        pickle.loads(ctx_blob) if ctx_blob is not None
                        else contexts[token]
                    )
                elif ctx_blob is not None:  # tokenless: re-sent each call
                    context = pickle.loads(ctx_blob)
                if installer_ref is not None:
                    payload = (
                        pickle.loads(payload_blob)
                        if payload_blob is not None else None
                    )
                    _resolve_fn(installer_ref)(context, payload)
                # Commit the cache mutation only on success — the parent
                # mirrors this LRU on "ok", so both sides must mutate at
                # exactly the same points or they drift apart.
                if token is not None:
                    contexts[token] = context
                    contexts.move_to_end(token)
                    while len(contexts) > _WORKER_CACHE:
                        contexts.popitem(last=False)
                conn.send(("ok", seq, None))
            elif kind == "task":
                _, _, fn_ref, args = msg
                conn.send(("ok", seq, _resolve_fn(fn_ref)(*args)))
            elif kind == "ping":
                conn.send(("ok", seq, os.getpid()))
            else:
                conn.send(("err", seq, f"unknown message {kind!r}", ""))
        except BaseException as exc:  # noqa: BLE001 — travels to the parent
            blob = None
            with contextlib.suppress(Exception):  # unpicklable exceptions
                blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                conn.send((
                    "err", seq, f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(), blob,
                ))
            except Exception:  # noqa: BLE001 — parent gone
                os._exit(1)


# ---------------------------------------------------------------------- #
# Parent-side pool
# ---------------------------------------------------------------------- #

class PoolTaskError(RuntimeError):
    """A task raised inside a pool worker (the worker's traceback is in
    the message) or repeatedly killed its worker."""


def _remote_error(rest: Sequence[Any]) -> BaseException:
    """The exception a worker's ``err`` reply should surface: the
    original exception when it pickles — so the pooled lane raises the
    same types the fork-per-call lanes re-raise from
    ``future.result()`` — chained to a :class:`PoolTaskError` that
    carries the worker-side traceback; a bare :class:`PoolTaskError`
    when the original cannot travel."""
    cause = PoolTaskError(f"{rest[0]}\n{rest[1]}")
    blob = rest[2] if len(rest) > 2 else None
    if blob is not None:
        with contextlib.suppress(Exception):
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                exc.__cause__ = cause
                return exc
    return cause


class _Worker:
    __slots__ = ("proc", "conn", "tokens", "pending")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        # seq of the request awaiting a reply; None when idle. Every
        # recv validates against it: an aborted dispatch leaves a
        # completed task's reply sitting in the pipe, and consuming that
        # as the next call's prime ack would shift every later reply off
        # by one — silently wrong results for the rest of the process.
        self.pending: Optional[int] = None
        # Mirror of the worker's context LRU, in the worker's order:
        # primes are the only mutations and the parent drives them all,
        # so replaying the same insert/move/evict sequence here tells
        # the parent exactly which tokens the worker still holds.
        self.tokens: "OrderedDict[int, None]" = OrderedDict()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def request(self, msg: tuple) -> None:
        """Send a seq-carrying message and record its seq as pending."""
        self.conn.send(msg)
        self.pending = msg[1]

    def reply(self) -> tuple:
        """The reply matching the pending request; replies to requests a
        previous, aborted call stopped waiting on are discarded."""
        while True:
            msg = self.conn.recv()
            if self.pending is not None and msg[1] == self.pending:
                self.pending = None
                return msg
            counter_add("engine.pool.stale.drop")

    def drain(self, timeout: float) -> bool:
        """Wait out the pending request, discarding its (and any stale)
        reply; ``True`` when the worker went idle within ``timeout``."""
        deadline = time.monotonic() + timeout
        while self.pending is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self.conn.poll(remaining):
                return False
            msg = self.conn.recv()
            if msg[1] == self.pending:
                self.pending = None
            else:
                counter_add("engine.pool.stale.drop")
        return True


class WorkerPool:
    """The process-wide persistent worker pool (one per origin process;
    use the module-level :func:`get_pool` / :func:`pool_call` /
    :func:`shutdown_pool` rather than instantiating directly)."""

    def __init__(self, mp_context) -> None:
        self._mp = mp_context
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()     # spawn / shutdown
        self._busy = threading.Lock()     # one pooled call at a time
        self._seq = 0
        self._closed = False
        self.origin_pid = os.getpid()
        self.arena = SharedArena()
        self.respawns = 0
        # id(context) -> (token, weakref). Identity-keyed because plans
        # are unhashable (eq dataclasses); the weakref both guards
        # against id reuse (entry valid only while the exact object
        # lives) and evicts the entry on collection. Tokens are never
        # reused, so a worker cache entry can only ever be hit by the
        # same live object — and the engine's plan/DCE caches return
        # the same object for the same content, which is what makes
        # repeat calls warm.
        self._tokens: Dict[int, Tuple[int, Any]] = {}
        self._next_token = 0

    # -- lifecycle ----------------------------------------------------- #

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_conn, parent_conn, os.getpid()),
            name=f"repro-pool-{len(self._workers)}",
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def ensure(self, workers: int) -> None:
        """Grow the pool to at least ``workers`` live processes."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            while len(self._workers) < workers:
                self._workers.append(self._spawn())

    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers]

    @property
    def size(self) -> int:
        return len(self._workers)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _revive(self, worker: _Worker) -> _Worker:
        """Replace a dead worker in place with a fresh fork."""
        with contextlib.suppress(Exception):
            worker.conn.close()
        with contextlib.suppress(Exception):
            worker.proc.terminate()
        with contextlib.suppress(Exception):
            worker.proc.join(timeout=1.0)
        fresh = self._spawn()
        with self._lock:
            index = self._workers.index(worker)
            self._workers[index] = fresh
        self.respawns += 1
        counter_add("engine.pool.respawn")
        return fresh

    def shutdown(self) -> None:
        """Stop every worker and unlink every shared segment. Idempotent
        — safe to call twice, from atexit, or on a pool that never
        started a worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            with contextlib.suppress(Exception):
                worker.conn.send(("stop",))
        for worker in workers:
            with contextlib.suppress(Exception):
                worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                with contextlib.suppress(Exception):
                    worker.proc.terminate()
                    worker.proc.join(timeout=1.0)
            with contextlib.suppress(Exception):
                worker.conn.close()
        self.arena.shutdown()
        # Workers flushed their obs leftovers on "stop"; absorb them.
        collect_children()

    # -- the call protocol --------------------------------------------- #

    def _token_for(self, context) -> Optional[int]:
        """The context's cache token (stable across calls for the same
        live object); ``None`` for non-weakrefable contexts, which are
        then re-sent every call."""
        key = id(context)
        entry = self._tokens.get(key)
        if entry is not None and entry[1]() is context:
            return entry[0]
        try:
            ref = weakref.ref(
                context, lambda _ref, k=key: self._tokens.pop(k, None)
            )
        except TypeError:
            return None
        token = self._next_token
        self._next_token += 1
        self._tokens[key] = (token, ref)
        return token

    def begin_call(self, workers: int, context, installer: Optional[str],
                   payload) -> "PoolCall":
        """Prime ``workers`` workers with (context, payload) and return
        the call handle. Raises ``pickle.PicklingError`` (and kin) when
        the context or payload cannot travel — callers fall back."""
        token = None
        ctx_blob = None
        if context is not None:
            token = self._token_for(context)
            ctx_blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        payload_blob = (
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            if payload is not None else None
        )
        from ..obs import tracer as _tracer
        from ..rng.factory import get_default_seed

        active = _tracer.current_tracer()
        obs_state = None
        if active is not None:
            obs_state = (active.anchor, active.spool)
        call = PoolCall(
            self, self._workers[:workers], installer,
            token, ctx_blob, payload_blob, obs_state, get_default_seed(),
        )
        call._prime_all()
        counter_add("engine.pool.calls")
        return call


class PoolCall:
    """One primed batch of workers: ``map``/``imap`` dispatch tasks,
    ``end`` (driven by :func:`pool_call`) clears the installed context."""

    def __init__(self, pool: WorkerPool, workers: List[_Worker],
                 installer: Optional[str], token: Optional[int],
                 ctx_blob: Optional[bytes], payload_blob: Optional[bytes],
                 obs_state, seed) -> None:
        self._pool = pool
        self._workers = list(workers)
        self._installer = installer
        self._token = token
        self._ctx_blob = ctx_blob
        self._payload_blob = payload_blob
        self._obs_state = obs_state
        self._seed = seed

    @property
    def arena(self) -> SharedArena:
        return self._pool.arena

    @property
    def workers(self) -> int:
        return len(self._workers)

    # -- priming ------------------------------------------------------- #

    def _prime(self, worker: _Worker) -> None:
        send_ctx = self._token is None or self._token not in worker.tokens
        if self._token is not None:
            counter_add(
                "engine.pool.plan.miss" if send_ctx else "engine.pool.plan.hit"
            )
        worker.request((
            "call", self._pool._next_seq(), self._obs_state, self._seed,
            self._installer, self._token,
            self._ctx_blob if send_ctx else None, self._payload_blob,
        ))
        kind, _, *rest = worker.reply()
        if kind == "err":
            raise PoolTaskError(f"pool prime failed: {rest[0]}\n{rest[1]}")
        if self._token is not None:
            worker.tokens[self._token] = None
            worker.tokens.move_to_end(self._token)
            while len(worker.tokens) > _WORKER_CACHE:
                worker.tokens.popitem(last=False)

    def _prime_all(self) -> None:
        for index, worker in enumerate(list(self._workers)):
            for attempt in (0, 1):
                try:
                    self._prime(worker)
                    break
                except (BrokenPipeError, EOFError, OSError):
                    if attempt:
                        raise
                    worker = self._pool._revive(worker)
                    self._workers[index] = worker

    # -- dispatch ------------------------------------------------------ #

    def imap(self, fn_ref: str, arglists: Sequence[tuple]) -> Iterator[Tuple[int, Any]]:
        """Run ``fn_ref(*args)`` for every entry, yielding
        ``(index, result)`` in completion order — one task in flight per
        worker, next task to whichever worker frees up first. A task
        that raises re-raises its original exception here (chained to a
        :class:`PoolTaskError` with the worker traceback); a task that
        repeatedly kills its worker raises :class:`PoolTaskError`."""
        from multiprocessing.connection import wait as _wait

        total = len(arglists)
        if total == 0:
            return
        counter_add("engine.pool.tasks", total)
        pending: List[int] = list(range(total - 1, -1, -1))
        retries: Dict[int, int] = {}
        inflight: Dict[Any, Tuple[_Worker, int]] = {}  # conn -> (worker, index)
        idle: List[_Worker] = list(self._workers)

        def _submit(worker: _Worker, index: int) -> bool:
            try:
                worker.request((
                    "task", self._pool._next_seq(), fn_ref,
                    tuple(arglists[index]),
                ))
            except (BrokenPipeError, OSError):
                return False
            inflight[worker.conn] = (worker, index)
            return True

        def _replace(worker: _Worker, index: int) -> _Worker:
            retries[index] = retries.get(index, 0) + 1
            if retries[index] > _TASK_RETRIES:
                raise PoolTaskError(
                    f"pool task {fn_ref} (item {index}) killed its worker "
                    f"{retries[index]} times"
                )
            fresh = self._pool._revive(worker)
            self._prime(fresh)
            for i, w in enumerate(self._workers):
                if w is worker:
                    self._workers[i] = fresh
            pending.append(index)
            return fresh

        while pending or inflight:
            while pending and idle:
                worker = idle.pop()
                index = pending.pop()
                if not _submit(worker, index):
                    idle.append(_replace(worker, index))
            for conn in _wait(list(inflight)):
                worker, index = inflight[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del inflight[conn]
                    idle.append(_replace(worker, index))
                    continue
                if worker.pending is None or msg[1] != worker.pending:
                    # Stale reply to a request an aborted call stopped
                    # waiting on — not this task's answer.
                    counter_add("engine.pool.stale.drop")
                    continue
                worker.pending = None
                del inflight[conn]
                kind, _, *rest = msg
                if kind == "err":
                    raise _remote_error(rest)
                idle.append(worker)
                yield index, rest[0]

    def map(self, fn_ref: str, arglists: Sequence[tuple]) -> List[Any]:
        """Run every task and return results in argument order."""
        results: List[Any] = [None] * len(arglists)
        for index, result in self.imap(fn_ref, arglists):
            results[index] = result
        return results

    # -- teardown ------------------------------------------------------ #

    def end(self) -> None:
        """Clear the installed per-call context on every worker and
        recycle the call's shared segments (results must already be
        copied out of them).

        An abandoned dispatch (``imap`` raised on one worker's error, or
        its consumer stopped early) leaves other workers mid-task: each
        may still be writing into this call's segments, and its unread
        reply would desync the next call's protocol. Wait every
        in-flight worker out — discarding the now-unwanted reply —
        before the segments return to the free list, and kill-and-
        respawn any that stays busy past :data:`_DRAIN_TIMEOUT` (a dead
        worker cannot write either)."""
        for index, worker in enumerate(self._workers):
            if worker.pending is None:
                continue
            counter_add("engine.pool.drain")
            done = False
            with contextlib.suppress(EOFError, OSError):
                done = worker.drain(_DRAIN_TIMEOUT)
            if not done:
                self._workers[index] = self._pool._revive(worker)
        for worker in self._workers:
            with contextlib.suppress(Exception):
                worker.conn.send(("end", self._installer))
        self._pool.arena.release_all()
        self._pool.arena.flush_counters()


# ---------------------------------------------------------------------- #
# Process-wide runtime
# ---------------------------------------------------------------------- #

_POOL: Optional[WorkerPool] = None
_POOL_LOCK = threading.Lock()
_IN_FORK_CHILD = False
_ATEXIT_REGISTERED = False


def _after_fork_in_child() -> None:
    # Any forked child — a pool worker, a fork-per-call span worker, a
    # runner shard — must neither use the inherited pool handles (the
    # pipes belong to the parent) nor lazily start a nested persistent
    # pool that would outlive its transient host. Children fall back to
    # fork-per-call, which is exactly the pre-pool behaviour.
    global _POOL, _IN_FORK_CHILD
    _IN_FORK_CHILD = True
    _POOL = None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)


def _fork_context():
    try:
        import multiprocessing

        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def get_pool(jobs: int) -> Optional[WorkerPool]:
    """The process-wide pool grown to ``jobs`` workers, or ``None`` when
    the persistent runtime cannot serve this caller (default off, child
    process, no fork) — see the module docstring's fallback rules."""
    global _POOL, _ATEXIT_REGISTERED
    if jobs <= 1 or not _DEFAULT_POOL or _IN_FORK_CHILD:
        return None
    mp_context = _fork_context()
    if mp_context is None:
        return None
    with _POOL_LOCK:
        if _POOL is None or _POOL._closed or _POOL.origin_pid != os.getpid():
            _POOL = WorkerPool(mp_context)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_pool)
                _ATEXIT_REGISTERED = True
        pool = _POOL
    pool.ensure(jobs)
    return pool


def shutdown_pool() -> None:
    """Stop the process-wide pool (idempotent; the next :func:`get_pool`
    starts a fresh one). Registered with :mod:`atexit`, called by the
    serving layer's teardown, and safe to call when no pool exists."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


@contextlib.contextmanager
def pool_call(jobs: int, *, context=None, installer: Optional[str] = None,
              payload=None):
    """``with pool_call(jobs, ...) as call:`` — a primed
    :class:`PoolCall`, or ``None`` when the caller must run its legacy
    fork-per-call path (see the module docstring's fallback rules; every
    reason is counted under ``engine.pool.fallback.*``).

    A *callable* ``payload`` is invoked with the call's
    :class:`SharedArena` once the call slot is held — the hook for
    shipping large operands as segment descriptors
    (``lambda arena: (arena.wrap(big_array), ...)``) instead of pickle
    bytes; workers resolve them with :func:`unwrap`."""
    pool = get_pool(jobs)
    if pool is None:
        yield None
        return
    if not pool._busy.acquire(blocking=False):
        counter_add("engine.pool.fallback.busy")
        yield None
        return
    call: Optional[PoolCall] = None
    try:
        if callable(payload):
            payload = payload(pool.arena)
        try:
            call = pool.begin_call(min(jobs, pool.size), context, installer,
                                   payload)
        except (pickle.PicklingError, AttributeError, TypeError):
            counter_add("engine.pool.fallback.unpicklable")
            yield None
            return
        except PoolTaskError:
            # The context/payload pickled here but failed to unpickle or
            # install worker-side; the legacy lane is known-good, so
            # fall back rather than hard-fail the call.
            counter_add("engine.pool.fallback.prime")
            yield None
            return
        yield call
    finally:
        if call is not None:
            with contextlib.suppress(Exception):
                call.end()
            # Workers flushed span buffers at root-span close; absorb
            # them now, exactly where the fork-per-call paths do.
            collect_children()
        else:
            # A callable payload may have wrapped operands into segments
            # before priming failed; recycle them.
            pool.arena.release_all()
        pool._busy.release()
