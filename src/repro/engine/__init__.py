"""repro.engine — compiled, packed-domain execution of SC dataflow graphs.

The graph interpreter (:meth:`SCGraph.run <repro.graph.graph.SCGraph.run>`)
evaluates node by node on unpacked uint8 streams. This subsystem instead
**compiles** a graph once into a levelized execution plan and evaluates it
end-to-end in the packed uint64-word domain, against a whole *batch of
input configurations* at once:

* :mod:`repro.engine.plan` — the compile pass: topological levelization,
  packed-vs-FSM domain classification, transform-port pairing, buffer
  lifetime assignment, and a structural-signature plan cache (the
  autofix audit → splice → re-audit loop recompiles nothing it has seen);
* :mod:`repro.engine.executor` — batched evaluation: word-parallel gate
  kernels, pack/unpack boundaries only around sequential FSM steps, and
  audit paths whose SCC measurements run through the packed overlap
  kernels of :mod:`repro.bitstream.metrics`;
* :mod:`repro.engine.optimize` — the plan optimizer: structural CSE /
  hash-consing over the compiled schedule, per-call dead-node
  elimination for subset ``keep`` requests, and liveness-driven arena
  buffer recycling — every pass bit-/float-identical to the faithful
  plan (``compile_graph(..., optimize=False)`` or
  ``repro engine --no-optimize`` gets the unrewritten schedule);
* :mod:`repro.engine.library` — named example graphs for the CLI and
  benchmarks.

Single-configuration results are bit-identical to the interpreter — the
engine is a faster schedule for the same circuit, not a different
circuit. Typical use::

    from repro import SCGraph, engine

    g = SCGraph()
    g.source("a", 0.8, "vdc")
    g.source("b", 0.3, "halton3")
    g.op("diff", "sub", "a", "b")

    plan = engine.compile(g)               # cached by graph structure
    sweep = plan.run_batch(256, values={"a": my_1024_values})
    sweep.values("diff")                   # (1024,) popcount-based values
"""

from .executor import (
    BatchAudit,
    BatchAuditEntry,
    EngineRun,
    clear_sequence_cache,
)
from .library import GRAPH_LIBRARY, build_graph, cse_sweep_graph, depth_chain_graph
from .optimize import (
    BufferArena,
    OptimizedPlan,
    OptimizeReport,
    dce_cache_info,
    default_optimize,
    optimize_plan,
    set_default_optimize,
)
from .plan import (
    ExecutionPlan,
    FusedChain,
    PlanStep,
    cache_info,
    clear_cache,
    compile_graph,
    graph_signature,
)
from .parallel import plan_waves, spans_for
from .pool import default_pool, get_pool, set_default_pool, shutdown_pool
from .streaming import StreamingRun, audit_streaming, run_streaming

# ``engine.compile(graph)`` is the documented spelling; ``compile_graph``
# is the import-safe alias (no builtin shadowing at definition site).
compile = compile_graph

__all__ = [
    "compile",
    "compile_graph",
    "graph_signature",
    "ExecutionPlan",
    "PlanStep",
    "FusedChain",
    "OptimizedPlan",
    "OptimizeReport",
    "BufferArena",
    "optimize_plan",
    "default_optimize",
    "set_default_optimize",
    "dce_cache_info",
    "EngineRun",
    "StreamingRun",
    "run_streaming",
    "audit_streaming",
    "plan_waves",
    "spans_for",
    "default_pool",
    "set_default_pool",
    "get_pool",
    "shutdown_pool",
    "BatchAudit",
    "BatchAuditEntry",
    "cache_info",
    "clear_cache",
    "clear_sequence_cache",
    "GRAPH_LIBRARY",
    "build_graph",
    "depth_chain_graph",
    "cse_sweep_graph",
]
