"""Multicore tile streaming: the prefix-scanned parallel span scheduler.

:mod:`repro.engine.streaming` walks tiles strictly in order because FSM
carriers thread state tile-to-tile — one core, no matter how many exist.
This module lifts the trick that erased the per-bit loop in
:mod:`repro.kernels.steppers` (compose transition functions
independently, prefix-scan to recover every entry state — Hillis &
Steele) from *bits* to *tiles*:

1. **Phase 1 — compose.** The tile sequence is split into ``jobs``
   contiguous spans. Each worker walks its span once, evaluating only
   the sub-graph feeding the sequential transforms, and folds every
   transform's chunk into a **state map**
   (:mod:`repro.kernels.streaming` composers) — a summary of "entry
   state → exit state" for the whole span, computed *without knowing the
   entry state*. Purely combinational plans (no transform groups) skip
   this phase entirely.
2. **Phase 2 — scan.** A prefix scan over the ``jobs`` span maps (cheap:
   one ``apply`` per span per transform group, in the parent) yields
   every span's entry state for every carrier.
3. **Phase 3 — evaluate.** All spans run in parallel through the same
   fused tile walk the sequential executor uses, each seeded at its
   scanned entry states. Workers return popcount/overlap accumulator
   partials and span-local word buffers for kept nodes; the parent
   merges them **in span order** — integer summation, so the totals are
   the sequential totals and every derived float is identical.

Transforms whose inputs depend on other transforms' outputs (e.g.
``fsm_zoo``'s isolator downstream of the synchronizer) are handled by
**waves**: phase 1 repeats per dependency depth, with already-resolved
carriers evaluated at their scanned entry states while the next wave's
maps compose. Plans containing a transform without a composer (series
compositions) and single-tile streams fall back to the sequential walk
— silently, because the results are identical either way.

Workers come from the **persistent pool** (:mod:`repro.engine.pool`)
when it will serve this caller: long-lived forked processes that keep
plan, kernel, and sequence caches warm across calls, receive the walk
plan by pickle at most once (token-keyed worker cache), and write kept
nodes' packed words straight into parent-owned shared-memory blocks
(:class:`~repro.engine.pool.SharedSink`) instead of pickling span
buffers back. When the pool declines (``--no-pool``, nested fork, a
plan whose transform closures don't pickle, a concurrent pooled call)
the original fork-per-call path runs: workers forked per call inherit
the plan — including unpicklable closures — by address space, and
entry states, the only per-task payload, are small arrays. The
``os.register_at_fork`` hooks in :mod:`repro.engine.executor` /
:mod:`repro.engine.streaming` rebind their locks in every child, so
both pools are safe even under a threaded parent. Platforms without
``fork`` run the span tasks inline — same code path, same bits, no
parallelism. Bit-identity across all three lanes (pooled, forked,
inline) is enforced by ``tests/helpers.assert_backends_equivalent``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..arith._coerce import broadcast_pair
from ..bitstream.packed import unpack_bits, pack_bits_unchecked
from ..bitstream.streaming import (
    OverlapAccumulator,
    TileAssembler,
    ValueAccumulator,
    tile_bounds,
)
from ..kernels.streaming import make_pair_carrier, make_pair_composer
from ..obs import collect_children, counter_add
from ..obs import span as obs_span
from .executor import _OP_KERNELS
from .plan import ExecutionPlan, FusedChain
from .pool import SharedSink, pool_call
from .streaming import (
    _CompiledChain,
    _expand_aliases,
    _keep_and_exposed,
    _make_sources,
    _propagate_rows,
    _select_tile,
    _stream_execute,
    _walk_tiles,
)

__all__ = ["plan_waves", "spans_for"]


# ---------------------------------------------------------------------- #
# Static analysis: waves and spans
# ---------------------------------------------------------------------- #

def plan_waves(plan: ExecutionPlan) -> Tuple[Dict[int, int], Dict[int, Tuple[str, ...]]]:
    """Group transform groups into dependency **waves**.

    A group's wave is the number of transform groups on its deepest
    input path: wave-0 groups read only sources/ops over sources and can
    compose their maps immediately; a wave-``w`` group's inputs need the
    scanned entry states of waves ``< w`` first. Returns
    ``(wave_of_group, group_inputs)``.
    """
    avail: Dict[str, int] = {}
    wave_of: Dict[int, int] = {}
    group_inputs: Dict[int, Tuple[str, ...]] = {}
    for s in plan.steps:
        if s.kind == "source":
            avail[s.name] = 0
        elif s.kind == "op":
            avail[s.name] = max(avail[d] for d in s.inputs)
        else:
            g = s.group
            if g not in wave_of:
                wave_of[g] = max(avail[d] for d in s.inputs)
                group_inputs[g] = s.inputs
            avail[s.name] = wave_of[g] + 1
    return wave_of, group_inputs


def _ancestors(plan: ExecutionPlan, targets: Iterable[str]) -> set:
    """Every node (targets included) on a path into ``targets``."""
    step_by_name = {s.name: s for s in plan.steps}
    needed: set = set()
    stack = list(targets)
    while stack:
        name = stack.pop()
        if name in needed:
            continue
        needed.add(name)
        stack.extend(step_by_name[name].inputs)
    return needed


def spans_for(length: int, tile_words: int, jobs: int) -> List[Tuple[int, int]]:
    """Split the tile sequence into ≤ ``jobs`` contiguous, balanced
    spans of whole tiles; returns absolute ``(start_bit, stop_bit)``
    per span (span starts are tile starts, hence word-aligned)."""
    bounds = list(tile_bounds(length, tile_words))
    k = max(1, min(jobs, len(bounds)))
    base, extra = divmod(len(bounds), k)
    spans: List[Tuple[int, int]] = []
    index = 0
    for i in range(k):
        count = base + (1 if i < extra else 0)
        spans.append((bounds[index][0], bounds[index + count - 1][1]))
        index += count
    return spans


# ---------------------------------------------------------------------- #
# Worker context (inherited by forked workers; never pickled)
# ---------------------------------------------------------------------- #

class _Context:
    """Everything span workers need, installed as a module global in the
    parent immediately before the pool forks."""

    __slots__ = (
        "plan", "length", "levels", "rows", "tile_words", "spans",
        "schedule", "needs_select", "keep_set", "value_nodes",
        "want_op_scc", "phase1",
    )

    def __init__(self) -> None:
        self.phase1: Dict[int, dict] = {}


_CTX: Optional[_Context] = None


def _span_bounds(span: Tuple[int, int]) -> List[Tuple[int, int]]:
    """The span's tiles, with absolute stream offsets."""
    start, stop = span
    ctx = _CTX
    return [
        (start + s, start + e)
        for s, e in tile_bounds(stop - start, ctx.tile_words)
    ]


def _seeded_carriers(
    groups: Iterable[int], span_start: int, entries: Dict[int, Any]
) -> Dict[int, Any]:
    ctx = _CTX
    carriers = {}
    group_batch = _group_batches(ctx.plan, ctx.rows)
    for g in groups:
        carrier = make_pair_carrier(
            _group_transform(ctx.plan, g), ctx.length, group_batch[g], span_start
        )
        carrier.set_state(entries[g])
        carriers[g] = carrier
    return carriers


def _group_transform(plan: ExecutionPlan, group: int):
    for s in plan.steps:
        if s.kind == "transform" and s.group == group:
            return s.transform
    raise KeyError(group)


def _group_batches(plan: ExecutionPlan, rows: Dict[str, int]) -> Dict[int, int]:
    batches: Dict[int, int] = {}
    for s in plan.steps:
        if s.kind == "transform" and s.group not in batches:
            batches[s.group] = max(rows[d] for d in s.inputs)
    return batches


def _phase1_task(
    span_index: int, wave: int, entries: Dict[int, Any]
) -> Dict[int, Any]:
    """Compose one span's state maps for every wave-``wave`` transform
    group; earlier waves' carriers run seeded at their scanned entry
    states. Returns ``{group: state_map}``."""
    # Root span in a forked worker: closing it flushes the worker's
    # buffered spans/metrics to the session spool. Inline execution
    # (no fork) just nests it under the caller.
    with obs_span("engine.parallel.compose", span=span_index, wave=wave):
        return _phase1_compose(span_index, wave, entries)


def _phase1_compose(
    span_index: int, wave: int, entries: Dict[int, Any]
) -> Dict[int, Any]:
    ctx = _CTX
    info = ctx.phase1[wave]
    span = ctx.spans[span_index]
    bounds = _span_bounds(span)
    group_batch = _group_batches(ctx.plan, ctx.rows)

    sources = _make_sources(ctx.plan, ctx.levels)
    carriers = _seeded_carriers(info["carrier_groups"], span[0], entries)
    composers = {
        g: make_pair_composer(
            _group_transform(ctx.plan, g), ctx.length, group_batch[g], span[0]
        )
        for g in info["groups"]
    }
    needed = info["needed"]

    for start, stop in bounds:
        tile_len = stop - start
        select = _select_tile(start, stop) if info["needs_select"] else None
        env: Dict[str, np.ndarray] = {}
        group_out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for item in ctx.plan.steps:
            if item.kind == "source":
                if item.name in needed:
                    env[item.name] = sources[item.name].tile(start, stop)
            elif item.kind == "op":
                if item.name in needed:
                    a, b = (env[d] for d in item.inputs)
                    env[item.name] = _OP_KERNELS[item.op](a, b, select)
            else:
                g = item.group
                if g in composers:
                    if g not in group_out:
                        group_out[g] = ()
                        xw, yw = (env[d] for d in item.inputs)
                        xb = unpack_bits(xw, tile_len)
                        yb = unpack_bits(yw, tile_len)
                        xb, yb = broadcast_pair(xb, yb)
                        composers[g].step(xb, yb)
                elif g in carriers and item.name in needed:
                    if g not in group_out:
                        xw, yw = (env[d] for d in item.inputs)
                        xb = unpack_bits(xw, tile_len)
                        yb = unpack_bits(yw, tile_len)
                        xb, yb = broadcast_pair(xb, yb)
                        ox, oy = carriers[g].step(xb, yb)
                        group_out[g] = (
                            pack_bits_unchecked(ox), pack_bits_unchecked(oy)
                        )
                    env[item.name] = group_out[g][item.port]
    return {g: composers[g].state_map for g in composers}


class _SpanSink:
    """A kept node's words for one span (the parallel counterpart of
    :class:`~repro.bitstream.streaming.TileAssembler`, covering only the
    span's word range)."""

    __slots__ = ("words", "_w0")

    def __init__(self, rows: int, span: Tuple[int, int]) -> None:
        self._w0 = span[0] // 64
        span_words = (span[1] - span[0] + 63) // 64
        self.words = np.zeros((rows, span_words), dtype="<u8")

    def write(self, start: int, tile_words_matrix: np.ndarray) -> None:
        w = start // 64 - self._w0
        self.words[:, w : w + tile_words_matrix.shape[1]] = tile_words_matrix


def _phase3_task(
    span_index: int, entries: Dict[int, Any], sink_blocks=None
) -> Tuple[Dict[str, ValueAccumulator], Dict[str, OverlapAccumulator], Dict[str, np.ndarray]]:
    """Evaluate one span through the fused tile walk, seeded at the
    scanned entry states; return accumulator partials + span buffers.
    With ``sink_blocks`` (pooled dispatch), kept words land directly in
    the parent's shared segments and the word dict returns empty."""
    with obs_span("engine.parallel.evaluate", span=span_index):
        return _phase3_evaluate(span_index, entries, sink_blocks)


def _phase3_evaluate(
    span_index: int, entries: Dict[int, Any], sink_blocks=None
) -> Tuple[Dict[str, ValueAccumulator], Dict[str, OverlapAccumulator], Dict[str, np.ndarray]]:
    ctx = _CTX
    span = ctx.spans[span_index]
    bounds = _span_bounds(span)

    sources = _make_sources(ctx.plan, ctx.levels)
    carriers = _seeded_carriers(
        set(s.group for s in ctx.plan.steps if s.kind == "transform"),
        span[0], entries,
    )
    vacc = {name: ValueAccumulator(ctx.length) for name in ctx.value_nodes}
    sccacc: Dict[str, OverlapAccumulator] = {}
    if ctx.want_op_scc:
        sccacc = {
            s.name: OverlapAccumulator(ctx.length)
            for s in ctx.plan.steps if s.kind == "op"
        }
    if sink_blocks is not None:
        # Pooled dispatch: spans partition the word range, so every
        # worker writes its slice of the shared block race-free.
        sinks: Dict[str, Any] = {
            name: SharedSink(sink_blocks[name]) for name in ctx.keep_set
        }
    else:
        sinks = {
            name: _SpanSink(ctx.rows[name], span) for name in ctx.keep_set
        }
    schedule = [
        _CompiledChain(item, ctx.rows) if isinstance(item, FusedChain) else item
        for item in ctx.schedule
    ]
    _walk_tiles(
        schedule, sources, carriers, bounds,
        needs_select=ctx.needs_select, vacc=vacc, sccacc=sccacc,
        writers=sinks,
    )
    if sink_blocks is not None:
        return vacc, sccacc, {}
    return vacc, sccacc, {name: sink.words for name, sink in sinks.items()}


# ---------------------------------------------------------------------- #
# Pool plumbing
# ---------------------------------------------------------------------- #

def _pool_install_ctx(plan: Optional[ExecutionPlan], payload: Optional[dict]) -> None:
    """Persistent-worker installer: rebuild the span-task context from
    the (token-cached) pickled walk plan plus the per-call payload.
    ``(None, None)`` clears it at call end. The fused schedule is
    recomputed here — :meth:`ExecutionPlan.fused_schedule` is
    deterministic, so shipping the ``exposed`` set is enough."""
    global _CTX
    if plan is None:
        _CTX = None
        return
    ctx = _Context()
    ctx.plan = plan
    ctx.length = payload["length"]
    ctx.levels = payload["levels"]
    ctx.rows = payload["rows"]
    ctx.tile_words = payload["tile_words"]
    ctx.spans = payload["spans"]
    ctx.schedule = plan.fused_schedule(payload["exposed"])
    ctx.needs_select = payload["needs_select"]
    ctx.keep_set = payload["keep_set"]
    ctx.value_nodes = payload["value_nodes"]
    ctx.want_op_scc = payload["want_op_scc"]
    ctx.phase1 = payload["phase1"]
    _CTX = ctx


def _run_phases(run_tasks, spans, waves, phase1, algebra, initial_state,
                sink_blocks) -> List[tuple]:
    """Drive phases 1–3 through ``run_tasks(task_name, arglists)`` —
    the pooled and fork-per-call dispatch arms share this loop, so the
    scan arithmetic (and therefore the bits) cannot diverge."""
    span_entries: List[Dict[int, Any]] = [dict() for _ in spans]
    for w in waves:
        info = phase1[w]
        tasks = [
            (i, w, {g: span_entries[i][g] for g in info["carrier_groups"]})
            for i in range(len(spans))
        ]
        span_maps = run_tasks("_phase1_task", tasks)
        with obs_span("engine.parallel.scan", wave=w, spans=len(spans)):
            for g in info["groups"]:
                state = initial_state[g]
                for i in range(len(spans)):
                    span_entries[i][g] = state
                    state = algebra[g].apply(span_maps[i][g], state)
    return run_tasks(
        "_phase3_task",
        [(i, span_entries[i], sink_blocks) for i in range(len(spans))],
    )


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` where the
    platform has no fork (workers then run inline — identical results,
    no parallelism)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _run_tasks(pool: Optional[ProcessPoolExecutor], fn, arglists: Sequence[tuple]) -> List:
    """Run one batch of span tasks, preserving span order in the result
    list (futures may *complete* out of order; merging stays ordered)."""
    if pool is None:
        return [fn(*args) for args in arglists]
    futures = [pool.submit(fn, *args) for args in arglists]
    return [future.result() for future in futures]


def _composable(plan: ExecutionPlan, length: int, rows: Dict[str, int]) -> bool:
    """True when every transform group's state maps compose (the
    parallel scheduler's precondition); series compositions return
    ``None`` composers and force the sequential fallback."""
    seen = set()
    for s in plan.steps:
        if s.kind != "transform" or s.group in seen:
            continue
        seen.add(s.group)
        batch = max(rows[d] for d in s.inputs)
        if make_pair_composer(s.transform, length, batch) is None:
            return False
    return True


# ---------------------------------------------------------------------- #
# The three-phase scheduler
# ---------------------------------------------------------------------- #

def _parallel_stream_execute(
    plan: ExecutionPlan,
    length: int,
    *,
    levels: Dict[str, np.ndarray],
    keep,
    tile_words: int,
    fuse: bool,
    want_values_all: bool,
    want_op_scc: bool,
    jobs: int,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
    """Parallel counterpart of
    :func:`repro.engine.streaming._stream_execute` — same return tuple,
    bit-/float-identical results, spans evaluated across a worker pool.
    Falls back to the sequential walk when there is nothing to
    parallelise (a single span) or a carrier does not compose."""
    global _CTX

    # Optimizer integration mirrors the sequential walk: pick the
    # optimized schedule (or its raw twin when overrides split a source
    # merge), resolve keep names to schedule representatives, prune to
    # the keep cone for words-only calls, and expand aliases back at the
    # merge tail. Workers then only ever see the walk plan.
    src_plan = plan
    exec_plan = plan.for_execution(levels)
    rows = _propagate_rows(exec_plan, levels)
    spans = spans_for(length, tile_words, jobs)

    def _sequential():
        return _stream_execute(
            src_plan, length, levels=levels, keep=keep, tile_words=tile_words,
            fuse=fuse, want_values_all=want_values_all,
            want_op_scc=want_op_scc,
        )

    # Silent-by-results fallbacks, loud in `repro stats`: shed decisions
    # are invisible otherwise (the bits are identical either way).
    if len(spans) < 2:
        counter_add("engine.parallel.fallback")
        counter_add("engine.parallel.fallback.single_span")
        return _sequential()
    if not _composable(exec_plan, length, rows):
        counter_add("engine.parallel.fallback")
        counter_add("engine.parallel.fallback.series")
        return _sequential()

    keep_sem, keep_set, value_sem, value_nodes, exposed = _keep_and_exposed(
        src_plan, exec_plan, keep, want_values_all, want_op_scc
    )
    plan = exec_plan
    if (
        keep is not None
        and not want_values_all
        and not want_op_scc
        and exec_plan.optimize_level >= 1
    ):
        from .optimize import dce_plan

        plan = dce_plan(exec_plan, frozenset(keep_set))

    schedule = plan.fused_schedule(exposed if fuse else None)
    fused_chains = sum(1 for item in schedule if isinstance(item, FusedChain))
    needs_select = any(
        s.op == "scaled_add" for s in plan.steps if s.kind == "op"
    )

    wave_of, group_inputs = plan_waves(plan)
    waves = sorted(set(wave_of.values()))
    step_port_names = {
        (s.group, s.port): s.name for s in plan.steps if s.kind == "transform"
    }

    # Per-wave phase-1 prescription: which groups compose, which earlier
    # carriers must run, and the sub-graph feeding them.
    phase1: Dict[int, dict] = {}
    for w in waves:
        wave_groups = [g for g, wv in wave_of.items() if wv == w]
        targets = set()
        for g in wave_groups:
            targets.update(group_inputs[g])
        needed = _ancestors(plan, targets)
        carrier_groups = [
            g for g, wv in wave_of.items()
            if wv < w and any(
                step_port_names[(g, p)] in needed for p in (0, 1)
            )
        ]
        wave_needs_select = any(
            s.kind == "op" and s.op == "scaled_add" and s.name in needed
            for s in plan.steps
        )
        phase1[w] = {
            "groups": wave_groups,
            "carrier_groups": carrier_groups,
            "needed": needed,
            "needs_select": wave_needs_select,
        }

    group_batch = _group_batches(plan, rows)
    algebra = {
        g: make_pair_composer(_group_transform(plan, g), length, group_batch[g])
        for g in wave_of
    }
    initial_state = {
        g: make_pair_carrier(
            _group_transform(plan, g), length, group_batch[g]
        ).get_state()
        for g in wave_of
    }
    counter_add("engine.parallel.spans", len(spans))

    # Lane 1 — persistent pool. The walk plan is the token-cached
    # context (pickled to each warm worker at most once); the payload
    # carries everything else, with the fused schedule recomputed
    # worker-side from `exposed`. Kept nodes get full-length shared
    # blocks that span workers fill in place — the zero-copy hand-off.
    results: Optional[List[tuple]] = None
    pooled_views: Dict[str, np.ndarray] = {}
    payload = {
        "length": length, "levels": levels, "rows": rows,
        "tile_words": tile_words, "spans": spans,
        "exposed": exposed if fuse else None, "needs_select": needs_select,
        "keep_set": keep_set, "value_nodes": value_nodes,
        "want_op_scc": want_op_scc, "phase1": phase1,
    }
    # (`_fork_context() is not None` also gates the persistent pool:
    # tests patch this module's hook to force the inline lane.)
    pool_jobs = min(jobs, len(spans)) if _fork_context() is not None else 0
    with pool_call(
        pool_jobs, context=plan,
        installer="repro.engine.parallel:_pool_install_ctx", payload=payload,
    ) as call:
        if call is not None:
            counter_add("engine.parallel.pooled")
            sink_blocks: Optional[Dict[str, tuple]] = {}
            total_words = (length + 63) // 64
            for name in keep_set:
                view, desc = call.arena.empty((rows[name], total_words), "<u8")
                if desc is None:  # no segments: span buffers by pickle
                    sink_blocks = None
                    pooled_views = {}
                    break
                pooled_views[name] = view
                sink_blocks[name] = desc
            results = _run_phases(
                lambda task, arglists: call.map(
                    "repro.engine.parallel:" + task, arglists
                ),
                spans, waves, phase1, algebra, initial_state, sink_blocks,
            )
            # Copy kept words out before the call ends and its segments
            # return to the free list for reuse.
            pooled_views = {
                name: np.array(view) for name, view in pooled_views.items()
            }

    # Lane 2 — fork-per-call (pool declined: disabled, nested fork,
    # unpicklable transform closures, concurrent pooled call). The
    # context travels by address-space inheritance, so it must be
    # installed before the executor forks.
    if results is None:
        ctx = _Context()
        ctx.plan = plan
        ctx.length = length
        ctx.levels = levels
        ctx.rows = rows
        ctx.tile_words = tile_words
        ctx.spans = spans
        ctx.schedule = schedule
        ctx.needs_select = needs_select
        ctx.keep_set = keep_set
        ctx.value_nodes = value_nodes
        ctx.want_op_scc = want_op_scc
        ctx.phase1 = phase1
        _CTX = ctx

        mp_context = _fork_context()
        pool: Optional[ProcessPoolExecutor] = None
        if mp_context is not None:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(spans)), mp_context=mp_context
            )
        task_fns = {"_phase1_task": _phase1_task, "_phase3_task": _phase3_task}
        try:
            results = _run_phases(
                lambda task, arglists: _run_tasks(
                    pool, task_fns[task], arglists
                ),
                spans, waves, phase1, algebra, initial_state, None,
            )
        finally:
            if pool is not None:
                pool.shutdown()
                # Forked workers flushed their span buffers as their root
                # spans closed; absorb them now that the pool has joined
                # (no-op when tracing is off or this process is itself a
                # forked shard worker — the top-level parent merges then).
                collect_children()
            _CTX = None

    # Ordered merge: accumulator partials sum span by span (integer
    # addition — the totals are the sequential totals); kept words land
    # at their spans' word offsets regardless of completion order.
    vacc = {name: ValueAccumulator(length) for name in value_nodes}
    sccacc: Dict[str, OverlapAccumulator] = {}
    if want_op_scc:
        sccacc = {
            s.name: OverlapAccumulator(length)
            for s in plan.steps if s.kind == "op"
        }
    assemblers = {name: TileAssembler(rows[name], length) for name in keep_set}
    for span, (span_vacc, span_sccacc, span_words) in zip(spans, results):
        for name, acc in span_vacc.items():
            vacc[name].merge(acc)
        for name, acc in span_sccacc.items():
            sccacc[name].merge(acc)
        for name, words in span_words.items():
            assemblers[name].write(span[0], words)

    kept = {}
    for name in plan.node_order:
        if name in pooled_views:
            kept[name] = pooled_views[name]
        elif name in assemblers:
            kept[name] = assemblers[name].words
    ones = {name: acc.ones for name, acc in vacc.items()}
    op_scc = {name: acc.scc() for name, acc in sccacc.items()}
    kept, ones, op_scc = _expand_aliases(
        src_plan, exec_plan, kept, ones, op_scc, keep_sem, value_sem
    )
    return kept, ones, op_scc, fused_chains
