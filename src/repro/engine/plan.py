"""Compilation of :class:`~repro.graph.graph.SCGraph` into execution plans.

The interpreter in :meth:`SCGraph.run` walks the DAG node by node on
unpacked uint8 streams — correct, but it re-derives everything on every
call and never touches the packed backend. :func:`compile_graph` instead
runs a one-time *compile* pass per graph structure:

1. **Levelize** — nodes are grouped into topological levels (sources are
   level 0, every other node sits one past its deepest input), so the
   schedule and the pack/unpack boundaries are explicit.
2. **Classify** — every node is assigned a *domain*: ``packed`` for
   sources and combinational operators (evaluated word-parallel on
   uint64 words); ``kernel`` for sequential transform nodes that
   :mod:`repro.kernels` executes time-parallel (table-compiled FSMs,
   gather-kernel shuffle buffers / TFMs / isolators — the batch axis
   stays intact and no per-bit python loop runs); ``fsm`` for the
   remaining sequential nodes, which step the per-cycle reference loop.
   Unpack→step→repack boundaries exist *only* around kernel/fsm steps;
   everything else stays in the word domain end to end.
3. **Pair** — the two :class:`~repro.graph.nodes.TransformNode` ports of
   one circuit insertion are grouped so the FSM runs once per evaluation
   (exactly like the interpreter's shared-cache contract).
4. **Assign buffers** — each step records which operand buffers die with
   it (``free_after``), so a batched sweep that keeps only selected
   outputs releases intermediate words as soon as their last consumer
   has run.

Plans are cached in a module-level LRU keyed by the *structural
signature* of the graph (node kinds, names, wiring, source specs, and
transform identities), so audit → splice → re-audit loops — the
:func:`repro.graph.autofix.autofix` hot path — recompile nothing they
have already seen. :func:`cache_info` exposes hit/miss counters; the CLI
prints them next to the plan.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..exceptions import GraphCompilationError
from ..graph.graph import SCGraph
from ..graph.nodes import OP_LIBRARY, OpNode, SourceNode, TransformNode
from ..kernels import is_kernelized
from ..obs import counter_add
from ..obs import span as obs_span

__all__ = [
    "PlanStep",
    "FusedChain",
    "ExecutionPlan",
    "graph_signature",
    "compile_graph",
    "cache_info",
    "clear_cache",
    "PLAN_CACHE_MAXSIZE",
]

PLAN_CACHE_MAXSIZE = 256

# Keyed by (structural signature, optimization level) so optimized and
# raw plans of the same graph coexist — `repro engine --no-optimize`
# after a default compile hits its own entry instead of evicting or
# shadowing the optimized one.
#
# All cache mutation happens under _PLAN_LOCK: the serving layer compiles
# plans from asyncio worker-executor threads, and an unguarded
# OrderedDict move_to_end/popitem pair racing across threads can corrupt
# the dict's internal links. Compilation itself runs outside the lock —
# two threads may build the same plan concurrently and last-write-wins,
# which is harmless because equal signatures produce equivalent plans.
# The at-fork hook rebinds a fresh lock in children (same hygiene as the
# executor's sequence memos): a fork taken while another thread held the
# lock must not deadlock the child.
_PLAN_LOCK = threading.Lock()
_PLAN_CACHE: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
_CACHE_STATS = {
    0: {"hits": 0, "misses": 0},
    1: {"hits": 0, "misses": 0},
}


def _reinit_plan_lock_after_fork() -> None:
    global _PLAN_LOCK
    _PLAN_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on Windows (spawn starts clean)
    os.register_at_fork(after_in_child=_reinit_plan_lock_after_fork)


@dataclass(frozen=True)
class PlanStep:
    """One scheduled node evaluation.

    ``domain`` is ``"packed"`` (word-parallel), ``"kernel"`` (sequential
    but time-parallel via :mod:`repro.kernels`, unpack → kernel →
    repack), or ``"fsm"`` (sequential, unpack → per-cycle reference loop
    → repack). ``group`` pairs the two ports of one transform insertion;
    ``free_after`` lists buffers whose last consumer is this step.
    """

    name: str
    kind: str                      # "source" | "op" | "transform"
    domain: str                    # "packed" | "kernel" | "fsm"
    level: int
    inputs: Tuple[str, ...] = ()
    # source fields
    value: Optional[float] = None
    rng_spec: Optional[str] = None
    rng_kwargs: Tuple[Tuple[str, object], ...] = ()
    # op fields
    op: Optional[str] = None
    # transform fields
    transform: object = None
    port: Optional[int] = None
    group: Optional[int] = None
    # buffer liveness
    free_after: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FusedChain:
    """A run of adjacent packed combinational steps fused into one
    super-step.

    The streaming executor evaluates the whole chain in a single pass
    over the current tile: interior results live in liveness-assigned
    scratch slots (in-place ufunc kernels, no per-node allocation) and
    are never entered into the tile environment — only the chain head's
    output is. Fusion is legal when every interior output is consumed
    *inside* the chain and is not *exposed* (kept, audited, or
    value-accumulated) — multi-consumer interiors whose readers all sit
    in the same chain fuse fine; :meth:`ExecutionPlan.fused_schedule`
    enforces both conditions.
    """

    steps: Tuple[PlanStep, ...]

    @property
    def name(self) -> str:
        """The chain head's node name (its only visible output)."""
        return self.steps[-1].name

    @property
    def label(self) -> str:
        """Every member name joined with ``+`` — human-readable, and
        unbounded; render through :func:`_ellipsize`."""
        return "+".join(s.name for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


#: Widest cell :meth:`ExecutionPlan.describe` will render before
#: truncating — a depth-64 chain label would otherwise blow the column
#: out to ~700 characters.
_DESCRIBE_CELL_WIDTH = 64


def _ellipsize(text: str, width: int = _DESCRIBE_CELL_WIDTH) -> str:
    """``text`` capped at ``width`` characters, middle replaced with an
    ellipsis so both the chain's tail (its visible output) and head stay
    readable."""
    if len(text) <= width:
        return text
    head = (width - 1) // 2
    tail = width - 1 - head
    return text[:head] + "…" + text[-tail:]


def _segment_run(
    run: List[PlanStep],
    consumers: Dict[str, List[str]],
    exposed: Set[str],
) -> List[Union[PlanStep, "FusedChain"]]:
    """Split one run of consecutive op steps into fused chains.

    A member ends a chain when its output must enter the tile
    environment: it is exposed, consumed outside the run, or consumed by
    a member of a later segment. The last condition is solved to a fixed
    point — promoting a member to a boundary shortens the segment of
    everyone before it, which can force further promotions — so every
    surviving interior provably has all consumers inside its own
    segment.
    """
    position = {s.name: j for j, s in enumerate(run)}
    ends = {len(run) - 1}
    consumer_positions: List[List[int]] = []
    for j, s in enumerate(run):
        inside: List[int] = []
        outside = s.name in exposed
        for c in consumers[s.name]:
            p = position.get(c)
            if p is None:
                outside = True
            else:
                inside.append(p)
        if outside:
            ends.add(j)
        consumer_positions.append(inside)

    changed = True
    while changed:
        changed = False
        boundary = sorted(ends)
        for j, inside in enumerate(consumer_positions):
            if j in ends or not inside:
                continue
            segment_end = next(b for b in boundary if b >= j)
            if max(inside) > segment_end:
                ends.add(j)
                changed = True

    segments: List[Union[PlanStep, FusedChain]] = []
    start = 0
    for end in sorted(ends):
        members = run[start : end + 1]
        if len(members) == 1:
            segments.append(members[0])
        else:
            segments.append(FusedChain(steps=tuple(members)))
        start = end + 1
    return segments


def _freeze(value):
    """Hashable twin of an RNG constructor argument (lists of taps and
    the like become tuples; sequence semantics are unchanged for the
    generators, which only iterate them)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def graph_signature(graph: SCGraph) -> tuple:
    """Structural signature of a graph: equal signatures mean the same
    plan produces the same bits.

    Transform nodes are keyed by the *identity* of their circuit
    instance (the plan holds a reference, so the id cannot be recycled
    while the plan is cached); everything else is keyed by value.

    Raises:
        GraphCompilationError: the graph contains a node kind the engine
            does not know how to schedule, or source RNG kwargs it cannot
            hash into a cache key (``backend="auto"`` falls back to the
            interpreter in both cases).
    """
    sig = []
    for name in graph.node_names:
        node = graph.node(name)
        if isinstance(node, SourceNode):
            sig.append(
                ("src", node.name, node.value, node.rng_spec,
                 _freeze(node.rng_kwargs))
            )
        elif isinstance(node, OpNode):
            sig.append(("op", node.name, node.op, node.inputs))
        elif isinstance(node, TransformNode):
            sig.append(("fsm", node.name, node.inputs, node.port, id(node.transform)))
        else:
            raise GraphCompilationError(
                f"engine cannot compile node {name!r} of kind "
                f"{type(node).__name__}; use backend='interpreter'"
            )
    signature = tuple(sig)
    try:
        hash(signature)
    except TypeError as exc:
        raise GraphCompilationError(
            f"engine cannot hash the graph structure into a plan-cache key "
            f"({exc}); use backend='interpreter'"
        ) from None
    return signature


@dataclass
class ExecutionPlan:
    """A levelized, batched execution schedule for one graph structure.

    Self-contained: holds every parameter (source specs, op names,
    transform references) needed to evaluate, so a cached plan outlives
    the :class:`SCGraph` it was compiled from. The run/audit entry
    points live in :mod:`repro.engine.executor`; the methods here
    delegate to them.
    """

    steps: Tuple[PlanStep, ...]
    levels: List[List[str]]
    signature: tuple = field(repr=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def node_order(self) -> List[str]:
        return [s.name for s in self.steps]

    @property
    def packed_nodes(self) -> List[str]:
        return [s.name for s in self.steps if s.domain == "packed"]

    @property
    def kernel_nodes(self) -> List[str]:
        """Sequential nodes executed time-parallel by :mod:`repro.kernels`."""
        return [s.name for s in self.steps if s.domain == "kernel"]

    @property
    def fsm_nodes(self) -> List[str]:
        """Sequential nodes stepped by their per-cycle reference loop."""
        return [s.name for s in self.steps if s.domain == "fsm"]

    @property
    def sequential_nodes(self) -> List[str]:
        """All transform nodes (kernel + fsm domains)."""
        return [s.name for s in self.steps if s.domain in ("kernel", "fsm")]

    @property
    def boundary_count(self) -> int:
        """Pack/unpack boundary crossings per evaluation: each transform
        group unpacks its two operands and repacks its two outputs."""
        groups = {s.group for s in self.steps if s.group is not None}
        return 4 * len(groups)

    @property
    def source_names(self) -> List[str]:
        return [s.name for s in self.source_steps]

    @property
    def source_steps(self) -> List[PlanStep]:
        """Source steps of the *source graph* — on an optimized plan this
        includes merged-away sources, so override resolution accepts
        every name a caller can spell."""
        return [s for s in self.steps if s.kind == "source"]

    # -- optimizer hooks (overridden by OptimizedPlan) ----------------- #

    @property
    def optimize_level(self) -> int:
        """0 for a faithful plan, 1 when structural CSE has rewritten the
        schedule (:mod:`repro.engine.optimize`)."""
        return 0

    @property
    def alias_map(self) -> Dict[str, str]:
        """Merged-away node name → representative name (empty here)."""
        return {}

    def resolve(self, name: str) -> str:
        """The scheduled step computing ``name``'s words (itself here)."""
        return name

    @property
    def semantic_steps(self) -> Tuple[PlanStep, ...]:
        """The pre-optimization schedule — one step per source-graph
        node, the view audits and ``expected_values`` reason over."""
        return self.steps

    @property
    def semantic_order(self) -> List[str]:
        return [s.name for s in self.semantic_steps]

    def for_execution(self, resolved_levels) -> "ExecutionPlan":
        """The plan to actually walk given resolved per-source levels
        (an optimized plan falls back to its raw twin when an override
        splits a source merge; a faithful plan is always itself)."""
        return self

    def step(self, name: str) -> PlanStep:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)

    def consumer_counts(self) -> Dict[str, int]:
        """How many scheduled steps read each node's output.

        Both ports of a transform insertion count separately (each is its
        own step), which naturally blocks fusion *through* a transform's
        operands.
        """
        counts: Dict[str, int] = {s.name: 0 for s in self.steps}
        for s in self.steps:
            for dep in s.inputs:
                counts[dep] += 1
        return counts

    def fused_schedule(
        self, exposed: Optional[Iterable[str]] = None
    ) -> List[Union[PlanStep, "FusedChain"]]:
        """The schedule with runs of adjacent packed ops collapsed into
        :class:`FusedChain` super-steps.

        Consecutive op steps form a *run*; within a run, a member is
        *interior* — its buffer lives only in chain scratch — when it is
        not in ``exposed`` and every one of its consumers sits inside the
        same chain segment. A member survives as a chain boundary (its
        output enters the tile environment) when it is exposed, feeds a
        step outside the run (a transform, or a later run), or feeds a
        member of a *different* segment of the same run. Multi-consumer
        interiors are legal as long as every consumer is in-chain: a
        diamond whose branches and join are all op steps fuses into one
        super-step. ``exposed`` names the nodes someone outside the
        chain needs — kept streams, audited values, SCC operands;
        ``exposed=None`` means every node is exposed, which degenerates
        to the unfused schedule.

        Steps that touch no chain member (a source feeding a later level,
        an independent transform) do not break the chain — the chain is
        emitted at its flush point, which is legal because deferring a
        step never runs it before its inputs (every dependency precedes
        it in the original order and is flushed first if it is a chain
        member). Relative evaluation order of *dependent* steps is
        preserved exactly; only which intermediate buffers exist changes.
        """
        if exposed is None:
            return list(self.steps)
        exposed_set: Set[str] = set(exposed)
        consumers: Dict[str, List[str]] = {s.name: [] for s in self.steps}
        for s in self.steps:
            for dep in set(s.inputs):
                consumers[dep].append(s.name)
        schedule: List[Union[PlanStep, FusedChain]] = []
        run: List[PlanStep] = []
        run_names: Set[str] = set()

        def flush_run() -> None:
            if not run:
                return
            schedule.extend(_segment_run(run, consumers, exposed_set))
            run.clear()
            run_names.clear()

        for s in self.steps:
            if s.kind == "op":
                run.append(s)
                run_names.add(s.name)
            else:
                if run_names.intersection(s.inputs):
                    flush_run()
                schedule.append(s)
        flush_run()
        return schedule

    def describe(self) -> str:
        """Human-readable schedule: one line per level, nodes annotated
        with their domain (the CLI's ``engine`` subcommand prints this)."""
        lines = [
            f"execution plan: {len(self.steps)} nodes, {len(self.levels)} levels, "
            f"{len(self.kernel_nodes)} kernel, {len(self.fsm_nodes)} fsm, "
            f"{self.boundary_count} pack/unpack boundaries"
        ]
        for depth, names in enumerate(self.levels):
            rendered = []
            for name in names:
                s = self.step(name)
                if s.kind == "source":
                    rendered.append(f"{name} [source:{s.rng_spec} -> packed]")
                elif s.kind == "op":
                    rendered.append(f"{name} [op:{s.op} packed]")
                else:
                    rendered.append(f"{name} [{s.domain}:{s.transform.name} port {s.port}]")
            lines.append(f"  level {depth}: " + ", ".join(rendered))
        sinks = [n for n, c in self.consumer_counts().items() if c == 0]
        chains = [
            item for item in self.fused_schedule(exposed=sinks)
            if isinstance(item, FusedChain)
        ]
        if chains:
            lines.append(f"fused chains ({len(chains)}):")
            for chain in chains:
                lines.append(
                    f"  {_ellipsize(chain.label)} ({len(chain)} ops -> {chain.name})"
                )
        lines.extend(self._describe_optimized())
        return "\n".join(lines)

    def _describe_optimized(self) -> List[str]:
        """Extra ``describe()`` lines for the optimizer's rewrite report
        (none on a faithful plan; :class:`~repro.engine.optimize.OptimizedPlan`
        overrides)."""
        return []

    # ------------------------------------------------------------------ #
    # Evaluation entry points (delegate to the executor)
    # ------------------------------------------------------------------ #

    def run(self, length: int = 256) -> Dict[str, "np.ndarray"]:  # noqa: F821
        from .executor import run as _run
        return _run(self, length)

    def run_batch(self, length: int = 256, **kwargs):
        from .executor import run_batch as _run_batch
        return _run_batch(self, length, **kwargs)

    def audit(self, length: int = 256, *, tolerance: float = 0.35):
        from .executor import audit as _audit
        return _audit(self, length, tolerance=tolerance)

    def audit_batch(self, length: int = 256, **kwargs):
        from .executor import audit_batch as _audit_batch
        return _audit_batch(self, length, **kwargs)

    def run_streaming(self, length: int = 256, **kwargs):
        from .streaming import run_streaming as _run_streaming
        return _run_streaming(self, length, **kwargs)

    def audit_streaming(self, length: int = 256, **kwargs):
        from .streaming import audit_streaming as _audit_streaming
        return _audit_streaming(self, length, **kwargs)

    def expected_values(self) -> Dict[str, float]:
        """Exact float semantics per node — same loop, and therefore the
        same floats, as :meth:`SCGraph.expected_values`."""
        values: Dict[str, float] = {}
        for s in self.steps:
            if s.kind == "source":
                values[s.name] = s.value
            elif s.kind == "op":
                values[s.name] = OP_LIBRARY[s.op]["expected"](
                    [values[d] for d in s.inputs]
                )
            else:
                values[s.name] = values[s.inputs[s.port]]
        return values


def _build_plan(graph: SCGraph, signature: tuple) -> ExecutionPlan:
    """The compile pass: levelize, classify, pair transforms, assign
    buffer lifetimes."""
    order = graph.node_names
    level_of: Dict[str, int] = {}
    group_of: Dict[tuple, int] = {}
    raw_steps: List[dict] = []
    for name in order:
        node = graph.node(name)
        level = (
            0 if not node.inputs
            else 1 + max(level_of[d] for d in node.inputs)
        )
        level_of[name] = level
        if isinstance(node, SourceNode):
            raw_steps.append(dict(
                name=name, kind="source", domain="packed", level=level,
                value=node.value, rng_spec=node.rng_spec,
                rng_kwargs=_freeze(node.rng_kwargs),
            ))
        elif isinstance(node, OpNode):
            raw_steps.append(dict(
                name=name, kind="op", domain="packed", level=level,
                inputs=node.inputs, op=node.op,
            ))
        else:  # TransformNode (graph_signature already rejected others)
            key = (id(node.transform), node.inputs)
            group = group_of.setdefault(key, len(group_of))
            domain = "kernel" if is_kernelized(node.transform) else "fsm"
            raw_steps.append(dict(
                name=name, kind="transform", domain=domain, level=level,
                inputs=node.inputs, transform=node.transform,
                port=node.port, group=group,
            ))

    # Buffer liveness: a node's words can be released after its last
    # consumer runs (or immediately, for sinks nobody reads).
    last_use = {name: i for i, name in enumerate(order)}
    for i, raw in enumerate(raw_steps):
        for dep in raw.get("inputs", ()):
            last_use[dep] = max(last_use[dep], i)
    free_at: Dict[int, List[str]] = {}
    for name, i in last_use.items():
        free_at.setdefault(i, []).append(name)
    for i, raw in enumerate(raw_steps):
        raw["free_after"] = tuple(free_at.get(i, ()))

    depth = 1 + max(level_of.values()) if level_of else 0
    levels: List[List[str]] = [[] for _ in range(depth)]
    for name in order:
        levels[level_of[name]].append(name)

    return ExecutionPlan(
        steps=tuple(PlanStep(**raw) for raw in raw_steps),
        levels=levels,
        signature=signature,
    )


def compile_graph(
    graph: SCGraph, *, use_cache: bool = True, optimize: Optional[bool] = None
) -> ExecutionPlan:
    """Compile ``graph`` into an :class:`ExecutionPlan` (cached).

    Two graphs with equal :func:`graph_signature` share one plan — the
    autofix loop's repeated audits of the same fixed graph hit the cache
    and recompile nothing.

    ``optimize`` selects the optimization level: ``True`` (the module
    default, see :func:`repro.engine.optimize.set_default_optimize`)
    rewrites the schedule with structural CSE and returns an
    :class:`~repro.engine.optimize.OptimizedPlan`; ``False`` is the
    faithful one-step-per-node plan (`repro engine --no-optimize`).
    Both levels cache independently under the same structural signature,
    and an optimized compile seeds the raw entry too (its raw twin is
    built anyway for the override-divergence fallback).
    """
    if len(graph) == 0:
        raise GraphCompilationError("cannot compile an empty graph")
    if optimize is None:
        from .optimize import default_optimize

        optimize = default_optimize()
    level = 1 if optimize else 0
    signature = graph_signature(graph)
    if use_cache:
        with _PLAN_LOCK:
            cached = _PLAN_CACHE.get((signature, level))
            if cached is not None:
                _CACHE_STATS[level]["hits"] += 1
                _PLAN_CACHE.move_to_end((signature, level))
            else:
                _CACHE_STATS[level]["misses"] += 1
        if cached is not None:
            counter_add("engine.plan.cache.hit")
            return cached
        counter_add("engine.plan.cache.miss")
    # The raw plan is needed at both levels (it IS level 0, and level 1
    # keeps it as the fallback twin); reuse a cached one silently — only
    # the *requested* level counts toward the public hit/miss stats.
    if use_cache:
        with _PLAN_LOCK:
            raw = _PLAN_CACHE.get((signature, 0))
    else:
        raw = None
    if raw is None:
        with obs_span("engine.plan.compile", nodes=len(graph)) as sp:
            raw = _build_plan(graph, signature)
            sp.annotate(levels=len(raw.levels), kernel=len(raw.kernel_nodes),
                        fsm=len(raw.fsm_nodes))
    if optimize:
        from .optimize import optimize_plan

        with obs_span("engine.plan.optimize", nodes=len(raw.steps)) as sp:
            plan = optimize_plan(raw)
            sp.annotate(merged=plan.report.merged, steps=len(plan.steps))
    else:
        plan = raw
    if use_cache:
        with _PLAN_LOCK:
            _PLAN_CACHE[(signature, 0)] = raw
            _PLAN_CACHE.move_to_end((signature, 0))
            _PLAN_CACHE[(signature, level)] = plan
            _PLAN_CACHE.move_to_end((signature, level))
            while len(_PLAN_CACHE) > PLAN_CACHE_MAXSIZE:
                _PLAN_CACHE.popitem(last=False)
    return plan


_LEVEL_LABELS = {0: "raw", 1: "optimized"}


def cache_info() -> Dict[str, object]:
    """Plan-cache statistics: ``hits``, ``misses``, ``size``, ``maxsize``
    totals, plus a ``levels`` breakdown per optimization level (the
    cache keys entries per level, so the stats report per level too)."""
    sizes = {0: 0, 1: 0}
    with _PLAN_LOCK:
        for _, level in _PLAN_CACHE:
            sizes[level] += 1
        return {
            "hits": sum(s["hits"] for s in _CACHE_STATS.values()),
            "misses": sum(s["misses"] for s in _CACHE_STATS.values()),
            "size": len(_PLAN_CACHE),
            "maxsize": PLAN_CACHE_MAXSIZE,
            "levels": {
                _LEVEL_LABELS[level]: {
                    "hits": stats["hits"],
                    "misses": stats["misses"],
                    "size": sizes[level],
                }
                for level, stats in _CACHE_STATS.items()
            },
        }


def clear_cache() -> None:
    """Drop every cached plan — both optimization levels — and reset the
    per-level hit/miss counters, plus the optimizer's pruned-plan memo
    (derived from cached plans, so it must not outlive them)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        for stats in _CACHE_STATS.values():
            stats["hits"] = 0
            stats["misses"] = 0
    from .optimize import clear_dce_cache

    clear_dce_cache()
