"""Synthetic test images and tiling for the accelerator case study.

The paper evaluates on images it does not name; we substitute
deterministic synthetic images covering the structures that matter to a
blur + edge-detector pipeline: smooth ramps (low edge energy), blobs
(curved edges), checkerboards (dense edges), and band-limited noise.
All images are float arrays in ``[0, 1]``.

The accelerator is tiled (paper Section IV-A: "expects the input image to
be tiled and processes each tile individually"); :func:`tile_origins`
yields origins with a clamped final tile so any image size is covered.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import PipelineError

__all__ = [
    "gradient_image",
    "blob_image",
    "checkerboard_image",
    "noise_image",
    "standard_test_images",
    "tile_origins",
]


def _check_size(size: int) -> int:
    if size < 4:
        raise PipelineError(f"image size must be >= 4, got {size}")
    return int(size)


def gradient_image(size: int = 64, *, angle: float = 30.0) -> np.ndarray:
    """A linear intensity ramp across the image at the given angle."""
    size = _check_size(size)
    theta = np.deg2rad(angle)
    yy, xx = np.mgrid[0:size, 0:size]
    field = np.cos(theta) * xx + np.sin(theta) * yy
    field -= field.min()
    return (field / field.max()).astype(np.float64)


def blob_image(size: int = 64, *, blobs: int = 3, seed: int = 7) -> np.ndarray:
    """A sum of Gaussian blobs — smooth regions with curved edges."""
    size = _check_size(size)
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size]
    image = np.zeros((size, size), dtype=np.float64)
    for _ in range(blobs):
        cy, cx = rng.uniform(0.2 * size, 0.8 * size, size=2)
        sigma = rng.uniform(0.08 * size, 0.2 * size)
        image += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    image -= image.min()
    peak = image.max()
    return image / peak if peak > 0 else image


def checkerboard_image(size: int = 64, *, cell: int = 8) -> np.ndarray:
    """A checkerboard — the dense-edge worst case for the edge detector."""
    size = _check_size(size)
    if cell < 1:
        raise PipelineError(f"cell must be >= 1, got {cell}")
    yy, xx = np.mgrid[0:size, 0:size]
    return (((yy // cell) + (xx // cell)) % 2).astype(np.float64)


def noise_image(size: int = 64, *, seed: int = 11, smooth: int = 2) -> np.ndarray:
    """Band-limited uniform noise (box-smoothed ``smooth`` times)."""
    size = _check_size(size)
    rng = np.random.default_rng(seed)
    image = rng.random((size, size))
    kernel = np.ones(3) / 3.0
    for _ in range(max(0, smooth)):
        image = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 0, image
        )
        image = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, image
        )
    image -= image.min()
    peak = image.max()
    return image / peak if peak > 0 else image


def standard_test_images(size: int = 64) -> Dict[str, np.ndarray]:
    """The default evaluation set used by the Table IV experiment."""
    return {
        "gradient": gradient_image(size),
        "blobs": blob_image(size),
        "checker": checkerboard_image(size, cell=max(2, size // 8)),
        "noise": noise_image(size),
    }


def tile_origins(image_size: int, tile: int, stride: int) -> List[int]:
    """1-D tile origins covering ``image_size`` with a clamped last tile."""
    if tile > image_size:
        raise PipelineError(
            f"tile ({tile}) larger than image ({image_size}); shrink the tile"
        )
    if stride < 1:
        raise PipelineError(f"stride must be >= 1, got {stride}")
    origins = list(range(0, image_size - tile + 1, stride))
    last = image_size - tile
    if origins[-1] != last:
        origins.append(last)
    return origins
