"""Image quality metrics for the case study.

The paper reports "average absolute error of the SC result compared to a
floating point baseline image" (Section IV-A); PSNR is included as the
conventional secondary metric.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import PipelineError

__all__ = ["image_mae", "image_psnr"]


def _check_pair(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise PipelineError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise PipelineError("cannot compare empty images")
    return a, b


def image_mae(measured: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute pixel error (the paper's quality metric)."""
    a, b = _check_pair(measured, reference)
    return float(np.abs(a - b).mean())


def image_psnr(measured: np.ndarray, reference: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical images)."""
    a, b = _check_pair(measured, reference)
    mse = float(((a - b) ** 2).mean())
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)
