"""Floating-point reference kernels for the image pipeline.

The paper's quality metric is "average absolute error of the SC result
compared to a floating point baseline image" (Section IV-A). These are
that baseline: a 3x3 binomial Gaussian blur and the Roberts cross edge
detector, composed exactly as the SC accelerator composes them (including
the SC adder's 0.5 output scale in the edge magnitude, so the two
pipelines compute the same nominal function).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import PipelineError

__all__ = [
    "GAUSSIAN_3X3",
    "gaussian_blur_reference",
    "roberts_cross_reference",
    "pipeline_reference",
]

# The classic 3x3 binomial approximation of a Gaussian; weights sum to 1,
# and each weight is a multiple of 1/16 — realisable exactly by a 16-slot
# stochastic mux tree.
GAUSSIAN_3X3 = np.array(
    [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]]
) / 16.0


def _check_image(image: np.ndarray, minimum: int) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise PipelineError(f"expected a 2-D image, got ndim={image.ndim}")
    if min(image.shape) < minimum:
        raise PipelineError(
            f"image too small for this kernel: {image.shape}, need >= {minimum}"
        )
    if image.min() < 0.0 or image.max() > 1.0:
        raise PipelineError("image values must lie in [0, 1]")
    return image


def gaussian_blur_reference(image: np.ndarray) -> np.ndarray:
    """3x3 Gaussian blur; returns the valid (H-2, W-2) region."""
    image = _check_image(image, 3)
    h, w = image.shape
    out = np.zeros((h - 2, w - 2), dtype=np.float64)
    for dy in range(3):
        for dx in range(3):
            out += GAUSSIAN_3X3[dy, dx] * image[dy : dy + h - 2, dx : dx + w - 2]
    return out


def roberts_cross_reference(image: np.ndarray) -> np.ndarray:
    """Roberts cross edge magnitude with the SC adder's 0.5 scale.

    ``z[i,j] = 0.5 (|g[i,j] - g[i+1,j+1]| + |g[i,j+1] - g[i+1,j]|)``;
    returns the valid (H-1, W-1) region.
    """
    image = _check_image(image, 2)
    d1 = np.abs(image[:-1, :-1] - image[1:, 1:])
    d2 = np.abs(image[:-1, 1:] - image[1:, :-1])
    return 0.5 * (d1 + d2)


def pipeline_reference(image: np.ndarray) -> np.ndarray:
    """Gaussian blur followed by Roberts cross: the full float pipeline.

    Returns the (H-3, W-3) region matching the SC accelerator's output.
    """
    return roberts_cross_reference(gaussian_blur_reference(image))
