"""Stochastic-computing Gaussian blur kernel.

The 3x3 binomial kernel's weights are all multiples of 1/16, so the blur
is realised as a **16-slot weighted mux tree** (the standard SC
weighted-sum construction, paper reference [13]): each cycle a 4-bit value
from the *select* RNG picks one of 16 slots; slot -> neighbour assignment
repeats neighbours proportionally to their weights (the centre pixel owns
4 slots, edge pixels 2, corner pixels 1). The output bit is the chosen
neighbour's stream bit, so the output value is the exact weighted average
of the neighbour values — *provided the select sequence is uncorrelated
with the pixel streams* (the MUX adder's correlation requirement,
paper Fig. 2a).

Unlike the float reference there is sampling noise: each slot is visited
``N/16`` times per period for a low-discrepancy select source, which is
why a VDC/Halton select RNG measurably beats an LFSR here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_stream_length
from ..exceptions import PipelineError
from ..rng import StreamRNG
from .kernels import GAUSSIAN_3X3

__all__ = ["WEIGHT_SLOTS", "SCGaussianBlur"]

# Slot -> neighbour index (row-major 0..8) with multiplicity equal to the
# kernel weight numerator: [1,2,1,2,4,2,1,2,1] sixteenths.
WEIGHT_SLOTS = np.array(
    [0, 1, 1, 2, 3, 3, 4, 4, 4, 4, 5, 5, 6, 7, 7, 8], dtype=np.int64
)


class SCGaussianBlur:
    """Mux-tree SC Gaussian blur over a tile of pixel streams.

    Args:
        select_rng: RNG driving the 4-bit slot select; must be uncorrelated
            with the pixel streams.
        select_phase_step: rotation of the shared select sequence between
            adjacent kernels. One physical select RNG feeds every kernel in
            the tile; rotating its output per kernel (a zero-cost wiring
            choice, like rotated LFSR outputs in Section II-B) prevents all
            kernels from sampling the same neighbour offset in the same
            cycle, i.e. it avoids spatially coherent sampling artifacts.
            The side effect — central to the paper's case study — is that
            adjacent blurred streams come out only *partially* correlated,
            which is what the edge detector then trips over.
    """

    def __init__(self, select_rng: StreamRNG, *, select_phase_step: int = 0) -> None:
        self._select_rng = select_rng
        self._select_phase_step = int(select_phase_step)
        if self._select_phase_step < 0:
            raise PipelineError("select_phase_step must be >= 0")
        if int(WEIGHT_SLOTS.size) != 16:
            raise PipelineError("weight slot table must have 16 entries")
        # Consistency guard: slot multiplicities must reproduce the kernel.
        counts = np.bincount(WEIGHT_SLOTS, minlength=9) / 16.0
        if not np.allclose(counts.reshape(3, 3), GAUSSIAN_3X3):
            raise PipelineError("slot table does not realise the 3x3 Gaussian")

    @property
    def select_rng(self) -> StreamRNG:
        return self._select_rng

    @property
    def select_phase_step(self) -> int:
        return self._select_phase_step

    def blur_tile(self, tile_bits: np.ndarray) -> np.ndarray:
        """Blur a tile of pixel streams.

        Args:
            tile_bits: ``(H, W, N)`` uint8 array of pixel SNs.

        Returns:
            ``(H-2, W-2, N)`` uint8 array of blurred-pixel SNs (the valid
            convolution region).
        """
        tile_bits = np.asarray(tile_bits, dtype=np.uint8)
        if tile_bits.ndim != 3:
            raise PipelineError(f"expected (H, W, N) streams, got ndim={tile_bits.ndim}")
        return self.blur_tiles(tile_bits[None])[0]

    def blur_tiles(self, tiles_bits: np.ndarray) -> np.ndarray:
        """Blur a whole batch of tiles in one vectorised pass.

        The select sequence (and its per-kernel phase rotation) is shared
        by every tile — there is one physical select RNG — so the batched
        result is bit-identical to mapping :meth:`blur_tile` over the
        batch. This is the blur stage of the engine-routed accelerator
        path.

        Args:
            tiles_bits: ``(T, H, W, N)`` uint8 array of pixel SNs.

        Returns:
            ``(T, H-2, W-2, N)`` uint8 array of blurred-pixel SNs.
        """
        tiles_bits = np.asarray(tiles_bits, dtype=np.uint8)
        if tiles_bits.ndim != 4:
            raise PipelineError(
                f"expected (T, H, W, N) streams, got ndim={tiles_bits.ndim}"
            )
        tiles, h, w, n = tiles_bits.shape
        if h < 3 or w < 3:
            raise PipelineError(f"tile too small for a 3x3 blur: {(h, w)}")
        check_stream_length(n, name="stream length")
        # One shared select sequence per tile (one select RNG in hardware),
        # rotated per kernel by select_phase_step positions; the window
        # helper with the full extent is exactly the one-shot blur.
        return self._apply_selects(tiles_bits, 0, n, n)

    def blur_tiles_window(
        self, window_bits: np.ndarray, start: int, stop: int, stream_length: int
    ) -> np.ndarray:
        """Blur one time window ``[start, stop)`` of a tile batch.

        ``window_bits`` holds only the window's cycles
        (``(T, H, W, stop - start)``); the select slots for those cycles
        come from the RNG's windowed API, with the per-kernel phase
        rotation applied against the *full* stream length — so
        concatenating the outputs over all windows is bit-identical to
        :meth:`blur_tiles` on the whole stream. This is the pipeline's
        streaming route: memory per call is O(window), not O(N).
        """
        window_bits = np.asarray(window_bits, dtype=np.uint8)
        if window_bits.ndim != 4:
            raise PipelineError(
                f"expected (T, H, W, window) streams, got ndim={window_bits.ndim}"
            )
        if not 0 <= start <= stop <= stream_length:
            raise PipelineError(
                f"window [{start}, {stop}) outside stream of {stream_length}"
            )
        return self._apply_selects(window_bits, start, stop, stream_length)

    def _apply_selects(
        self, tiles_bits: np.ndarray, start: int, stop: int, stream_length: int
    ) -> np.ndarray:
        tiles, h, w, span = tiles_bits.shape

        # Gather 3x3 neighbourhoods: (T, H-2, W-2, 9, span).
        neigh = np.empty((tiles, h - 2, w - 2, 9, span), dtype=np.uint8)
        k = 0
        for dy in range(3):
            for dx in range(3):
                neigh[:, :, :, k, :] = tiles_bits[:, dy : dy + h - 2, dx : dx + w - 2, :]
                k += 1

        local_time = np.arange(span)
        if self._select_phase_step == 0:
            slots = self._select_rng.integers_window(start, stop, 16)
            chosen = WEIGHT_SLOTS[slots]  # (span,) neighbour index per cycle
            return neigh[:, :, :, chosen, local_time]
        # The rotation wraps per-kernel select *positions* modulo the full
        # stream length, so a window needs slot values at arbitrary
        # absolute indices — the RNG's index-addressed API serves them
        # from its cached period.
        kernels = (h - 2) * (w - 2)
        phases = (
            np.arange(kernels, dtype=np.int64) * self._select_phase_step
        ) % stream_length
        idx = (phases[:, None] + np.arange(start, stop)[None, :]) % stream_length
        seq = self._select_rng.sequence_at(idx)
        chosen = WEIGHT_SLOTS[(seq * 16) // self._select_rng.modulus]
        flat = neigh.reshape(tiles, kernels, 9, span)
        out = flat[:, np.arange(kernels)[:, None], chosen, local_time[None, :]]
        return out.reshape(tiles, h - 2, w - 2, span)
