"""The tiled Gaussian-blur -> Roberts-cross SC accelerator (Section IV).

Three variants, mirroring the paper's Table IV:

* ``"none"`` — GB outputs feed the edge detector directly. The detector's
  XOR subtractors see whatever correlation the blur left behind, which is
  weak (each pixel stream is generated from a differently phased LFSR), so
  edge magnitudes are badly overestimated.
* ``"regeneration"`` — every GB output is S/D + D/S re-encoded through one
  shared RNG before the detector; all detector inputs arrive with
  SCC = +1. Accurate but expensive: one regeneration unit per blurred
  pixel.
* ``"synchronizer"`` — a synchronizer per XOR operand pair (the paper's
  proposal). Accuracy matches regeneration at a fraction of the
  manipulation energy.

The functional simulation is cycle-accurate at stream level; the hardware
cost is assembled from :mod:`repro.hardware.components` exactly as the
paper tabulates it (converters + kernels + RNGs + manipulation circuits).
A "frame" in the energy report is one tile-engine pass of ``N`` cycles —
the granularity at which the paper's nJ/frame numbers are mutually
consistent; whole-image energy scales by the tile count.

Evaluation is backend-routed like the graph layer: the default engine
path batches **every tile of the image into one vectorised pass**
(convert → blur → detect across all tiles at once) and reduces edge
values through the packed popcount kernels, following the engine's
boundary rule — combinational stages word-parallel, FSM stages (the
synchronizer variant's pair transforms) on unpacked bits only. Pass
``backend="interpreter"`` for the per-tile reference loop; the two
produce identical outputs (``tests/test_engine.py`` asserts exact float
equality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .._validation import check_jobs, check_tile_words
from ..core.synchronizer import Synchronizer
from ..engine.pool import pool_call, unwrap
from ..obs import collect_children, counter_add
from ..obs import span as obs_span
from ..exceptions import PipelineError
from ..hardware import EFFECTIVE_CYCLE_US, Netlist, components, report
from ..rng import LFSR, Halton, VanDerCorput
from .gaussian_sc import SCGaussianBlur
from .images import tile_origins
from .kernels import pipeline_reference
from .quality import image_mae
from .roberts_sc import SCRobertsCross

__all__ = ["VARIANTS", "AcceleratorConfig", "AcceleratorResult", "SCAccelerator"]

VARIANTS = ("none", "regeneration", "synchronizer")

# Transient-allocation budget for one batched engine pass: the blur's
# (chunk, bt, bt, 9, N) neighbourhood gather is the peak consumer, so the
# engine path processes tiles in chunks sized to stay under this many
# bytes — large images keep the vectorisation win at bounded memory.
_ENGINE_CHUNK_BYTES = 64 << 20

# Worker context for the parallel streaming backend. Persistent pool
# workers build it through :func:`_pool_install_stream_ctx` (the
# accelerator travels by pickle at most once, the patch stack as a
# shared-memory descriptor); fork-per-call workers read it by
# address-space inheritance, installed immediately before the span pool
# forks — per-task pickles then carry only a span index plus small state
# arrays. Mirrors ``repro.engine.parallel._CTX``.
_STREAM_CTX = None


class _SynchronizerFactory:
    """Picklable synchronizer factory (a lambda here would make the whole
    accelerator unpicklable and force the pooled lane's fallback)."""

    __slots__ = ("depth",)

    def __init__(self, depth: int) -> None:
        self.depth = depth

    def __call__(self) -> Synchronizer:
        return Synchronizer(depth=self.depth)


def _pool_install_stream_ctx(acc, payload) -> None:
    """Persistent-worker installer for the streaming span tasks;
    ``(None, None)`` clears the context at call end."""
    global _STREAM_CTX
    if acc is None:
        _STREAM_CTX = None
        return
    patches, tile_words, spans = payload
    _STREAM_CTX = (acc, unwrap(patches), tile_words, spans)


def _stream_windows(span, tile_words):
    """A span's time windows, with absolute cycle offsets."""
    from ..bitstream.streaming import tile_bounds

    start, stop = span
    return [
        (start + s, start + e)
        for s, e in tile_bounds(stop - start, tile_words)
    ]


def _stream_counts_task(span_index: int) -> np.ndarray:
    """Regeneration pass 1 over one span: blurred 1-count partials
    (integer sums — span partials merge to the sequential totals)."""
    # Root span in a forked span worker: closing it flushes the worker's
    # obs buffers for the parent pool join to collect.
    with obs_span("pipeline.stream.counts", span=span_index):
        acc, patches, tile_words, spans = _STREAM_CTX
        tiles = patches.shape[0]
        bt = acc._config.blur_tile
        counts = np.zeros((tiles * bt * bt,), dtype=np.int64)
        for start, stop in _stream_windows(spans[span_index], tile_words):
            blurred = acc._blurred_window(patches, start, stop)
            counts += blurred.reshape(tiles * bt * bt, -1).sum(axis=1, dtype=np.int64)
        return counts


def _stream_compose_task(span_index: int):
    """Synchronizer phase 1 over one span: walk the span's windows once
    (convert + blur + corners) folding both pair FSMs' transitions into
    state maps, without knowing the span's entry states."""
    from ..kernels.streaming import make_pair_composer

    with obs_span("pipeline.stream.compose", span=span_index):
        acc, patches, tile_words, spans = _STREAM_CTX
        span = spans[span_index]
        tiles = patches.shape[0]
        bt = acc._config.blur_tile
        pairs = tiles * (bt - 1) * (bt - 1)
        factory = acc._detector._factory
        composers = tuple(
            make_pair_composer(factory(), acc._n, pairs, span[0]) for _ in range(2)
        )
        for start, stop in _stream_windows(span, tile_words):
            blurred = acc._blurred_window(patches, start, stop)
            g00, g11, g01, g10 = SCRobertsCross._corners(blurred)
            composers[0].step(g00, g11)
            composers[1].step(g01, g10)
        return composers[0].state_map, composers[1].state_map


def _detect_window_ones(g00, g11, g01, g10, select, arena) -> np.ndarray:
    """Edge popcounts for one detect window through arena scratch.

    Computes ``z = select ? (g01 ^ g10) : (g00 ^ g11)`` with the
    branchless MUX identity ``d1 ^ ((d1 ^ d2) & select)`` — identical on
    0/1 bits to the ``np.where`` formulation — writing both XOR
    differences and the mux into two recycled
    :class:`~repro.engine.optimize.BufferArena` buffers instead of three
    fresh ``(pairs, window)`` arrays per window.
    """
    d1 = arena.take_shape(g00.shape, np.uint8)
    d2 = arena.take_shape(g00.shape, np.uint8)
    np.bitwise_xor(g00, g11, out=d1)
    np.bitwise_xor(g01, g10, out=d2)
    np.bitwise_xor(d2, d1, out=d2)
    np.bitwise_and(d2, select[None, :], out=d2)
    np.bitwise_xor(d2, d1, out=d2)
    ones = d2.sum(axis=1, dtype=np.int64)
    arena.release(d1)
    arena.release(d2)
    return ones


def _stream_detect_task(span_index: int, states, regen_counts) -> np.ndarray:
    """Phase 3 over one span: detect with carriers seeded at the scanned
    entry states (``states`` is None for carrier-free variants), return
    the span's edge popcount partials."""
    from ..kernels.streaming import make_pair_carrier

    from ..engine.optimize import BufferArena

    regen_counts = unwrap(regen_counts)  # shm descriptor on the pooled lane
    with obs_span("pipeline.stream.detect", span=span_index):
        acc, patches, tile_words, spans = _STREAM_CTX
        span = spans[span_index]
        cfg = acc._config
        n = acc._n
        tiles = patches.shape[0]
        bt = cfg.blur_tile
        pairs = tiles * (bt - 1) * (bt - 1)

        carriers = (None, None)
        if states is not None:
            factory = acc._detector._factory
            carriers = tuple(
                make_pair_carrier(factory(), n, pairs, span[0]) for _ in range(2)
            )
            carriers[0].set_state(states[0])
            carriers[1].set_state(states[1])

        arena = BufferArena()
        edge_ones = np.zeros((pairs,), dtype=np.int64)
        for start, stop in _stream_windows(span, tile_words):
            if regen_counts is not None:
                window = acc._regen_rng.sequence_window(start, stop)
                flat = regen_counts[:, None] > window[None, :]
                blurred = flat.astype(np.uint8).reshape(tiles, bt, bt, stop - start)
            else:
                blurred = acc._blurred_window(patches, start, stop)
            g00, g11, g01, g10 = SCRobertsCross._corners(blurred)
            if carriers[0] is not None:
                g00, g11 = carriers[0].step(g00, g11)
                g01, g10 = carriers[1].step(g01, g10)
            select = acc._detector._select_bits_window(start, stop)
            edge_ones += _detect_window_ones(g00, g11, g01, g10, select, arena)
        arena.flush_counters()
        return edge_ones


@dataclass(frozen=True)
class AcceleratorConfig:
    """Configuration of one accelerator build.

    Attributes:
        variant: one of :data:`VARIANTS`.
        stream_length: SN length ``N`` (the paper uses 256).
        tile: input tile edge in pixels (the paper uses 10).
        sync_depth: synchronizer save depth for the synchronizer variant.
        input_phase_step: LFSR rotation between adjacent input-converter
            *phase domains*. The tile's 100 D/S converters share one LFSR
            (the RNG amortisation of Section II-B), tapped at a rotated
            position every ``input_row_group`` rows — a zero-cost wiring
            choice that keeps the generator count at one while preventing
            the whole tile from being perfectly mutually correlated.
        input_row_group: rows per input phase domain. Together with the
            select rotation this leaves adjacent blurred streams only
            *partially* correlated — the computation-induced-correlation
            regime that Table IV studies (set it >= tile to share one
            phase everywhere, making even the "none" variant accurate).
        select_phase_step: rotation of the blur's shared select sequence
            between adjacent kernels (see
            :class:`~repro.pipeline.gaussian_sc.SCGaussianBlur`).
    """

    variant: str = "synchronizer"
    stream_length: int = 256
    tile: int = 10
    sync_depth: int = 1
    input_phase_step: int = 85
    input_row_group: int = 5
    select_phase_step: int = 17

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise PipelineError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if self.stream_length < 16:
            raise PipelineError("stream_length must be >= 16")
        if self.tile < 4:
            raise PipelineError("tile must be >= 4 (3x3 blur + 2x2 detector)")
        if self.input_row_group < 1:
            raise PipelineError("input_row_group must be >= 1")

    @property
    def blur_tile(self) -> int:
        """Edge of the blurred region produced per tile."""
        return self.tile - 2

    @property
    def output_tile(self) -> int:
        """Edge of the edge-detector output region per tile."""
        return self.tile - 3


@dataclass
class AcceleratorResult:
    """Output of one accelerator run over one image."""

    variant: str
    output: np.ndarray
    reference: np.ndarray
    mean_abs_error: float
    tiles: int
    area_um2: float
    power_uw: float
    energy_per_frame_nj: float
    energy_per_image_nj: float
    breakdown: Dict[str, float] = field(default_factory=dict)


class SCAccelerator:
    """Tiled SC image-processing accelerator (GB -> ED)."""

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self._config = config or AcceleratorConfig()
        n = self._config.stream_length
        self._input_rng = LFSR(width=8)
        self._blur = SCGaussianBlur(
            VanDerCorput(width=8),
            select_phase_step=self._config.select_phase_step,
        )
        self._regen_rng = Halton(base=3, width=8)
        factory = None
        if self._config.variant == "synchronizer":
            factory = _SynchronizerFactory(self._config.sync_depth)
        self._detector = SCRobertsCross(Halton(base=5, width=8), factory)
        # Precompute the base LFSR period for phase-rotated input streams.
        self._lfsr_period_seq = self._input_rng.sequence(self._input_rng.period)
        self._n = n

    @property
    def config(self) -> AcceleratorConfig:
        return self._config

    # ------------------------------------------------------------------ #
    # Functional simulation
    # ------------------------------------------------------------------ #

    def _convert_tile(self, tile_values: np.ndarray) -> np.ndarray:
        """D/S conversion of one tile (see :meth:`_convert_tiles`)."""
        return self._convert_tiles(tile_values[None])[0]

    def _convert_tiles(self, tiles_values: np.ndarray) -> np.ndarray:
        """D/S conversion through one LFSR with row-group rotated taps,
        vectorised over a ``(T, H, W)`` tile batch.

        All converters in an ``input_row_group``-row band compare against
        the same LFSR phase (those streams are mutually SCC = +1); bands
        use rotated phases (streams across bands are decorrelated). This
        is the paper's RNG amortisation with rotated outputs
        (Section II-B) and the source of the *partial* correlation the
        no-manipulation variant suffers from. The phase schedule depends
        only on the in-tile row, so every tile shares one comparator
        matrix and the batch is bit-identical to per-tile conversion.
        """
        return self._convert_tiles_window(tiles_values, 0, self._n)

    def _convert_tiles_window(
        self, tiles_values: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """One time window of :meth:`_convert_tiles` — the LFSR phase
        schedule indexes the cached period at absolute cycle positions,
        so windows concatenate bit-identically to the one-shot
        conversion."""
        n = self._n
        tiles, h, w = tiles_values.shape
        levels = np.rint(tiles_values.reshape(tiles, -1) * n).astype(np.int64)
        period = self._lfsr_period_seq.size
        rows = np.repeat(np.arange(h, dtype=np.int64), w)
        phases = ((rows // self._config.input_row_group) * self._config.input_phase_step) % period
        idx = (phases[:, None] + np.arange(start, stop)[None, :]) % period
        r = self._lfsr_period_seq[idx]                       # (pixels, window)
        bits = (levels[:, :, None] > r[None, :, :]).astype(np.uint8)
        return bits.reshape(tiles, h, w, stop - start)

    def _regenerate(self, blurred: np.ndarray) -> np.ndarray:
        """Shared-RNG regeneration of one tile (see :meth:`_regenerate_tiles`)."""
        return self._regenerate_tiles(blurred[None])[0]

    def _regenerate_tiles(self, blurred: np.ndarray) -> np.ndarray:
        """Shared-RNG regeneration of every blurred-pixel stream in a
        ``(T, H, W, N)`` batch (one regeneration RNG in hardware, so all
        tiles compare against the same sequence)."""
        tiles, h, w, n = blurred.shape
        flat = blurred.reshape(-1, n)
        counts = flat.sum(axis=1, dtype=np.int64)
        seq = self._regen_rng.sequence(n)
        out = (counts[:, None] > seq[None, :]).astype(np.uint8)
        return out.reshape(tiles, h, w, n)

    def process_tile(self, tile_values: np.ndarray) -> np.ndarray:
        """Process one ``tile x tile`` value patch; returns the
        ``output_tile x output_tile`` edge-magnitude values."""
        cfg = self._config
        if tile_values.shape != (cfg.tile, cfg.tile):
            raise PipelineError(
                f"expected a {cfg.tile}x{cfg.tile} tile, got {tile_values.shape}"
            )
        input_bits = self._convert_tile(tile_values)
        blurred = self._blur.blur_tile(input_bits)
        if cfg.variant == "regeneration":
            blurred = self._regenerate(blurred)
        edges = self._detector.detect_tile(blurred)
        return edges.mean(axis=2)

    def _process_tiles(self, patches: np.ndarray) -> np.ndarray:
        """Engine-routed batched tile processing.

        One vectorised convert → blur → (regenerate) → detect pass over a
        ``(T, tile, tile)`` patch stack, with the detector's value
        reduction running in the packed word domain
        (:meth:`SCRobertsCross.detect_tiles_values`). Returns
        ``(T, output_tile, output_tile)`` edge values, float-identical to
        mapping :meth:`process_tile` over the stack.
        """
        input_bits = self._convert_tiles(patches)
        blurred = self._blur.blur_tiles(input_bits)
        if self._config.variant == "regeneration":
            blurred = self._regenerate_tiles(blurred)
        return self._detector.detect_tiles_values(blurred)

    def _blurred_window(
        self, patches: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Convert + blur one time window of a patch stack."""
        input_bits = self._convert_tiles_window(patches, start, stop)
        return self._blur.blur_tiles_window(input_bits, start, stop, self._n)

    def _process_tiles_streaming(
        self, patches: np.ndarray, tile_words: int, jobs: int = 1
    ) -> np.ndarray:
        """Streaming tile processing: pump the *time axis* in windows of
        ``tile_words * 64`` cycles through convert → blur →
        (regenerate) → detect, accumulating edge popcounts — float-
        identical to :meth:`_process_tiles` with memory O(window) in the
        stream length.

        The synchronizer variant's pair FSMs carry state across windows
        via :mod:`repro.kernels.streaming` carriers; the regeneration
        variant needs each blurred stream's total 1-count *before* it can
        re-encode, so it runs two window passes: convert + blur to
        accumulate counts, then a cheap re-encode + detect pass built
        from those counts alone — still O(window) memory.

        ``jobs > 1`` splits the time axis into contiguous window spans
        evaluated across a forked worker pool
        (:meth:`_process_tiles_streaming_parallel`); outputs are
        float-identical at any job count.
        """
        if jobs > 1:
            parallel = self._process_tiles_streaming_parallel(
                patches, tile_words, jobs
            )
            if parallel is not None:
                return parallel
        from ..bitstream.streaming import tile_bounds
        from ..engine.optimize import BufferArena
        from ..kernels.streaming import make_pair_carrier

        cfg = self._config
        n = self._n
        tiles = patches.shape[0]
        bt = cfg.blur_tile
        pairs = tiles * (bt - 1) * (bt - 1)

        regen_counts = None
        if cfg.variant == "regeneration":
            regen_counts = np.zeros((tiles * bt * bt,), dtype=np.int64)
            for start, stop in tile_bounds(n, tile_words):
                blurred = self._blurred_window(patches, start, stop)
                regen_counts += blurred.reshape(tiles * bt * bt, -1).sum(
                    axis=1, dtype=np.int64
                )
            regen_seq = self._regen_rng  # windowed below

        carriers = (None, None)
        if self._detector.uses_pair_transform:
            factory = self._detector._factory
            carriers = tuple(
                make_pair_carrier(factory(), n, pairs) for _ in range(2)
            )
            if any(c is None for c in carriers):
                raise PipelineError(
                    "pair transform has no streaming carrier; use backend='auto'"
                )

        arena = BufferArena()
        edge_ones = np.zeros((pairs,), dtype=np.int64)
        for start, stop in tile_bounds(n, tile_words):
            if cfg.variant == "regeneration":
                # The re-encoded bits depend only on the pass-one counts
                # and the regeneration sequence — no need to blur again.
                window = regen_seq.sequence_window(start, stop)
                flat = regen_counts[:, None] > window[None, :]
                blurred = flat.astype(np.uint8).reshape(tiles, bt, bt, stop - start)
            else:
                blurred = self._blurred_window(patches, start, stop)
            g00, g11, g01, g10 = SCRobertsCross._corners(blurred)
            if carriers[0] is not None:
                g00, g11 = carriers[0].step(g00, g11)
                g01, g10 = carriers[1].step(g01, g10)
            select = self._detector._select_bits_window(start, stop)
            edge_ones += _detect_window_ones(g00, g11, g01, g10, select, arena)
        arena.flush_counters()
        values = edge_ones / float(n)
        return values.reshape(tiles, bt - 1, bt - 1)

    def _process_tiles_streaming_parallel(
        self, patches: np.ndarray, tile_words: int, jobs: int
    ) -> Optional[np.ndarray]:
        """Span-parallel streaming detection over the time axis, or
        ``None`` when there is nothing to parallelise (a single span, no
        fork, a non-composing pair transform) — the caller then runs the
        sequential window walk.

        Same three-phase scan as :mod:`repro.engine.parallel`: the
        synchronizer variant composes both pair FSMs' state maps per span
        (phase 1), prefix-scans them for span entry states (phase 2), and
        detects all spans in parallel (phase 3), summing integer edge
        popcounts in span order — float-identical to sequential. The
        blur is recomputed in phase 3 (state maps need the corners, the
        detector needs them again seeded), so the synchronizer variant
        scales ~jobs/2; the carrier-free variants skip phase 1 and scale
        ~jobs (regeneration's two passes each parallelise directly).
        """
        global _STREAM_CTX
        from concurrent.futures import ProcessPoolExecutor
        from ..engine.parallel import _fork_context, _run_tasks, spans_for
        from ..kernels.streaming import make_pair_carrier, make_pair_composer

        cfg = self._config
        n = self._n
        tiles = patches.shape[0]
        bt = cfg.blur_tile
        pairs = tiles * (bt - 1) * (bt - 1)
        spans = spans_for(n, tile_words, jobs)
        if len(spans) < 2:
            counter_add("pipeline.stream.fallback")
            counter_add("pipeline.stream.fallback.single_span")
            return None

        sync = self._detector.uses_pair_transform
        algebra = initial = None
        if sync:
            factory = self._detector._factory
            algebra = tuple(
                make_pair_composer(factory(), n, pairs) for _ in range(2)
            )
            if any(a is None for a in algebra):
                counter_add("pipeline.stream.fallback")
                counter_add("pipeline.stream.fallback.series")
                return None
            initial = tuple(
                make_pair_carrier(factory(), n, pairs).get_state()
                for _ in range(2)
            )

        def _phases(run_tasks, wrap):
            # The three-phase body, dispatch-agnostic: ``run_tasks`` is
            # the pooled or forked task runner, ``wrap`` ships the
            # regeneration counts (identity on the forked lane, a shared
            # segment descriptor on the pooled one).
            regen_counts = None
            if cfg.variant == "regeneration":
                partials = run_tasks(
                    "_stream_counts_task", [(i,) for i in range(len(spans))]
                )
                regen_counts = np.zeros((tiles * bt * bt,), dtype=np.int64)
                for partial in partials:
                    regen_counts += partial

            span_states = [None] * len(spans)
            if sync:
                span_maps = run_tasks(
                    "_stream_compose_task", [(i,) for i in range(len(spans))]
                )
                states = initial
                for i, maps in enumerate(span_maps):
                    span_states[i] = states
                    states = tuple(
                        algebra[c].apply(maps[c], states[c]) for c in range(2)
                    )

            shipped = wrap(regen_counts) if regen_counts is not None else None
            return run_tasks(
                "_stream_detect_task",
                [(i, span_states[i], shipped) for i in range(len(spans))],
            )

        partials = None
        if _fork_context() is not None:  # tests patch this hook to force inline
            # Lane 1 — persistent pool: the accelerator is the
            # token-cached context, the patch stack travels as a shared
            # segment (zero-copy), workers keep kernel/sequence caches
            # warm across frames.
            with pool_call(
                min(jobs, len(spans)), context=self,
                installer="repro.pipeline.accelerator:_pool_install_stream_ctx",
                payload=lambda arena: (arena.wrap(patches), tile_words, spans),
            ) as call:
                if call is not None:
                    counter_add("pipeline.stream.pooled")
                    partials = _phases(
                        lambda name, tasks: call.map(
                            "repro.pipeline.accelerator:" + name, tasks
                        ),
                        call.arena.wrap,
                    )

        if partials is None:
            # Lane 2 — fork-per-call: the context (with the factory and
            # patch stack) travels by address-space inheritance.
            _STREAM_CTX = (self, patches, tile_words, spans)
            mp_context = _fork_context()
            pool = None
            if mp_context is not None:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(spans)), mp_context=mp_context
                )
            task_fns = {
                "_stream_counts_task": _stream_counts_task,
                "_stream_compose_task": _stream_compose_task,
                "_stream_detect_task": _stream_detect_task,
            }
            try:
                partials = _phases(
                    lambda name, tasks: _run_tasks(pool, task_fns[name], tasks),
                    lambda obj: obj,
                )
            finally:
                if pool is not None:
                    pool.shutdown()
                    # Absorb forked span workers' obs buffers (no-op when
                    # tracing is off).
                    collect_children()
                _STREAM_CTX = None

        edge_ones = np.zeros((pairs,), dtype=np.int64)
        for partial in partials:
            edge_ones += partial
        values = edge_ones / float(n)
        return values.reshape(tiles, bt - 1, bt - 1)

    def process(
        self,
        image: np.ndarray,
        *,
        backend: str = "auto",
        tile_words: int = 1024,
        jobs: int = 1,
    ) -> AcceleratorResult:
        """Run the full tiled pipeline over an image and score it.

        ``backend="auto"`` (default) batches all tiles into one
        engine-routed pass; ``"interpreter"`` runs the per-tile reference
        loop; ``"streaming"`` pumps the stream-length axis in windows of
        ``tile_words * 64`` cycles with FSM state carried across windows
        — memory O(window) instead of O(N) per pixel, for long-stream
        configurations. Outputs are identical across all three.

        ``jobs`` applies to the streaming backend only: time-window spans
        are evaluated across a forked worker pool with synchronizer state
        handed off via prefix-scanned state maps
        (:meth:`_process_tiles_streaming_parallel`), float-identical to
        ``jobs=1``. The other backends are already one vectorised pass
        and ignore it.
        """
        if backend not in ("auto", "engine", "interpreter", "streaming"):
            raise PipelineError(f"unknown backend {backend!r}")
        check_tile_words(tile_words)
        check_jobs(jobs)
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 2:
            raise PipelineError(f"expected a 2-D image, got ndim={image.ndim}")
        if image.min() < 0.0 or image.max() > 1.0:
            raise PipelineError("image values must lie in [0, 1]")
        cfg = self._config
        h, w = image.shape
        out = np.zeros((h - 3, w - 3), dtype=np.float64)
        stride = cfg.output_tile
        origins_r = tile_origins(h, cfg.tile, stride)
        origins_c = tile_origins(w, cfg.tile, stride)
        origins = [(r, c) for r in origins_r for c in origins_c]
        tiles = len(origins)
        with obs_span(
            "pipeline.process",
            variant=cfg.variant, backend=backend, tiles=tiles,
        ):
            if backend == "interpreter":
                for r, c in origins:
                    patch = image[r : r + cfg.tile, c : c + cfg.tile]
                    out[r : r + stride, c : c + stride] = self.process_tile(patch)
            else:
                window = (
                    min(cfg.stream_length, tile_words * 64)
                    if backend == "streaming" else cfg.stream_length
                )
                per_tile_bytes = cfg.blur_tile**2 * 9 * window
                chunk = max(1, _ENGINE_CHUNK_BYTES // per_tile_bytes)
                for start in range(0, tiles, chunk):
                    batch = origins[start : start + chunk]
                    patches = np.stack(
                        [image[r : r + cfg.tile, c : c + cfg.tile] for r, c in batch]
                    )
                    if backend == "streaming":
                        tile_values = self._process_tiles_streaming(
                            patches, tile_words, jobs
                        )
                    else:
                        tile_values = self._process_tiles(patches)
                    # Same write order as the reference loop, so overlapping
                    # clamped-edge tiles resolve identically.
                    for (r, c), values in zip(batch, tile_values):
                        out[r : r + stride, c : c + stride] = values
        reference = pipeline_reference(image)
        mae = image_mae(out, reference)
        cost = self.cost_breakdown()
        area = sum(v[0] for v in cost.values())
        power = sum(v[1] for v in cost.values())
        frame_nj = power * cfg.stream_length * EFFECTIVE_CYCLE_US / 1000.0
        return AcceleratorResult(
            variant=cfg.variant,
            output=out,
            reference=reference,
            mean_abs_error=mae,
            tiles=tiles,
            area_um2=area,
            power_uw=power,
            energy_per_frame_nj=frame_nj,
            energy_per_image_nj=frame_nj * tiles,
            breakdown={k: v[1] for k, v in cost.items()},
        )

    # ------------------------------------------------------------------ #
    # Hardware model
    # ------------------------------------------------------------------ #

    def netlist(self) -> Netlist:
        """Structural netlist of the whole tile engine."""
        total = Netlist("accelerator")
        for name, block in self._blocks().items():
            total = total + block.renamed(name)
        return total.renamed(f"accelerator[{self._config.variant}]")

    def _blocks(self) -> Dict[str, Netlist]:
        cfg = self._config
        n_inputs = cfg.tile * cfg.tile
        n_blur = cfg.blur_tile**2
        n_out = cfg.output_tile**2
        blocks: Dict[str, Netlist] = {
            "input_d2s": components.d2s_converter() * n_inputs,
            "blur_kernels": components.gaussian_blur_kernel() * n_blur,
            "edge_kernels": components.roberts_cross_kernel() * n_out,
            "output_s2d": components.s2d_converter() * n_out,
            "rngs": components.lfsr_rng() * 3,  # input + blur select + ED select
        }
        if cfg.variant == "regeneration":
            blocks["regenerators"] = components.regenerator() * n_blur
            blocks["rngs"] = components.lfsr_rng() * 4  # + regeneration RNG
        elif cfg.variant == "synchronizer":
            blocks["synchronizers"] = components.synchronizer(cfg.sync_depth) * (2 * n_out)
        return blocks

    def cost_breakdown(self) -> Dict[str, tuple]:
        """Per-block ``(area_um2, power_uw)`` (the paper's Section IV-B
        power break down: converters, kernels, RNGs, manipulation)."""
        return {
            name: (block.area_um2, block.power_uw)
            for name, block in self._blocks().items()
        }

    def manipulation_power_uw(self) -> float:
        """Power of the correlation-manipulation blocks alone (the paper's
        3.0x energy-overhead comparison is on exactly this subset)."""
        blocks = self._blocks()
        power = 0.0
        if "regenerators" in blocks:
            power += blocks["regenerators"].power_uw
            power += components.lfsr_rng().power_uw  # the regeneration RNG
        if "synchronizers" in blocks:
            power += blocks["synchronizers"].power_uw
        return power
