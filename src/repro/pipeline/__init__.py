"""The image-processing case study (paper Section IV).

A tiled SC accelerator running a Gaussian blur (needs *uncorrelated*
operands) into a Roberts-cross edge detector (needs *positively
correlated* operands) — the mismatch that motivates correlation
manipulation.

* :mod:`~repro.pipeline.images` — synthetic test images + tiling.
* :mod:`~repro.pipeline.kernels` — floating-point reference pipeline.
* :mod:`~repro.pipeline.gaussian_sc` — SC blur (weighted mux tree).
* :mod:`~repro.pipeline.roberts_sc` — SC edge detector (XOR + MUX).
* :mod:`~repro.pipeline.accelerator` — the three Table IV variants with
  functional simulation and hardware cost assembly.
* :mod:`~repro.pipeline.quality` — MAE / PSNR metrics.
"""

from .accelerator import VARIANTS, AcceleratorConfig, AcceleratorResult, SCAccelerator
from .gaussian_sc import SCGaussianBlur, WEIGHT_SLOTS
from .images import (
    blob_image,
    checkerboard_image,
    gradient_image,
    noise_image,
    standard_test_images,
    tile_origins,
)
from .kernels import (
    GAUSSIAN_3X3,
    gaussian_blur_reference,
    pipeline_reference,
    roberts_cross_reference,
)
from .quality import image_mae, image_psnr
from .roberts_sc import SCRobertsCross

__all__ = [
    "SCAccelerator",
    "AcceleratorConfig",
    "AcceleratorResult",
    "VARIANTS",
    "SCGaussianBlur",
    "WEIGHT_SLOTS",
    "SCRobertsCross",
    "GAUSSIAN_3X3",
    "gaussian_blur_reference",
    "roberts_cross_reference",
    "pipeline_reference",
    "gradient_image",
    "blob_image",
    "checkerboard_image",
    "noise_image",
    "standard_test_images",
    "tile_origins",
    "image_mae",
    "image_psnr",
]
