"""Stochastic-computing Roberts cross edge detector.

Per output pixel the detector computes
``z = 0.5 (|g00 - g11| + |g01 - g10|)`` from the 2x2 blurred
neighbourhood: two XOR absolute-difference gates feeding a MUX scaled
adder (paper reference [13]).

The XOR subtractor requires its operand pair to be **positively
correlated** (paper Fig. 2c) — this is exactly the correlation demand the
paper's case study revolves around. The detector therefore accepts an
optional *pair transform factory*; the accelerator passes

* nothing (the "SC No Manipulation" variant — XOR operands arrive with
  whatever correlation the blur left them),
* nothing but regenerated inputs (the "SC Regeneration" variant — inputs
  arrive already re-encoded with a shared RNG, SCC = +1),
* a synchronizer per XOR pair (the "SC Synchronizer" variant, Fig. 5).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.fsm import PairTransform
from ..exceptions import PipelineError
from ..rng import StreamRNG

__all__ = ["SCRobertsCross"]


class SCRobertsCross:
    """SC Roberts cross over a tile of blurred-pixel streams.

    Args:
        select_rng: RNG for the scaled adder's 0.5 select stream; must be
            uncorrelated with the detector inputs.
        pair_transform_factory: optional zero-argument callable returning a
            fresh :class:`~repro.core.fsm.PairTransform` applied to each
            XOR operand pair (two instances per output pixel, matching the
            hardware where each pair owns a synchronizer).
    """

    def __init__(
        self,
        select_rng: StreamRNG,
        pair_transform_factory: Optional[Callable[[], PairTransform]] = None,
    ) -> None:
        self._select_rng = select_rng
        self._factory = pair_transform_factory

    @property
    def select_rng(self) -> StreamRNG:
        return self._select_rng

    @property
    def uses_pair_transform(self) -> bool:
        return self._factory is not None

    def _abs_diff(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR subtract with the optional correlation fix-up.

        ``a``/``b`` are ``(B, N)`` stacks of operand streams.
        """
        if self._factory is not None:
            transform = self._factory()
            a, b = transform._process_bits(a, b)
        return np.bitwise_xor(a, b)

    def _select_bits(self, n: int) -> np.ndarray:
        """The shared 0.5 select stream for the MUX scaled adder."""
        return self._select_bits_window(0, n)

    def _select_bits_window(self, start: int, stop: int) -> np.ndarray:
        """Bits ``[start, stop)`` of the select stream (windowed RNG —
        value-exact against the full sequence, O(window) memory)."""
        seq = self._select_rng.sequence_window(start, stop)
        return (seq < self._select_rng.modulus // 2).astype(np.uint8)

    @staticmethod
    def _corners(blurred_bits: np.ndarray):
        """The four 2x2-neighbourhood corner stacks, flattened to
        ``(T * (H-1) * (W-1), N)`` in tile-major order."""
        n = blurred_bits.shape[-1]
        g00 = blurred_bits[:, :-1, :-1, :].reshape(-1, n)
        g11 = blurred_bits[:, 1:, 1:, :].reshape(-1, n)
        g01 = blurred_bits[:, :-1, 1:, :].reshape(-1, n)
        g10 = blurred_bits[:, 1:, :-1, :].reshape(-1, n)
        return g00, g11, g01, g10

    def detect_tile(self, blurred_bits: np.ndarray) -> np.ndarray:
        """Run the detector over a tile.

        Args:
            blurred_bits: ``(H, W, N)`` uint8 blurred-pixel streams.

        Returns:
            ``(H-1, W-1, N)`` uint8 edge-magnitude streams.
        """
        blurred_bits = np.asarray(blurred_bits, dtype=np.uint8)
        if blurred_bits.ndim != 3:
            raise PipelineError(
                f"expected (H, W, N) streams, got ndim={blurred_bits.ndim}"
            )
        return self.detect_tiles(blurred_bits[None])[0]

    def detect_tiles(self, blurred_bits: np.ndarray) -> np.ndarray:
        """Run the detector over a batch of tiles in one pass.

        Every XOR operand pair across the whole batch goes through one
        vectorised transform application (FSM rows are independent, so
        this is bit-identical to mapping :meth:`detect_tile`).

        Args:
            blurred_bits: ``(T, H, W, N)`` uint8 blurred-pixel streams.

        Returns:
            ``(T, H-1, W-1, N)`` uint8 edge-magnitude streams.
        """
        blurred_bits = np.asarray(blurred_bits, dtype=np.uint8)
        if blurred_bits.ndim != 4:
            raise PipelineError(
                f"expected (T, H, W, N) streams, got ndim={blurred_bits.ndim}"
            )
        tiles, h, w, n = blurred_bits.shape
        if h < 2 or w < 2:
            raise PipelineError(f"tile too small for Roberts cross: {(h, w)}")

        g00, g11, g01, g10 = self._corners(blurred_bits)
        d1 = self._abs_diff(g00, g11)
        d2 = self._abs_diff(g01, g10)

        # MUX scaled add: 0.5 (d1 + d2) with a shared 0.5 select stream.
        select = self._select_bits(n)
        z = np.where(select[None, :] == 1, d2, d1).astype(np.uint8)
        return z.reshape(tiles, h - 1, w - 1, n)

    def detect_tiles_values(self, blurred_bits: np.ndarray) -> np.ndarray:
        """Edge-magnitude *values* for a batch of tiles — the
        engine-routed reduction.

        With no pair transform the whole detector is combinational, so it
        runs in the packed word domain end to end (XOR and MUX on uint64
        words via the engine's kernels, values from popcounts). With a
        transform the FSM stage runs on bits and only the reduction is
        packed. Either way the floats equal
        ``detect_tiles(...).mean(axis=-1)`` exactly.

        Args:
            blurred_bits: ``(T, H, W, N)`` uint8 blurred-pixel streams.

        Returns:
            ``(T, H-1, W-1)`` float64 edge-magnitude values.
        """
        from ..bitstream.metrics import popcount_words
        from ..bitstream.packed import pack_bits
        from ..engine.executor import mux_words

        blurred_bits = np.asarray(blurred_bits, dtype=np.uint8)
        if blurred_bits.ndim != 4:
            raise PipelineError(
                f"expected (T, H, W, N) streams, got ndim={blurred_bits.ndim}"
            )
        tiles, h, w, n = blurred_bits.shape
        if h < 2 or w < 2:
            raise PipelineError(f"tile too small for Roberts cross: {(h, w)}")
        select_words = pack_bits(self._select_bits(n).reshape(1, -1))
        g00, g11, g01, g10 = self._corners(blurred_bits)
        if self._factory is None:
            d1 = pack_bits(g00) ^ pack_bits(g11)
            d2 = pack_bits(g01) ^ pack_bits(g10)
        else:
            d1 = pack_bits(self._abs_diff(g00, g11))
            d2 = pack_bits(self._abs_diff(g01, g10))
        z_words = mux_words(select_words, d1, d2)
        values = popcount_words(z_words) / float(n)
        return values.reshape(tiles, h - 1, w - 1)
