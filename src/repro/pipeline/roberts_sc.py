"""Stochastic-computing Roberts cross edge detector.

Per output pixel the detector computes
``z = 0.5 (|g00 - g11| + |g01 - g10|)`` from the 2x2 blurred
neighbourhood: two XOR absolute-difference gates feeding a MUX scaled
adder (paper reference [13]).

The XOR subtractor requires its operand pair to be **positively
correlated** (paper Fig. 2c) — this is exactly the correlation demand the
paper's case study revolves around. The detector therefore accepts an
optional *pair transform factory*; the accelerator passes

* nothing (the "SC No Manipulation" variant — XOR operands arrive with
  whatever correlation the blur left them),
* nothing but regenerated inputs (the "SC Regeneration" variant — inputs
  arrive already re-encoded with a shared RNG, SCC = +1),
* a synchronizer per XOR pair (the "SC Synchronizer" variant, Fig. 5).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.fsm import PairTransform
from ..exceptions import PipelineError
from ..rng import StreamRNG

__all__ = ["SCRobertsCross"]


class SCRobertsCross:
    """SC Roberts cross over a tile of blurred-pixel streams.

    Args:
        select_rng: RNG for the scaled adder's 0.5 select stream; must be
            uncorrelated with the detector inputs.
        pair_transform_factory: optional zero-argument callable returning a
            fresh :class:`~repro.core.fsm.PairTransform` applied to each
            XOR operand pair (two instances per output pixel, matching the
            hardware where each pair owns a synchronizer).
    """

    def __init__(
        self,
        select_rng: StreamRNG,
        pair_transform_factory: Optional[Callable[[], PairTransform]] = None,
    ) -> None:
        self._select_rng = select_rng
        self._factory = pair_transform_factory

    @property
    def select_rng(self) -> StreamRNG:
        return self._select_rng

    @property
    def uses_pair_transform(self) -> bool:
        return self._factory is not None

    def _abs_diff(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR subtract with the optional correlation fix-up.

        ``a``/``b`` are ``(B, N)`` stacks of operand streams.
        """
        if self._factory is not None:
            transform = self._factory()
            a, b = transform._process_bits(a, b)
        return np.bitwise_xor(a, b)

    def detect_tile(self, blurred_bits: np.ndarray) -> np.ndarray:
        """Run the detector over a tile.

        Args:
            blurred_bits: ``(H, W, N)`` uint8 blurred-pixel streams.

        Returns:
            ``(H-1, W-1, N)`` uint8 edge-magnitude streams.
        """
        blurred_bits = np.asarray(blurred_bits, dtype=np.uint8)
        if blurred_bits.ndim != 3:
            raise PipelineError(
                f"expected (H, W, N) streams, got ndim={blurred_bits.ndim}"
            )
        h, w, n = blurred_bits.shape
        if h < 2 or w < 2:
            raise PipelineError(f"tile too small for Roberts cross: {(h, w)}")

        g00 = blurred_bits[:-1, :-1, :].reshape(-1, n)
        g11 = blurred_bits[1:, 1:, :].reshape(-1, n)
        g01 = blurred_bits[:-1, 1:, :].reshape(-1, n)
        g10 = blurred_bits[1:, :-1, :].reshape(-1, n)

        d1 = self._abs_diff(g00, g11)
        d2 = self._abs_diff(g01, g10)

        # MUX scaled add: 0.5 (d1 + d2) with a shared 0.5 select stream.
        seq = self._select_rng.sequence(n)
        select = (seq < self._select_rng.modulus // 2).astype(np.uint8)
        z = np.where(select[None, :] == 1, d2, d1).astype(np.uint8)
        return z.reshape(h - 1, w - 1, n)
