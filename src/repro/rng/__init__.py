"""Random number generators for stochastic-number generation.

The correlation structure of SC computation starts here (paper Section
II-B): SNs produced from one RNG are positively correlated; SNs produced
from independent low-discrepancy sequences (VDC base 2 vs. Halton base 3)
are uncorrelated; LFSR pairs sit somewhere in between.

Available generators:

* :class:`LFSR` — classic maximal-length linear feedback shift register.
* :class:`VanDerCorput` — base-2 bit-reversal low-discrepancy sequence.
* :class:`Halton` — base-``b`` radical-inverse sequence.
* :class:`Sobol` — direction-number-based low-discrepancy sequence.
* :class:`CounterRNG` — plain ramp (deterministic unary generator).
* :class:`SystemRNG` — seeded PCG64, the software gold standard.
"""

from .base import StreamRNG
from .counter import CounterRNG
from .factory import (
    available_rngs,
    default_seed,
    get_default_seed,
    make_rng,
    register_rng,
)
from .halton import Halton, radical_inverse
from .lfsr import LFSR, MAXIMAL_TAPS
from .sharing import RNGBank, RotatedView
from .sobol import Sobol
from .system import SystemRNG
from .vandercorput import VanDerCorput

__all__ = [
    "StreamRNG",
    "LFSR",
    "MAXIMAL_TAPS",
    "VanDerCorput",
    "Halton",
    "radical_inverse",
    "Sobol",
    "CounterRNG",
    "SystemRNG",
    "RotatedView",
    "RNGBank",
    "make_rng",
    "register_rng",
    "available_rngs",
    "default_seed",
    "get_default_seed",
]
