"""Halton (generalised Van der Corput) low-discrepancy sequences.

The base-``b`` radical inverse of ``t`` reflects ``t``'s base-``b`` digits
about the radix point: ``t = d0 + d1*b + d2*b^2 + ...`` maps to
``d0/b + d1/b^2 + d2/b^3 + ...``. Base 2 recovers the Van der Corput
sequence; distinct (coprime) bases give mutually uncorrelated sequences,
which is how the paper's Table II/III builds its *uncorrelated* input
configurations (VDC base 2 against Halton base 3).

Values are quantised to ``width``-bit integers (``floor(frac * 2**width)``)
so the generator is drop-in compatible with the comparator-based D/S
converter.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import RNGConfigurationError
from .base import StreamRNG

__all__ = ["Halton", "radical_inverse"]


def radical_inverse(index: np.ndarray, base: int) -> np.ndarray:
    """Vectorised base-``b`` radical inverse, returning float64 in [0, 1)."""
    index = np.asarray(index, dtype=np.int64)
    result = np.zeros(index.shape, dtype=np.float64)
    scale = 1.0 / base
    remaining = index.copy()
    # 64-bit indices have at most ~40 base-3 digits; loop until all zero.
    while remaining.max(initial=0) > 0:
        digit = remaining % base
        result += digit * scale
        scale /= base
        remaining //= base
    return result


class Halton(StreamRNG):
    """Base-``b`` Halton sequence quantised to ``width``-bit integers.

    Args:
        base: radix of the radical inverse (>= 2). Use coprime bases for
            independent sequences.
        width: output bit width (modulus ``2**width``).
        phase: start index offset (skipping the 0th value, which is 0, is
            conventional; default phase=1 matches common SC practice).
    """

    def __init__(self, base: int = 3, width: int = 8, phase: int = 1) -> None:
        if base < 2:
            raise RNGConfigurationError(f"Halton base must be >= 2, got {base}")
        width = check_positive_int(width, name="width")
        super().__init__(modulus=1 << width)
        self._base = base
        self._width = width
        self._phase = check_non_negative_int(phase, name="phase")

    @property
    def name(self) -> str:
        return f"halton{self._base}"

    @property
    def base(self) -> int:
        return self._base

    @property
    def width(self) -> int:
        return self._width

    def _generate(self, length: int) -> np.ndarray:
        return self._generate_window(0, length)

    def _generate_window(self, start: int, stop: int) -> np.ndarray:
        # The radical inverse is index-addressable, so a window costs
        # O(stop - start) regardless of where it starts — the aperiodic
        # generator the tile-streaming sources still window for free.
        return self._generate_at(
            np.arange(start, stop, dtype=np.int64)
        )

    def _generate_at(self, indices: np.ndarray) -> np.ndarray:
        fracs = radical_inverse(indices + self._phase, self._base)
        return np.minimum((fracs * self.modulus).astype(np.int64), self.modulus - 1)
