"""Counter ("ramp") sequence generator.

A plain modulo counter is the cheapest possible "RNG": it emits
``0, 1, 2, ..., N-1`` cyclically. A D/S converter driven by a counter
produces a deterministic *unary burst* stream (all 1s first). Counters are
exact (every residue once per period) but maximally structured, so two
counter-driven SNs are maximally positively correlated — useful as the
anchor for correlated-input experiments and for the accumulative parallel
counter converters.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from .base import PERIOD_CACHE_LIMIT, StreamRNG

__all__ = ["CounterRNG"]


class CounterRNG(StreamRNG):
    """Modulo-``2**width`` up-counter with an optional start offset."""

    def __init__(self, width: int = 8, offset: int = 0) -> None:
        width = check_positive_int(width, name="width")
        super().__init__(modulus=1 << width)
        self._width = width
        self._offset = check_non_negative_int(offset, name="offset")

    @property
    def name(self) -> str:
        suffix = f"+{self._offset}" if self._offset else ""
        return f"counter{self._width}{suffix}"

    @property
    def width(self) -> int:
        return self._width

    @property
    def period(self) -> int:
        """One full ramp: ``2**width`` cycles."""
        return self.modulus

    def _generate(self, length: int) -> np.ndarray:
        return (np.arange(length, dtype=np.int64) + self._offset) % self.modulus

    def _generate_window(self, start: int, stop: int):
        # Narrow counters decline: tiling the cached ramp beats an
        # arange + modulo over the window.
        if self.modulus <= PERIOD_CACHE_LIMIT:
            return None
        return (np.arange(start, stop, dtype=np.int64) + self._offset) % self.modulus

    def _generate_at(self, indices: np.ndarray):
        if self.modulus <= PERIOD_CACHE_LIMIT:
            return None
        return (indices + self._offset) % self.modulus
