"""RNG sharing and rotation utilities.

RNGs dominate SC area/power, so real designs amortise one generator over
many D/S converters (paper Section II-B). Two standard wirings:

* **direct sharing** — several converters compare against the same
  sequence; the generated SNs are maximally positively correlated;
* **rotated outputs** — each converter taps the sequence at a different
  phase ("use rotated LFSR outputs ... to minimize correlation"); the SNs
  are (approximately) decorrelated at zero generator cost.

:class:`RotatedView` wraps any :class:`~repro.rng.base.StreamRNG` as a
phase-shifted view; :class:`RNGBank` hands out systematically rotated
views of one generator, and models the hardware honestly: one generator's
cost, many streams.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import RNGConfigurationError
from .base import StreamRNG

__all__ = ["RotatedView", "RNGBank"]


class RotatedView(StreamRNG):
    """A phase-shifted view of another generator's sequence.

    The view shares the parent's period and value set; only the starting
    offset differs. Views of one parent model rotated taps on one physical
    register chain.
    """

    def __init__(self, parent: StreamRNG, phase: int, *, period: Optional[int] = None) -> None:
        super().__init__(modulus=parent.modulus)
        self._parent = parent
        self._phase = check_non_negative_int(phase, name="phase")
        self._period = check_positive_int(
            period if period is not None else getattr(parent, "period", parent.modulus),
            name="period",
        )

    @property
    def name(self) -> str:
        return f"{self._parent.name}>>{self._phase}"

    @property
    def parent(self) -> StreamRNG:
        return self._parent

    @property
    def phase(self) -> int:
        return self._phase

    @property
    def period(self) -> int:
        """The parent's period (views only change the starting offset)."""
        return self._period

    def _generate(self, length: int) -> np.ndarray:
        # One parent period suffices: index modulo the period.
        base = self._parent.sequence(self._period)
        idx = (np.arange(length, dtype=np.int64) + self._phase) % self._period
        return base[idx]


class RNGBank:
    """A single generator amortised over many streams via rotated taps.

    Args:
        parent: the one physical generator.
        stride: phase distance between consecutive taps. Choose a value
            coprime with the parent period so taps never collide; the
            constructor enforces this.
    """

    def __init__(self, parent: StreamRNG, stride: int = 37) -> None:
        self._parent = parent
        self._stride = check_positive_int(stride, name="stride")
        self._period = int(getattr(parent, "period", parent.modulus))
        if np.gcd(self._stride, self._period) != 1:
            raise RNGConfigurationError(
                f"stride {stride} shares a factor with the period {self._period}; "
                "taps would collide"
            )
        self._issued = 0

    @property
    def parent(self) -> StreamRNG:
        return self._parent

    @property
    def issued(self) -> int:
        """Number of views handed out so far."""
        return self._issued

    def take(self) -> RotatedView:
        """Issue the next rotated view."""
        view = RotatedView(
            self._parent, (self._issued * self._stride) % self._period,
            period=self._period,
        )
        self._issued += 1
        return view

    def take_many(self, count: int) -> List[RotatedView]:
        """Issue ``count`` views at once."""
        check_positive_int(count, name="count")
        return [self.take() for _ in range(count)]
