"""Pseudo-random sequence backed by numpy's PCG64 generator.

Hardware has nothing this good; :class:`SystemRNG` exists as the
software-side *gold standard* random source for tests and for auxiliary
randomness in simulations (e.g. random trace generation for the image
pipeline). It is deterministic given a seed and replayable like every other
:class:`~repro.rng.base.StreamRNG`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from .base import StreamRNG

__all__ = ["SystemRNG"]


class SystemRNG(StreamRNG):
    """Seeded PCG64-backed uniform integer sequence in ``[0, 2**width)``."""

    def __init__(self, width: int = 8, seed: int = 0) -> None:
        width = check_positive_int(width, name="width")
        super().__init__(modulus=1 << width)
        self._width = width
        self._seed = int(seed)

    @property
    def name(self) -> str:
        return f"system(seed={self._seed})"

    @property
    def width(self) -> int:
        return self._width

    def _generate(self, length: int) -> np.ndarray:
        gen = np.random.default_rng(self._seed)
        return gen.integers(0, self.modulus, size=length, dtype=np.int64)
