"""Van der Corput (VDC) low-discrepancy sequence generator.

The base-2 Van der Corput sequence is the bit-reversal permutation: the
``t``-th value is ``reverse_bits(t, width) / 2**width``. Driving a D/S
converter with it produces SNs whose 1s are maximally evenly spread, which
both reduces quantisation noise and (per the paper's Table II) makes the
synchronizer/desynchronizer FSMs more effective, because runs of identical
bits are short.

Over one period of ``2**width`` cycles every residue appears exactly once,
so a VDC-driven D/S converter is *exact*: an input ``x`` yields a stream
with exactly ``x`` ones.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from .base import PERIOD_CACHE_LIMIT, StreamRNG

__all__ = ["VanDerCorput"]


def _reverse_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Bit-reverse each element of ``values`` as a ``width``-bit integer."""
    result = np.zeros_like(values)
    v = values.copy()
    for _ in range(width):
        result = (result << 1) | (v & 1)
        v >>= 1
    return result


class VanDerCorput(StreamRNG):
    """Base-2 Van der Corput sequence as a ``width``-bit integer stream.

    Args:
        width: bit width; the period is ``2**width``.
        phase: start the sequence at index ``phase`` (rotating the sequence
            gives decorrelated variants sharing one generator core).
    """

    def __init__(self, width: int = 8, phase: int = 0) -> None:
        width = check_positive_int(width, name="width")
        super().__init__(modulus=1 << width)
        self._width = width
        self._phase = check_non_negative_int(phase, name="phase")

    @property
    def name(self) -> str:
        suffix = f"+{self._phase}" if self._phase else ""
        return f"vdc{self._width}{suffix}"

    @property
    def width(self) -> int:
        return self._width

    @property
    def period(self) -> int:
        return self.modulus

    def _generate(self, length: int) -> np.ndarray:
        index = (np.arange(length, dtype=np.int64) + self._phase) % self.modulus
        return _reverse_bits(index, self._width)

    def _generate_window(self, start: int, stop: int):
        # Bit reversal is index-addressable, so windows cost O(window)
        # at any width — wide-register VDC sources stay streamable even
        # when the period is too large for the period cache. Narrow
        # registers decline (return None): tiling the cached period is
        # cheaper than ``width`` shift passes over the window.
        if self.period <= PERIOD_CACHE_LIMIT:
            return None
        return self._generate_at(np.arange(start, stop, dtype=np.int64))

    def _generate_at(self, indices: np.ndarray):
        if self.period <= PERIOD_CACHE_LIMIT:
            return None
        return _reverse_bits((indices + self._phase) % self.modulus, self._width)
