"""Linear feedback shift register (LFSR) sequence generator.

LFSRs are the classic SC random source (paper Section II-B): compact, but
*not* low-discrepancy, and pairs of LFSRs are not automatically
uncorrelated — the paper notes that rotated outputs or distinct seeds are
needed to keep cross-correlation down, and Table II uses an LFSR as the
"mediocre RNG" configuration.

This is a Fibonacci LFSR over GF(2): at each cycle the register shifts left
and the new low bit is the XOR of the tap positions. With maximal-length
taps the state walks through all ``2**width - 1`` non-zero values before
repeating. Because state 0 never occurs, a real LFSR cannot emit one of the
``2**width`` residues; we expose the raw behaviour (mapped to
``state - 1``) rather than papering over it — the resulting value bias is
part of what Table II measures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import RNGConfigurationError
from .base import StreamRNG

__all__ = ["LFSR", "MAXIMAL_TAPS"]

# Maximal-length polynomial taps (1-indexed bit positions, XNOR-free
# Fibonacci form) for common widths. Source: standard m-sequence tables.
MAXIMAL_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}


class LFSR(StreamRNG):
    """Fibonacci LFSR emitting ``state - 1`` in ``[0, 2**width - 2]``.

    Args:
        width: register width in bits; period is ``2**width - 1``.
        seed: initial non-zero state (defaults to 1).
        taps: optional custom tap positions (1-indexed, must include
            ``width``); defaults to a maximal-length polynomial.
        phase: discard this many initial outputs — the cheap trick used to
            derive "different" SNs from one LFSR (paper Section II-B).
    """

    def __init__(
        self,
        width: int = 8,
        seed: int = 1,
        taps: Optional[Tuple[int, ...]] = None,
        phase: int = 0,
    ) -> None:
        width = check_positive_int(width, name="width")
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise RNGConfigurationError(
                    f"no built-in maximal taps for width {width}; pass taps= explicitly"
                )
            taps = MAXIMAL_TAPS[width]
        if max(taps) != width:
            raise RNGConfigurationError(
                f"highest tap must equal width ({width}), got taps={taps}"
            )
        if any(t < 1 for t in taps):
            raise RNGConfigurationError(f"taps are 1-indexed positive positions, got {taps}")
        period = (1 << width) - 1
        seed = int(seed)
        if not 1 <= seed <= period:
            raise RNGConfigurationError(
                f"seed must be a non-zero {width}-bit value in [1, {period}], got {seed}"
            )
        super().__init__(modulus=1 << width)
        self._width = width
        self._seed = seed
        self._taps = tuple(sorted(set(taps), reverse=True))
        self._phase = check_non_negative_int(phase, name="phase")

    @property
    def name(self) -> str:
        return f"lfsr{self._width}(seed={self._seed})"

    @property
    def width(self) -> int:
        return self._width

    @property
    def period(self) -> int:
        """Sequence period: ``2**width - 1`` for maximal-length taps."""
        return (1 << self._width) - 1

    def _step(self, state: int) -> int:
        feedback = 0
        for tap in self._taps:
            feedback ^= (state >> (tap - 1)) & 1
        return ((state << 1) | feedback) & (self.modulus - 1)

    def _generate(self, length: int) -> np.ndarray:
        total = length + self._phase
        states = np.empty(total, dtype=np.int64)
        state = self._seed
        for i in range(total):
            states[i] = state
            state = self._step(state)
        # Map non-zero states 1..2^w-1 onto residues 0..2^w-2. The residue
        # 2^w - 1 is never emitted: a real LFSR artifact kept on purpose.
        return states[self._phase :] - 1
