"""Base class for stochastic-number random number generators.

In SC hardware, an RNG is a small sequential circuit that emits one
``width``-bit integer per cycle; a D/S converter compares that integer
against a binary input to produce one stream bit per cycle (paper Fig. 2g).
The *choice* of RNG determines the correlation structure of the generated
SNs (paper Section II-B):

* two SNs driven by the *same* RNG sequence are maximally positively
  correlated (SCC = +1);
* SNs driven by independent, well-chosen RNGs are uncorrelated (SCC ~ 0);
* low-discrepancy sequences (VDC, Halton, Sobol) additionally minimise
  quantisation noise.

Every generator in this package is deterministic and replayable:
:meth:`StreamRNG.sequence` always returns the same values for the same
constructor arguments, and :meth:`StreamRNG.reset` rewinds the internal
cursor used by the streaming :meth:`StreamRNG.next_value` interface.

Windowed generation
-------------------

The tile-streaming execution core (:mod:`repro.engine.streaming`) pumps
fixed-size chunks of a stream through a whole plan, so it needs *windows*
``sequence(stop)[start:stop]`` of a sequence without materialising the
``stop``-element prefix. :meth:`StreamRNG.sequence_window` (and the
derived :meth:`StreamRNG.integers_window` / :meth:`StreamRNG.sequence_at`)
provide exactly that, with three resolution strategies, best first:

1. a subclass :meth:`StreamRNG._generate_window` override computing the
   window directly (Halton's radical inverse is index-addressable);
2. a finite ``period`` property no larger than
   :data:`PERIOD_CACHE_LIMIT`: one period is generated once, cached on
   the instance, and indexed modulo the period (VDC, LFSR, counter,
   Sobol, rotated views);
3. the always-correct fallback ``_generate(stop)[start:]`` — O(stop)
   memory, used only by generators that are neither windowable nor
   periodic (the PCG-backed :class:`~repro.rng.system.SystemRNG`).

All three are value-exact: ``sequence_window(s, e)`` equals
``sequence(e)[s:e]`` element for element (property-tested in
``tests/test_streaming.py``).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .._validation import check_non_negative_int, check_positive_int

__all__ = ["StreamRNG", "PERIOD_CACHE_LIMIT"]

# Periods up to this many values may be materialised (and cached on the
# instance) to serve windowed generation; 2**16 int64s = 512 KiB, far
# below one streaming tile. Every built-in periodic generator is width-8
# by default (period <= 256), so the cap only guards pathological widths.
PERIOD_CACHE_LIMIT = 1 << 16


class StreamRNG(abc.ABC):
    """Abstract deterministic integer-sequence generator.

    Subclasses implement :meth:`_generate` returning the first ``length``
    values of their sequence as ``int64`` integers in ``[0, modulus)``.
    """

    def __init__(self, modulus: int) -> None:
        self._modulus = check_positive_int(modulus, name="modulus")
        self._cursor = 0
        self._cache: Optional[np.ndarray] = None
        self._period_cache: Optional[np.ndarray] = None
        # (phase, length) -> expanded window memo for the period path.
        # Tile streaming asks for the same (start % period, tile) window
        # on every full tile, so one slot hits almost always.
        self._window_memo: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # Abstract surface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _generate(self, length: int) -> np.ndarray:
        """Return the first ``length`` sequence values in ``[0, modulus)``."""

    def _generate_window(self, start: int, stop: int) -> Optional[np.ndarray]:
        """Subclass hook: values at indices ``[start, stop)`` computed
        directly, or ``None`` when the generator has no closed-form
        window (the base class then falls back to period indexing or
        prefix generation)."""
        return None

    def _generate_at(self, indices: np.ndarray) -> Optional[np.ndarray]:
        """Subclass hook: values at arbitrary absolute ``indices``, or
        ``None`` when the generator is not index-addressable (the base
        class then falls back to period indexing or prefix generation —
        the latter is O(max index), so index-addressable generators
        should implement this)."""
        return None

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable identifier (used in experiment tables)."""

    # ------------------------------------------------------------------ #
    # Concrete API
    # ------------------------------------------------------------------ #

    @property
    def modulus(self) -> int:
        """Exclusive upper bound of emitted values (``2**width`` usually)."""
        return self._modulus

    def sequence(self, length: int) -> np.ndarray:
        """The first ``length`` values of the sequence (replayable)."""
        length = check_positive_int(length, name="length")
        seq = self._generate(length)
        if seq.shape != (length,):
            raise AssertionError(
                f"{type(self).__name__}._generate returned shape {seq.shape}, "
                f"expected ({length},)"
            )
        return seq.astype(np.int64, copy=False)

    def fractions(self, length: int) -> np.ndarray:
        """The sequence scaled into ``[0, 1)`` as float64."""
        return self.sequence(length) / float(self._modulus)

    # ------------------------------------------------------------------ #
    # Windowed generation (constant-memory tile streaming)
    # ------------------------------------------------------------------ #

    def _period_values(self) -> Optional[np.ndarray]:
        """One full period of the sequence, cached on the instance — or
        ``None`` when the generator is aperiodic or its period exceeds
        :data:`PERIOD_CACHE_LIMIT`."""
        if self._period_cache is None:
            period = getattr(self, "period", None)
            if period is None or period > PERIOD_CACHE_LIMIT:
                return None
            values = self._generate(int(period)).astype(np.int64, copy=False)
            values.setflags(write=False)
            self._period_cache = values
        return self._period_cache

    def sequence_window(self, start: int, stop: int) -> np.ndarray:
        """Values at indices ``[start, stop)`` — exactly
        ``sequence(stop)[start:stop]`` — without materialising the prefix
        when the generator is windowable or periodic (see the module
        docstring for the resolution order)."""
        start = check_non_negative_int(start, name="start")
        if stop < start:
            raise ValueError(f"window stop {stop} precedes start {start}")
        if stop == start:
            return np.empty(0, dtype=np.int64)
        window = self._generate_window(start, stop)
        if window is None:
            # Prefer the period path even for start=0: generators with a
            # slow sequential _generate (the LFSR's per-step python loop)
            # then pay one period, not one tile, per window.
            period = self._period_values()
            if period is not None:
                p = period.size
                phase = start % p
                length = stop - start
                if self._window_memo is not None:
                    memo_phase, memo_length, memo = self._window_memo
                    if memo_phase == phase and memo_length == length:
                        return memo
                # Cyclic tiling of the rolled period: one C-level tile
                # instead of an arange + modulo + gather over the window.
                reps = (length + p - 1) // p
                window = np.tile(
                    np.roll(period, -phase) if phase else period, reps
                )[:length]
                window.setflags(write=False)
                self._window_memo = (phase, length, window)
            elif start == 0:
                window = self.sequence(stop)
            else:
                window = self._generate(stop)[start:]
        if window.shape != (stop - start,):
            raise AssertionError(
                f"{type(self).__name__} window has shape {window.shape}, "
                f"expected ({stop - start},)"
            )
        return window.astype(np.int64, copy=False)

    def sequence_at(self, indices: np.ndarray) -> np.ndarray:
        """Values at arbitrary absolute ``indices`` (int64 array).

        Periodic generators serve this from the cached period; aperiodic
        ones fall back to generating the ``max(indices) + 1`` prefix.
        Used by consumers whose index pattern is not a contiguous window
        (the image pipeline's phase-rotated select taps).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(indices.shape, dtype=np.int64)
        if indices.min() < 0:
            raise ValueError("sequence indices must be non-negative")
        values = self._generate_at(indices)
        if values is not None:
            return values.astype(np.int64, copy=False)
        period = self._period_values()
        if period is not None:
            return period[indices % period.size]
        return self._generate(int(indices.max()) + 1)[indices]

    def fractions_window(self, start: int, stop: int) -> np.ndarray:
        """Windowed :meth:`fractions`."""
        return self.sequence_window(start, stop) / float(self._modulus)

    def integers_window(self, start: int, stop: int, high: int) -> np.ndarray:
        """Windowed :meth:`integers`: the window rescaled to ``[0, high)``."""
        high = check_positive_int(high, name="high")
        return (self.sequence_window(start, stop) * high) // self._modulus

    def integers(self, length: int, high: int) -> np.ndarray:
        """The sequence rescaled to integers in ``[0, high)``.

        Used e.g. by shuffle buffers that need addresses in ``[0, depth)``
        from a generic RNG; the scaling preserves low-discrepancy structure.
        """
        high = check_positive_int(high, name="high")
        return (self.sequence(length) * high) // self._modulus

    def next_value(self) -> int:
        """Streaming interface: emit the next sequence value.

        Cycle-level circuit models use this one value at a time; batch code
        should prefer :meth:`sequence`.
        """
        if self._cache is None or self._cursor >= self._cache.size:
            grow = max(256, self._cursor + 1)
            self._cache = self.sequence(2 * grow)
        value = int(self._cache[self._cursor])
        self._cursor += 1
        return value

    def reset(self) -> None:
        """Rewind the streaming cursor to the beginning of the sequence."""
        self._cursor = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, modulus={self._modulus})"
