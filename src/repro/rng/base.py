"""Base class for stochastic-number random number generators.

In SC hardware, an RNG is a small sequential circuit that emits one
``width``-bit integer per cycle; a D/S converter compares that integer
against a binary input to produce one stream bit per cycle (paper Fig. 2g).
The *choice* of RNG determines the correlation structure of the generated
SNs (paper Section II-B):

* two SNs driven by the *same* RNG sequence are maximally positively
  correlated (SCC = +1);
* SNs driven by independent, well-chosen RNGs are uncorrelated (SCC ~ 0);
* low-discrepancy sequences (VDC, Halton, Sobol) additionally minimise
  quantisation noise.

Every generator in this package is deterministic and replayable:
:meth:`StreamRNG.sequence` always returns the same values for the same
constructor arguments, and :meth:`StreamRNG.reset` rewinds the internal
cursor used by the streaming :meth:`StreamRNG.next_value` interface.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .._validation import check_positive_int

__all__ = ["StreamRNG"]


class StreamRNG(abc.ABC):
    """Abstract deterministic integer-sequence generator.

    Subclasses implement :meth:`_generate` returning the first ``length``
    values of their sequence as ``int64`` integers in ``[0, modulus)``.
    """

    def __init__(self, modulus: int) -> None:
        self._modulus = check_positive_int(modulus, name="modulus")
        self._cursor = 0
        self._cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Abstract surface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _generate(self, length: int) -> np.ndarray:
        """Return the first ``length`` sequence values in ``[0, modulus)``."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable identifier (used in experiment tables)."""

    # ------------------------------------------------------------------ #
    # Concrete API
    # ------------------------------------------------------------------ #

    @property
    def modulus(self) -> int:
        """Exclusive upper bound of emitted values (``2**width`` usually)."""
        return self._modulus

    def sequence(self, length: int) -> np.ndarray:
        """The first ``length`` values of the sequence (replayable)."""
        length = check_positive_int(length, name="length")
        seq = self._generate(length)
        if seq.shape != (length,):
            raise AssertionError(
                f"{type(self).__name__}._generate returned shape {seq.shape}, "
                f"expected ({length},)"
            )
        return seq.astype(np.int64, copy=False)

    def fractions(self, length: int) -> np.ndarray:
        """The sequence scaled into ``[0, 1)`` as float64."""
        return self.sequence(length) / float(self._modulus)

    def integers(self, length: int, high: int) -> np.ndarray:
        """The sequence rescaled to integers in ``[0, high)``.

        Used e.g. by shuffle buffers that need addresses in ``[0, depth)``
        from a generic RNG; the scaling preserves low-discrepancy structure.
        """
        high = check_positive_int(high, name="high")
        return (self.sequence(length) * high) // self._modulus

    def next_value(self) -> int:
        """Streaming interface: emit the next sequence value.

        Cycle-level circuit models use this one value at a time; batch code
        should prefer :meth:`sequence`.
        """
        if self._cache is None or self._cursor >= self._cache.size:
            grow = max(256, self._cursor + 1)
            self._cache = self.sequence(2 * grow)
        value = int(self._cache[self._cursor])
        self._cursor += 1
        return value

    def reset(self) -> None:
        """Rewind the streaming cursor to the beginning of the sequence."""
        self._cursor = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, modulus={self._modulus})"
