"""RNG factory and registry.

Experiment configuration files and the benchmark harness name RNGs by
string ("lfsr", "vdc", "halton3", ...). :func:`make_rng` turns such a spec
into a concrete :class:`~repro.rng.base.StreamRNG` instance;
:func:`register_rng` lets downstream users plug in their own generators and
have them usable everywhere an RNG spec is accepted (Table II harness,
pipeline configs, ...).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Optional

from ..exceptions import RNGConfigurationError
from .base import StreamRNG
from .counter import CounterRNG
from .halton import Halton
from .lfsr import LFSR
from .sobol import Sobol
from .system import SystemRNG
from .vandercorput import VanDerCorput

__all__ = [
    "make_rng",
    "register_rng",
    "available_rngs",
    "default_seed",
    "get_default_seed",
    "set_default_seed",
]

_BUILDERS: Dict[str, Callable[..., StreamRNG]] = {}
_SEEDABLE: Dict[str, bool] = {}
_SEED_MAPS: Dict[str, Callable[[int, int], int]] = {}
_DEFAULT_SEED: Optional[int] = None


def register_rng(
    name: str,
    builder: Callable[..., StreamRNG],
    *,
    seedable: bool = False,
    seed_map: Optional[Callable[[int, int], int]] = None,
) -> None:
    """Register a builder callable under a spec name (case-insensitive).

    ``seedable`` marks builders that accept a ``seed`` keyword; only those
    receive the ambient :func:`default_seed` (the low-discrepancy
    sequences — VDC, Halton, Sobol, counter — are seedless by
    construction and keep their deterministic sequences). ``seed_map``
    folds the ambient seed ``(seed, width) -> valid builder seed`` for
    generators with a constrained seed domain (the LFSR rejects 0 and
    values past its period); explicit ``seed=`` kwargs are never mapped.
    """
    key = name.lower()
    if key in _BUILDERS:
        raise RNGConfigurationError(f"RNG spec {name!r} is already registered")
    _BUILDERS[key] = builder
    _SEEDABLE[key] = seedable
    _SEED_MAPS[key] = seed_map if seed_map is not None else (lambda seed, width: seed)


def available_rngs() -> tuple:
    """Sorted tuple of registered RNG spec names."""
    return tuple(sorted(_BUILDERS))


def get_default_seed() -> Optional[int]:
    """The ambient seed installed by :func:`default_seed` (None = builder
    defaults — the paper's published configurations)."""
    return _DEFAULT_SEED


def set_default_seed(seed: Optional[int]) -> Optional[int]:
    """Install the ambient seed non-contextually; returns the previous
    value. Fork-per-call workers inherit the ambient seed by address
    space; the persistent pool's long-lived workers sync it with this at
    every call prime instead."""
    global _DEFAULT_SEED
    previous = _DEFAULT_SEED
    _DEFAULT_SEED = seed
    return previous


@contextmanager
def default_seed(seed: Optional[int]):
    """Ambient seed for every seedable :func:`make_rng` call in the block.

    This is how ``python -m repro run --seed S`` reaches each experiment:
    the runner wraps shard execution in ``default_seed(S)`` so every
    factory-made seedable RNG (LFSR, system) derives from the command-line
    seed without threading a parameter through every experiment signature.
    Explicit ``seed=`` arguments (and direct constructor calls, which the
    paper's fixed configurations use) always win. ``None`` is a no-op.
    """
    global _DEFAULT_SEED
    previous = _DEFAULT_SEED
    _DEFAULT_SEED = seed
    try:
        yield
    finally:
        _DEFAULT_SEED = previous


def make_rng(spec: str, *, width: int = 8, **kwargs) -> StreamRNG:
    """Instantiate an RNG from a spec name.

    Args:
        spec: a registered name, e.g. ``"lfsr"``, ``"vdc"``, ``"halton3"``,
            ``"halton5"``, ``"sobol0"``, ``"counter"``, ``"system"``.
        width: bit width passed through to the builder.
        **kwargs: extra builder arguments (``seed``, ``phase``, ...).

    Seedable specs with no explicit ``seed`` pick up the ambient
    :func:`default_seed` when one is installed.

    Raises:
        RNGConfigurationError: for unknown specs.
    """
    key = spec.lower()
    if key not in _BUILDERS:
        raise RNGConfigurationError(
            f"unknown RNG spec {spec!r}; available: {', '.join(available_rngs())}"
        )
    if _SEEDABLE[key] and "seed" not in kwargs and _DEFAULT_SEED is not None:
        kwargs["seed"] = _SEED_MAPS[key](_DEFAULT_SEED, width)
    return _BUILDERS[key](width=width, **kwargs)


register_rng(
    "lfsr",
    lambda width=8, **kw: LFSR(width=width, **kw),
    seedable=True,
    # Non-zero state within the period: the whole int range folds onto
    # [1, 2**width - 1].
    seed_map=lambda seed, width: 1 + seed % ((1 << width) - 1),
)
register_rng("vdc", lambda width=8, **kw: VanDerCorput(width=width, **kw))
register_rng("halton2", lambda width=8, **kw: Halton(base=2, width=width, **kw))
register_rng("halton3", lambda width=8, **kw: Halton(base=3, width=width, **kw))
register_rng("halton5", lambda width=8, **kw: Halton(base=5, width=width, **kw))
register_rng("halton7", lambda width=8, **kw: Halton(base=7, width=width, **kw))
register_rng("sobol0", lambda width=8, **kw: Sobol(dimension=0, width=width, **kw))
register_rng("sobol1", lambda width=8, **kw: Sobol(dimension=1, width=width, **kw))
register_rng("sobol2", lambda width=8, **kw: Sobol(dimension=2, width=width, **kw))
register_rng("counter", lambda width=8, **kw: CounterRNG(width=width, **kw))
register_rng("system", lambda width=8, **kw: SystemRNG(width=width, **kw), seedable=True)
