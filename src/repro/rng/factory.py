"""RNG factory and registry.

Experiment configuration files and the benchmark harness name RNGs by
string ("lfsr", "vdc", "halton3", ...). :func:`make_rng` turns such a spec
into a concrete :class:`~repro.rng.base.StreamRNG` instance;
:func:`register_rng` lets downstream users plug in their own generators and
have them usable everywhere an RNG spec is accepted (Table II harness,
pipeline configs, ...).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import RNGConfigurationError
from .base import StreamRNG
from .counter import CounterRNG
from .halton import Halton
from .lfsr import LFSR
from .sobol import Sobol
from .system import SystemRNG
from .vandercorput import VanDerCorput

__all__ = ["make_rng", "register_rng", "available_rngs"]

_BUILDERS: Dict[str, Callable[..., StreamRNG]] = {}


def register_rng(name: str, builder: Callable[..., StreamRNG]) -> None:
    """Register a builder callable under a spec name (case-insensitive)."""
    key = name.lower()
    if key in _BUILDERS:
        raise RNGConfigurationError(f"RNG spec {name!r} is already registered")
    _BUILDERS[key] = builder


def available_rngs() -> tuple:
    """Sorted tuple of registered RNG spec names."""
    return tuple(sorted(_BUILDERS))


def make_rng(spec: str, *, width: int = 8, **kwargs) -> StreamRNG:
    """Instantiate an RNG from a spec name.

    Args:
        spec: a registered name, e.g. ``"lfsr"``, ``"vdc"``, ``"halton3"``,
            ``"halton5"``, ``"sobol0"``, ``"counter"``, ``"system"``.
        width: bit width passed through to the builder.
        **kwargs: extra builder arguments (``seed``, ``phase``, ...).

    Raises:
        RNGConfigurationError: for unknown specs.
    """
    key = spec.lower()
    if key not in _BUILDERS:
        raise RNGConfigurationError(
            f"unknown RNG spec {spec!r}; available: {', '.join(available_rngs())}"
        )
    return _BUILDERS[key](width=width, **kwargs)


register_rng("lfsr", lambda width=8, **kw: LFSR(width=width, **kw))
register_rng("vdc", lambda width=8, **kw: VanDerCorput(width=width, **kw))
register_rng("halton2", lambda width=8, **kw: Halton(base=2, width=width, **kw))
register_rng("halton3", lambda width=8, **kw: Halton(base=3, width=width, **kw))
register_rng("halton5", lambda width=8, **kw: Halton(base=5, width=width, **kw))
register_rng("halton7", lambda width=8, **kw: Halton(base=7, width=width, **kw))
register_rng("sobol0", lambda width=8, **kw: Sobol(dimension=0, width=width, **kw))
register_rng("sobol1", lambda width=8, **kw: Sobol(dimension=1, width=width, **kw))
register_rng("sobol2", lambda width=8, **kw: Sobol(dimension=2, width=width, **kw))
register_rng("counter", lambda width=8, **kw: CounterRNG(width=width, **kw))
register_rng("system", lambda width=8, **kw: SystemRNG(width=width, **kw))
