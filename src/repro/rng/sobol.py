"""Sobol low-discrepancy sequence generator.

Liu & Han (DATE 2017, paper reference [8]) showed Sobol sequences make
energy-efficient SC number sources. A Sobol dimension is defined by a
primitive polynomial and initial *direction numbers*; output ``t`` is the
XOR of direction numbers selected by the bits of the Gray code of ``t``.

We embed the first eight dimensions of the Joe–Kuo table (new-joe-kuo-6),
which is far more than the circuits here need — different dimensions give
mutually uncorrelated streams. Dimension 0 visits exactly the point set of
the base-2 Van der Corput sequence (in Gray-code order), as in every
standard Sobol construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import RNGConfigurationError
from .base import PERIOD_CACHE_LIMIT, StreamRNG

__all__ = ["Sobol"]

# Joe-Kuo new-joe-kuo-6 parameters: (degree s, coefficient a, m_1..m_s)
# for dimensions 1..7 (dimension 0 is the VDC special case).
_JOE_KUO: List[Tuple[int, int, Tuple[int, ...]]] = [
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
]


_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount64(values: np.ndarray) -> np.ndarray:
    """Elementwise 64-bit popcount (intrinsic on numpy >= 2, SWAR else)."""
    v = values.astype(np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(v).astype(np.int64)
    v = v - ((v >> np.uint64(1)) & _M1)
    v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
    v = (v + (v >> np.uint64(4))) & _M4
    return ((v * _H01) >> np.uint64(56)).astype(np.int64)


# Direction-number tables are pure functions of (dimension, width); the
# m-sequence recurrence is short (``width`` terms) but every Sobol
# instance used to recompute it — and analysis sweeps construct many
# instances — so the computed tables are memoised here.
_DIRECTIONS_CACHE: dict = {}


def _direction_numbers(dimension: int, width: int) -> np.ndarray:
    """The ``width`` direction numbers V_k for a dimension (cached)."""
    key = (dimension, width)
    v = _DIRECTIONS_CACHE.get(key)
    if v is not None:
        return v
    if dimension == 0:
        v = np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64)
    else:
        s, a, m_init = _JOE_KUO[dimension - 1]
        m = list(m_init)
        for k in range(s, width):
            new = m[k - s] ^ (m[k - s] << s)
            for i in range(1, s):
                if (a >> (s - 1 - i)) & 1:
                    new ^= m[k - i] << i
            m.append(new)
        v = np.array(m[:width], dtype=np.int64) << np.arange(
            width - 1, -1, -1, dtype=np.int64
        )
    v.setflags(write=False)
    _DIRECTIONS_CACHE[key] = v
    return v


class Sobol(StreamRNG):
    """One dimension of a Sobol sequence as a ``width``-bit integer stream.

    Args:
        dimension: which Sobol dimension (0..7 built in); distinct
            dimensions are mutually uncorrelated.
        width: output bit width; period ``2**width``.
        phase: start index offset.
    """

    MAX_DIMENSION = len(_JOE_KUO)  # dimensions 0..MAX_DIMENSION inclusive

    def __init__(self, dimension: int = 0, width: int = 8, phase: int = 0) -> None:
        width = check_positive_int(width, name="width")
        dimension = check_non_negative_int(dimension, name="dimension")
        if dimension > self.MAX_DIMENSION:
            raise RNGConfigurationError(
                f"built-in Sobol supports dimensions 0..{self.MAX_DIMENSION}, got {dimension}"
            )
        super().__init__(modulus=1 << width)
        self._dimension = dimension
        self._width = width
        self._phase = check_non_negative_int(phase, name="phase")
        self._directions = _direction_numbers(dimension, width)

    @property
    def name(self) -> str:
        return f"sobol[{self._dimension}]"

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def width(self) -> int:
        return self._width

    @property
    def period(self) -> int:
        """``2**width``: each clamped flip index ``j < width - 1`` occurs
        ``2**(width-1-j)`` times per period and ``width - 1`` twice — all
        even counts, so the XOR accumulation returns to 0 and the sequence
        repeats (checked against the direct recurrence in the tests)."""
        return self.modulus

    def _generate(self, length: int) -> np.ndarray:
        total = self._phase + length
        # Gray-code stepping, fully vectorised: output t XORs in the
        # direction number of the lowest zero bit of t-1 — equivalently
        # the lowest *set* bit of t (``t & -t``), whose index is
        # ``popcount(lowbit - 1)``. The whole sequence is then one XOR
        # prefix scan over the selected direction numbers.
        t = np.arange(1, total, dtype=np.int64)
        lowbit = t & -t
        flip = _popcount64(lowbit - 1)
        np.minimum(flip, self._width - 1, out=flip)
        out = np.empty(total, dtype=np.int64)
        out[0] = 0
        np.bitwise_xor.accumulate(self._directions[flip], out=out[1:])
        return out[self._phase :]

    def _generate_window(self, start: int, stop: int) -> Optional[np.ndarray]:
        # Below index 2**width the flip clamp never fires, so the prefix
        # scan equals the textbook Gray-order closed form
        # ``out[t] = XOR of v_j over the set bits j of gray(t)`` — which
        # is index-addressable: O(width * window) work, O(window) memory.
        # Past 2**width the clamp breaks the closed form; narrow widths
        # and out-of-range windows decline (return None) and fall back to
        # the period path (the clamped sequence repeats every 2**width
        # values, and tiling the cached period is cheaper anyway).
        if self.modulus <= PERIOD_CACHE_LIMIT or self._phase + stop > self.modulus:
            return None
        return self._closed_form_at(
            np.arange(start, stop, dtype=np.int64)
        )

    def _generate_at(self, indices: np.ndarray) -> Optional[np.ndarray]:
        if (
            self.modulus <= PERIOD_CACHE_LIMIT
            or self._phase + int(indices.max()) >= self.modulus
        ):
            return None
        return self._closed_form_at(indices)

    def _closed_form_at(self, indices: np.ndarray) -> np.ndarray:
        t = indices + self._phase
        gray = t ^ (t >> 1)
        out = np.zeros(t.shape, dtype=np.int64)
        for j in range(self._width):
            np.bitwise_xor(
                out,
                np.where((gray >> j) & 1 == 1, self._directions[j], 0),
                out=out,
            )
        return out
