"""Correlation propagation through SC operators.

The paper motivates its circuits with an open problem (Section II-B):
"the quantitative impact of how each SC arithmetic operation changes the
SN correlation with respect to other SNs is not well-understood. As a
result, it is sometimes difficult or impractical to completely guarantee
correlated or uncorrelated input SNs across many operations."

This module measures that impact empirically: for each gate ``op`` and a
reference stream C with a controlled relationship to the operands, it
sweeps exhaustive operand values and reports ``SCC(op(A, B), C)`` as a
function of ``SCC(A, C)``. The resulting table quantifies how much of A's
correlation to the rest of the computation survives each operator — the
data a designer needs to decide *where* manipulation circuits must go.

The sweep routes through :mod:`repro.engine` by default: the four gates
are one compiled :class:`~repro.graph.graph.SCGraph` evaluated against
the whole exhaustive level batch in a single packed-domain pass, and the
output-vs-reference SCCs run through the packed overlap kernels. The MUX
row therefore uses the graph layer's scaled-add select (halton base 7);
``backend="interpreter"`` keeps the pre-engine unpacked path with its
halton-5 select for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..bitstream.metrics import scc_batch, scc_batch_packed
from ..bitstream.packed import pack_bits
from ..graph.graph import SCGraph
from ..rng import make_rng
from .sweeps import generate_level_batch, pair_levels

__all__ = ["PropagationEntry", "correlation_propagation"]

_GATES: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "AND (multiply)": lambda a, b: a & b,
    "OR (sat add)": lambda a, b: a | b,
    "XOR (subtract)": lambda a, b: a ^ b,
    "MUX (scaled add)": None,  # handled specially (needs a select stream)
}

# Gate label -> the OP_LIBRARY op realising it in the engine-routed graph.
_GATE_OPS = {
    "AND (multiply)": "mul",
    "OR (sat add)": "sat_add",
    "XOR (subtract)": "sub",
    "MUX (scaled add)": "scaled_add",
}


@dataclass(frozen=True)
class PropagationEntry:
    """Input-vs-output correlation of one gate against a reference stream."""

    gate: str
    scc_a_c: float       # operand A's correlation with the reference C
    scc_b_c: float       # operand B's correlation with the reference C
    scc_out_c: float     # output's correlation with the reference C
    retention: float     # scc_out_c / scc_a_c (how much of A's SCC survives)

    def as_row(self) -> list:
        return [
            self.gate,
            round(self.scc_a_c, 3),
            round(self.scc_b_c, 3),
            round(self.scc_out_c, 3),
            round(self.retention, 3),
        ]


def _propagation_engine(n: int, step: int) -> List[PropagationEntry]:
    """Engine route: one compiled graph, one batched packed pass."""
    from ..engine import compile_graph

    xs, ys = pair_levels(n, step)
    graph = SCGraph()
    graph.source("a", 0.5, "vdc")
    graph.source("b", 0.5, "halton3")
    for gate, op in _GATE_OPS.items():
        graph.op(gate, op, "a", "b")
    result = compile_graph(graph).run_batch(n, levels={"a": xs, "b": ys})

    # Reference stream: mid-value stream from A's RNG -> SCC(A, C) ~ +1.
    c_words = pack_bits(generate_level_batch(np.array([n // 2]), make_rng("vdc"), n))

    scc_ac = float(scc_batch_packed(result.words("a"), c_words, n).mean())
    scc_bc = float(scc_batch_packed(result.words("b"), c_words, n).mean())
    entries: List[PropagationEntry] = []
    for gate in _GATES:
        scc_oc = float(scc_batch_packed(result.words(gate), c_words, n).mean())
        entries.append(
            PropagationEntry(
                gate=gate,
                scc_a_c=scc_ac,
                scc_b_c=scc_bc,
                scc_out_c=scc_oc,
                retention=scc_oc / scc_ac if scc_ac else 0.0,
            )
        )
    return entries


def _propagation_interpreter(n: int, step: int) -> List[PropagationEntry]:
    """Reference route: unpacked gate sweeps (pre-engine behaviour,
    including the original halton-5 MUX select)."""
    xs, ys = pair_levels(n, step)
    a = generate_level_batch(xs, make_rng("vdc"), n)
    b = generate_level_batch(ys, make_rng("halton3"), n)
    c_row = generate_level_batch(np.array([n // 2]), make_rng("vdc"), n)
    c = np.broadcast_to(c_row, a.shape)

    select_rng = make_rng("halton5")
    select = (select_rng.sequence(n) < select_rng.modulus // 2).astype(np.uint8)

    entries: List[PropagationEntry] = []
    scc_ac = float(scc_batch(a, c).mean())
    scc_bc = float(scc_batch(b, c).mean())
    for gate, fn in _GATES.items():
        if fn is None:
            out = np.where(select[None, :] == 1, b, a).astype(np.uint8)
        else:
            out = fn(a, b)
        scc_oc = float(scc_batch(out, c).mean())
        retention = scc_oc / scc_ac if scc_ac else 0.0
        entries.append(
            PropagationEntry(
                gate=gate,
                scc_a_c=scc_ac,
                scc_b_c=scc_bc,
                scc_out_c=scc_oc,
                retention=retention,
            )
        )
    return entries


def correlation_propagation(
    n: int = 256, step: int = 4, *, backend: str = "engine"
) -> List[PropagationEntry]:
    """Measure SCC propagation through each gate.

    Setup: A and C share an RNG (SCC(A, C) ~ +1), B is independent of
    both. The question each row answers: after ``out = gate(A, B)``, how
    correlated is ``out`` with C still?
    """
    if backend == "engine":
        return _propagation_engine(n, step)
    if backend == "interpreter":
        return _propagation_interpreter(n, step)
    raise ValueError(f"backend must be 'engine' or 'interpreter', got {backend!r}")
