"""Experiment harness: sweeps, table rendering, and the per-table/figure
experiment registry that regenerates the paper's evaluation."""

from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    ablation_buffer_depth,
    ablation_composition,
    ablation_save_depth,
    claims,
    fault_tolerance,
    fig1,
    fig2,
    power_breakdown,
    propagation,
    run_experiment,
    table1,
    table2,
    table3,
    table4,
)
from .propagation_study import PropagationEntry, correlation_propagation
from .sweeps import (
    PairSweepResult,
    exhaustive_levels,
    generate_level_batch,
    generate_pair_batch,
    measure_pair_transform,
    pair_count,
    pair_levels,
)
from .tables import format_number, render_table

__all__ = [
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "table1",
    "fig1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "claims",
    "ablation_save_depth",
    "ablation_composition",
    "ablation_buffer_depth",
    "fault_tolerance",
    "propagation",
    "power_breakdown",
    "PropagationEntry",
    "correlation_propagation",
    "PairSweepResult",
    "exhaustive_levels",
    "pair_levels",
    "pair_count",
    "generate_level_batch",
    "generate_pair_batch",
    "measure_pair_transform",
    "render_table",
    "format_number",
]
