"""ASCII table rendering for experiment results.

The benchmark harness prints tables shaped like the paper's so measured
and published numbers can be eyeballed side by side; EXPERIMENTS.md is
generated from the same renderer.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["render_table", "format_number"]


def format_number(value, *, digits: int = 3) -> str:
    """Compact numeric formatting: ints stay ints, floats get ``digits``.

    Non-finite and signed-zero floats render deterministically across
    platforms and numpy versions: ``nan`` (sign stripped — ``-nan`` is a
    platform artefact, not a value), ``inf`` / ``-inf``, and ``-0.0``
    collapses to ``"0"`` like positive zero.
    """
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:  # catches -0.0 too: -0.0 == 0
            return "0"
        if abs(value) >= 10000:
            return f"{value:,.0f}"
        return f"{value:.{digits}g}" if abs(value) < 0.001 else f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render a fixed-width ASCII table with a header rule."""
    text_rows: List[List[str]] = [
        [format_number(cell, digits=digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
