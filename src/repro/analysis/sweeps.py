"""Exhaustive input sweeps for the paper's averaged metrics.

Tables II and III average over "all possible input values" at N = 256:
every binary input level pair ``(x, y)`` with ``x, y in [0, N-1]``
(65,536 pairs). The sweep helpers here build those pair batches through
arbitrary RNG assignments and measure SCC / bias / error before and after
a circuit, fully vectorised over the pair dimension.

(The level range stops at ``N - 1``, not ``N``: the D/S converter's input
register is ``log2(N)`` bits wide, so the all-ones stream is not among the
generated inputs. The paper's own Table II averages confirm this
convention — e.g. its 0.992 input SCC for two same-seed LFSRs is exactly
``(255/256)^2``, the fraction of pairs where neither stream is constant.)

Measurement runs on the packed backend by default: the FSM transform under
test is sequential and keeps the unpacked ``(pairs, N)`` matrices, but the
before/after SCC and bias reductions pack them and use the word-parallel
popcount kernels, which produce bit-identical statistics
(:mod:`repro.bitstream.metrics`). Pass ``backend="unpacked"`` to force the
byte-per-bit reductions.

Whole-graph sweeps (:func:`sweep_graph`) route through
:mod:`repro.engine`: the graph is compiled once and evaluated against the
entire configuration batch in a single packed-domain pass, instead of
re-interpreting the graph per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..bitstream.metrics import popcount_words, scc_batch, scc_batch_packed
from ..bitstream.packed import pack_bits
from ..core.fsm import PairTransform
from ..rng import StreamRNG, make_rng

__all__ = [
    "exhaustive_levels",
    "pair_levels",
    "pair_count",
    "generate_level_batch",
    "generate_pair_batch",
    "PairSweepResult",
    "measure_pair_transform",
    "GraphSweepResult",
    "sweep_graph",
]


def exhaustive_levels(n: int, step: int = 1) -> np.ndarray:
    """Binary input levels ``0, step, ..., < n`` for an N-cycle sweep."""
    n = check_positive_int(n, name="n")
    step = check_positive_int(step, name="step")
    return np.arange(0, n, step, dtype=np.int64)


def pair_levels(n: int, step: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """All (x, y) level pairs from :func:`exhaustive_levels`."""
    levels = exhaustive_levels(n, step)
    xs = np.repeat(levels, levels.size)
    ys = np.tile(levels, levels.size)
    return xs, ys


def pair_count(n: int, step: int = 1) -> int:
    """Number of (x, y) pairs in the exhaustive sweep — the per-shard
    batch size the runner reports in ``python -m repro run --list``."""
    return int(exhaustive_levels(n, step).size) ** 2


def generate_level_batch(levels: np.ndarray, rng: StreamRNG, n: int) -> np.ndarray:
    """Comparator D/S conversion of many levels through one RNG sequence."""
    seq = rng.sequence(n)
    return (np.asarray(levels, dtype=np.int64)[:, None] > seq[None, :]).astype(np.uint8)


def generate_pair_batch(
    rng_x: StreamRNG,
    rng_y: StreamRNG,
    n: int = 256,
    step: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exhaustive pair batch: returns ``(X, Y, xs, ys)``.

    ``X``/``Y`` are ``(pairs, n)`` bit matrices generated through the two
    RNGs; ``xs``/``ys`` the corresponding binary levels. Passing the same
    RNG *specification* twice (two instances with identical parameters)
    reproduces the paper's maximally correlated configurations.
    """
    xs, ys = pair_levels(n, step)
    return (
        generate_level_batch(xs, rng_x, n),
        generate_level_batch(ys, rng_y, n),
        xs,
        ys,
    )


@dataclass(frozen=True)
class PairSweepResult:
    """Averaged before/after metrics for a pair transform sweep."""

    design: str
    rng_x: str
    rng_y: str
    input_scc: float
    output_scc: float
    bias_x: float
    bias_y: float
    pairs: int

    def as_row(self) -> list:
        return [
            self.design,
            self.rng_x,
            self.rng_y,
            round(self.input_scc, 3),
            round(self.output_scc, 3),
            round(self.bias_x, 3),
            round(self.bias_y, 3),
        ]


def measure_pair_transform(
    transform: PairTransform,
    rng_x_spec: str,
    rng_y_spec: str,
    *,
    n: int = 256,
    step: int = 1,
    design_name: Optional[str] = None,
    backend: str = "packed",
) -> PairSweepResult:
    """Run the Table II measurement for one design / RNG configuration.

    Averages SCC before and after the transform and the per-stream value
    bias over the exhaustive level-pair sweep. The transform itself runs
    on unpacked bits (it is sequential); the metric reductions run packed
    unless ``backend="unpacked"``. The two backends agree bit for bit.
    """
    if backend not in ("packed", "unpacked"):
        raise ValueError(f"backend must be 'packed' or 'unpacked', got {backend!r}")
    rng_x = make_rng(rng_x_spec)
    rng_y = make_rng(rng_y_spec)
    x, y, _, _ = generate_pair_batch(rng_x, rng_y, n=n, step=step)
    out_x, out_y = transform._process_bits(x, y)
    if backend == "packed":
        xw, yw = pack_bits(x), pack_bits(y)
        oxw, oyw = pack_bits(out_x), pack_bits(out_y)
        input_scc = float(scc_batch_packed(xw, yw, n).mean())
        output_scc = float(scc_batch_packed(oxw, oyw, n).mean())
        bias_x = float((popcount_words(oxw) - popcount_words(xw)).mean()) / n
        bias_y = float((popcount_words(oyw) - popcount_words(yw)).mean()) / n
    else:
        input_scc = float(scc_batch(x, y).mean())
        output_scc = float(scc_batch(out_x, out_y).mean())
        bias_x = float((out_x.mean(axis=1) - x.mean(axis=1)).mean())
        bias_y = float((out_y.mean(axis=1) - y.mean(axis=1)).mean())
    return PairSweepResult(
        design=design_name or transform.name,
        rng_x=rng_x_spec,
        rng_y=rng_y_spec,
        input_scc=input_scc,
        output_scc=output_scc,
        bias_x=bias_x,
        bias_y=bias_y,
        pairs=int(x.shape[0]),
    )


@dataclass(frozen=True)
class GraphSweepResult:
    """Engine-batched evaluation of one graph over many configurations."""

    values: Dict[str, np.ndarray]      # node -> (configs,) measured values
    expected: Dict[str, np.ndarray]    # node -> (configs,) exact semantics
    mae: Dict[str, float]              # node -> mean absolute value error
    violation_rate: Dict[str, float]   # op node -> fraction of violated configs
    configs: int

    def worst_node(self) -> str:
        """The node with the largest mean value error."""
        return max(self.mae, key=self.mae.get)


def sweep_graph(
    graph,
    *,
    n: int = 256,
    values: Optional[Dict[str, Union[float, np.ndarray]]] = None,
    levels: Optional[Dict[str, Union[int, np.ndarray]]] = None,
    tolerance: float = 0.35,
) -> GraphSweepResult:
    """Sweep an :class:`~repro.graph.graph.SCGraph` over a configuration
    batch in one compiled engine pass.

    ``values``/``levels`` override sources exactly as in
    :meth:`ExecutionPlan.run_batch <repro.engine.plan.ExecutionPlan.run_batch>`;
    row ``i`` of every reported array is bit-identical to interpreting
    the graph with configuration ``i``. Per-op violation rates come from
    the engine's batched audit (packed SCC kernels).
    """
    from ..engine import compile_graph

    plan = compile_graph(graph)
    batch_audit = plan.audit_batch(n, values=values, levels=levels, tolerance=tolerance)
    mae = {name: batch_audit.mean_value_error(name) for name in batch_audit.values}
    return GraphSweepResult(
        values=batch_audit.values,
        expected=batch_audit.expected,
        mae=mae,
        violation_rate={e.node: e.violation_rate for e in batch_audit.entries},
        configs=batch_audit.batch_size,
    )
