"""Experiment registry: one function per table/figure in the paper.

Every function returns an :class:`ExperimentResult` whose rows interleave
*measured* values with the *paper's published* values, so the benchmark
harness and EXPERIMENTS.md can show them side by side. Keyword arguments
(`step`, `image_size`) trade sweep resolution for runtime; the defaults
reproduce the paper's exhaustive settings, tests use coarser grids.

Index (see DESIGN.md section 4):

=============  ========================================================
``table1``     AND-gate functions vs. input correlation
``fig1``       worked multiply / scaled-add examples
``fig2``       per-operator accuracy under required vs. wrong correlation
``table2``     SCC before/after the correlation manipulating circuits
``table3``     max/min designs: error, bias, area, power, energy
``table4``     image pipeline: error, area, energy per variant
``claims``     the prose claims (5.6x/10.7x, 5.2x/11.6x, 3.0x, 24%, 2x)
``ablation_*`` save depth / composition / buffer depth studies
=============  ========================================================

Sharding: the sweep-shaped experiments are factored into top-level
``_<name>_shard`` functions (one *configuration* of the sweep — one
batched packed/kernel pass — per call, picklable for worker processes)
and ``_<name>_merge`` functions that assemble shard payloads into the
final :class:`ExperimentResult` (rows in registry order, cross-shard
shape checks). The public functions are thin serial wrappers over
shard+merge, so ``table2()`` et al. behave exactly as before;
:mod:`repro.runner` schedules the same shards across processes and
caches their payloads in the content-addressed result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..arith import AndMin, CAMax, CorDiv, Multiplier, OrMax, ScaledAdder
from ..bitstream import Bitstream, PackedBitstreamBatch, batch_mux, scc
from ..core import (
    Decorrelator,
    Desynchronizer,
    IsolatorPair,
    SeriesPair,
    Synchronizer,
    SyncMax,
    SyncMin,
    TFMPair,
)
from ..hardware import components, report
from ..pipeline import AcceleratorConfig, SCAccelerator, standard_test_images
from ..rng import LFSR, make_rng
from .sweeps import generate_level_batch, measure_pair_transform, pair_levels
from .tables import render_table

__all__ = [
    "ExperimentResult",
    "table1",
    "fig1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "claims",
    "ablation_save_depth",
    "ablation_composition",
    "ablation_buffer_depth",
    "fault_tolerance",
    "propagation",
    "power_breakdown",
    "long_stream",
    "ALL_EXPERIMENTS",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """A reproduced table/figure with measured and published values."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[list]
    notes: str = ""
    checks: Dict[str, bool] = field(default_factory=dict)

    def to_text(self) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + self.notes
        if self.checks:
            status = ", ".join(f"{k}={'PASS' if v else 'FAIL'}" for k, v in self.checks.items())
            text += f"\nshape checks: {status}"
        return text

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


# ---------------------------------------------------------------------- #
# Table I — AND-gate functions vs. correlation
# ---------------------------------------------------------------------- #

def table1() -> ExperimentResult:
    """The paper's literal Table I plus an exhaustive verification sweep."""
    x = Bitstream("10101010")
    cases = [
        ("positive", Bitstream("10111011"), "min(px,py)", 0.5),
        ("negative", Bitstream("11011101"), "max(0,px+py-1)", 0.25),
        ("uncorrelated", Bitstream("11111100"), "px*py", 0.375),
    ]
    rows = []
    ok = True
    for label, y, function, expected in cases:
        z = x & y
        rows.append(
            [label, x.to01(), y.to01(), z.to01(), function, expected, z.value,
             round(scc(x.bits, y.bits), 3)]
        )
        ok = ok and z.value == expected
    notes = (
        "AND output realises three different functions depending only on the\n"
        "input correlation (values identical in all rows: px=0.5, py=0.75)."
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Table I — functions implemented by a two-input AND gate",
        headers=["correlation", "X", "Y", "X&Y", "function", "paper", "measured", "SCC"],
        rows=rows,
        notes=notes,
        checks={"literal_examples_exact": ok},
    )


# ---------------------------------------------------------------------- #
# Fig. 1 — worked multiply / scaled-add examples
# ---------------------------------------------------------------------- #

def fig1() -> ExperimentResult:
    """The paper's Fig. 1 worked examples, reproduced bit for bit."""
    mul_x = Bitstream("01010101")
    mul_y = Bitstream("00111111")
    product = Multiplier().compute(mul_x, mul_y)

    add_x = Bitstream("01110111")
    add_y = Bitstream("11000000")
    add_r = Bitstream("10100110")
    total = ScaledAdder().compute(add_x, add_y, select=add_r)

    rows = [
        ["multiply (a)", mul_x.value, mul_y.value, product.value, 0.375],
        ["scaled add (b)", add_x.value, add_y.value, total.value, 0.5],
    ]
    checks = {
        "multiply_exact": product.value == 0.375,
        "add_exact": total.value == 0.5,
    }
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1 — example SC multiplication and addition",
        headers=["operation", "px", "py", "measured pz", "paper pz"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------- #
# Fig. 2 — operator accuracy under required vs. wrong correlation
# ---------------------------------------------------------------------- #

_FIG2_ROWS = ("a", "b", "c", "d", "e")


@lru_cache(maxsize=2)
def _fig2_operands(n: int, step: int):
    """The operand batches the Fig. 2 rows share, built once per process
    (exactly the set the serial implementation used to build up front):
    uncorrelated, shared-sequence (SCC=+1) and complemented (SCC=-1)
    pairings of the exhaustive level grid."""
    xs, ys = pair_levels(n, step)
    vdc = lambda: make_rng("vdc")  # noqa: E731

    x_u = generate_level_batch(xs, vdc(), n)
    y_u = generate_level_batch(ys, make_rng("halton3"), n)   # uncorrelated with x_u
    y_p = generate_level_batch(ys, vdc(), n)                 # shared sequence: SCC=+1
    seq = vdc().sequence(n)
    y_n = (ys[:, None] > (n - 1 - seq[None, :])).astype(np.uint8)  # complemented: SCC=-1
    return {
        "xs": xs, "ys": ys,
        "x_u": x_u, "y_u": y_u, "y_p": y_p,
        "xq": PackedBitstreamBatch.pack(x_u),
        "yq_u": PackedBitstreamBatch.pack(y_u),
        "yq_p": PackedBitstreamBatch.pack(y_p),
        "yq_n": PackedBitstreamBatch.pack(y_n),
    }


def _fig2_shard(row: str, *, n: int = 256, step: int = 4) -> dict:
    """One Fig. 2 operator row — one batched pass over the operand set."""
    ops = _fig2_operands(n, step)
    xs, ys = ops["xs"], ops["ys"]
    px, py = xs / n, ys / n
    xq, yq_u, yq_p, yq_n = ops["xq"], ops["yq_u"], ops["yq_p"], ops["yq_n"]

    def mae(packed, expected):
        return float(np.abs(packed.values - expected).mean())

    if row == "a":
        # (a) scaled add: select must be uncorrelated with data.
        sel_good = PackedBitstreamBatch.pack(
            generate_level_batch(np.full(1, n // 2), make_rng("halton5"), n)
        )
        sel_bad = PackedBitstreamBatch.pack(
            generate_level_batch(np.full(1, n // 2), make_rng("vdc"), n)  # = X's RNG
        )
        expected = 0.5 * (px + py)
        cells = ["(a) add (MUX)", "select uncorr",
                 mae(batch_mux(sel_good, xq, yq_u), expected),
                 mae(batch_mux(sel_bad, xq, yq_u), expected)]
    elif row == "b":
        # (b) saturating add: needs SCC=-1.
        expected = np.minimum(1.0, px + py)
        cells = ["(b) saturating add (OR)", "SCC=-1",
                 mae(xq | yq_n, expected), mae(xq | yq_p, expected)]
    elif row == "c":
        # (c) subtract: needs SCC=+1.
        expected = np.abs(px - py)
        cells = ["(c) subtract (XOR)", "SCC=+1",
                 mae(xq ^ yq_p, expected), mae(xq ^ yq_u, expected)]
    elif row == "d":
        # (d) multiply: needs SCC=0.
        expected = px * py
        cells = ["(d) multiply (AND)", "SCC=0",
                 mae(xq & yq_u, expected), mae(xq & yq_p, expected)]
    elif row == "e":
        # (e) divide: needs SCC=+1 (evaluated where px <= py, py > 0).
        div = CorDiv()
        mask = (xs <= ys) & (ys > 0)
        expected = np.where(ys > 0, xs / np.maximum(ys, 1), 0.0)[mask]
        good = div.compute(ops["x_u"][mask], ops["y_p"][mask]).mean(axis=1)
        bad = div.compute(ops["x_u"][mask], ops["y_u"][mask]).mean(axis=1)
        cells = ["(e) divide (CORDIV)", "SCC=+1",
                 float(np.abs(good - expected).mean()),
                 float(np.abs(bad - expected).mean())]
    else:
        raise ValueError(f"unknown fig2 row {row!r}")
    return {"row": row, "cells": cells}


def _fig2_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    rows = [p["cells"] for p in payloads]
    checks = {f"row{i}_right_better": row[2] < row[3] for i, row in enumerate(rows)}
    notes = (
        "Each operator is accurate under its required operand correlation and\n"
        "degrades under the wrong one — the premise of the paper (Fig. 2 row\n"
        "'Operand Correlation')."
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2 — correlation-sensitive SC operators (mean absolute error)",
        headers=["operator", "requirement", "MAE (required corr.)", "MAE (wrong corr.)"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def fig2(n: int = 256, step: int = 4) -> ExperimentResult:
    """Every Fig. 2 operator, right-correlation MAE vs. wrong-correlation.

    "Right" and "wrong" operand correlations are produced the hardware way:
    shared RNG sequence (SCC=+1), complemented comparator (SCC=-1), or
    independent low-discrepancy RNGs (SCC~0). Gate sweeps run on the
    packed backend; only CORDIV (sequential) stays on unpacked bits.
    """
    payloads = [_fig2_shard(row, n=n, step=step) for row in _FIG2_ROWS]
    return _fig2_merge({"n": n, "step": step}, payloads)


# ---------------------------------------------------------------------- #
# Table II — SCC before/after the correlation manipulating circuits
# ---------------------------------------------------------------------- #

_TABLE2_PAPER = {
    ("synchronizer", "vdc", "halton3"): (-0.048, 0.996, -0.001, -0.002),
    ("synchronizer", "lfsr", "vdc"): (-0.062, 0.903, -0.002, -0.001),
    ("synchronizer", "halton3", "halton3"): (0.984, 0.992, -0.002, -0.002),
    ("desynchronizer", "vdc", "halton3"): (-0.048, -0.981, -0.002, 0.0),
    ("desynchronizer", "lfsr", "vdc"): (-0.062, -0.788, -0.002, 0.0),
    ("desynchronizer", "halton3", "halton3"): (0.984, -0.930, -0.003, 0.0),
    ("decorrelator", "lfsr", "lfsr"): (0.992, 0.249, 0.000, -0.004),
    ("decorrelator", "vdc", "vdc"): (0.992, 0.168, 0.001, 0.003),
    ("decorrelator", "halton3", "halton3"): (0.984, 0.067, 0.001, 0.002),
    ("isolator", "lfsr", "lfsr"): (0.992, 0.600, -0.002, 0.000),
    ("isolator", "vdc", "vdc"): (0.992, -0.637, -0.004, 0.000),
    ("isolator", "halton3", "halton3"): (0.984, -0.353, 0.002, 0.000),
    ("tfm", "lfsr", "lfsr"): (0.992, 0.654, -0.014, -0.051),
    ("tfm", "vdc", "vdc"): (0.992, 0.779, 0.246, 0.363),
    ("tfm", "halton3", "halton3"): (0.984, 0.353, -0.005, -0.007),
}


def _table2_transform(design: str):
    """Fresh transform instance per measurement (FSMs hold no state across
    calls, but aux-RNG-bearing designs must be rebuilt to replay)."""
    if design == "synchronizer":
        return Synchronizer(depth=1)
    if design == "desynchronizer":
        return Desynchronizer(depth=1)
    if design == "decorrelator":
        return Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
    if design == "isolator":
        return IsolatorPair(delay=1)
    if design == "tfm":
        return TFMPair(LFSR(8, seed=77))  # shared aux RNG (see TFMPair docs)
    raise ValueError(f"unknown Table II design {design!r}")


def _table2_shard(config: Sequence[str], *, n: int = 256, step: int = 1) -> dict:
    """One Table II configuration — one batched kernel pass over the
    exhaustive level-pair sweep for ``(design, rng_x, rng_y)``."""
    design, rng_x, rng_y = config
    result = measure_pair_transform(
        _table2_transform(design), rng_x, rng_y, n=n, step=step, design_name=design
    )
    return {
        "design": design,
        "rng_x": rng_x,
        "rng_y": rng_y,
        "input_scc": result.input_scc,
        "output_scc": result.output_scc,
        "bias_x": result.bias_x,
        "bias_y": result.bias_y,
    }


def _table2_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    n = params.get("n", 256)
    step = params.get("step", 1)
    rows = []
    checks: Dict[str, bool] = {}
    decorrelator_scc: Dict[str, float] = {}
    for payload in payloads:
        design, rng_x, rng_y = payload["design"], payload["rng_x"], payload["rng_y"]
        paper = _TABLE2_PAPER[(design, rng_x, rng_y)]
        rows.append(
            [design, rng_x, rng_y,
             round(payload["input_scc"], 3), round(payload["output_scc"], 3),
             round(payload["bias_x"], 3), round(payload["bias_y"], 3),
             paper[0], paper[1]]
        )
        key = f"{design}/{rng_x}+{rng_y}"
        if design == "synchronizer":
            # Config-aware threshold: within 0.12 of the published value
            # (the LFSR configuration is genuinely weaker, as in the paper).
            checks[key] = payload["output_scc"] > paper[1] - 0.12
        elif design == "desynchronizer":
            checks[key] = payload["output_scc"] < paper[1] + 0.12
        elif design == "decorrelator":
            decorrelator_scc[rng_x] = payload["output_scc"]
            checks[key] = abs(payload["output_scc"]) < 0.45 and abs(payload["bias_x"]) < 0.01
        elif design == "isolator":
            checks[key] = abs(payload["output_scc"]) < abs(payload["input_scc"])
        else:
            # The paper's comparative claim: the TFM is a *worse*
            # decorrelator than the shuffle-buffer design — it leaves the
            # pair substantially more correlated.
            checks[key] = payload["output_scc"] > decorrelator_scc.get(rng_x, 0.0) + 0.1
    notes = (
        "Shape targets: synchronizer -> SCC ~ +1, desynchronizer -> SCC ~ -1,\n"
        "decorrelator -> SCC ~ 0 with tiny bias; isolator erratic; TFM weaker\n"
        "than the decorrelator. Paper columns are the published values."
    )
    return ExperimentResult(
        experiment_id="table2",
        title=f"Table II — average SCC before/after (N={n}, level step={step})",
        headers=["design", "X RNG", "Y RNG", "in SCC", "out SCC",
                 "X' bias", "Y' bias", "paper in", "paper out"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def table2(n: int = 256, step: int = 1) -> ExperimentResult:
    """SCC before/after each circuit for the paper's RNG configurations."""
    payloads = [_table2_shard(config, n=n, step=step) for config in _TABLE2_PAPER]
    return _table2_merge({"n": n, "step": step}, payloads)


# ---------------------------------------------------------------------- #
# Table III — max/min designs
# ---------------------------------------------------------------------- #

_TABLE3_PAPER = {
    "OR max": (0.087, 0.087, 2.16, 0.26, 165),
    "CA max": (0.006, 0.001, 252.36, 56.7, 36288),
    "Sync max": (0.003, 0.003, 48.6, 4.89, 3130),
    "AND min": (0.082, -0.082, 2.16, 0.25, 158),
    "Sync min": (0.005, 0.005, 45.0, 8.38, 5363),
}


_TABLE3_DESIGNS = ("OR max", "CA max", "Sync max", "AND min", "Sync min")


def _table3_design(name: str):
    """(operator, wants_max, netlist) for one Table III design."""
    if name == "OR max":
        return OrMax(), True, components.or_gate()
    if name == "CA max":
        return CAMax(counter_bits=6), True, components.ca_max()
    if name == "Sync max":
        return SyncMax(depth=1), True, components.sync_max()
    if name == "AND min":
        return AndMin(), False, components.and_gate()
    if name == "Sync min":
        return SyncMin(depth=1), False, components.sync_min()
    raise ValueError(f"unknown Table III design {name!r}")


@lru_cache(maxsize=2)
def _table3_operands(n: int, step: int):
    """The exhaustive operand batch every Table III design consumes.

    Memoized per process so consecutive shards — serial wrapper or
    pool-worker alike — pay the (pairs, N) generation and packing once.
    The batches are treated as immutable by every design (the sequential
    ones unpack copies at their input boundary)."""
    xs, ys = pair_levels(n, step)
    x = PackedBitstreamBatch.pack(generate_level_batch(xs, make_rng("vdc"), n))
    y = PackedBitstreamBatch.pack(generate_level_batch(ys, make_rng("halton3"), n))
    return xs, ys, x, y


def _table3_shard(design: str, *, n: int = 256, step: int = 1) -> dict:
    """One Table III design — one batched packed pass over the exhaustive
    VDC x Halton-3 operand sweep plus the hardware cost model."""
    xs, ys, x, y = _table3_operands(n, step)
    op, wants_max, netlist = _table3_design(design)
    expected = (np.maximum(xs, ys) if wants_max else np.minimum(xs, ys)) / n

    values = op.compute(x, y).values
    abs_err = float(np.abs(values - expected).mean())
    avg_bias = float((values - expected).mean())
    cost = report(netlist)
    energy = cost.energy_pj(n)
    return {
        "design": design,
        "abs_err": abs_err,
        "avg_bias": avg_bias,
        "area_um2": cost.area_um2,
        "power_uw": cost.power_uw,
        "energy_pj": energy,
    }


def _table3_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    n = params.get("n", 256)
    step = params.get("step", 1)
    rows = []
    measured: Dict[str, tuple] = {}
    for p in payloads:
        paper = _TABLE3_PAPER[p["design"]]
        rows.append([p["design"], p["abs_err"], p["avg_bias"], p["area_um2"],
                     p["power_uw"], p["energy_pj"], paper[0], paper[2], paper[4]])
        measured[p["design"]] = (p["abs_err"], p["area_um2"], p["energy_pj"])

    checks = {
        "sync_max_beats_or": measured["Sync max"][0] < measured["OR max"][0] / 5,
        "sync_min_beats_and": measured["Sync min"][0] < measured["AND min"][0] / 5,
        "sync_max_smaller_than_ca": measured["Sync max"][1] * 3 < measured["CA max"][1],
        "sync_max_lower_energy_than_ca": measured["Sync max"][2] * 5 < measured["CA max"][2],
    }
    notes = (
        "Headline shape: the synchronizer-based designs are ~an order of\n"
        "magnitude more accurate than bare gates, and several times smaller\n"
        "and more energy efficient than the correlation-agnostic max."
    )
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table III — SC maximum/minimum designs (N={n}, level step={step})",
        headers=["design", "abs err", "avg bias", "area um2", "power uW",
                 "energy pJ", "paper err", "paper area", "paper E"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def table3(n: int = 256, step: int = 1) -> ExperimentResult:
    """Accuracy + hardware cost of the max/min designs (VDC x Halton-3
    exhaustive inputs, the paper's Table III protocol).

    Operands are handed to every design packed: the single-gate designs
    (OR max / AND min) compute word-parallel, while the sequential CA and
    synchronizer designs unpack at their input boundary and repack on the
    way out (:mod:`repro.arith._coerce`). Values come from popcounts.
    """
    payloads = [_table3_shard(design, n=n, step=step) for design in _TABLE3_DESIGNS]
    return _table3_merge({"n": n, "step": step}, payloads)


# ---------------------------------------------------------------------- #
# Table IV — image pipeline
# ---------------------------------------------------------------------- #

_TABLE4_PAPER = {
    "none": (0.076, 24313, 1383),
    "regeneration": (0.019, 34802, 1971),
    "synchronizer": (0.020, 36202, 1505),
}


_TABLE4_VARIANTS = ("none", "regeneration", "synchronizer")


def _table4_shard(variant: str, *, image_size: int = 32, stream_length: int = 256) -> dict:
    """One accelerator variant over the standard synthetic image set."""
    images = standard_test_images(image_size)
    acc = SCAccelerator(
        AcceleratorConfig(variant=variant, stream_length=stream_length)
    )
    maes = []
    last = None
    for image in images.values():
        last = acc.process(image)
        maes.append(last.mean_abs_error)
    return {
        "variant": variant,
        "mean_mae": float(np.mean(maes)),
        "area_um2": last.area_um2,
        "energy_per_frame_nj": last.energy_per_frame_nj,
    }


def _table4_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    image_size = params.get("image_size", 32)
    stream_length = params.get("stream_length", 256)
    rows = [["floating point", 0.0, None, None, 0.0, None, None]]
    results = {}
    for p in payloads:
        variant = p["variant"]
        results[variant] = (p["mean_mae"], p["area_um2"], p["energy_per_frame_nj"])
        paper = _TABLE4_PAPER[variant]
        rows.append([f"SC {variant}", p["mean_mae"], p["area_um2"],
                     p["energy_per_frame_nj"], paper[0], paper[1], paper[2]])

    checks = {
        "manipulation_improves_quality": results["synchronizer"][0] < results["none"][0] / 2
        and results["regeneration"][0] < results["none"][0] / 2,
        "sync_cheaper_energy_than_regen": results["synchronizer"][2] < results["regeneration"][2],
        "regen_and_sync_comparable_quality": results["synchronizer"][0] < 3 * results["regeneration"][0],
    }
    saving = 1 - results["synchronizer"][2] / results["regeneration"][2]
    notes = (
        f"Energy saving of the synchronizer design vs regeneration: "
        f"{saving:.1%} (paper: 24%).\n"
        "'Frame' = one tile-engine pass of N cycles (the granularity at which\n"
        "the paper's nJ/frame values are self-consistent); image energy scales\n"
        "with the tile count. MAE averaged over 4 synthetic test images."
    )
    return ExperimentResult(
        experiment_id="table4",
        title=f"Table IV — GB->ED accelerator ({image_size}x{image_size} images, N={stream_length})",
        headers=["design", "abs err", "area um2", "E/frame nJ",
                 "paper err", "paper area", "paper E"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def table4(image_size: int = 32, stream_length: int = 256) -> ExperimentResult:
    """The GB -> ED accelerator: quality, area, energy per variant,
    averaged over the standard synthetic image set."""
    payloads = [
        _table4_shard(variant, image_size=image_size, stream_length=stream_length)
        for variant in _TABLE4_VARIANTS
    ]
    return _table4_merge(
        {"image_size": image_size, "stream_length": stream_length}, payloads
    )


# ---------------------------------------------------------------------- #
# Prose claims
# ---------------------------------------------------------------------- #

def claims() -> ExperimentResult:
    """The paper's headline prose claims, recomputed from our models."""
    ca_add = report(components.ca_adder())
    mux_add = report(components.mux_adder())
    ca_max_cost = report(components.ca_max())
    sync_max_cost = report(components.sync_max())

    regen_acc = SCAccelerator(AcceleratorConfig(variant="regeneration"))
    sync_acc = SCAccelerator(AcceleratorConfig(variant="synchronizer"))
    manip_ratio = regen_acc.manipulation_power_uw() / sync_acc.manipulation_power_uw()
    regen_power = sum(v[1] for v in regen_acc.cost_breakdown().values())
    sync_power = sum(v[1] for v in sync_acc.cost_breakdown().values())
    saving = 1 - sync_power / regen_power
    n_sync = 2 * regen_acc.config.output_tile**2
    n_regen_converters = 2 * regen_acc.config.blur_tile**2  # S/D + D/S each

    rows = [
        ["CA adder area vs MUX adder", ca_add.area_um2 / mux_add.area_um2, 5.6],
        ["CA adder power vs MUX adder", ca_add.power_uw / mux_add.power_uw, 10.7],
        ["CA max area vs Sync max", ca_max_cost.area_um2 / sync_max_cost.area_um2, 5.2],
        ["CA max energy vs Sync max", ca_max_cost.energy_pj(256) / sync_max_cost.energy_pj(256), 11.6],
        ["manipulation energy: regen vs sync", manip_ratio, 3.0],
        ["total accelerator energy saving (sync vs regen)", saving, 0.24],
        ["sync instances / regen converter instances", n_sync / n_regen_converters, 2.0],
    ]
    checks = {
        "ca_adder_much_larger": rows[0][1] > 3,
        "ca_adder_much_hungrier": rows[1][1] > 5,
        "ca_max_larger_than_sync": rows[2][1] > 3,
        "ca_max_energy_vs_sync": rows[3][1] > 5,
        "manip_ratio_near_3x": 2.0 < rows[4][1] < 4.5,
        "saving_near_24pct": 0.15 < rows[5][1] < 0.35,
    }
    return ExperimentResult(
        experiment_id="claims",
        title="Prose claims — measured vs paper",
        headers=["claim", "measured", "paper"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------- #
# Ablations (paper Sections III-B / III-C)
# ---------------------------------------------------------------------- #

def _ablation_save_depth_shard(depth: int, *, n: int = 256, step: int = 4) -> dict:
    """One FSM save depth: sync + desync sweeps plus the cost model."""
    sync = measure_pair_transform(Synchronizer(depth=depth), "lfsr", "vdc", n=n, step=step)
    desync = measure_pair_transform(Desynchronizer(depth=depth), "lfsr", "vdc", n=n, step=step)
    sync_cost = report(components.synchronizer(depth))
    return {
        "depth": depth,
        "row": [depth, round(sync.output_scc, 3), round(sync.bias_x, 4),
                round(desync.output_scc, 3), round(desync.bias_x, 4),
                sync_cost.area_um2, sync_cost.power_uw],
    }


def _ablation_save_depth_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    n = params.get("n", 256)
    rows = [p["row"] for p in payloads]
    sccs = [row[1] for row in rows]
    areas = [row[5] for row in rows]
    checks = {
        "deeper_is_more_correlated": all(b >= a - 0.005 for a, b in zip(sccs, sccs[1:])),
        "deeper_is_bigger": all(b > a for a, b in zip(areas, areas[1:])),
    }
    return ExperimentResult(
        experiment_id="ablation_save_depth",
        title=f"Ablation — FSM save depth D (LFSR+VDC inputs, N={n})",
        headers=["D", "sync out SCC", "sync bias", "desync out SCC",
                 "desync bias", "sync area um2", "sync power uW"],
        rows=rows,
        checks=checks,
    )


def ablation_save_depth(n: int = 256, step: int = 4, depths=(1, 2, 4, 8)) -> ExperimentResult:
    """Deeper FSMs: stronger correlation but more hardware (III-B)."""
    payloads = [_ablation_save_depth_shard(d, n=n, step=step) for d in depths]
    return _ablation_save_depth_merge({"n": n, "step": step, "depths": depths}, payloads)


def _ablation_composition_shard(stages: int, *, n: int = 256, step: int = 4) -> dict:
    """One series-composition length k."""
    sync = SeriesPair([Synchronizer(depth=1) for _ in range(stages)])
    result = measure_pair_transform(sync, "lfsr", "vdc", n=n, step=step,
                                    design_name=f"sync x{stages}")
    return {
        "stages": stages,
        "row": [stages, round(result.input_scc, 3), round(result.output_scc, 3),
                round(result.bias_x, 4), round(result.bias_y, 4)],
    }


def _ablation_composition_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    n = params.get("n", 256)
    rows = [p["row"] for p in payloads]
    sccs = [row[2] for row in rows]
    checks = {
        "composition_improves_scc": sccs[-1] > sccs[0],
        "monotone_within_tolerance": all(b >= a - 0.01 for a, b in zip(sccs, sccs[1:])),
    }
    return ExperimentResult(
        experiment_id="ablation_composition",
        title=f"Ablation — series composition of D=1 synchronizers (N={n})",
        headers=["stages", "in SCC", "out SCC", "bias X", "bias Y"],
        rows=rows,
        checks=checks,
    )


def ablation_composition(n: int = 256, step: int = 4, stages=(1, 2, 3, 4)) -> ExperimentResult:
    """Series composition of D=1 FSMs (III-B): diminishing returns toward
    maximal correlation, with compounding bias."""
    payloads = [_ablation_composition_shard(k, n=n, step=step) for k in stages]
    return _ablation_composition_merge({"n": n, "step": step, "stages": stages}, payloads)


def _ablation_buffer_depth_shard(depth: int, *, n: int = 256, step: int = 4) -> dict:
    """One shuffle-buffer depth, both init policies."""
    rows = []
    for init in ("half_ones", "zeros"):
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=depth, init=init)
        result = measure_pair_transform(deco, "lfsr", "lfsr", n=n, step=step,
                                        design_name=f"decorr D={depth} {init}")
        rows.append([depth, init, round(result.input_scc, 3),
                     round(result.output_scc, 3), round(result.bias_x, 4),
                     round(result.bias_y, 4)])
    return {"depth": depth, "rows": rows}


def _ablation_buffer_depth_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    n = params.get("n", 256)
    rows = [row for p in payloads for row in p["rows"]]
    half_rows = [r for r in rows if r[1] == "half_ones"]
    zero_rows = [r for r in rows if r[1] == "zeros"]
    checks = {
        "deeper_decorrelates_more": abs(half_rows[-1][3]) < abs(half_rows[0][3]),
        "half_ones_less_biased": np.mean([abs(r[4]) + abs(r[5]) for r in half_rows])
        <= np.mean([abs(r[4]) + abs(r[5]) for r in zero_rows]) + 1e-9,
    }
    return ExperimentResult(
        experiment_id="ablation_buffer_depth",
        title=f"Ablation — shuffle buffer depth / init (LFSR+LFSR inputs, N={n})",
        headers=["D", "init", "in SCC", "out SCC", "bias X", "bias Y"],
        rows=rows,
        checks=checks,
    )


def ablation_buffer_depth(n: int = 256, step: int = 4, depths=(2, 4, 8, 16)) -> ExperimentResult:
    """Decorrelator shuffle-buffer depth and init policy (III-C)."""
    payloads = [_ablation_buffer_depth_shard(d, n=n, step=step) for d in depths]
    return _ablation_buffer_depth_merge({"n": n, "step": step, "depths": depths}, payloads)


def fault_tolerance(
    rates=(0.0, 0.001, 0.005, 0.01, 0.05, 0.1), trials: int = 256,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """SC vs binary error tolerance under bit flips (the paper's intro
    claim: "improved error tolerance")."""
    from ..faults import fault_sweep

    points = fault_sweep(rates=rates, trials=trials, seed=7 if seed is None else seed)
    rows = [p.as_row() for p in points]
    nonzero = [p for p in points if p.rate > 0]
    checks = {
        "sc_beats_binary_at_every_rate": all(
            p.sc_value_error < p.be_value_error for p in nonzero
        ),
        "graceful_degradation": all(
            b.sc_value_error >= a.sc_value_error - 1e-9
            for a, b in zip(points, points[1:])
        ),
    }
    notes = (
        "Equal per-bit fault rates hit both representations; SC loses at most\n"
        "1/N of value per flip while a binary MSB flip is worth half scale."
    )
    return ExperimentResult(
        experiment_id="fault_tolerance",
        title="Error tolerance — SC stream vs binary word under bit flips",
        headers=["fault rate", "SC value err", "BE value err", "SC multiply err"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def propagation(n: int = 256, step: int = 4) -> ExperimentResult:
    """Correlation propagation through each gate — the open question the
    paper raises in Section II-B, measured."""
    from .propagation_study import correlation_propagation

    entries = correlation_propagation(n=n, step=step)
    rows = [e.as_row() for e in entries]
    by_gate = {e.gate.split()[0]: e for e in entries}
    checks = {
        # XOR against a correlated operand decorrelates the output most;
        # AND/OR retain a substantial share; MUX retains about half (it
        # passes A's bits half the time).
        "xor_decorrelates_most": abs(by_gate["XOR"].retention)
        < min(abs(by_gate["AND"].retention), abs(by_gate["OR"].retention)),
        "and_or_retain_correlation": by_gate["AND"].retention > 0.3
        and by_gate["OR"].retention > 0.3,
        "mux_retains_about_half": 0.25 < by_gate["MUX"].retention < 0.8,
    }
    notes = (
        "Setup: SCC(A, C) ~ +1 (shared RNG), B independent; rows report how\n"
        "much of A's correlation with the rest of the computation survives\n"
        "out = gate(A, B) — the data needed to place manipulation circuits."
    )
    return ExperimentResult(
        experiment_id="propagation",
        title=f"Correlation propagation through SC operators (N={n})",
        headers=["gate", "SCC(A,C)", "SCC(B,C)", "SCC(out,C)", "retention"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def power_breakdown() -> ExperimentResult:
    """Section IV-B's per-block power break down for the accelerator
    variants (converters / kernels / RNGs / manipulation)."""
    rows = []
    variants = {}
    for variant in ("none", "regeneration", "synchronizer"):
        acc = SCAccelerator(AcceleratorConfig(variant=variant))
        blocks = acc.cost_breakdown()
        total = sum(v[1] for v in blocks.values())
        manip = acc.manipulation_power_uw()
        variants[variant] = (total, manip)
        for block, (area, power) in blocks.items():
            rows.append([variant, block, round(area, 1), round(power, 1),
                         f"{power / total:.1%}"])
        rows.append([variant, "TOTAL", round(acc.netlist().area_um2, 1),
                     round(total, 1), "100%"])
    checks = {
        "regen_manipulation_dominates": variants["regeneration"][1]
        > 0.25 * variants["regeneration"][0],
        "sync_manipulation_is_light": variants["synchronizer"][1]
        < 0.25 * variants["synchronizer"][0],
        "manip_ratio_about_3x": 2.0
        < variants["regeneration"][1] / variants["synchronizer"][1] < 4.5,
    }
    notes = (
        "The paper aggregates 'the costs associated only with correlation\n"
        "manipulation' from this breakdown; regeneration's share is ~3x the\n"
        "synchronizers' (Section IV-B)."
    )
    return ExperimentResult(
        experiment_id="power_breakdown",
        title="Accelerator power breakdown by block (Section IV-B)",
        headers=["variant", "block", "area um2", "power uW", "share"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


# ---------------------------------------------------------------------- #
# Long-stream convergence — streaming tile execution
# ---------------------------------------------------------------------- #

_LONG_STREAM_EXPONENTS_SMOKE = (14, 16)
_LONG_STREAM_EXPONENTS_DEFAULT = (14, 16, 18, 20)
_LONG_STREAM_EXPONENTS_EXHAUSTIVE = (14, 16, 18, 20, 22)


def _long_stream_shard(exponent: int, *, tile_words: int = 4096, jobs: int = 1) -> dict:
    """One stream length N = 2**exponent of the convergence sweep.

    Builds the width-matched manipulation graph
    (:func:`repro.engine.library.long_stream_graph` — the comparator
    register width must equal log2(N) for the D/S conversion to stay
    exact) and audits it through the constant-memory streaming executor.
    Peak memory is O(tile), which is what makes the N = 2**22 shard
    runnable at all: the materialised engine would hold every node's
    full-length buffer plus 32 MB of comparator sequence per source.

    ``jobs > 1`` runs the prefix-scanned parallel tile scheduler
    (:mod:`repro.engine.parallel`); the payload is identical at any job
    count — only wall-clock changes — so ``jobs`` is an execution
    parameter, not part of the result's content address.
    """
    from ..engine import compile_graph
    from ..engine.library import long_stream_graph
    from ..engine.streaming import audit_streaming

    n = 1 << exponent
    plan = compile_graph(long_stream_graph(exponent))
    audit = audit_streaming(plan, n, tile_words=tile_words, jobs=jobs)
    stages = {}
    for node, label in (("diff", "sync"), ("sat", "desync"), ("prod", "deco")):
        entry = next(e for e in audit.entries if e.node == node)
        stages[label] = {
            "scc": entry.measured_scc,
            "error": abs(entry.measured_value - entry.expected_value),
        }
    return {
        "exponent": exponent,
        "n": n,
        "tiles": (n + tile_words * 64 - 1) // (tile_words * 64),
        "stages": stages,
    }


def _long_stream_merge(params: dict, payloads: List[dict]) -> ExperimentResult:
    payloads = sorted(payloads, key=lambda p: p["exponent"])
    rows = []
    for p in payloads:
        s = p["stages"]
        rows.append([
            f"2^{p['exponent']}", p["tiles"],
            round(s["sync"]["scc"], 5), f"{s['sync']['error']:.2e}",
            round(s["desync"]["scc"], 5), f"{s['desync']['error']:.2e}",
            round(s["deco"]["scc"], 5), f"{s['deco']['error']:.2e}",
        ])
    first, last = payloads[0]["stages"], payloads[-1]["stages"]
    checks = {
        "sync_reaches_plus_one": all(
            p["stages"]["sync"]["scc"] >= 0.999 for p in payloads
        ),
        "desync_reaches_minus_one": all(
            p["stages"]["desync"]["scc"] <= -0.999 for p in payloads
        ),
        "deco_stays_uncorrelated": all(
            abs(p["stages"]["deco"]["scc"]) <= 0.05 for p in payloads
        ),
        "sync_error_shrinks_with_n": last["sync"]["error"] < first["sync"]["error"],
        "desync_error_shrinks_with_n": last["desync"]["error"] <= first["desync"]["error"],
    }
    notes = (
        "Streaming tile execution (constant memory in N) sweeping the\n"
        "paper's three manipulation stages: synchronizer -> XOR subtract\n"
        "(SCC +1), desynchronizer -> OR saturating add (SCC -1),\n"
        "decorrelator -> AND multiply (SCC ~0). Value error shrinks ~1/N;\n"
        "the SCC estimates hold at every length — the long-stream regime\n"
        "the paper's correlation analysis converges in."
    )
    return ExperimentResult(
        experiment_id="long_stream",
        title="Long-stream convergence — SCC/value vs N (streaming execution)",
        headers=["N", "tiles", "sync SCC", "sync err", "desync SCC",
                 "desync err", "deco SCC", "deco err"],
        rows=rows,
        notes=notes,
        checks=checks,
    )


def long_stream(
    exponents: Sequence[int] = _LONG_STREAM_EXPONENTS_DEFAULT,
    tile_words: int = 4096,
    jobs: int = 1,
) -> ExperimentResult:
    """SCC/value convergence of the manipulation circuits over N = 2^14..2^22.

    Impossible on the materialised engine at the top lengths; the
    streaming executor's tile scheduler (O(tile) memory) makes the sweep
    routine. See :func:`repro.engine.streaming.run_streaming`. ``jobs``
    fans each audit out across the parallel tile scheduler — results are
    bit-identical at any job count.
    """
    payloads = [
        _long_stream_shard(exponent, tile_words=tile_words, jobs=jobs)
        for exponent in exponents
    ]
    return _long_stream_merge(
        {"exponents": tuple(exponents), "tile_words": tile_words}, payloads
    )


ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "claims": claims,
    "ablation_save_depth": ablation_save_depth,
    "ablation_composition": ablation_composition,
    "ablation_buffer_depth": ablation_buffer_depth,
    "fault_tolerance": fault_tolerance,
    "propagation": propagation,
    "power_breakdown": power_breakdown,
    "long_stream": long_stream,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id."""
    if experiment_id not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(ALL_EXPERIMENTS)}"
        )
    return ALL_EXPERIMENTS[experiment_id](**kwargs)
