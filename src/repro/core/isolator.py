"""Isolators — the prior-art decorrelation baseline (Ting & Hayes,
ICCD 2016; paper reference [10]).

An isolator is a D flip-flop inserted into one operand path: it delays that
stream by one cycle (generally ``k`` flip-flops delay by ``k``). Shifting
the relative alignment of two streams can reduce — or wildly change — their
correlation, but it *never reorders bits within a stream*, which the paper
identifies as the fundamental limitation ("isolators do not modify the
order of bits in a SN and can have limited impact on SCC").

Table II applies isolator insertion to maximally correlated pairs and finds
the result erratic: +0.600 for LFSR-generated pairs, -0.637 for VDC,
-0.353 for Halton — compared to the decorrelator's consistent ~0.1-0.25.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_positive_int
from .fsm import PairTransform, StreamTransform

__all__ = ["Isolator", "IsolatorPair"]


class Isolator(StreamTransform):
    """A chain of ``delay`` D flip-flops on a single stream.

    The first ``delay`` output bits take the flip-flops' initial value
    ``fill``; the last ``delay`` input bits never emerge.
    """

    def __init__(self, delay: int = 1, *, fill: int = 0) -> None:
        self._delay = check_positive_int(delay, name="delay")
        if fill not in (0, 1):
            raise ValueError(f"fill must be 0 or 1, got {fill}")
        self._fill = fill

    @property
    def name(self) -> str:
        return f"isolator(delay={self._delay})"

    @property
    def delay(self) -> int:
        return self._delay

    def _process_stream_bits(self, bits: np.ndarray) -> np.ndarray:
        batch, length = bits.shape
        k = min(self._delay, length)
        prefix = np.full((batch, k), self._fill, dtype=np.uint8)
        return np.concatenate([prefix, bits[:, : length - k]], axis=1)


class IsolatorPair(PairTransform):
    """Isolator insertion on the Y operand of a pair (Table II's setup).

    X passes through combinationally; Y is delayed by ``delay`` cycles.
    """

    def __init__(self, delay: int = 1, *, fill: int = 0) -> None:
        self._isolator = Isolator(delay, fill=fill)

    @property
    def name(self) -> str:
        return f"isolator_pair(delay={self._isolator.delay})"

    @property
    def delay(self) -> int:
        return self._isolator.delay

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return x.copy(), self._isolator._process_stream_bits(y)
