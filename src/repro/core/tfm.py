"""Tracking forecast memory (TFM) — prior-art baseline (Tehrani et al.,
ICASSP 2009; paper reference [11]).

A TFM regenerates a stream from a *running estimate* of its value: a
``bits``-wide register P tracks the input with an exponential moving
average (``P += (x ? (MAX - P) : -P) >> shift``, shifts only, no
multiplier), and the output bit is drawn by comparing P against an
auxiliary random number. Designed for relaxing bit-level correlation in
stochastic LDPC decoders.

As a general-purpose decorrelator it has two weaknesses the paper's
Table II exposes:

* the EMA lags structured streams, so the output value can deviate wildly
  from the input value (bias up to ~0.36 for VDC-generated inputs);
* portions of the unit are binary-encoded arithmetic, making it larger
  than the paper's shuffle-buffer decorrelator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..rng import StreamRNG
from .fsm import PairTransform, StreamTransform

__all__ = ["TrackingForecastMemory", "TFMPair"]


class TrackingForecastMemory(StreamTransform):
    """Single-stream TFM regenerator.

    Args:
        rng: auxiliary random source for the output comparator.
        bits: register width of the probability estimate P.
        shift: EMA shift ``s`` (smoothing factor ``2**-s``); the original
            design uses ``s = 3``.
        initial: initial estimate as a fraction of full scale (0.5 = the
            unbiased midpoint).
    """

    def __init__(
        self,
        rng: StreamRNG,
        bits: int = 8,
        *,
        shift: int = 3,
        initial: float = 0.5,
    ) -> None:
        self._rng = rng
        self._bits = check_positive_int(bits, name="bits")
        self._shift = check_non_negative_int(shift, name="shift")
        if not 0.0 <= initial <= 1.0:
            raise ValueError(f"initial must lie in [0, 1], got {initial}")
        self._max = (1 << self._bits) - 1
        self._initial = int(round(initial * self._max))

    @property
    def name(self) -> str:
        return f"tfm(bits={self._bits},shift={self._shift})"

    @property
    def bits(self) -> int:
        return self._bits

    def _process_stream_bits(self, stream: np.ndarray) -> np.ndarray:
        from ..kernels import dispatch

        out = dispatch.tfm_kernel(self, stream)
        if out is not None:
            return out
        return self._reference_process_stream_bits(stream)

    def _reference_process_stream_bits(self, stream: np.ndarray) -> np.ndarray:
        """The per-cycle EMA loop — the bit-identical reference for the
        compiled estimate-trajectory kernel (``repro.kernels``)."""
        batch, length = stream.shape
        estimate = np.full(batch, self._initial, dtype=np.int64)
        # Rescale the auxiliary sequence to the register's full scale.
        rand = (self._rng.sequence(length) * (self._max + 1)) // self._rng.modulus
        out = np.empty_like(stream)
        for t in range(length):
            out[:, t] = (rand[t] < estimate).astype(np.uint8)
            x = stream[:, t].astype(np.int64)
            # Shift the magnitudes, then negate: hardware computes
            # est - (est >> s), i.e. floor division of the magnitude —
            # not an arithmetic shift of the negated value.
            inc = (self._max - estimate) >> self._shift
            dec = -(estimate >> self._shift)
            delta = np.where(x == 1, inc, dec)
            # Shift-based EMA stalls within 2**shift of the rails; nudge so
            # constant inputs still converge (matches the original design's
            # saturating behaviour).
            delta = np.where((delta == 0) & (x == 1) & (estimate < self._max), 1, delta)
            delta = np.where((delta == 0) & (x == 0) & (estimate > 0), -1, delta)
            estimate = estimate + delta
        return out


class TFMPair(PairTransform):
    """TFM regeneration applied to both streams of a pair (Table II setup).

    Args:
        rng_x: auxiliary RNG for X's comparator.
        rng_y: auxiliary RNG for Y's comparator, or ``None`` to share
            ``rng_x``'s sequence between both units — the hardware-cheap
            configuration, and the one consistent with the paper's Table II
            (TFM outputs stay strongly *positively* correlated, which only
            happens when both comparators consume the same random values).
    """

    def __init__(
        self,
        rng_x: StreamRNG,
        rng_y: Optional[StreamRNG] = None,
        bits: int = 8,
        *,
        shift: int = 3,
    ) -> None:
        self._shared = rng_y is None
        self._tfm_x = TrackingForecastMemory(rng_x, bits, shift=shift)
        self._tfm_y = TrackingForecastMemory(rng_x if rng_y is None else rng_y, bits, shift=shift)

    @property
    def name(self) -> str:
        return f"tfm_pair({self._tfm_x.name})"

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return (
            self._tfm_x._process_stream_bits(x),
            self._tfm_y._process_stream_bits(y),
        )
