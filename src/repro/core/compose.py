"""Series composition of correlation manipulating circuits.

Paper Section III-B: instead of one deep FSM, chain several minimal-depth
(D = 1) synchronizers or desynchronizers. "Each synchronizer or
desynchronizer will improve the correlation albeit with diminishing
returns. In the limit, output SNs will eventually become maximally
correlated." The residual-bit bias compounds across stages; the paper's
mitigation — adjusting each stage's initial state — is available through
the stage constructors.

:class:`SeriesPair` chains pair transforms; :class:`SeriesStream` chains
stream transforms (e.g. cascaded shuffle buffers).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import CircuitConfigurationError
from .fsm import PairTransform, StreamTransform

__all__ = ["SeriesPair", "SeriesStream"]


class SeriesPair(PairTransform):
    """A chain of pair transforms applied left to right."""

    def __init__(self, stages: Sequence[PairTransform]) -> None:
        stages = tuple(stages)
        if not stages:
            raise CircuitConfigurationError("SeriesPair needs at least one stage")
        for stage in stages:
            if not isinstance(stage, PairTransform):
                raise CircuitConfigurationError(
                    f"SeriesPair stages must be PairTransforms, got {type(stage).__name__}"
                )
        self._stages = stages

    @property
    def name(self) -> str:
        return " -> ".join(stage.name for stage in self._stages)

    @property
    def stages(self) -> Tuple[PairTransform, ...]:
        return self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        for stage in self._stages:
            x, y = stage._process_bits(x, y)
        return x, y


class SeriesStream(StreamTransform):
    """A chain of single-stream transforms applied left to right."""

    def __init__(self, stages: Sequence[StreamTransform]) -> None:
        stages = tuple(stages)
        if not stages:
            raise CircuitConfigurationError("SeriesStream needs at least one stage")
        for stage in stages:
            if not isinstance(stage, StreamTransform):
                raise CircuitConfigurationError(
                    f"SeriesStream stages must be StreamTransforms, got {type(stage).__name__}"
                )
        self._stages = stages

    @property
    def name(self) -> str:
        return " -> ".join(stage.name for stage in self._stages)

    @property
    def stages(self) -> Tuple[StreamTransform, ...]:
        return self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def _process_stream_bits(self, bits: np.ndarray) -> np.ndarray:
        for stage in self._stages:
            bits = stage._process_stream_bits(bits)
        return bits
