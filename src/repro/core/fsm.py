"""Base classes for correlation manipulating circuits.

Two circuit shapes appear in the paper:

* **Pair transforms** (synchronizer, desynchronizer, decorrelator): take
  two SNs and emit two SNs of (ideally) the same values but different
  mutual correlation.
* **Stream transforms** (shuffle buffer, isolator, TFM): take one SN and
  emit one SN; pair-level effects come from applying instances with
  different auxiliary randomness to each stream.

Both are sequential circuits. Subclasses implement the raw-bit methods on
``(batch, N)`` uint8 matrices — vectorised over the batch, looping only
over time — and inherit the public wrappers that accept/return
:class:`~repro.bitstream.Bitstream`, :class:`~repro.bitstream.BitstreamBatch`,
or numpy arrays.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..arith._coerce import StreamLike, broadcast_pair, rewrap, unwrap
from ..exceptions import EncodingError

__all__ = ["PairTransform", "StreamTransform"]


class PairTransform(abc.ABC):
    """A two-in / two-out correlation manipulating circuit."""

    @abc.abstractmethod
    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Transform raw ``(batch, N)`` bit matrices; return two like-shaped
        matrices."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment tables."""

    def process_pair(self, x: StreamLike, y: StreamLike) -> Tuple[StreamLike, StreamLike]:
        """Transform a pair of SNs, preserving the input container kinds."""
        xb, kind_x, enc_x = unwrap(x, name="x")
        yb, kind_y, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError(
                f"{self.name}: operands must share an encoding "
                f"({enc_x.value} vs {enc_y.value})"
            )
        xb, yb = broadcast_pair(xb, yb)
        out_x, out_y = self._process_bits(xb, yb)
        return rewrap(out_x, kind_x, enc_x), rewrap(out_y, kind_y, enc_y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class StreamTransform(abc.ABC):
    """A one-in / one-out stream-reshaping circuit."""

    @abc.abstractmethod
    def _process_stream_bits(self, bits: np.ndarray) -> np.ndarray:
        """Transform a raw ``(batch, N)`` bit matrix."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment tables."""

    def process(self, x: StreamLike) -> StreamLike:
        """Transform one SN (or batch), preserving the container kind."""
        xb, kind, enc = unwrap(x, name="x")
        return rewrap(self._process_stream_bits(xb), kind, enc)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
