"""The shuffle buffer — the decorrelator's building block (paper Fig. 4b).

A shuffle buffer is a ``D``-entry bit memory. Each cycle an auxiliary RNG
addresses one slot; the stored bit is emitted and the incoming bit takes
its place. Over time this randomly permutes bits across windows of roughly
``D`` positions — scrambling *relative bit order*, which is exactly what a
plain isolator (a fixed delay) cannot do (paper Section V).

**Bit conservation.** Every input bit is eventually emitted except the
``D`` bits resident when the stream ends; the emitted surplus is the ``D``
initial bits. The paper therefore initialises half the buffer with 1s and
half with 0s "so that on average fewer 1s from the input SNs will get
stuck" — the expected net bias is ``(D/2 - p*D) / N``, tiny for values
near 0.5 and bounded by ``D/(2N)`` in the worst case.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import CircuitConfigurationError
from ..rng import StreamRNG
from .fsm import StreamTransform

__all__ = ["ShuffleBuffer"]

_INIT_POLICIES = ("half_ones", "zeros", "ones")


class ShuffleBuffer(StreamTransform):
    """Randomly swapping bit memory.

    Args:
        rng: auxiliary address source; rescaled to ``[0, depth)`` per
            cycle. Two buffers with *different* RNGs decorrelate a pair of
            streams (see :class:`~repro.core.decorrelator.Decorrelator`).
        depth: number of memory slots ``D`` (paper Fig. 4b shows D = 4).
        init: initial fill policy — ``"half_ones"`` (paper default),
            ``"zeros"``, or ``"ones"`` (the alternatives exist for the
            bias ablation bench).
    """

    def __init__(self, rng: StreamRNG, depth: int = 4, *, init: str = "half_ones") -> None:
        self._rng = rng
        self._depth = check_positive_int(depth, name="depth")
        if init not in _INIT_POLICIES:
            raise CircuitConfigurationError(
                f"init must be one of {_INIT_POLICIES}, got {init!r}"
            )
        self._init = init

    @property
    def name(self) -> str:
        return f"shuffle_buffer(D={self._depth},{self._init})"

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def rng(self) -> StreamRNG:
        return self._rng

    def _initial_buffer(self, batch: int) -> np.ndarray:
        if self._init == "zeros":
            return np.zeros((batch, self._depth), dtype=np.uint8)
        if self._init == "ones":
            return np.ones((batch, self._depth), dtype=np.uint8)
        # Half 1s, half 0s (paper Section III-C). Slot order is irrelevant:
        # slots are addressed randomly, only the 1-count matters.
        row = np.zeros(self._depth, dtype=np.uint8)
        row[: self._depth // 2] = 1
        return np.tile(row, (batch, 1))

    def _process_stream_bits(self, bits: np.ndarray) -> np.ndarray:
        from ..kernels import dispatch

        out = dispatch.shuffle_kernel(self, bits)
        if out is not None:
            return out
        return self._reference_process_stream_bits(bits)

    def _reference_process_stream_bits(self, bits: np.ndarray) -> np.ndarray:
        """The per-cycle read/write loop — the bit-identical reference for
        the gather kernel (``repro.kernels.dispatch.shuffle_kernel``)."""
        batch, length = bits.shape
        buffer = self._initial_buffer(batch)
        addresses = self._rng.integers(length, self._depth)
        out = np.empty_like(bits)
        rows = np.arange(batch)
        for t in range(length):
            slot = int(addresses[t])
            out[:, t] = buffer[rows, slot]
            buffer[rows, slot] = bits[:, t]
        return out

    def residual_ones(self, bits: np.ndarray) -> np.ndarray:
        """1s still resident in the buffer after the stream ends.

        ``ones(out) = ones(in) + ones(init) - residual``; diagnostic for
        the bias analysis and the property tests.
        """
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        out = self._process_stream_bits(arr)
        init_ones = int(self._initial_buffer(1).sum())
        return arr.sum(axis=1, dtype=np.int64) + init_ones - out.sum(axis=1, dtype=np.int64)
