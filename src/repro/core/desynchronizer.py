"""The desynchronizer — the paper's negative-correlation inducer (Fig. 3b).

Dual of the synchronizer: instead of pairing 1s, it *unpairs* them. When
both inputs are 1 it saves one of the 1s and emits the other; when both are
0 it emits a previously saved 1 against the 0; when the inputs already
differ it passes them through.

**State representation.** The FSM holds a FIFO of saved 1s, each tagged
with the stream it belongs to. Because the circuit alternates which stream
it saves from (for symmetry), the tags in the queue strictly alternate
X, Y, X, Y, ... — so the whole queue is captured by two scalars:

* ``count`` — number of saved 1s (``0..D``);
* ``tag`` — owner of the queue *head* when ``count > 0``, or the stream to
  save from next when ``count == 0``.

Per-cycle transitions (exactly the paper's 4-state cycle for ``D = 1``:
``(0, X) = S0``, ``(1, X) = save-X``, ``(0, Y) = S3``, ``(1, Y) = save-Y``):

====================  ===========================  ========================
input ``(x, y)``      condition                    output, state update
====================  ===========================  ========================
``x != y``            —                            pass ``(x, y)``
``(1, 1)``            ``count < D``                save a 1 from the stream
                                                   ``next_tag``; emit the
                                                   *other* stream's 1 alone
``(1, 1)``            ``count = D`` (saturated)    pass ``(1, 1)``
``(0, 0)``            ``count > 0``                emit head's 1 on its own
                                                   stream; ``tag`` flips
``(0, 0)``            ``count = 0``                pass ``(0, 0)``
====================  ===========================  ========================

where ``next_tag`` is the opposite of the queue tail's owner (i.e. ``tag``
XOR ``count`` parity), keeping the alternation invariant.

Saved 1s left in the queue at end-of-stream are the source of the small
negative bias the paper reports; the optional **flush** mode force-emits
them when they could no longer drain naturally.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_positive_int
from .fsm import PairTransform

__all__ = ["Desynchronizer"]

_TAG_X = 0
_TAG_Y = 1


class Desynchronizer(PairTransform):
    """Negative-correlation-inducing FSM.

    Args:
        depth: save depth ``D`` (paper Fig. 3b is ``D = 1``).
        flush: enable the end-of-stream flush extension (Section III-B).
        first_save: which stream the first save comes from (``"x"`` or
            ``"y"``); the paper's initial-state adjustment for composition.
    """

    def __init__(self, depth: int = 1, *, flush: bool = False, first_save: str = "x") -> None:
        self._depth = check_positive_int(depth, name="depth")
        self._flush = bool(flush)
        if first_save not in ("x", "y"):
            raise ValueError(f"first_save must be 'x' or 'y', got {first_save!r}")
        self._first_tag = _TAG_X if first_save == "x" else _TAG_Y

    @property
    def name(self) -> str:
        flags = ",flush" if self._flush else ""
        return f"desynchronizer(D={self._depth}{flags})"

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def flush(self) -> bool:
        return self._flush

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from ..kernels import dispatch

        out = dispatch.pair_kernel(self, x, y)
        if out is not None:
            return out
        return self._reference_process_bits(x, y)

    def _reference_process_bits(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The per-cycle masked-update loop — the bit-identical reference
        for the compiled transition-table kernel (``repro.kernels``)."""
        batch, length = x.shape
        depth = self._depth
        count = np.zeros(batch, dtype=np.int64)
        tag = np.full(batch, self._first_tag, dtype=np.int64)
        out_x = np.empty_like(x)
        out_y = np.empty_like(y)
        for t in range(length):
            xt = x[:, t]
            yt = y[:, t]
            if self._flush:
                flushing = count >= (length - t)
            else:
                flushing = np.zeros(batch, dtype=bool)

            both_one = (xt == 1) & (yt == 1)
            both_zero = (xt == 0) & (yt == 0)

            ox = xt.copy()
            oy = yt.copy()
            ncount = count.copy()
            ntag = tag.copy()

            # Save a 1 (inputs both 1, room in the queue).
            can_save = both_one & (count < depth) & ~flushing
            # Owner of the next save: queue-tail's opposite = tag XOR parity.
            next_tag = (tag + count) % 2
            save_x = can_save & (next_tag == _TAG_X)
            save_y = can_save & (next_tag == _TAG_Y)
            ox[save_x] = 0  # X's 1 goes into the queue; Y's 1 passes.
            oy[save_x] = 1
            ox[save_y] = 1  # Y's 1 goes into the queue; X's 1 passes.
            oy[save_y] = 0
            ncount[can_save] += 1
            # Head tag is defined by the first entry; set it when the queue
            # was empty.
            was_empty = can_save & (count == 0)
            ntag[was_empty] = next_tag[was_empty]

            # Emit the head 1 (inputs both 0, queue non-empty).
            can_emit = both_zero & (count > 0) & ~flushing
            emit_x = can_emit & (tag == _TAG_X)
            emit_y = can_emit & (tag == _TAG_Y)
            ox[emit_x] = 1
            oy[emit_y] = 1
            ncount[can_emit] -= 1
            ntag[can_emit] = 1 - tag[can_emit]  # alternation invariant

            # Flush: force-emit the head on its stream regardless of input;
            # the queue drains only on cycles where that stream's input was
            # 0 (a natural 1 doubles as the repayment otherwise).
            if self._flush:
                fl_x = flushing & (tag == _TAG_X)
                fl_y = flushing & (tag == _TAG_Y)
                ox[fl_x] = 1
                oy[fl_x] = yt[fl_x]
                oy[fl_y] = 1
                ox[fl_y] = xt[fl_y]
                repaid_x = fl_x & (xt == 0)
                repaid_y = fl_y & (yt == 0)
                repaid = repaid_x | repaid_y
                ncount[repaid] = count[repaid] - 1
                ntag[repaid] = 1 - tag[repaid]
                keep = flushing & ~repaid
                ncount[keep] = count[keep]
                ntag[keep] = tag[keep]

            out_x[:, t] = ox
            out_y[:, t] = oy
            count = ncount
            tag = ntag
        return out_x, out_y

    def stuck_bits(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """1s left in the queue at end-of-stream, per batch row."""
        xb = np.asarray(x, dtype=np.uint8)
        yb = np.asarray(y, dtype=np.uint8)
        if xb.ndim == 1:
            xb = xb.reshape(1, -1)
            yb = yb.reshape(1, -1)
        ox, oy = self._process_bits(xb, yb)
        total_in = xb.sum(axis=1, dtype=np.int64) + yb.sum(axis=1, dtype=np.int64)
        total_out = ox.sum(axis=1, dtype=np.int64) + oy.sum(axis=1, dtype=np.int64)
        return total_in - total_out
