"""The decorrelator — the paper's correlation *reducer* (Fig. 4a).

Two :class:`~repro.core.shuffle_buffer.ShuffleBuffer` instances, one per
stream, driven by *different* auxiliary RNGs. Each buffer independently
scrambles its stream's bit order across ~depth-sized windows; because the
scrambles are independent, the mutual alignment that carried the
correlation is destroyed while each stream's value is conserved (up to the
buffer-residency bias, mitigated by the half-ones initialisation).

Compared to the two prior-art decorrelation tools the paper measures in
Table II:

* an **isolator** only shifts one stream by a fixed offset — it cannot
  scramble relative order, so its effect on SCC is erratic (sometimes
  strongly negative, per Table II's VDC row);
* a **tracking forecast memory** regenerates a stream from a running value
  estimate — it decorrelates but introduces large bias when the estimate
  lags the stream structure.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import CircuitConfigurationError
from ..rng import StreamRNG
from .fsm import PairTransform
from .shuffle_buffer import ShuffleBuffer

__all__ = ["Decorrelator"]


class Decorrelator(PairTransform):
    """Two-shuffle-buffer decorrelator.

    Args:
        rng_x: address RNG for X's buffer.
        rng_y: address RNG for Y's buffer; must be a different source than
            ``rng_x`` for the decorrelation to work (enforced by identity,
            the cheapest guard against accidentally sharing a generator).
        depth: slots per buffer.
        init: buffer initial-fill policy (see :class:`ShuffleBuffer`).
    """

    def __init__(
        self,
        rng_x: StreamRNG,
        rng_y: StreamRNG,
        depth: int = 4,
        *,
        init: str = "half_ones",
    ) -> None:
        if rng_x is rng_y:
            raise CircuitConfigurationError(
                "decorrelator buffers must use distinct RNG instances; "
                "sharing one sequence would scramble both streams identically"
            )
        self._buffer_x = ShuffleBuffer(rng_x, depth, init=init)
        self._buffer_y = ShuffleBuffer(rng_y, depth, init=init)
        self._depth = depth

    @property
    def name(self) -> str:
        return f"decorrelator(D={self._depth})"

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def buffer_x(self) -> ShuffleBuffer:
        return self._buffer_x

    @property
    def buffer_y(self) -> ShuffleBuffer:
        return self._buffer_y

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return (
            self._buffer_x._process_stream_bits(x),
            self._buffer_y._process_stream_bits(y),
        )
