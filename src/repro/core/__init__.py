"""The paper's contribution: correlation manipulating circuits.

* :class:`Synchronizer` — drives SCC toward +1 (Fig. 3a).
* :class:`Desynchronizer` — drives SCC toward -1 (Fig. 3b).
* :class:`ShuffleBuffer` / :class:`Decorrelator` — drive SCC toward 0
  (Fig. 4).
* :class:`SyncMax` / :class:`SyncMin` / :class:`DesyncSaturatingAdder` —
  the improved operators built on them (Fig. 5).
* :class:`Isolator` / :class:`IsolatorPair`,
  :class:`TrackingForecastMemory` / :class:`TFMPair` — the prior-art
  baselines Table II compares against.
* :class:`SeriesPair` / :class:`SeriesStream` — series composition
  (Section III-B).
* :class:`PairTransform` / :class:`StreamTransform` — the extension points
  for user-defined circuits.
"""

from .compose import SeriesPair, SeriesStream
from .decorrelator import Decorrelator
from .desynchronizer import Desynchronizer
from .fsm import PairTransform, StreamTransform
from .improved_ops import DesyncSaturatingAdder, SyncMax, SyncMin
from .isolator import Isolator, IsolatorPair
from .shuffle_buffer import ShuffleBuffer
from .synchronizer import Synchronizer
from .tfm import TFMPair, TrackingForecastMemory

__all__ = [
    "PairTransform",
    "StreamTransform",
    "Synchronizer",
    "Desynchronizer",
    "ShuffleBuffer",
    "Decorrelator",
    "Isolator",
    "IsolatorPair",
    "TrackingForecastMemory",
    "TFMPair",
    "SeriesPair",
    "SeriesStream",
    "SyncMax",
    "SyncMin",
    "DesyncSaturatingAdder",
]
