"""The paper's improved SC operators (Fig. 5).

Each improved design is a correlation manipulating circuit fused with a
single gate:

* :class:`SyncMax` — synchronizer + OR. After synchronisation the smaller
  SN's 1s are masked by the larger's, so the OR emits exactly the larger
  value (plus its surplus 1s) — an accurate maximum from *any* input
  correlation (Table III: 0.003 mean error vs. 0.087 for a bare OR).
* :class:`SyncMin` — synchronizer + AND, the mirror argument for minimum.
* :class:`DesyncSaturatingAdder` — desynchronizer + OR. After
  desynchronisation the 1s overlap as little as possible, so the OR
  collects ``min(1, px + py)``: an accurate saturating adder from any
  input correlation.

Constructors accept a prebuilt pair transform so the depth/flush/
composition variants can be dropped in (the Table III "deeper save depth"
trade-off and the ablation benches use this).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arith._coerce import StreamLike, broadcast_pair, rewrap, unwrap
from ..arith.gates import and_bits, or_bits
from ..exceptions import CircuitConfigurationError, EncodingError
from .desynchronizer import Desynchronizer
from .fsm import PairTransform
from .synchronizer import Synchronizer

__all__ = ["SyncMax", "SyncMin", "DesyncSaturatingAdder"]


class _FusedGateOp:
    """Shared machinery: run a pair transform, then a 2-input gate."""

    _GATE = None  # subclass binds and_bits / or_bits
    _DEFAULT_TRANSFORM = None  # subclass binds a constructor

    def __init__(self, transform: Optional[PairTransform] = None, *, depth: int = 1) -> None:
        if transform is None:
            transform = self._make_default_transform(depth)
        if not isinstance(transform, PairTransform):
            raise CircuitConfigurationError(
                f"{type(self).__name__} needs a PairTransform, got {type(transform).__name__}"
            )
        self._transform = transform

    @classmethod
    def _make_default_transform(cls, depth: int) -> PairTransform:
        raise NotImplementedError

    @property
    def transform(self) -> PairTransform:
        """The embedded correlation manipulating circuit."""
        return self._transform

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError(f"{type(self).__name__} operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        sx, sy = self._transform._process_bits(xb, yb)
        bits = type(self)._GATE(sx, sy)
        return rewrap(bits, kind, enc_x)


class SyncMax(_FusedGateOp):
    """Synchronizer-based maximum (paper Fig. 5a).

    Args:
        transform: optional custom synchronizer (depth/flush/series).
        depth: save depth for the default synchronizer.
    """

    _GATE = staticmethod(or_bits)

    @classmethod
    def _make_default_transform(cls, depth: int) -> PairTransform:
        return Synchronizer(depth=depth)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(px, dtype=np.float64), np.asarray(py, dtype=np.float64))


class SyncMin(_FusedGateOp):
    """Synchronizer-based minimum (paper Fig. 5b)."""

    _GATE = staticmethod(and_bits)

    @classmethod
    def _make_default_transform(cls, depth: int) -> PairTransform:
        return Synchronizer(depth=depth)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.minimum(np.asarray(px, dtype=np.float64), np.asarray(py, dtype=np.float64))


class DesyncSaturatingAdder(_FusedGateOp):
    """Desynchronizer-based saturating adder (paper Fig. 5c)."""

    _GATE = staticmethod(or_bits)

    @classmethod
    def _make_default_transform(cls, depth: int) -> PairTransform:
        return Desynchronizer(depth=depth)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.minimum(
            1.0, np.asarray(px, dtype=np.float64) + np.asarray(py, dtype=np.float64)
        )
