"""The synchronizer — the paper's positive-correlation inducer (Fig. 3a).

The synchronizer pairs up 1s between two streams as often as possible while
preserving each stream's 1-count. Its state is the *surplus ledger*
``s in [-D, +D]``:

* ``s > 0`` — X has emitted ``s`` fewer 1s than it received: ``s`` X-1s are
  "saved" awaiting a Y-1 to pair with;
* ``s < 0`` — symmetric, ``-s`` saved Y-1s;
* ``s = 0`` — balanced (the paper's initial state S0).

Transition rules per cycle (the paper's D = 1 FSM, generalised verbatim to
depth ``D``):

====================  =============================  =====================
input ``(x, y)``      condition                      output, state update
====================  =============================  =====================
``x == y``            —                              pass ``(x, y)``
``(1, 0)``            ``s < 0`` (saved Y available)  emit ``(1, 1)``, s += 1
``(1, 0)``            ``0 <= s < D`` (room to save)  emit ``(0, 0)``, s += 1
``(1, 0)``            ``s = D`` (saturated)          pass ``(1, 0)``
``(0, 1)``            mirror image                   mirror image
====================  =============================  =====================

For ``D = 1`` the three reachable ``s`` values {-1, 0, +1} are exactly the
paper's states S2, S0, S1, and the table above reproduces every edge of
Fig. 3a.

**Value preservation.** Each stream's 1s are only ever deferred, never
dropped — except that up to ``|s_final|`` 1s can be left *stuck* in the
FSM when the stream ends, which is the paper's explanation for the small
negative output bias in Table II. The optional **flush** mode (paper
Section III-B) tracks the stream offset and force-emits saved bits once
``|s|`` reaches the number of remaining cycles, bounding the stuck loss.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_positive_int
from .fsm import PairTransform

__all__ = ["Synchronizer"]


class Synchronizer(PairTransform):
    """Positive-correlation-inducing FSM.

    Args:
        depth: save depth ``D`` (paper Fig. 3a is ``D = 1``). Larger depths
            survive longer runs of unpaired bits at the cost of a bigger
            FSM and a larger worst-case stuck loss.
        flush: enable the end-of-stream flush extension (Section III-B):
            saved bits are force-emitted once they could no longer drain
            naturally, trading correlation strength for value accuracy.
        initial_state: starting ledger value in ``[-depth, depth]``. The
            paper suggests biased initial states to cancel composition
            losses (Section III-B).
    """

    def __init__(self, depth: int = 1, *, flush: bool = False, initial_state: int = 0) -> None:
        self._depth = check_positive_int(depth, name="depth")
        if not -self._depth <= initial_state <= self._depth:
            raise ValueError(
                f"initial_state must lie in [-{self._depth}, {self._depth}], got {initial_state}"
            )
        self._flush = bool(flush)
        self._initial_state = int(initial_state)

    @property
    def name(self) -> str:
        flags = ",flush" if self._flush else ""
        return f"synchronizer(D={self._depth}{flags})"

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def flush(self) -> bool:
        return self._flush

    def _process_bits(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from ..kernels import dispatch

        out = dispatch.pair_kernel(self, x, y)
        if out is not None:
            return out
        return self._reference_process_bits(x, y)

    def _reference_process_bits(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The per-cycle masked-update loop — the bit-identical reference
        for the compiled transition-table kernel (``repro.kernels``)."""
        batch, length = x.shape
        depth = self._depth
        s = np.full(batch, self._initial_state, dtype=np.int64)
        out_x = np.empty_like(x)
        out_y = np.empty_like(y)
        for t in range(length):
            xt = x[:, t]
            yt = y[:, t]
            if self._flush:
                remaining = length - t
                flush_x = s >= remaining  # saved X 1s must drain now
                flush_y = -s >= remaining  # saved Y 1s must drain now
            else:
                flush_x = flush_y = np.zeros(batch, dtype=bool)

            equal = xt == yt
            x_hi = (xt == 1) & (yt == 0)
            y_hi = (xt == 0) & (yt == 1)

            # Default: pass-through (covers equal inputs and saturation).
            ox = xt.copy()
            oy = yt.copy()
            ns = s.copy()

            # X surplus 1 arrives.
            pair_with_saved_y = x_hi & (s < 0) & ~flush_x & ~flush_y
            save_x = x_hi & (s >= 0) & (s < depth) & ~flush_x & ~flush_y
            ox[pair_with_saved_y] = 1
            oy[pair_with_saved_y] = 1
            ns[pair_with_saved_y] += 1
            ox[save_x] = 0
            oy[save_x] = 0
            ns[save_x] += 1

            # Y surplus 1 arrives (mirror image).
            pair_with_saved_x = y_hi & (s > 0) & ~flush_x & ~flush_y
            save_y = y_hi & (s <= 0) & (s > -depth) & ~flush_x & ~flush_y
            ox[pair_with_saved_x] = 1
            oy[pair_with_saved_x] = 1
            ns[pair_with_saved_x] -= 1
            ox[save_y] = 0
            oy[save_y] = 0
            ns[save_y] -= 1

            # Flush overrides: force the owing stream's output to 1 and
            # repay one saved bit whenever the natural input was 0.
            if self._flush:
                fx = flush_x
                ox[fx] = 1
                oy[fx] = yt[fx]
                ns[fx] = s[fx] - (1 - xt[fx].astype(np.int64))
                fy = flush_y & ~flush_x
                oy[fy] = 1
                ox[fy] = xt[fy]
                ns[fy] = s[fy] + (1 - yt[fy].astype(np.int64))

            out_x[:, t] = ox
            out_y[:, t] = oy
            s = ns
        return out_x, out_y

    def stuck_bits(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Final ledger magnitude per batch row — the 1s lost to the FSM.

        Diagnostic used by tests and the bias analysis; recomputes the run.
        """
        xb = np.asarray(x, dtype=np.uint8)
        yb = np.asarray(y, dtype=np.uint8)
        if xb.ndim == 1:
            xb = xb.reshape(1, -1)
            yb = yb.reshape(1, -1)
        ox, oy = self._process_bits(xb, yb)
        lost_x = xb.sum(axis=1, dtype=np.int64) - ox.sum(axis=1, dtype=np.int64)
        lost_y = yb.sum(axis=1, dtype=np.int64) - oy.sum(axis=1, dtype=np.int64)
        return np.abs(lost_x) + np.abs(lost_y)
