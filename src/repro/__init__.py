"""repro — a reproduction of *Correlation Manipulating Circuits for
Stochastic Computing* (V. T. Lee, A. Alaghi, L. Ceze — DATE 2018).

The library implements the full stochastic-computing (SC) stack the paper
builds on and contributes to:

* :mod:`repro.bitstream` — stochastic numbers, batches (unpacked uint8 and
  packed uint64-word fast path), encodings, and the SCC correlation metric;
* :mod:`repro.rng` — LFSR / Van der Corput / Halton / Sobol / counter
  sequence generators;
* :mod:`repro.convert` — D/S and S/D converters, APC, regeneration;
* :mod:`repro.arith` — the Fig. 2 arithmetic circuits and the
  correlation-agnostic baselines;
* :mod:`repro.core` — **the paper's contribution**: synchronizer,
  desynchronizer, decorrelator (+ isolator/TFM baselines) and the improved
  max / min / saturating-add operators;
* :mod:`repro.hardware` — a 65nm-calibrated gate-level area/power/energy
  model standing in for the paper's Synopsys flow;
* :mod:`repro.pipeline` — the Gaussian-blur -> Roberts-cross image
  processing case study (Table IV);
* :mod:`repro.analysis` — experiment harness regenerating every table and
  figure;
* :mod:`repro.rtl` — cycle-accurate scalar reference models, trace-
  equivalence-tested against the vectorised circuits;
* :mod:`repro.graph` — dataflow graphs with correlation audit and
  automatic manipulation-circuit insertion;
* :mod:`repro.engine` — compiled, packed-domain execution of SC dataflow
  graphs: levelized plans, a structure-keyed plan cache, and batched
  multi-configuration sweeps (``engine.compile(g).run_batch(...)``);
* :mod:`repro.apps` — rank-order networks (median filters, bitonic
  sorters) built from the improved operators;
* :mod:`repro.faults` — bit-flip injection (SC vs binary error
  tolerance);
* :mod:`repro.runner` — declarative experiment orchestration: specs ->
  shards -> process pool -> content-addressed result store -> reports;
* :mod:`repro.obs` — zero-dependency observability: fork-coherent span
  tracing, typed metrics with cross-process aggregation, Chrome-trace /
  stats / profile-tree exporters (free when disabled);
* :mod:`repro.cli` — ``python -m repro {list,run,all,report,costs,stats}``.

Quickstart::

    from repro import Bitstream, Synchronizer, scc

    x = Bitstream("10101010")          # 0.5
    y = Bitstream("11110000")          # 0.5, poorly aligned
    sx, sy = Synchronizer().process_pair(x, y)
    print(scc(x.bits, y.bits), "->", scc(sx.bits, sy.bits))
"""

from .arith import (
    AbsSubtractor,
    AndMin,
    CAAdder,
    CAMax,
    CorDiv,
    Multiplier,
    OrMax,
    SaturatingAdder,
    ScaledAdder,
)
from .bitstream import (
    Bitstream,
    BitstreamBatch,
    Encoding,
    PackedBitstreamBatch,
    bernoulli_stream,
    bias,
    correlated_pair,
    exact_stream,
    mean_absolute_error,
    scc,
    scc_batch,
    scc_batch_packed,
)
from .convert import (
    AccumulativeParallelCounter,
    DigitalToStochastic,
    Regenerator,
    StochasticToDigital,
)
from .core import (
    Decorrelator,
    Desynchronizer,
    DesyncSaturatingAdder,
    Isolator,
    IsolatorPair,
    PairTransform,
    SeriesPair,
    SeriesStream,
    ShuffleBuffer,
    StreamTransform,
    Synchronizer,
    SyncMax,
    SyncMin,
    TFMPair,
    TrackingForecastMemory,
)
from .exceptions import ReproError
from .faults import fault_sweep, flip_binary_words, flip_bits
from .graph import AutofixReport, SCGraph, autofix
from .rng import LFSR, CounterRNG, Halton, Sobol, StreamRNG, SystemRNG, VanDerCorput, make_rng

# Imported last: the engine consumes the graph layer above; the kernel
# layer compiles the core/arith circuits it is imported after; the runner
# orchestrates the analysis layer on top of everything; obs is observed
# by all of them but depends on none.
from . import engine, kernels, obs, runner

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # bitstream
    "Bitstream",
    "BitstreamBatch",
    "PackedBitstreamBatch",
    "Encoding",
    "scc",
    "scc_batch",
    "scc_batch_packed",
    "bias",
    "mean_absolute_error",
    "exact_stream",
    "bernoulli_stream",
    "correlated_pair",
    # rng
    "StreamRNG",
    "LFSR",
    "VanDerCorput",
    "Halton",
    "Sobol",
    "CounterRNG",
    "SystemRNG",
    "make_rng",
    # convert
    "DigitalToStochastic",
    "StochasticToDigital",
    "AccumulativeParallelCounter",
    "Regenerator",
    # arith
    "Multiplier",
    "ScaledAdder",
    "SaturatingAdder",
    "AbsSubtractor",
    "CorDiv",
    "OrMax",
    "AndMin",
    "CAAdder",
    "CAMax",
    # core (the paper's contribution)
    "PairTransform",
    "StreamTransform",
    "Synchronizer",
    "Desynchronizer",
    "ShuffleBuffer",
    "Decorrelator",
    "Isolator",
    "IsolatorPair",
    "TrackingForecastMemory",
    "TFMPair",
    "SeriesPair",
    "SeriesStream",
    "SyncMax",
    "SyncMin",
    "DesyncSaturatingAdder",
    # graph layer
    "SCGraph",
    "autofix",
    "AutofixReport",
    # execution engine + time-parallel sequential kernels + observability
    "engine",
    "kernels",
    "obs",
    # fault injection
    "flip_bits",
    "flip_binary_words",
    "fault_sweep",
    # errors
    "ReproError",
]
