"""repro.kernels — time-parallel execution of sequential SC circuits.

After the packed combinational domain (PR 1) and the compiled engine
(PR 2), the sequential circuits — the paper's synchronizer /
desynchronizer / regenerator family plus the FSM arithmetic baselines —
were the last interpreter-bound hot path: every one ran a python
``for t in range(length)`` loop. This subsystem erases that loop:

* :mod:`repro.kernels.tables` — lowers each bounded-state circuit to
  explicit ``(symbol, state) -> (next_state, out_bits)`` transition
  tables (plus per-``remaining`` tail tables for the flush modes);
* :mod:`repro.kernels.steppers` — two vectorised executors over those
  tables (a chunked-LUT stepper and a log-doubling prefix-scan stepper)
  with an auto-chosen strategy per ``(length, batch, n_states)``;
* :mod:`repro.kernels.dispatch` — per-instance kernel caching, the
  ``auto``/``reference`` backend switch, and the dedicated gather
  kernels (shuffle buffer, TFM output stage).

The circuits themselves stay the source of truth: their original loops
remain as the bit-identical reference implementation, selected by
``kernels.set_backend("reference")`` and enforced equal by
``tests/test_kernels.py`` across depths, flush modes, encodings, odd
lengths, and batch sizes. The engine classifies table-compiled transform
nodes into a ``kernel`` domain (:mod:`repro.engine.plan`), and every
sweep, audit, autofix, and pipeline path inherits the speedup because
dispatch happens inside ``_process_bits`` itself.
"""

from .dispatch import (
    compiled_kernel,
    get_backend,
    get_strategy,
    is_kernelized,
    op_kernel,
    pair_kernel,
    set_backend,
    set_strategy,
    shuffle_kernel,
    tfm_kernel,
    use_backend,
)
from .steppers import (
    STRATEGIES,
    choose_chunk,
    choose_strategy,
    state_trajectory,
    step_chunk,
)
from .streaming import (
    PairCarrier,
    StreamCarrier,
    make_pair_carrier,
    make_stream_carrier,
)
from .tables import (
    MAX_TABLE_STATES,
    CompiledFSM,
    TransitionTable,
    compilable_types,
    compile_transform,
)

__all__ = [
    "CompiledFSM",
    "TransitionTable",
    "compile_transform",
    "compilable_types",
    "MAX_TABLE_STATES",
    "STRATEGIES",
    "state_trajectory",
    "step_chunk",
    "choose_chunk",
    "choose_strategy",
    "PairCarrier",
    "StreamCarrier",
    "make_pair_carrier",
    "make_stream_carrier",
    "get_backend",
    "set_backend",
    "use_backend",
    "get_strategy",
    "set_strategy",
    "pair_kernel",
    "op_kernel",
    "tfm_kernel",
    "shuffle_kernel",
    "compiled_kernel",
    "is_kernelized",
]
