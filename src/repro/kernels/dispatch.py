"""Kernel dispatch: route circuit evaluations to time-parallel executors.

Circuits keep their public API and their reference per-bit loops; their
``_process_bits`` / ``compute`` entry points first offer the evaluation to
this module. The dispatcher compiles the circuit's transition tables once
(cached on the instance), runs the appropriate stepper, and gathers the
output bits — or returns ``None``, in which case the caller falls back to
its reference loop. ``set_backend("reference")`` forces the fallback
everywhere (the equivalence tests and benchmarks use it to time and
compare the two paths).

The shuffle buffer gets a dedicated time-parallel kernel instead of a
transition table: its state space (``2**depth`` buffer contents times the
address phase) is large, but the circuit is a pure *bit relocation* — the
bit emitted at cycle ``t`` is the one last written to slot
``addresses[t]``, or the initial fill if that slot was never written. One
pass over the ``depth`` slots recovers every source index, and the whole
output is a single gather.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from ..obs import counter_add
from ..obs import span as obs_span
from .steppers import STRATEGIES, choose_strategy, chunked_outputs, state_trajectory
from .tables import CompiledFSM, compile_transform

__all__ = [
    "get_backend",
    "set_backend",
    "use_backend",
    "get_strategy",
    "set_strategy",
    "pair_kernel",
    "op_kernel",
    "tfm_kernel",
    "shuffle_kernel",
    "compiled_kernel",
    "is_kernelized",
]

_BACKENDS = ("auto", "reference")

_backend = "auto"
_strategy = "auto"

_UNCOMPILABLE = object()        # instance-cache sentinel: compilation declined


def get_backend() -> str:
    """Current dispatch mode: ``"auto"`` (kernels) or ``"reference"``."""
    return _backend


def set_backend(mode: str) -> None:
    """Select ``"auto"`` (compiled kernels, the default) or
    ``"reference"`` (every circuit runs its original per-bit loop)."""
    global _backend
    if mode not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {mode!r}")
    _backend = mode


def get_strategy() -> str:
    """Current stepper strategy (``"auto"`` unless overridden)."""
    return _strategy


def set_strategy(strategy: str) -> None:
    """Force a stepper (``"chunked"`` / ``"scan"`` / ``"step"``) or
    restore ``"auto"`` cost-model selection."""
    global _strategy
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    _strategy = strategy


@contextmanager
def use_backend(mode: str, *, strategy: Optional[str] = None):
    """Temporarily switch backend (and optionally stepper strategy)."""
    prev_backend, prev_strategy = _backend, _strategy
    set_backend(mode)
    if strategy is not None:
        set_strategy(strategy)
    try:
        yield
    finally:
        set_backend(prev_backend)
        set_strategy(prev_strategy)


def compiled_kernel(circuit) -> Optional[CompiledFSM]:
    """The circuit's compiled tables (built on first use, cached on the
    instance), or ``None`` if its type has no lowering."""
    cached = getattr(circuit, "_compiled_fsm_kernel", None)
    if cached is None:
        with obs_span("kernels.compile", circuit=type(circuit).__name__) as sp:
            cached = compile_transform(circuit)
            if cached is not None:
                sp.annotate(states=cached.n_states, outputs=cached.outputs)
        counter_add("kernels.compile")
        circuit._compiled_fsm_kernel = cached if cached is not None else _UNCOMPILABLE
    return None if cached is _UNCOMPILABLE else cached


def is_kernelized(transform) -> bool:
    """Does this transform execute time-parallel (no per-bit python loop)?

    Used by the engine's plan classifier. True for table-compiled FSMs,
    for circuits with dedicated vectorised kernels (shuffle buffer /
    decorrelator, TFM pair, isolator), and for series compositions whose
    every stage qualifies.
    """
    from ..core.compose import SeriesPair, SeriesStream
    from ..core.decorrelator import Decorrelator
    from ..core.isolator import Isolator, IsolatorPair
    from ..core.shuffle_buffer import ShuffleBuffer
    from ..core.tfm import TFMPair

    if type(transform) in (Decorrelator, TFMPair, Isolator, IsolatorPair, ShuffleBuffer):
        return True
    if type(transform) in (SeriesPair, SeriesStream):
        return all(is_kernelized(stage) for stage in transform.stages)
    return compiled_kernel(transform) is not None


# ---------------------------------------------------------------------- #
# Table-driven execution
# ---------------------------------------------------------------------- #

def _run_tables(
    fsm: CompiledFSM, x: np.ndarray, y: np.ndarray,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Execute steady part + flush tail; returns ``(out_x, out_y)``.

    The chunked stepper emits output bits straight from its composed
    LUTs and builds chunk codes directly from the two input bit planes
    (the symbol matrix is never materialised); the scan/step strategies
    recover the state trajectory first and gather outputs from it.
    """
    batch, length = x.shape
    tail = min(len(fsm.tails), length)
    steady_len = length - tail
    want_y = fsm.steady.out_y is not None

    strategy = _strategy
    if strategy == "auto":
        strategy = choose_strategy(batch, steady_len, fsm.n_states, fsm.n_symbols)
    if strategy == "chunked":
        ox_steady, oy_steady, state = chunked_outputs(
            fsm, x[:, :steady_len], y[:, :steady_len],
            _initial_states(fsm, batch),
        )
        out_x = np.empty((batch, length), dtype=np.uint8)
        out_x[:, :steady_len] = ox_steady
        out_y = None
        if want_y:
            out_y = np.empty((batch, length), dtype=np.uint8)
            out_y[:, :steady_len] = oy_steady
    else:
        out_x = np.empty((batch, length), dtype=np.uint8)
        out_y = np.empty((batch, length), dtype=np.uint8) if want_y else None
        head = _pair_symbols(x[:, :steady_len], y[:, :steady_len])
        states, state = state_trajectory(fsm, head, strategy=strategy)
        out_x[:, :steady_len] = fsm.steady.out_x[head, states]
        if want_y:
            out_y[:, :steady_len] = fsm.steady.out_y[head, states]

    # Flush tail: per-remaining tables, O(depth) iterations total.
    for t in range(steady_len, length):
        table = fsm.tails[length - t - 1]
        sym_t = (x[:, t] << np.uint8(1)) | y[:, t]
        out_x[:, t] = table.out_x[sym_t, state]
        if want_y:
            out_y[:, t] = table.out_y[sym_t, state]
        state = table.next_state[sym_t, state]
    return out_x, out_y


def _initial_states(fsm: CompiledFSM, batch: int) -> np.ndarray:
    return np.full(batch, fsm.initial_state, dtype=fsm.steady.next_state.dtype)


def _pair_symbols(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x.astype(np.uint8) << np.uint8(1)) | y.astype(np.uint8)


def pair_kernel(
    circuit, x: np.ndarray, y: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Two-output FSM evaluation, or ``None`` to use the reference loop."""
    if _backend == "reference":
        return None
    fsm = compiled_kernel(circuit)
    if fsm is None or fsm.outputs != 2:
        return None
    # No-op for the usual uint8 matrices; tolerates wider int dtypes the
    # reference loops also accept (np.packbits insists on uint8/bool).
    x = np.asarray(x, dtype=np.uint8)
    y = np.asarray(y, dtype=np.uint8)
    counter_add("kernels.dispatch.pair")
    return _run_tables(fsm, x, y)


def op_kernel(circuit, x: np.ndarray, y: np.ndarray) -> Optional[np.ndarray]:
    """Single-output FSM evaluation (CORDIV, CA adder, CA max), or
    ``None`` to use the reference loop."""
    if _backend == "reference":
        return None
    fsm = compiled_kernel(circuit)
    if fsm is None or fsm.outputs != 1:
        return None
    counter_add("kernels.dispatch.op")
    out, _ = _run_tables(fsm, np.asarray(x, dtype=np.uint8), np.asarray(y, dtype=np.uint8))
    return out


def tfm_kernel(tfm, bits: np.ndarray) -> Optional[np.ndarray]:
    """Tracking forecast memory: table-driven estimate trajectory, then
    one vectorised comparison against the auxiliary random sequence."""
    if _backend == "reference":
        return None
    fsm = compiled_kernel(tfm)
    if fsm is None:
        return None
    counter_add("kernels.dispatch.tfm")
    length = bits.shape[1]
    states, _ = state_trajectory(
        fsm, np.ascontiguousarray(bits, dtype=np.uint8), strategy=_strategy
    )
    rand = (tfm._rng.sequence(length) * (tfm._max + 1)) // tfm._rng.modulus
    return (rand[None, :] < states.astype(np.int64)).astype(np.uint8)


def shuffle_kernel(buffer, bits: np.ndarray) -> Optional[np.ndarray]:
    """Shuffle buffer as one gather: emit, per cycle, the bit last written
    to the addressed slot (or that slot's initial fill)."""
    if _backend == "reference":
        return None
    counter_add("kernels.dispatch.shuffle")
    batch, length = bits.shape
    depth = buffer.depth
    addresses = buffer.rng.integers(length, depth)
    # prev[t] = index of the previous cycle that addressed slot
    # addresses[t], or -1 if t is that slot's first access.
    prev = np.full(length, -1, dtype=np.int64)
    for slot in range(depth):
        hits = np.flatnonzero(addresses == slot)
        if hits.size > 1:
            prev[hits[1:]] = hits[:-1]
    init_row = buffer._initial_buffer(1)[0]
    fallback = init_row[addresses]                       # (length,)
    gathered = bits[:, np.maximum(prev, 0)]              # (batch, length)
    return np.where(prev >= 0, gathered, fallback[None, :]).astype(np.uint8)
