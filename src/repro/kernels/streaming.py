"""Resumable (carry-state) execution of sequential circuits.

The kernels in :mod:`repro.kernels.dispatch` evaluate a whole stream per
call: every circuit restarts from its initial state. Tile streaming needs
the opposite — a stream arrives chunk by chunk, and the circuit's state
must survive the chunk boundary. This module wraps each kernelized
circuit type in a **carrier**: a small stateful object created once per
stream evaluation whose ``step(...)`` consumes consecutive chunks and is
bit-identical to the one-shot kernel over the concatenation.

Carrier construction mirrors :func:`repro.kernels.dispatch.is_kernelized`:

* table-compiled pair FSMs (synchronizer, desynchronizer, flush modes
  included) resume via :func:`repro.kernels.steppers.step_chunk`;
* the shuffle buffer carries its ``depth``-slot contents plus the stream
  offset (addresses come from the RNG's window API);
* the isolator carries its last ``delay`` input bits;
* the TFM carries its estimate register; its auxiliary comparator
  sequence is windowed;
* decorrelator / isolator-pair / TFM-pair / series compositions compose
  carriers of their parts.

:func:`make_pair_carrier` returns ``None`` for circuits without a
resumable lowering — callers fall back to whole-stream evaluation.

Next to each carrier lives a **composer** — the same circuit viewed as a
*transition function* instead of a concrete state. A composer's
``step(...)`` consumes a chunk of inputs and folds it into a **state
map**: a picklable summary that, applied to *any* entry state, yields
the exit state the carrier would have reached. Maps compose
associatively (``tests/test_parallel_streaming.py`` property-checks
this), which is the prefix-scan precondition the parallel tile scheduler
(:mod:`repro.engine.parallel`) is built on: each worker composes its
span's map independently, a scan over the maps recovers every span's
entry state, then carriers seeded at those states evaluate all spans in
parallel — bit-identical to the sequential walk.

Map representations per circuit:

* table FSMs (incl. the TFM's estimate register, a 2-symbol FSM over
  ``2**bits`` states) — a ``(batch, n_states)`` array advanced by
  :func:`repro.kernels.steppers.compose_chunk`; compose is a gather,
  apply a row lookup;
* shuffle buffer — ``(written, values)``: which slots the span wrote,
  and the last bit written to each (addresses are position-only, so the
  map is input-affine); compose overlays the later map's writes;
* isolator — the span's last ``min(delay, span_len)`` input bits;
  compose concatenates and truncates;
* decorrelator / TFM-pair / isolator-pair — componentwise maps of their
  parts.

**Series compositions have no composer** (``make_pair_composer`` /
``make_stream_composer`` return ``None``): stage B's inputs depend on
stage A's outputs, which depend on stage A's unknown entry state, so a
span's transition function would need the product state space. Plans
containing them force the sequential fallback — documented in
``docs/architecture.md``.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Tuple

import numpy as np

from .dispatch import compiled_kernel
from .steppers import compose_chunk, state_trajectory, step_chunk
from .tables import CompiledFSM

__all__ = [
    "PairCarrier",
    "StreamCarrier",
    "PairComposer",
    "StreamComposer",
    "make_pair_carrier",
    "make_stream_carrier",
    "make_pair_composer",
    "make_stream_composer",
]


class StreamCarrier(abc.ABC):
    """Resumable one-in / one-out circuit execution."""

    @abc.abstractmethod
    def step(self, bits: np.ndarray) -> np.ndarray:
        """Consume the next ``(batch, chunk_len)`` chunk; return the
        like-shaped output chunk."""

    @abc.abstractmethod
    def get_state(self) -> Any:
        """A picklable snapshot of the carried state."""

    @abc.abstractmethod
    def set_state(self, state: Any) -> None:
        """Restore a snapshot produced by :meth:`get_state` (or by a
        composer's ``apply``)."""


class PairCarrier(abc.ABC):
    """Resumable two-in / two-out circuit execution."""

    @abc.abstractmethod
    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Consume the next chunk of both operands; return both outputs."""

    @abc.abstractmethod
    def get_state(self) -> Any:
        """A picklable snapshot of the carried state."""

    @abc.abstractmethod
    def set_state(self, state: Any) -> None:
        """Restore a snapshot produced by :meth:`get_state` (or by a
        composer's ``apply``)."""


class StreamComposer(abc.ABC):
    """State-map composition for a one-input circuit.

    ``step`` folds a chunk of inputs into the running map; ``state_map``
    exposes it (picklable). ``compose``/``apply`` are pure map algebra —
    usable on maps produced by *any* instance over the same circuit.
    """

    @abc.abstractmethod
    def step(self, bits: np.ndarray) -> None:
        """Fold the next ``(batch, chunk_len)`` input chunk into the map."""

    @property
    @abc.abstractmethod
    def state_map(self) -> Any:
        """The composed map of every chunk stepped so far."""

    @abc.abstractmethod
    def compose(self, first: Any, second: Any) -> Any:
        """The map of ``first``'s span followed by ``second``'s."""

    @abc.abstractmethod
    def apply(self, state_map: Any, state: Any) -> Any:
        """Push a carrier state through a map: the exit state of a span
        entered in ``state``."""


class PairComposer(abc.ABC):
    """State-map composition for a two-input circuit (same contract as
    :class:`StreamComposer`, with a two-operand ``step``)."""

    @abc.abstractmethod
    def step(self, x: np.ndarray, y: np.ndarray) -> None:
        """Fold the next chunk of both operands into the map."""

    @property
    @abc.abstractmethod
    def state_map(self) -> Any:
        ...

    @abc.abstractmethod
    def compose(self, first: Any, second: Any) -> Any:
        ...

    @abc.abstractmethod
    def apply(self, state_map: Any, state: Any) -> Any:
        ...


# ---------------------------------------------------------------------- #
# Table-compiled pair FSMs
# ---------------------------------------------------------------------- #

class TablePairCarrier(PairCarrier):
    """Carrier over a compiled two-output transition-table FSM.

    ``total_length`` lets flush-mode circuits locate the end-of-stream
    tail region across chunk boundaries (``step_chunk`` receives how many
    cycles remain after each chunk); ``start`` positions the carrier
    mid-stream for span-parallel evaluation.
    """

    def __init__(
        self, fsm: CompiledFSM, total_length: int, batch: int, start: int = 0
    ) -> None:
        self._fsm = fsm
        self._remaining = int(total_length) - int(start)
        self._state = np.full(
            batch, fsm.initial_state, dtype=fsm.steady.next_state.dtype
        )

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._remaining -= x.shape[1]
        if self._remaining < 0:
            raise ValueError("carrier stepped past the declared stream length")
        self._state, out_x, out_y = step_chunk(
            self._fsm, self._state, x, y, remaining_after=self._remaining
        )
        return out_x, out_y

    def get_state(self) -> np.ndarray:
        return self._state.copy()

    def set_state(self, state: np.ndarray) -> None:
        self._state = np.asarray(
            state, dtype=self._fsm.steady.next_state.dtype
        ).copy()


def _identity_map(fsm: CompiledFSM, batch: int) -> np.ndarray:
    return np.broadcast_to(
        np.arange(fsm.n_states, dtype=fsm.steady.next_state.dtype),
        (batch, fsm.n_states),
    ).copy()


class TablePairComposer(PairComposer):
    """State maps of a compiled pair FSM over a span of the stream.

    The map is a ``(batch, n_states)`` array: column ``s`` holds the exit
    state of a span entered in state ``s``. Flush tails are positional —
    they depend on where the span ends, not on the entry state — so maps
    across tail-straddling spans stay exact.
    """

    def __init__(
        self, fsm: CompiledFSM, total_length: int, batch: int, start: int = 0
    ) -> None:
        self._fsm = fsm
        self._remaining = int(total_length) - int(start)
        self._map = _identity_map(fsm, batch)

    def step(self, x: np.ndarray, y: np.ndarray) -> None:
        self._remaining -= x.shape[1]
        if self._remaining < 0:
            raise ValueError("composer stepped past the declared stream length")
        symbols = (x.astype(np.uint8) << np.uint8(1)) | y.astype(np.uint8)
        self._map = compose_chunk(
            self._fsm, self._map, symbols, remaining_after=self._remaining
        )

    @property
    def state_map(self) -> np.ndarray:
        return self._map

    def compose(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.take_along_axis(second, first.astype(np.int64), axis=1)

    def apply(self, state_map: np.ndarray, state: np.ndarray) -> np.ndarray:
        picked = np.take_along_axis(
            state_map, state.astype(np.int64)[:, None], axis=1
        )
        return picked[:, 0].astype(self._fsm.steady.next_state.dtype)


# ---------------------------------------------------------------------- #
# Stream circuits with dedicated carriers
# ---------------------------------------------------------------------- #

class ShuffleCarrier(StreamCarrier):
    """Shuffle buffer with carried slot contents.

    Within a chunk the gather trick of
    :func:`repro.kernels.dispatch.shuffle_kernel` applies unchanged; a
    slot not yet written *in this chunk* falls back to the carried buffer
    contents instead of the initial fill, and slots written in the chunk
    update the carry from their last write.
    """

    def __init__(self, buffer, batch: int, start: int = 0) -> None:
        self._buffer = buffer
        self._contents = buffer._initial_buffer(batch)    # (batch, depth)
        self._offset = int(start)

    def step(self, bits: np.ndarray) -> np.ndarray:
        buffer = self._buffer
        length = bits.shape[1]
        addresses = buffer.rng.integers_window(
            self._offset, self._offset + length, buffer.depth
        )
        self._offset += length
        prev = np.full(length, -1, dtype=np.int64)
        slot_last = np.full(buffer.depth, -1, dtype=np.int64)
        for slot in range(buffer.depth):
            hits = np.flatnonzero(addresses == slot)
            if hits.size:
                slot_last[slot] = hits[-1]
                if hits.size > 1:
                    prev[hits[1:]] = hits[:-1]
        fallback = self._contents[:, addresses]            # (batch, length)
        gathered = bits[:, np.maximum(prev, 0)]
        out = np.where(prev[None, :] >= 0, gathered, fallback).astype(np.uint8)
        # Update the carry: each slot keeps the bit of its last write in
        # this chunk (untouched slots keep their carried contents).
        written = slot_last >= 0
        if written.any():
            self._contents[:, written] = bits[:, slot_last[written]]
        return out

    def get_state(self) -> np.ndarray:
        return self._contents.copy()

    def set_state(self, state: np.ndarray) -> None:
        self._contents = np.asarray(state, dtype=np.uint8).copy()


class ShuffleComposer(StreamComposer):
    """Shuffle-buffer state maps: the slot addresses are a pure function
    of stream position, so a span's effect on the buffer is *input-affine*
    — ``(written, values)``: which slots the span wrote at all, and the
    bit each received from its last write. Entry contents only survive in
    slots the span never addressed."""

    def __init__(self, buffer, batch: int, start: int = 0) -> None:
        self._buffer = buffer
        self._offset = int(start)
        self._written = np.zeros(buffer.depth, dtype=bool)
        self._values = np.zeros((batch, buffer.depth), dtype=np.uint8)

    def step(self, bits: np.ndarray) -> None:
        buffer = self._buffer
        length = bits.shape[1]
        addresses = buffer.rng.integers_window(
            self._offset, self._offset + length, buffer.depth
        )
        self._offset += length
        slot_last = np.full(buffer.depth, -1, dtype=np.int64)
        for slot in range(buffer.depth):
            hits = np.flatnonzero(addresses == slot)
            if hits.size:
                slot_last[slot] = hits[-1]
        written = slot_last >= 0
        if written.any():
            self._written |= written
            self._values[:, written] = bits[:, slot_last[written]]

    @property
    def state_map(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._written, self._values

    def compose(self, first, second) -> Tuple[np.ndarray, np.ndarray]:
        w1, v1 = first
        w2, v2 = second
        return w1 | w2, np.where(w2[None, :], v2, v1)

    def apply(self, state_map, state: np.ndarray) -> np.ndarray:
        written, values = state_map
        return np.where(written[None, :], values, state).astype(np.uint8)


class IsolatorCarrier(StreamCarrier):
    """Fixed delay line with a carried ``delay``-bit history."""

    def __init__(self, isolator, batch: int) -> None:
        self._history = np.full(
            (batch, isolator.delay), isolator._fill, dtype=np.uint8
        )

    def step(self, bits: np.ndarray) -> np.ndarray:
        length = bits.shape[1]
        extended = np.concatenate([self._history, bits], axis=1)
        self._history = extended[:, length:]
        return np.ascontiguousarray(extended[:, :length])

    def get_state(self) -> np.ndarray:
        return self._history.copy()

    def set_state(self, state: np.ndarray) -> None:
        self._history = np.asarray(state, dtype=np.uint8).copy()


class IsolatorComposer(StreamComposer):
    """Delay-line state maps: a span leaves the line holding the span's
    last ``delay`` input bits, preceded (for short spans) by the tail of
    whatever was there before — so the map is just the span's trailing
    ``min(delay, span_len)`` bits and compose is concat-and-truncate."""

    def __init__(self, isolator, batch: int) -> None:
        self._delay = int(isolator.delay)
        self._tail = np.empty((batch, 0), dtype=np.uint8)

    def step(self, bits: np.ndarray) -> None:
        self._tail = np.concatenate([self._tail, bits], axis=1)[:, -self._delay:]

    @property
    def state_map(self) -> np.ndarray:
        return self._tail

    def compose(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.concatenate([first, second], axis=1)[:, -self._delay:]

    def apply(self, state_map: np.ndarray, state: np.ndarray) -> np.ndarray:
        merged = np.concatenate([state, state_map], axis=1)[:, -self._delay:]
        return np.ascontiguousarray(merged, dtype=np.uint8)


class TFMCarrier(StreamCarrier):
    """Tracking forecast memory with a carried estimate register."""

    def __init__(self, tfm, fsm: CompiledFSM, batch: int, start: int = 0) -> None:
        self._tfm = tfm
        self._fsm = fsm
        self._offset = int(start)
        self._state = np.full(
            batch, fsm.initial_state, dtype=fsm.steady.next_state.dtype
        )

    def step(self, bits: np.ndarray) -> np.ndarray:
        tfm = self._tfm
        length = bits.shape[1]
        states, self._state = state_trajectory(
            self._fsm,
            np.ascontiguousarray(bits, dtype=np.uint8),
            strategy="chunked",
            initial=self._state,
        )
        window = tfm._rng.sequence_window(self._offset, self._offset + length)
        self._offset += length
        rand = (window * (tfm._max + 1)) // tfm._rng.modulus
        return (rand[None, :] < states.astype(np.int64)).astype(np.uint8)

    def get_state(self) -> np.ndarray:
        return self._state.copy()

    def set_state(self, state: np.ndarray) -> None:
        self._state = np.asarray(
            state, dtype=self._fsm.steady.next_state.dtype
        ).copy()


class FSMStreamComposer(StreamComposer):
    """State maps of a single-input compiled FSM (the TFM's estimate
    register: 2 symbols over ``2**bits`` states). The EMA transition has
    no closed-form composition, but the generic ``(batch, n_states)``
    map advance through the composed chunk LUTs needs none."""

    def __init__(self, fsm: CompiledFSM, batch: int) -> None:
        self._fsm = fsm
        self._map = _identity_map(fsm, batch)

    def step(self, bits: np.ndarray) -> None:
        symbols = np.ascontiguousarray(bits, dtype=np.uint8)
        self._map = compose_chunk(self._fsm, self._map, symbols)

    @property
    def state_map(self) -> np.ndarray:
        return self._map

    def compose(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.take_along_axis(second, first.astype(np.int64), axis=1)

    def apply(self, state_map: np.ndarray, state: np.ndarray) -> np.ndarray:
        picked = np.take_along_axis(
            state_map, state.astype(np.int64)[:, None], axis=1
        )
        return picked[:, 0].astype(self._fsm.steady.next_state.dtype)


class SeriesStreamCarrier(StreamCarrier):
    def __init__(self, stages) -> None:
        self._stages = stages

    def step(self, bits: np.ndarray) -> np.ndarray:
        for stage in self._stages:
            bits = stage.step(bits)
        return bits

    def get_state(self) -> Tuple:
        return tuple(stage.get_state() for stage in self._stages)

    def set_state(self, state: Tuple) -> None:
        for stage, sub in zip(self._stages, state):
            stage.set_state(sub)


# ---------------------------------------------------------------------- #
# Pair adapters
# ---------------------------------------------------------------------- #

class TwoStreamPairCarrier(PairCarrier):
    """A pair circuit made of one independent stream carrier per operand
    (decorrelator, TFM pair)."""

    def __init__(self, carrier_x: StreamCarrier, carrier_y: StreamCarrier) -> None:
        self._cx = carrier_x
        self._cy = carrier_y

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self._cx.step(x), self._cy.step(y)

    def get_state(self) -> Tuple:
        return self._cx.get_state(), self._cy.get_state()

    def set_state(self, state: Tuple) -> None:
        self._cx.set_state(state[0])
        self._cy.set_state(state[1])


class TwoStreamPairComposer(PairComposer):
    """Componentwise maps: the operands never interact, so the pair's
    map is just the pair of per-operand maps."""

    def __init__(self, composer_x: StreamComposer, composer_y: StreamComposer) -> None:
        self._cx = composer_x
        self._cy = composer_y

    def step(self, x: np.ndarray, y: np.ndarray) -> None:
        self._cx.step(x)
        self._cy.step(y)

    @property
    def state_map(self) -> Tuple:
        return self._cx.state_map, self._cy.state_map

    def compose(self, first, second) -> Tuple:
        return (
            self._cx.compose(first[0], second[0]),
            self._cy.compose(first[1], second[1]),
        )

    def apply(self, state_map, state) -> Tuple:
        return (
            self._cx.apply(state_map[0], state[0]),
            self._cy.apply(state_map[1], state[1]),
        )


class PassthroughYPairCarrier(PairCarrier):
    """X passes through combinationally; Y goes through a stream carrier
    (isolator-pair insertion)."""

    def __init__(self, carrier_y: StreamCarrier) -> None:
        self._cy = carrier_y

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return x, self._cy.step(y)

    def get_state(self) -> Any:
        return self._cy.get_state()

    def set_state(self, state: Any) -> None:
        self._cy.set_state(state)


class PassthroughYPairComposer(PairComposer):
    def __init__(self, composer_y: StreamComposer) -> None:
        self._cy = composer_y

    def step(self, x: np.ndarray, y: np.ndarray) -> None:
        self._cy.step(y)

    @property
    def state_map(self) -> Any:
        return self._cy.state_map

    def compose(self, first, second):
        return self._cy.compose(first, second)

    def apply(self, state_map, state):
        return self._cy.apply(state_map, state)


class SeriesPairCarrier(PairCarrier):
    def __init__(self, stages) -> None:
        self._stages = stages

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        for stage in self._stages:
            x, y = stage.step(x, y)
        return x, y

    def get_state(self) -> Tuple:
        return tuple(stage.get_state() for stage in self._stages)

    def set_state(self, state: Tuple) -> None:
        for stage, sub in zip(self._stages, state):
            stage.set_state(sub)


# ---------------------------------------------------------------------- #
# Factories
# ---------------------------------------------------------------------- #

def make_stream_carrier(
    transform, total_length: int, batch: int, start: int = 0
) -> Optional[StreamCarrier]:
    """A resumable carrier for a stream transform, or ``None``.

    ``start`` positions offset-addressed circuits (shuffle addresses,
    TFM comparator windows) mid-stream for span-parallel evaluation; the
    carried *state* still starts at the circuit's initial state — seed it
    with :meth:`~StreamCarrier.set_state` for spans past the first.
    """
    from ..core.compose import SeriesStream
    from ..core.isolator import Isolator
    from ..core.shuffle_buffer import ShuffleBuffer
    from ..core.tfm import TrackingForecastMemory

    if type(transform) is ShuffleBuffer:
        return ShuffleCarrier(transform, batch, start)
    if type(transform) is Isolator:
        return IsolatorCarrier(transform, batch)
    if type(transform) is TrackingForecastMemory:
        fsm = compiled_kernel(transform)
        if fsm is None:
            return None
        return TFMCarrier(transform, fsm, batch, start)
    if type(transform) is SeriesStream:
        stages = [
            make_stream_carrier(stage, total_length, batch, start)
            for stage in transform.stages
        ]
        if any(stage is None for stage in stages):
            return None
        return SeriesStreamCarrier(stages)
    return None


def make_pair_carrier(
    transform, total_length: int, batch: int, start: int = 0
) -> Optional[PairCarrier]:
    """A resumable carrier for a pair transform, or ``None`` when the
    circuit has no chunk-resumable lowering (callers fall back to
    whole-stream evaluation)."""
    from ..core.compose import SeriesPair
    from ..core.decorrelator import Decorrelator
    from ..core.isolator import IsolatorPair
    from ..core.tfm import TFMPair

    if type(transform) is Decorrelator:
        cx = make_stream_carrier(transform.buffer_x, total_length, batch, start)
        cy = make_stream_carrier(transform.buffer_y, total_length, batch, start)
        return TwoStreamPairCarrier(cx, cy)
    if type(transform) is IsolatorPair:
        return PassthroughYPairCarrier(
            IsolatorCarrier(transform._isolator, batch)
        )
    if type(transform) is TFMPair:
        cx = make_stream_carrier(transform._tfm_x, total_length, batch, start)
        cy = make_stream_carrier(transform._tfm_y, total_length, batch, start)
        if cx is None or cy is None:
            return None
        return TwoStreamPairCarrier(cx, cy)
    if type(transform) is SeriesPair:
        stages = [
            make_pair_carrier(stage, total_length, batch, start)
            for stage in transform.stages
        ]
        if any(stage is None for stage in stages):
            return None
        return SeriesPairCarrier(stages)
    fsm = compiled_kernel(transform)
    if fsm is not None and fsm.outputs == 2 and fsm.n_symbols == 4:
        return TablePairCarrier(fsm, total_length, batch, start)
    return None


def make_stream_composer(
    transform, total_length: int, batch: int, start: int = 0
) -> Optional[StreamComposer]:
    """A state-map composer for a stream transform, or ``None`` when the
    circuit's transition function does not compose (series compositions —
    callers force the sequential path)."""
    from ..core.isolator import Isolator
    from ..core.shuffle_buffer import ShuffleBuffer
    from ..core.tfm import TrackingForecastMemory

    if type(transform) is ShuffleBuffer:
        return ShuffleComposer(transform, batch, start)
    if type(transform) is Isolator:
        return IsolatorComposer(transform, batch)
    if type(transform) is TrackingForecastMemory:
        fsm = compiled_kernel(transform)
        if fsm is None:
            return None
        return FSMStreamComposer(fsm, batch)
    return None


def make_pair_composer(
    transform, total_length: int, batch: int, start: int = 0
) -> Optional[PairComposer]:
    """A state-map composer for a pair transform, or ``None`` when the
    circuit's transition function does not compose (series compositions,
    unkernelized circuits — callers force the sequential path)."""
    from ..core.decorrelator import Decorrelator
    from ..core.isolator import IsolatorPair
    from ..core.tfm import TFMPair

    if type(transform) is Decorrelator:
        cx = make_stream_composer(transform.buffer_x, total_length, batch, start)
        cy = make_stream_composer(transform.buffer_y, total_length, batch, start)
        if cx is None or cy is None:
            return None
        return TwoStreamPairComposer(cx, cy)
    if type(transform) is IsolatorPair:
        return PassthroughYPairComposer(
            IsolatorComposer(transform._isolator, batch)
        )
    if type(transform) is TFMPair:
        cx = make_stream_composer(transform._tfm_x, total_length, batch, start)
        cy = make_stream_composer(transform._tfm_y, total_length, batch, start)
        if cx is None or cy is None:
            return None
        return TwoStreamPairComposer(cx, cy)
    fsm = compiled_kernel(transform)
    if fsm is not None and fsm.outputs == 2 and fsm.n_symbols == 4:
        return TablePairComposer(fsm, total_length, batch, start)
    return None
