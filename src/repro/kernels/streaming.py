"""Resumable (carry-state) execution of sequential circuits.

The kernels in :mod:`repro.kernels.dispatch` evaluate a whole stream per
call: every circuit restarts from its initial state. Tile streaming needs
the opposite — a stream arrives chunk by chunk, and the circuit's state
must survive the chunk boundary. This module wraps each kernelized
circuit type in a **carrier**: a small stateful object created once per
stream evaluation whose ``step(...)`` consumes consecutive chunks and is
bit-identical to the one-shot kernel over the concatenation.

Carrier construction mirrors :func:`repro.kernels.dispatch.is_kernelized`:

* table-compiled pair FSMs (synchronizer, desynchronizer, flush modes
  included) resume via :func:`repro.kernels.steppers.step_chunk`;
* the shuffle buffer carries its ``depth``-slot contents plus the stream
  offset (addresses come from the RNG's window API);
* the isolator carries its last ``delay`` input bits;
* the TFM carries its estimate register; its auxiliary comparator
  sequence is windowed;
* decorrelator / isolator-pair / TFM-pair / series compositions compose
  carriers of their parts.

:func:`make_pair_carrier` returns ``None`` for circuits without a
resumable lowering — callers fall back to whole-stream evaluation.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from .dispatch import compiled_kernel
from .steppers import state_trajectory, step_chunk
from .tables import CompiledFSM

__all__ = ["PairCarrier", "StreamCarrier", "make_pair_carrier", "make_stream_carrier"]


class StreamCarrier(abc.ABC):
    """Resumable one-in / one-out circuit execution."""

    @abc.abstractmethod
    def step(self, bits: np.ndarray) -> np.ndarray:
        """Consume the next ``(batch, chunk_len)`` chunk; return the
        like-shaped output chunk."""


class PairCarrier(abc.ABC):
    """Resumable two-in / two-out circuit execution."""

    @abc.abstractmethod
    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Consume the next chunk of both operands; return both outputs."""


# ---------------------------------------------------------------------- #
# Table-compiled pair FSMs
# ---------------------------------------------------------------------- #

class TablePairCarrier(PairCarrier):
    """Carrier over a compiled two-output transition-table FSM.

    ``total_length`` lets flush-mode circuits locate the end-of-stream
    tail region across chunk boundaries (``step_chunk`` receives how many
    cycles remain after each chunk).
    """

    def __init__(self, fsm: CompiledFSM, total_length: int, batch: int) -> None:
        self._fsm = fsm
        self._remaining = int(total_length)
        self._state = np.full(
            batch, fsm.initial_state, dtype=fsm.steady.next_state.dtype
        )

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._remaining -= x.shape[1]
        if self._remaining < 0:
            raise ValueError("carrier stepped past the declared stream length")
        self._state, out_x, out_y = step_chunk(
            self._fsm, self._state, x, y, remaining_after=self._remaining
        )
        return out_x, out_y


# ---------------------------------------------------------------------- #
# Stream circuits with dedicated carriers
# ---------------------------------------------------------------------- #

class ShuffleCarrier(StreamCarrier):
    """Shuffle buffer with carried slot contents.

    Within a chunk the gather trick of
    :func:`repro.kernels.dispatch.shuffle_kernel` applies unchanged; a
    slot not yet written *in this chunk* falls back to the carried buffer
    contents instead of the initial fill, and slots written in the chunk
    update the carry from their last write.
    """

    def __init__(self, buffer, batch: int) -> None:
        self._buffer = buffer
        self._contents = buffer._initial_buffer(batch)    # (batch, depth)
        self._offset = 0

    def step(self, bits: np.ndarray) -> np.ndarray:
        buffer = self._buffer
        length = bits.shape[1]
        addresses = buffer.rng.integers_window(
            self._offset, self._offset + length, buffer.depth
        )
        self._offset += length
        prev = np.full(length, -1, dtype=np.int64)
        slot_last = np.full(buffer.depth, -1, dtype=np.int64)
        for slot in range(buffer.depth):
            hits = np.flatnonzero(addresses == slot)
            if hits.size:
                slot_last[slot] = hits[-1]
                if hits.size > 1:
                    prev[hits[1:]] = hits[:-1]
        fallback = self._contents[:, addresses]            # (batch, length)
        gathered = bits[:, np.maximum(prev, 0)]
        out = np.where(prev[None, :] >= 0, gathered, fallback).astype(np.uint8)
        # Update the carry: each slot keeps the bit of its last write in
        # this chunk (untouched slots keep their carried contents).
        written = slot_last >= 0
        if written.any():
            self._contents[:, written] = bits[:, slot_last[written]]
        return out


class IsolatorCarrier(StreamCarrier):
    """Fixed delay line with a carried ``delay``-bit history."""

    def __init__(self, isolator, batch: int) -> None:
        self._history = np.full(
            (batch, isolator.delay), isolator._fill, dtype=np.uint8
        )

    def step(self, bits: np.ndarray) -> np.ndarray:
        length = bits.shape[1]
        extended = np.concatenate([self._history, bits], axis=1)
        self._history = extended[:, length:]
        return np.ascontiguousarray(extended[:, :length])


class TFMCarrier(StreamCarrier):
    """Tracking forecast memory with a carried estimate register."""

    def __init__(self, tfm, fsm: CompiledFSM, batch: int) -> None:
        self._tfm = tfm
        self._fsm = fsm
        self._offset = 0
        self._state = np.full(
            batch, fsm.initial_state, dtype=fsm.steady.next_state.dtype
        )

    def step(self, bits: np.ndarray) -> np.ndarray:
        tfm = self._tfm
        length = bits.shape[1]
        states, self._state = state_trajectory(
            self._fsm,
            np.ascontiguousarray(bits, dtype=np.uint8),
            strategy="chunked",
            initial=self._state,
        )
        window = tfm._rng.sequence_window(self._offset, self._offset + length)
        self._offset += length
        rand = (window * (tfm._max + 1)) // tfm._rng.modulus
        return (rand[None, :] < states.astype(np.int64)).astype(np.uint8)


class SeriesStreamCarrier(StreamCarrier):
    def __init__(self, stages) -> None:
        self._stages = stages

    def step(self, bits: np.ndarray) -> np.ndarray:
        for stage in self._stages:
            bits = stage.step(bits)
        return bits


# ---------------------------------------------------------------------- #
# Pair adapters
# ---------------------------------------------------------------------- #

class TwoStreamPairCarrier(PairCarrier):
    """A pair circuit made of one independent stream carrier per operand
    (decorrelator, TFM pair)."""

    def __init__(self, carrier_x: StreamCarrier, carrier_y: StreamCarrier) -> None:
        self._cx = carrier_x
        self._cy = carrier_y

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self._cx.step(x), self._cy.step(y)


class PassthroughYPairCarrier(PairCarrier):
    """X passes through combinationally; Y goes through a stream carrier
    (isolator-pair insertion)."""

    def __init__(self, carrier_y: StreamCarrier) -> None:
        self._cy = carrier_y

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return x, self._cy.step(y)


class SeriesPairCarrier(PairCarrier):
    def __init__(self, stages) -> None:
        self._stages = stages

    def step(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        for stage in self._stages:
            x, y = stage.step(x, y)
        return x, y


# ---------------------------------------------------------------------- #
# Factories
# ---------------------------------------------------------------------- #

def make_stream_carrier(transform, total_length: int, batch: int) -> Optional[StreamCarrier]:
    """A resumable carrier for a stream transform, or ``None``."""
    from ..core.compose import SeriesStream
    from ..core.isolator import Isolator
    from ..core.shuffle_buffer import ShuffleBuffer
    from ..core.tfm import TrackingForecastMemory

    if type(transform) is ShuffleBuffer:
        return ShuffleCarrier(transform, batch)
    if type(transform) is Isolator:
        return IsolatorCarrier(transform, batch)
    if type(transform) is TrackingForecastMemory:
        fsm = compiled_kernel(transform)
        if fsm is None:
            return None
        return TFMCarrier(transform, fsm, batch)
    if type(transform) is SeriesStream:
        stages = [
            make_stream_carrier(stage, total_length, batch)
            for stage in transform.stages
        ]
        if any(stage is None for stage in stages):
            return None
        return SeriesStreamCarrier(stages)
    return None


def make_pair_carrier(transform, total_length: int, batch: int) -> Optional[PairCarrier]:
    """A resumable carrier for a pair transform, or ``None`` when the
    circuit has no chunk-resumable lowering (callers fall back to
    whole-stream evaluation)."""
    from ..core.compose import SeriesPair
    from ..core.decorrelator import Decorrelator
    from ..core.isolator import IsolatorPair
    from ..core.tfm import TFMPair

    if type(transform) is Decorrelator:
        cx = make_stream_carrier(transform.buffer_x, total_length, batch)
        cy = make_stream_carrier(transform.buffer_y, total_length, batch)
        return TwoStreamPairCarrier(cx, cy)
    if type(transform) is IsolatorPair:
        return PassthroughYPairCarrier(
            IsolatorCarrier(transform._isolator, batch)
        )
    if type(transform) is TFMPair:
        cx = make_stream_carrier(transform._tfm_x, total_length, batch)
        cy = make_stream_carrier(transform._tfm_y, total_length, batch)
        if cx is None or cy is None:
            return None
        return TwoStreamPairCarrier(cx, cy)
    if type(transform) is SeriesPair:
        stages = [
            make_pair_carrier(stage, total_length, batch)
            for stage in transform.stages
        ]
        if any(stage is None for stage in stages):
            return None
        return SeriesPairCarrier(stages)
    fsm = compiled_kernel(transform)
    if fsm is not None and fsm.outputs == 2 and fsm.n_symbols == 4:
        return TablePairCarrier(fsm, total_length, batch)
    return None
