"""Time-parallel execution of compiled transition tables.

The reference FSM loops run one numpy masked-update pass *per stream bit*
— ``O(length)`` python-level iterations, each touching only ``batch``
elements. Given a :class:`~repro.kernels.tables.CompiledFSM`, the steppers
here recover the state trajectory with far fewer, far fatter numpy calls:

* **chunked-LUT stepper** — pre-composes the per-symbol transition
  functions over every possible ``k``-symbol window into one LUT
  ``(symbol-chunk code, state) -> state`` (``n_symbols**k * n_states``
  entries, cached per FSM). The time loop then advances ``k`` cycles per
  fancy-indexed gather: ``length/k + 2k`` python iterations, each over the
  whole batch.
* **log-doubling scan stepper** — materialises each cycle's transition
  function as a ``(batch, length, n_states)`` state-map tensor and
  composes prefixes associatively by Hillis–Steele doubling:
  ``O(log length)`` python iterations of ``O(batch * length * n_states)``
  gathers. Wins when the batch is small and the stream long (the chunked
  stepper's per-call overhead dominates there).

Both produce the exact state sequence of the reference loop — the
trajectory is defined by the tables, and the tables are exact — so the
outputs gathered from them are bit-identical. ``strategy="auto"`` picks
per ``(length, batch, n_states)`` with a simple cost model.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .tables import CompiledFSM

__all__ = [
    "state_trajectory",
    "chunked_outputs",
    "step_chunk",
    "compose_chunk",
    "choose_chunk",
    "choose_strategy",
    "STRATEGIES",
]

STRATEGIES = ("auto", "chunked", "scan", "step")

# Composed chunk LUTs are capped at this many entries (~2 MB of int16).
_CHUNK_TABLE_LIMIT = 1 << 20
_MAX_CHUNK = 16

# Rough element-equivalent cost of one python-level numpy dispatch; used
# only to pick a strategy, so the exact value is uncritical.
_CALL_OVERHEAD = 4096

# The scan tensor is (batch, length, n_states) int16; refuse to build one
# beyond this many elements (auto falls back to chunked).
_SCAN_ELEMENT_LIMIT = 1 << 27


def choose_chunk(n_symbols: int, n_states: int) -> int:
    """Largest ``k`` whose composed chunk LUT stays within the size cap."""
    k = 1
    while (
        k < _MAX_CHUNK
        and n_symbols ** (k + 1) * n_states <= _CHUNK_TABLE_LIMIT
    ):
        k += 1
    return k


def choose_strategy(batch: int, length: int, n_states: int, n_symbols: int) -> str:
    """Cost-model pick between the chunked and scan steppers."""
    if length <= 1:
        return "step"
    k = choose_chunk(n_symbols, n_states)
    chunks = length // k
    chunk_cost = (
        batch * length                      # intra-chunk expansion gathers
        + batch * chunks                    # chunk-entry gathers
        + _CALL_OVERHEAD * (chunks + k + (length - chunks * k))
    )
    rounds = max(1, math.ceil(math.log2(length)))
    scan_elements = batch * length * n_states
    scan_cost = scan_elements * (rounds + 1) + _CALL_OVERHEAD * (rounds + 2)
    if scan_cost < chunk_cost and scan_elements <= _SCAN_ELEMENT_LIMIT:
        return "scan"
    return "chunked"


def _composed_table(fsm: CompiledFSM, k: int, fused: bool) -> np.ndarray:
    """The k-step composition LUT, cached per ``(k, fused)``.

    Chunk codes pack symbols little-endian: ``code = sum_j sym_j *
    n_symbols**j`` where step ``j`` is applied ``j``-th.

    * ``fused=False`` — the plain state map: ``comp[code, s]`` is the
      state after the k steps (trajectory steppers).
    * ``fused=True`` — a uint32 LUT whose low 16 bits hold that state and
      whose high 16 bits pack the k per-step output bits: bit
      ``16 + 2j`` is step ``j``'s ``out_x``, bit ``16 + 2j + 1`` its
      ``out_y`` (single-output circuits use bit ``16 + j``). One gather
      per chunk then yields both the state advance and the output bits.
      Requires ``stride * k <= 16`` (the caller caps k).
    """
    key = (k, fused)
    cached = fsm._composed.get(key)
    if cached is None:
        n_codes = fsm.n_symbols ** k
        comp = np.broadcast_to(
            np.arange(fsm.n_states, dtype=fsm.steady.next_state.dtype),
            (n_codes, fsm.n_states),
        ).copy()
        out_words = np.zeros((n_codes, fsm.n_states), dtype=np.uint32) if fused else None
        codes = np.arange(n_codes, dtype=np.int64)
        stride = 2 if fsm.steady.out_y is not None else 1
        for j in range(k):
            digit = (codes // fsm.n_symbols ** j) % fsm.n_symbols
            if fused:
                bits_x = fsm.steady.out_x[digit[:, None], comp]
                out_words |= bits_x.astype(np.uint32) << np.uint32(stride * j)
                if stride == 2:
                    bits_y = fsm.steady.out_y[digit[:, None], comp]
                    out_words |= bits_y.astype(np.uint32) << np.uint32(2 * j + 1)
            comp = fsm.steady.next_state[digit[:, None], comp]
        if fused:
            cached = comp.astype(np.uint32) | (out_words << np.uint32(16))
        else:
            cached = comp
        fsm._composed[key] = cached
    return cached


def _chunk_codes(sym3: np.ndarray, n_symbols: int, k: int) -> np.ndarray:
    """Pack each row of k symbols into one chunk code, ``(batch, chunks)``.

    Symbol alphabets here are powers of two (4 for pair circuits, 2 for
    single-input ones), so the pack is a shift-accumulate over uint32;
    the general multiply-sum is kept for completeness.
    """
    bits = n_symbols.bit_length() - 1
    if n_symbols == 1 << bits:
        codes = sym3[:, :, 0].astype(np.uint32)
        for j in range(1, k):
            codes |= sym3[:, :, j].astype(np.uint32) << np.uint32(bits * j)
        return codes
    powers = n_symbols ** np.arange(k, dtype=np.int64)
    return (sym3.astype(np.int64) * powers).sum(axis=2)


_MORTON_LUT: Optional[np.ndarray] = None


def _morton_lut() -> np.ndarray:
    """byte -> uint32 with bit j spread to bit 2j (build once)."""
    global _MORTON_LUT
    if _MORTON_LUT is None:
        b = np.arange(256, dtype=np.uint32)
        spread = np.zeros(256, dtype=np.uint32)
        for j in range(8):
            spread |= ((b >> np.uint32(j)) & np.uint32(1)) << np.uint32(2 * j)
        _MORTON_LUT = spread
    return _MORTON_LUT


def _pair_chunk_codes(
    x: np.ndarray, y: np.ndarray, chunks: int, k: int,
) -> np.ndarray:
    """Chunk codes for a 4-symbol pair circuit straight from the two bit
    planes: ``code = sum_j (2 x_j + y_j) 4^j``.

    For the byte-aligned case (k = 8) this is one ``np.packbits`` per
    plane plus a Morton-spread LUT gather — no per-symbol python loop at
    all; other k fall back to the shift-accumulate over the symbol array.
    """
    batch = x.shape[0]
    if k == 8:
        xb = np.packbits(x[:, : chunks * 8], axis=1, bitorder="little")
        yb = np.packbits(y[:, : chunks * 8], axis=1, bitorder="little")
        lut = _morton_lut()
        return (lut[xb] << np.uint32(1)) | lut[yb]
    span = chunks * k
    sym3 = (
        ((x[:, :span] << np.uint8(1)) | y[:, :span]).reshape(batch, chunks, k)
    )
    return _chunk_codes(sym3, 4, k)


def _step_trajectory(
    next_state: np.ndarray, symbols: np.ndarray, state: np.ndarray,
    states: np.ndarray, start: int, stop: int,
) -> np.ndarray:
    """Reference per-cycle stepping over ``[start, stop)`` (also the tail
    helper for the chunked stepper's sub-chunk remainder)."""
    for t in range(start, stop):
        states[:, t] = state
        state = next_state[symbols[:, t], state]
    return state


def _chunked_trajectory(
    fsm: CompiledFSM, symbols: np.ndarray, state: np.ndarray, states: np.ndarray,
) -> np.ndarray:
    next_state = fsm.steady.next_state
    batch, length = symbols.shape
    k = choose_chunk(fsm.n_symbols, fsm.n_states)
    chunks = length // k
    if chunks:
        comp = _composed_table(fsm, k, fused=False)
        sym3 = symbols[:, : chunks * k].reshape(batch, chunks, k)
        codes = _chunk_codes(sym3, fsm.n_symbols, k)
        entry = np.empty((batch, chunks), dtype=next_state.dtype)
        for c in range(chunks):
            entry[:, c] = state
            state = comp[codes[:, c], state]
        # Expand intra-chunk states: k gathers over (batch, chunks).
        traj = np.empty((batch, chunks, k), dtype=next_state.dtype)
        st = entry
        for j in range(k):
            traj[:, :, j] = st
            if j + 1 < k:
                st = next_state[sym3[:, :, j], st]
        states[:, : chunks * k] = traj.reshape(batch, chunks * k)
    return _step_trajectory(next_state, symbols, state, states, chunks * k, length)


def chunked_outputs(
    fsm: CompiledFSM, x: np.ndarray, y: np.ndarray, state: np.ndarray,
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Chunked-LUT execution of a 4-symbol pair circuit, emitting output
    bits directly from the input bit planes.

    The fused chunk LUT carries, next to the k-step state map, the k
    packed per-step output bits — so the hot loop is a *single* flat
    ``take`` per chunk over the batch axis and the state trajectory is
    never materialised. Chunk codes come straight from the bit planes
    (:func:`_pair_chunk_codes`), and the packed output words are split
    into bit matrices with one ``np.unpackbits`` pass. Returns
    ``(out_x, out_y, final_state)`` over the inputs' full extent
    (``out_y`` is ``None`` for single-output circuits).
    """
    next_state = fsm.steady.next_state
    batch, length = x.shape
    two = fsm.steady.out_y is not None
    stride = 2 if two else 1
    out_x = np.empty((batch, length), dtype=np.uint8)
    out_y = np.empty((batch, length), dtype=np.uint8) if two else None
    # The fused LUT spends 16 bits on the state and 16 on output bits.
    k = min(choose_chunk(fsm.n_symbols, fsm.n_states), 16 // stride)
    chunks = length // k
    if chunks:
        fused = _composed_table(fsm, k, fused=True).ravel()
        n_states = np.uint32(fsm.n_states)
        state_mask = np.uint32(0xFFFF)
        codes = _pair_chunk_codes(x, y, chunks, k)
        words = np.empty((batch, chunks), dtype=np.uint32)
        st = state.astype(np.uint32)
        for c in range(chunks):
            # Flat index fits uint32: n_codes * n_states <= the table cap.
            f = fused.take(codes[:, c] * n_states + st)
            words[:, c] = f >> np.uint32(16)
            st = f & state_mask
        state = st.astype(next_state.dtype)
        # Split the packed words into bits: little-endian byte view ->
        # one unpackbits pass -> strided slices per output.
        byte_view = words.astype("<u4", copy=False).view(np.uint8)
        allbits = np.unpackbits(byte_view, axis=1, bitorder="little")
        allbits = allbits.reshape(batch, chunks, 32)
        out_x[:, : chunks * k] = (
            allbits[:, :, 0 : stride * k : stride].reshape(batch, chunks * k)
        )
        if two:
            out_y[:, : chunks * k] = (
                allbits[:, :, 1 : 2 * k : 2].reshape(batch, chunks * k)
            )
    # Sub-chunk remainder: per-cycle gathers, at most k - 1 iterations.
    for t in range(chunks * k, length):
        sym_t = (x[:, t] << np.uint8(1)) | y[:, t]
        out_x[:, t] = fsm.steady.out_x[sym_t, state]
        if two:
            out_y[:, t] = fsm.steady.out_y[sym_t, state]
        state = next_state[sym_t, state]
    return out_x, out_y, state


def step_chunk(
    fsm: CompiledFSM,
    state: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    *,
    remaining_after: int = 0,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Resumable chunk execution: advance the FSM over one chunk of the
    stream, carrying state across chunk boundaries.

    One-shot stepping restarts the FSM from its initial state on every
    call — fine for whole streams, impossible for tile streaming, where a
    stream arrives as a sequence of chunks. ``step_chunk`` instead takes
    the state the previous chunk ended in and returns the state this one
    ends in, so splitting a stream at *any* boundaries reproduces the
    one-shot run bit for bit::

        state = initial
        for chunk in chunks:
            state, ox, oy = step_chunk(fsm, state, cx, cy,
                                       remaining_after=cycles_after_chunk)

    Args:
        fsm: a compiled pair FSM (``n_symbols == 4``, ``outputs >= 1``;
            trajectory-only circuits resume via
            :func:`state_trajectory`'s ``initial`` argument instead).
        state: ``(batch,)`` states entering the chunk (start a stream
            with ``fsm.initial_state`` everywhere).
        x, y: ``(batch, chunk_len)`` input bit planes.
        remaining_after: stream cycles that follow this chunk (0 for the
            final chunk). Flush-mode circuits consult it to decide which
            cycles fall in the tail region: a cycle with
            ``remaining <= len(fsm.tails)`` steps its per-remaining tail
            table — even when the tail region straddles chunk boundaries.

    Returns:
        ``(state_after, out_x, out_y)`` — ``out_y`` is ``None`` for
        single-output circuits.
    """
    if fsm.n_symbols != 4 or not fsm.outputs:
        raise ValueError(
            f"step_chunk needs a pair FSM with outputs (got n_symbols="
            f"{fsm.n_symbols}, outputs={fsm.outputs})"
        )
    if remaining_after < 0:
        raise ValueError(f"remaining_after must be >= 0, got {remaining_after}")
    batch, length = x.shape
    two = fsm.steady.out_y is not None
    # Cycles of this chunk that fall in the flush-tail region (remaining
    # counts down to remaining_after + 1 at the chunk's last cycle).
    tail_here = max(0, min(length, len(fsm.tails) - remaining_after))
    steady_len = length - tail_here
    state = state.astype(fsm.steady.next_state.dtype, copy=True)
    if steady_len:
        ox_steady, oy_steady, state = chunked_outputs(
            fsm, x[:, :steady_len], y[:, :steady_len], state
        )
    out_x = np.empty((batch, length), dtype=np.uint8)
    out_y = np.empty((batch, length), dtype=np.uint8) if two else None
    if steady_len:
        out_x[:, :steady_len] = ox_steady
        if two:
            out_y[:, :steady_len] = oy_steady
    for t in range(steady_len, length):
        remaining = length - t + remaining_after
        table = fsm.tails[remaining - 1]
        sym_t = (x[:, t] << np.uint8(1)) | y[:, t]
        out_x[:, t] = table.out_x[sym_t, state]
        if two:
            out_y[:, t] = table.out_y[sym_t, state]
        state = table.next_state[sym_t, state]
    return state, out_x, out_y


def compose_chunk(
    fsm: CompiledFSM,
    maps: np.ndarray,
    symbols: np.ndarray,
    *,
    remaining_after: int = 0,
) -> np.ndarray:
    """Advance a batch of *state maps* over one symbol chunk.

    Where :func:`step_chunk` advances one concrete state per row, this
    advances the whole transition *function*: ``maps[b, s]`` is the state
    row ``b`` would be in after the already-composed prefix **if** it had
    entered that prefix in state ``s``. Feeding consecutive chunks
    composes their transition functions, so a span of a stream can be
    summarised as a single ``(batch, n_states)`` map without knowing the
    span's entry state — the enabler for prefix-scanned parallel tile
    scheduling (:mod:`repro.engine.parallel`).

    The steady region advances ``k`` symbols per gather through the same
    composed chunk LUT as the trajectory steppers; flush-tail cycles
    (``remaining <= len(fsm.tails)``) step their per-remaining tail
    table exactly as :func:`step_chunk` does, so maps composed across a
    tail-straddling boundary stay exact.

    Args:
        fsm: compiled transition tables (any ``n_symbols``).
        maps: ``(batch, n_states)`` prefix maps (start a span with the
            identity map ``arange(n_states)`` broadcast over the batch).
        symbols: ``(batch, length)`` symbol indices.
        remaining_after: stream cycles that follow this chunk.

    Returns the advanced ``(batch, n_states)`` maps (a fresh array; the
    input is never mutated).
    """
    if remaining_after < 0:
        raise ValueError(f"remaining_after must be >= 0, got {remaining_after}")
    batch, length = symbols.shape
    n_states = fsm.n_states
    if maps.shape != (batch, n_states):
        raise ValueError(
            f"maps shape {maps.shape} does not match (batch, n_states) = "
            f"({batch}, {n_states})"
        )
    maps = maps.astype(fsm.steady.next_state.dtype, copy=True)
    tail_here = max(0, min(length, len(fsm.tails) - remaining_after))
    steady_len = length - tail_here
    k = choose_chunk(fsm.n_symbols, n_states)
    chunks = steady_len // k
    if chunks:
        flat = _composed_table(fsm, k, fused=False).ravel()
        sym3 = symbols[:, : chunks * k].reshape(batch, chunks, k)
        codes = _chunk_codes(sym3, fsm.n_symbols, k).astype(np.int64)
        for c in range(chunks):
            maps = flat.take(codes[:, c, None] * n_states + maps)
    for t in range(chunks * k, steady_len):
        maps = fsm.steady.next_state[symbols[:, t, None], maps]
    for t in range(steady_len, length):
        remaining = length - t + remaining_after
        table = fsm.tails[remaining - 1]
        maps = table.next_state[symbols[:, t, None], maps]
    return maps


def _scan_trajectory(
    fsm: CompiledFSM, symbols: np.ndarray, state: np.ndarray, states: np.ndarray,
) -> np.ndarray:
    next_state = fsm.steady.next_state
    batch, length = symbols.shape
    # g[b, t, s] = state after step t if the state before step 0 was s;
    # initialised to the per-step maps, then prefix-composed by doubling.
    g = next_state[symbols]                       # (batch, length, n_states)
    d = 1
    while d < length:
        g[:, d:, :] = np.take_along_axis(g[:, d:, :], g[:, :-d, :], axis=2)
        d *= 2
    # The trajectory needs one starting column per distinct initial state;
    # every caller starts all rows at fsm.initial_state, so a single
    # column gather suffices.
    init = int(state[0])
    states[:, 0] = init
    states[:, 1:] = g[:, :-1, init]
    return g[:, -1, init].astype(next_state.dtype, copy=False)


def state_trajectory(
    fsm: CompiledFSM,
    symbols: np.ndarray,
    *,
    strategy: str = "auto",
    initial: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """States *before* each steady-state step, plus the final state.

    Args:
        fsm: compiled transition tables (steady table only; flush tails
            are the dispatcher's job).
        symbols: ``(batch, length)`` symbol indices in
            ``[0, fsm.n_symbols)``.
        strategy: ``"auto"`` | ``"chunked"`` | ``"scan"`` | ``"step"``.
        initial: optional ``(batch,)`` starting states (defaults to
            ``fsm.initial_state`` everywhere). The scan stepper requires
            a uniform start and falls back to chunked otherwise.

    Returns:
        ``(states, final)`` — ``states[b, t]`` is row ``b``'s state
        entering step ``t`` (shape of ``symbols``); ``final`` the state
        after the last step.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    batch, length = symbols.shape
    dtype = fsm.steady.next_state.dtype
    if initial is None:
        state = np.full(batch, fsm.initial_state, dtype=dtype)
        uniform = True
    else:
        state = initial.astype(dtype, copy=True)
        uniform = bool(batch) and bool(np.all(state == state[0]))
    states = np.empty((batch, length), dtype=dtype)
    if length == 0 or batch == 0:
        return states, state
    if strategy == "auto":
        strategy = choose_strategy(batch, length, fsm.n_states, fsm.n_symbols)
    if strategy == "scan" and not uniform:
        strategy = "chunked"
    if strategy == "scan":
        final = _scan_trajectory(fsm, symbols, state, states)
    elif strategy == "chunked":
        final = _chunked_trajectory(fsm, symbols, state, states)
    else:
        final = _step_trajectory(
            fsm.steady.next_state, symbols, state, states, 0, length
        )
    return states, final
