"""Transition-table compilation of bounded-state sequential circuits.

Every correlation manipulating FSM in this repo has a *tiny* state space:
the synchronizer's surplus ledger has ``2D + 1`` states, the
desynchronizer's tagged queue ``2(D + 1)``, CORDIV's flip-flop 2, the CA
adder's carry accumulator 2, the CA max counter ``2**bits``, and the TFM's
probability register ``2**bits``. Each cycle consumes one *symbol* — the
2-bit ``(x, y)`` input pair for pair circuits, the single input bit for
stream circuits — and the whole per-cycle update is a pure function
``(symbol, state) -> (next_state, out_x[, out_y])``.

This module lowers each circuit into explicit numpy lookup tables of that
function, so the executors in :mod:`repro.kernels.steppers` can step the
FSM with fancy-indexed gathers instead of re-deriving the update logic in
Python every cycle.

**Flush phases.** The synchronizer/desynchronizer flush extension makes
the transition depend on ``remaining = length - t`` — but only once
``remaining <= depth`` (the saved-bit ledgers are bounded by ``depth``, so
the flush condition cannot fire earlier). A compiled FSM therefore carries
one *steady-state* table (used for all but the last ``depth`` cycles) plus
one *tail* table per remaining-cycles value ``r in 1..depth``. The tail is
executed step-by-step (``O(depth)`` python iterations, independent of
stream length).

Compilation is **deterministic**: the tables are pure functions of the
circuit's constructor parameters, so compiling twice yields bit-identical
arrays (property-tested in ``tests/test_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Type

import numpy as np

__all__ = [
    "TransitionTable",
    "CompiledFSM",
    "compile_transform",
    "compilable_types",
    "MAX_TABLE_STATES",
]

# Circuits whose state space exceeds this are left on the reference loop
# (table build and gather cost would outweigh the win).
MAX_TABLE_STATES = 4096

_STATE_DTYPE = np.int16


@dataclass(frozen=True)
class TransitionTable:
    """One ``(symbol, state)``-indexed step of a compiled FSM.

    ``next_state`` has shape ``(n_symbols, n_states)``; ``out_x`` (and
    ``out_y`` for two-output circuits) the same shape with 0/1 entries.
    ``out_x is None`` marks a trajectory-only table (TFM: the output needs
    the auxiliary random sequence, not just the state).
    """

    next_state: np.ndarray
    out_x: Optional[np.ndarray] = None
    out_y: Optional[np.ndarray] = None


@dataclass
class CompiledFSM:
    """A sequential circuit lowered to transition tables.

    ``tails[r - 1]`` replaces ``steady`` when ``remaining == r`` cycles are
    left (flush modes only; empty tuple otherwise). ``_composed`` caches
    the k-step chunk-composition LUTs built by the steppers.
    """

    name: str
    n_states: int
    n_symbols: int
    initial_state: int
    steady: TransitionTable
    tails: Tuple[TransitionTable, ...] = ()
    outputs: int = 2               # 2 = pair, 1 = single stream, 0 = trajectory-only
    _composed: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)


# A scalar step function: (state_index, x, y, remaining) ->
# (next_state_index, out_x, out_y). ``remaining=None`` means "steady
# state" (flush cannot fire).
_StepFn = Callable[[int, int, int, Optional[int]], Tuple[int, int, int]]


def _build_table(
    step: _StepFn, n_states: int, n_symbols: int, remaining: Optional[int],
    *, outputs: int,
) -> TransitionTable:
    next_state = np.zeros((n_symbols, n_states), dtype=_STATE_DTYPE)
    out_x = np.zeros((n_symbols, n_states), dtype=np.uint8) if outputs else None
    out_y = np.zeros((n_symbols, n_states), dtype=np.uint8) if outputs == 2 else None
    for sym in range(n_symbols):
        x, y = (sym >> 1) & 1, sym & 1
        if n_symbols == 2:          # single-input circuits: symbol IS the bit
            x, y = sym, 0
        for s in range(n_states):
            ns, ox, oy = step(s, x, y, remaining)
            if not 0 <= ns < n_states:
                raise AssertionError(
                    f"step left the state space: {s} -> {ns} (n_states={n_states})"
                )
            next_state[sym, s] = ns
            if out_x is not None:
                out_x[sym, s] = ox
            if out_y is not None:
                out_y[sym, s] = oy
    return TransitionTable(next_state=next_state, out_x=out_x, out_y=out_y)


def _compile(
    name: str, step: _StepFn, n_states: int, n_symbols: int, initial_state: int,
    *, max_phase: int = 0, outputs: int = 2,
) -> CompiledFSM:
    steady = _build_table(step, n_states, n_symbols, None, outputs=outputs)
    tails = tuple(
        _build_table(step, n_states, n_symbols, r, outputs=outputs)
        for r in range(1, max_phase + 1)
    )
    return CompiledFSM(
        name=name, n_states=n_states, n_symbols=n_symbols,
        initial_state=initial_state, steady=steady, tails=tails,
        outputs=outputs,
    )


# ---------------------------------------------------------------------- #
# Per-circuit lowerings. Each scalar step mirrors its circuit's
# vectorised reference loop line for line; tests/test_kernels.py enforces
# bit-identical agreement over the full (depth, flush, length, batch)
# grid.
# ---------------------------------------------------------------------- #

def _compile_synchronizer(circuit) -> CompiledFSM:
    depth, flush = circuit.depth, circuit.flush
    # State index u = s + depth for surplus ledger s in [-depth, depth].

    def step(u: int, x: int, y: int, remaining: Optional[int]):
        s = u - depth
        flush_x = flush and remaining is not None and s >= remaining
        flush_y = flush and remaining is not None and -s >= remaining
        ox, oy, ns = x, y, s
        if flush_x:
            ox, oy, ns = 1, y, s - (1 - x)
        elif flush_y:
            ox, oy, ns = x, 1, s + (1 - y)
        elif x == 1 and y == 0:
            if s < 0:
                ox, oy, ns = 1, 1, s + 1      # pair with a saved Y 1
            elif s < depth:
                ox, oy, ns = 0, 0, s + 1      # save the X 1
        elif x == 0 and y == 1:
            if s > 0:
                ox, oy, ns = 1, 1, s - 1      # pair with a saved X 1
            elif s > -depth:
                ox, oy, ns = 0, 0, s - 1      # save the Y 1
        return ns + depth, ox, oy

    return _compile(
        f"sync[{circuit.name}]", step, 2 * depth + 1, 4,
        circuit._initial_state + depth,
        max_phase=depth if flush else 0,
    )


def _compile_desynchronizer(circuit) -> CompiledFSM:
    depth, flush = circuit.depth, circuit.flush
    # State index u = count * 2 + tag for count in [0, depth], tag in {0, 1}.

    def step(u: int, x: int, y: int, remaining: Optional[int]):
        count, tag = u >> 1, u & 1
        flushing = flush and remaining is not None and count >= remaining
        ox, oy, nc, ntag = x, y, count, tag
        if flushing:
            ox, oy = (1, y) if tag == 0 else (x, 1)
            repaid = x == 0 if tag == 0 else y == 0
            if repaid:
                nc, ntag = count - 1, 1 - tag
        elif x == 1 and y == 1 and count < depth:
            next_tag = (tag + count) % 2
            ox, oy = (0, 1) if next_tag == 0 else (1, 0)
            nc = count + 1
            if count == 0:
                ntag = next_tag
        elif x == 0 and y == 0 and count > 0:
            if tag == 0:
                ox = 1
            else:
                oy = 1
            nc, ntag = count - 1, 1 - tag
        return (nc << 1) | ntag, ox, oy

    return _compile(
        f"desync[{circuit.name}]", step, 2 * (depth + 1), 4,
        circuit._first_tag,
        max_phase=depth if flush else 0,
    )


def _compile_cordiv(circuit) -> CompiledFSM:
    def step(held: int, x: int, y: int, remaining: Optional[int]):
        z = x if y == 1 else held
        return z, z, 0               # held flip-flop tracks the output

    return _compile(
        "cordiv", step, 2, 4, circuit._initial, outputs=1,
    )


def _compile_ca_adder(circuit) -> CompiledFSM:
    def step(acc: int, x: int, y: int, remaining: Optional[int]):
        total = acc + x + y
        emit = 1 if total >= 2 else 0
        return total - 2 * emit, emit, 0

    return _compile("ca_adder", step, 2, 4, 0, outputs=1)


def _compile_ca_max(circuit) -> Optional[CompiledFSM]:
    n_states = circuit._limit + 1
    if n_states > MAX_TABLE_STATES:
        return None
    mid = circuit._mid

    def step(counter: int, x: int, y: int, remaining: Optional[int]):
        out = x if counter >= mid else y
        return min(max(counter + x - y, 0), n_states - 1), out, 0

    return _compile(
        f"ca_max[{circuit._bits}b]", step, n_states, 4, mid, outputs=1,
    )


def _compile_tfm(circuit) -> Optional[CompiledFSM]:
    n_states = circuit._max + 1
    if n_states > MAX_TABLE_STATES:
        return None
    shift, full = circuit._shift, circuit._max
    # Trajectory-only: the state transition depends on the input bit alone;
    # the output compares the auxiliary random value against the state and
    # is applied vectorised over the whole trajectory by the dispatcher.

    def step(est: int, x: int, _y: int, remaining: Optional[int]):
        if x == 1:
            delta = (full - est) >> shift
            if delta == 0 and est < full:
                delta = 1
        else:
            delta = -(est >> shift)
            if delta == 0 and est > 0:
                delta = -1
        return est + delta, 0, 0

    return _compile(
        f"tfm[{circuit.name}]", step, n_states, 2, circuit._initial, outputs=0,
    )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

def _registry() -> Dict[Type, Callable[[object], Optional[CompiledFSM]]]:
    # Imported lazily so repro.core / repro.arith never need kernels at
    # module-import time (they call into the dispatcher per evaluation).
    from ..arith.agnostic import CAAdder, CAMax
    from ..arith.divide import CorDiv
    from ..core.desynchronizer import Desynchronizer
    from ..core.synchronizer import Synchronizer
    from ..core.tfm import TrackingForecastMemory

    return {
        Synchronizer: _compile_synchronizer,
        Desynchronizer: _compile_desynchronizer,
        CorDiv: _compile_cordiv,
        CAAdder: _compile_ca_adder,
        CAMax: _compile_ca_max,
        TrackingForecastMemory: _compile_tfm,
    }


_REGISTRY: Optional[Dict[Type, Callable]] = None


def _compilers() -> Dict[Type, Callable]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _registry()
    return _REGISTRY


def compilable_types() -> Tuple[Type, ...]:
    """Circuit types with a registered transition-table lowering."""
    return tuple(_compilers())


def compile_transform(circuit) -> Optional[CompiledFSM]:
    """Lower ``circuit`` to transition tables, or ``None`` if its exact
    type has no registered lowering (subclasses fall back to the
    reference loop: an override of ``_process_bits`` semantics must not
    silently inherit the parent's tables)."""
    compiler = _compilers().get(type(circuit))
    if compiler is None:
        return None
    return compiler(circuit)
