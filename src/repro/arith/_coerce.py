"""Internal input/output coercion shared by all arithmetic circuits.

Every circuit computes on raw ``(batch, N)`` uint8 matrices; the public
``compute`` methods accept :class:`~repro.bitstream.Bitstream`,
:class:`~repro.bitstream.BitstreamBatch`, or plain arrays, and return the
same kind they were given. These helpers implement that contract once.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .._validation import as_bit_matrix
from ..bitstream import Bitstream, BitstreamBatch, Encoding

StreamLike = Union[Bitstream, BitstreamBatch, np.ndarray]


def unwrap(operand: StreamLike, *, name: str = "operand") -> Tuple[np.ndarray, str, Encoding]:
    """Return ``(bits_2d, kind, encoding)`` for any stream-like input.

    ``kind`` is one of ``"stream"``, ``"batch"``, ``"array1d"``,
    ``"array2d"`` and drives :func:`rewrap`.
    """
    if isinstance(operand, Bitstream):
        return operand.bits.reshape(1, -1), "stream", operand.encoding
    if isinstance(operand, BitstreamBatch):
        return operand.bits, "batch", operand.encoding
    arr = as_bit_matrix(operand, name=name)
    kind = "array1d" if np.asarray(operand).ndim == 1 else "array2d"
    return arr, kind, Encoding.UNIPOLAR


def rewrap(bits: np.ndarray, kind: str, encoding: Encoding) -> StreamLike:
    """Wrap a raw result back into the caller's input kind."""
    if kind == "stream":
        return Bitstream(bits[0], encoding)
    if kind == "batch":
        return BitstreamBatch(bits, encoding)
    if kind == "array1d":
        return bits[0]
    return bits


def broadcast_pair(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcast two (B, N) matrices to a common batch size."""
    if x.shape[0] == y.shape[0]:
        return x, y
    if x.shape[0] == 1:
        return np.broadcast_to(x, y.shape).copy(), y
    if y.shape[0] == 1:
        return x, np.broadcast_to(y, x.shape).copy()
    raise ValueError(f"incompatible batch sizes {x.shape[0]} vs {y.shape[0]}")
