"""Internal input/output coercion shared by all arithmetic circuits.

Every circuit computes on raw ``(batch, N)`` uint8 matrices; the public
``compute`` methods accept :class:`~repro.bitstream.Bitstream`,
:class:`~repro.bitstream.BitstreamBatch`,
:class:`~repro.bitstream.PackedBitstreamBatch`, or plain arrays, and
return the same kind they were given. These helpers implement that
contract once.

Packed operands get one of two treatments:

* Combinational circuits (multiply, max/min, scaled add, saturating add,
  subtract) check :func:`packed_pair` first and stay in the word domain
  end to end — no unpacking at all.
* Sequential circuits (CORDIV, CA adder/max, every FSM in
  :mod:`repro.core`) must walk bits in time order, so :func:`unwrap`
  transparently unpacks a packed operand at the input boundary and
  :func:`rewrap` repacks the result at the output boundary. Callers keep
  their representation either way.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .._validation import as_bit_matrix
from ..bitstream import Bitstream, BitstreamBatch, Encoding, PackedBitstreamBatch
from ..exceptions import EncodingError

StreamLike = Union[Bitstream, BitstreamBatch, PackedBitstreamBatch, np.ndarray]


def unwrap(operand: StreamLike, *, name: str = "operand") -> Tuple[np.ndarray, str, Encoding]:
    """Return ``(bits_2d, kind, encoding)`` for any stream-like input.

    ``kind`` is one of ``"stream"``, ``"batch"``, ``"packed"``,
    ``"array1d"``, ``"array2d"`` and drives :func:`rewrap`. Packed operands
    are unpacked here — this is the explicit pack/unpack boundary the
    sequential circuits rely on; combinational circuits avoid it via
    :func:`packed_pair`.
    """
    if isinstance(operand, Bitstream):
        return operand.bits.reshape(1, -1), "stream", operand.encoding
    if isinstance(operand, BitstreamBatch):
        return operand.bits, "batch", operand.encoding
    if isinstance(operand, PackedBitstreamBatch):
        return operand.unpack().bits, "packed", operand.encoding
    arr = as_bit_matrix(operand, name=name)
    kind = "array1d" if np.asarray(operand).ndim == 1 else "array2d"
    return arr, kind, Encoding.UNIPOLAR


def rewrap(bits: np.ndarray, kind: str, encoding: Encoding) -> StreamLike:
    """Wrap a raw result back into the caller's input kind."""
    if kind == "stream":
        return Bitstream(bits[0], encoding)
    if kind == "batch":
        return BitstreamBatch(bits, encoding)
    if kind == "packed":
        return PackedBitstreamBatch.pack(bits, encoding=encoding)
    if kind == "array1d":
        return bits[0]
    return bits


def packed_pair(
    x: StreamLike, y: StreamLike, *, context: str = "operation"
) -> Optional[Tuple[PackedBitstreamBatch, PackedBitstreamBatch]]:
    """Return ``(x, y)`` when both operands are packed, else ``None``.

    The combinational circuits call this before :func:`unwrap`: a hit
    means the whole computation can stay word-parallel. Encoding mismatch
    is rejected here with the same exception the unpacked path raises.
    """
    if not (
        isinstance(x, PackedBitstreamBatch) and isinstance(y, PackedBitstreamBatch)
    ):
        return None
    if x.encoding is not y.encoding:
        raise EncodingError(
            f"{context}: operands must share an encoding "
            f"({x.encoding.value} vs {y.encoding.value})"
        )
    return x, y


def broadcast_pair(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcast two (B, N) matrices to a common batch size."""
    if x.shape[0] == y.shape[0]:
        return x, y
    if x.shape[0] == 1:
        return np.broadcast_to(x, y.shape).copy(), y
    if y.shape[0] == 1:
        return x, np.broadcast_to(y, x.shape).copy()
    raise ValueError(f"incompatible batch sizes {x.shape[0]} vs {y.shape[0]}")
