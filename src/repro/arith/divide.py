"""SC division — the correlated divider (CORDIV) of Chen & Hayes
(ISVLSI 2016, paper reference [6]; paper Fig. 2e).

CORDIV computes ``pZ = pX / pY`` for ``pX <= pY`` using *positively*
correlated operands: when SCC(X, Y) = +1 and pX <= pY, every 1 of X
coincides with a 1 of Y, so among the cycles where Y = 1 the fraction with
X = 1 is exactly ``pX / pY``. The circuit emits X's bit whenever Y = 1 and
replays the last such quotient bit (held in a D flip-flop) whenever Y = 0,
extrapolating the in-divisor ratio across the whole stream.

Sequential, so implemented as a time loop vectorised over the batch.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, rewrap, unwrap

__all__ = ["CorDiv"]


class CorDiv:
    """Correlated SC divider: ``pZ ~ pX / pY`` (requires SCC = +1, pX <= pY).

    Args:
        initial: the D flip-flop's power-on quotient guess (0 or 1).
    """

    REQUIRED_SCC = 1.0

    def __init__(self, initial: int = 0) -> None:
        if initial not in (0, 1):
            raise EncodingError(f"initial quotient bit must be 0 or 1, got {initial}")
        self._initial = initial

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        """Divide X by Y. Output is clipped to [0, 1] by construction."""
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("divider operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        from ..kernels import dispatch

        out = dispatch.op_kernel(self, xb, yb)
        if out is None:
            out = self._reference_compute_bits(xb, yb)
        return rewrap(out, kind, enc_x)

    def _reference_compute_bits(self, xb: np.ndarray, yb: np.ndarray) -> np.ndarray:
        """Per-cycle flip-flop loop — the bit-identical reference for the
        compiled transition-table kernel (``repro.kernels``)."""
        batch, length = xb.shape
        held = np.full(batch, self._initial, dtype=np.uint8)
        out = np.empty_like(xb)
        for t in range(length):
            xt = xb[:, t]
            yt = yb[:, t]
            zt = np.where(yt == 1, xt, held)
            held = np.where(yt == 1, xt, held)
            out[:, t] = zt
        return out

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The nominal function: ``min(1, px / py)`` (0/0 treated as 0)."""
        px = np.asarray(px, dtype=np.float64)
        py = np.asarray(py, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(py > 0, px / np.where(py == 0, 1.0, py), 0.0)
        return np.minimum(1.0, ratio)
