"""SC absolute-difference subtraction — a single XOR gate (paper Fig. 2c).

``pZ = |pX - pY|`` holds when the operands are maximally *positively*
correlated (SCC = +1): then the smaller SN's 1s are a subset of the larger
SN's 1s, and XOR exposes exactly the surplus. For uncorrelated operands the
XOR computes ``pX + pY - 2 pX pY`` instead.

This is the workhorse of the paper's Roberts-cross edge detector, and the
reason the image pipeline needs positive correlation *between* kernel
outputs — delivered either by regeneration (expensive) or by the paper's
synchronizer (cheap).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, packed_pair, rewrap, unwrap
from .gates import xor_bits

__all__ = ["AbsSubtractor"]


class AbsSubtractor:
    """XOR-gate absolute-difference circuit.

    Required operand correlation: **positive** (SCC = +1).
    Combinational: packed operands stay word-parallel end to end.
    """

    REQUIRED_SCC = 1.0

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        packed = packed_pair(x, y, context="subtractor")
        if packed is not None:
            return packed[0] ^ packed[1]
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("subtractor operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        return rewrap(xor_bits(xb, yb), kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The nominal function: ``|px - py|``."""
        return np.abs(np.asarray(px, dtype=np.float64) - np.asarray(py, dtype=np.float64))
