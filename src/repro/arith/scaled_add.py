"""SC scaled addition — a 2:1 multiplexer (paper Fig. 2a).

A MUX with data inputs X, Y and an auxiliary select SN R of value 0.5
samples each input with equal probability: ``pZ = 0.5 (pX + pY)``. The
*data* inputs may be arbitrarily correlated with each other; what matters
is that the **select** stream is uncorrelated with both (paper Fig. 2's
"uncorrelated with r" requirement). The 0.5 scale factor is the classic SC
precision loss — the output LSB of the true sum is dropped.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bitstream import Encoding, PackedBitstreamBatch
from ..exceptions import CircuitConfigurationError, EncodingError
from ..rng import StreamRNG
from ._coerce import StreamLike, broadcast_pair, packed_pair, rewrap, unwrap
from .gates import mux_bits

__all__ = ["ScaledAdder"]


class ScaledAdder:
    """MUX-based scaled adder: ``pZ = 0.5 (pX + pY)``.

    Args:
        select_rng: RNG used to synthesise the select stream when none is
            passed to :meth:`compute`. The select threshold is half the RNG
            modulus, giving a 0.5-valued select SN.

    Required correlation: select uncorrelated with both data inputs; data
    inputs may be correlated with each other.
    """

    def __init__(self, select_rng: Optional[StreamRNG] = None) -> None:
        self._select_rng = select_rng

    def _select_bits(self, length: int, batch: int) -> np.ndarray:
        if self._select_rng is None:
            raise CircuitConfigurationError(
                "ScaledAdder needs either a select stream or a select_rng"
            )
        seq = self._select_rng.sequence(length)
        half = self._select_rng.modulus // 2
        row = (seq < half).astype(np.uint8).reshape(1, -1)
        return np.broadcast_to(row, (batch, length))

    def compute(
        self, x: StreamLike, y: StreamLike, select: Optional[StreamLike] = None
    ) -> StreamLike:
        """Add two SNs with output scale 0.5.

        Combinational: packed data operands run the mux word-parallel
        (the select stream is packed on the fly if it isn't already).
        """
        packed = packed_pair(x, y, context="adder")
        if packed is not None:
            px, py = packed
            if select is None:
                sel = PackedBitstreamBatch.pack(self._select_bits(px.length, 1))
            elif isinstance(select, PackedBitstreamBatch):
                sel = select
            else:
                sel = PackedBitstreamBatch.pack(unwrap(select, name="select")[0])
            return PackedBitstreamBatch.mux(sel, px, py)
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("adder operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        if select is None:
            sb = self._select_bits(xb.shape[1], xb.shape[0])
        else:
            sb, _, _ = unwrap(select, name="select")
            if sb.shape[0] == 1 and xb.shape[0] > 1:
                sb = np.broadcast_to(sb, xb.shape)
        bits = mux_bits(sb, xb, yb)
        return rewrap(bits, kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The nominal function: half the sum of the values."""
        return 0.5 * (np.asarray(px, dtype=np.float64) + np.asarray(py, dtype=np.float64))
