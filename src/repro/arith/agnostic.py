"""Correlation-agnostic (CA) arithmetic baselines.

Some SC operations have variants that compute correctly for *any* input
correlation, at a large hardware premium (paper Section II-B: "The known
set of correlation agnostic circuits are also larger and consume more power
than their equivalent correlation sensitive counterparts").

* :class:`CAAdder` — the exact scaled adder the paper compares against its
  MUX adder (reference [9]: 5.6x larger, 10.7x more power). A 2-bit
  accumulator absorbs ``x_t + y_t`` each cycle and emits the carry: the
  output 1-count is exactly ``floor((ones(X)+ones(Y))/2)`` regardless of
  alignment.
* :class:`CAMax` — the FSM maximum used in SC-DCNN (reference [12]): a
  saturating up/down counter tracks which operand has emitted more 1s so
  far and steers a mux to pass the bit of the current leader. Accurate for
  any input correlation (Table III row "CA Max."), but it needs a wide
  counter, comparator, and mux.

Both are bounded-state FSMs, so their per-bit loops route through the
transition-table kernels of :mod:`repro.kernels` (the loops below remain
as the bit-identical reference implementation; counters too wide to
tabulate fall back to them).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, rewrap, unwrap

__all__ = ["CAAdder", "CAMax"]


class CAAdder:
    """Exact accumulator-based scaled adder: ``pZ = 0.5 (pX + pY)``.

    The running accumulator ``A`` holds 0 or 1 carry units; each cycle
    ``A += x_t + y_t`` and the circuit emits 1 (subtracting 2) whenever
    ``A >= 2``. Correlation-agnostic and select-free, with at most one
    half-LSB truncation error over the whole stream.
    """

    REQUIRED_SCC = None  # agnostic

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("adder operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        from ..kernels import dispatch

        out = dispatch.op_kernel(self, xb, yb)
        if out is None:
            out = self._reference_compute_bits(xb, yb)
        return rewrap(out, kind, enc_x)

    def _reference_compute_bits(self, xb: np.ndarray, yb: np.ndarray) -> np.ndarray:
        """Per-cycle accumulator loop — the bit-identical reference for
        the compiled transition-table kernel (``repro.kernels``)."""
        batch, length = xb.shape
        acc = np.zeros(batch, dtype=np.int64)
        out = np.empty_like(xb)
        for t in range(length):
            acc = acc + xb[:, t] + yb[:, t]
            emit = acc >= 2
            out[:, t] = emit.astype(np.uint8)
            acc = acc - 2 * emit
        return out

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return 0.5 * (np.asarray(px, dtype=np.float64) + np.asarray(py, dtype=np.float64))


class CAMax:
    """Counter-steered correlation-agnostic maximum (SC-DCNN style).

    Args:
        counter_bits: width of the saturating up/down counter. The counter
            starts at mid-scale; it counts up on ``x_t > y_t`` cycles and
            down on ``x_t < y_t`` cycles. The output mux passes ``x_t``
            while the counter is at or above mid-scale (X currently leads)
            and ``y_t`` otherwise.
    """

    REQUIRED_SCC = None  # agnostic

    def __init__(self, counter_bits: int = 6) -> None:
        self._bits = check_positive_int(counter_bits, name="counter_bits")
        self._limit = (1 << self._bits) - 1
        self._mid = 1 << (self._bits - 1)

    @property
    def counter_bits(self) -> int:
        return self._bits

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("max operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        from ..kernels import dispatch

        out = dispatch.op_kernel(self, xb, yb)
        if out is None:
            out = self._reference_compute_bits(xb, yb)
        return rewrap(out, kind, enc_x)

    def _reference_compute_bits(self, xb: np.ndarray, yb: np.ndarray) -> np.ndarray:
        """Per-cycle counter loop — the bit-identical reference for the
        compiled transition-table kernel (``repro.kernels``). Counters
        wider than ``MAX_TABLE_STATES`` states stay on this loop (the
        dispatcher declines them), so its cost is bounded by the caller's
        choice of ``counter_bits``, not by the kernel layer."""
        batch, length = xb.shape
        counter = np.full(batch, self._mid, dtype=np.int64)
        out = np.empty_like(xb)
        for t in range(length):
            xt = xb[:, t].astype(np.int64)
            yt = yb[:, t].astype(np.int64)
            out[:, t] = np.where(counter >= self._mid, xt, yt).astype(np.uint8)
            counter = np.clip(counter + xt - yt, 0, self._limit)
        return out

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(px, dtype=np.float64), np.asarray(py, dtype=np.float64))
