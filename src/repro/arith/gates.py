"""Raw combinational gate operations on bit matrices.

These are the four primitives every SC arithmetic circuit is built from.
They carry no correlation semantics by themselves — Table I of the paper is
exactly the observation that *the same AND gate* computes ``min``,
``max(0, x+y-1)``, or ``x*y`` depending on input correlation. The classes
in the sibling modules attach those semantics (and their correlation
requirements) to the gates.

These functions are the *unpacked* kernels (one uint8 byte per bit). Their
word-parallel equivalents live on
:class:`~repro.bitstream.PackedBitstreamBatch` (operators plus ``mux``/
``xnor``), and the representation-agnostic ``batch_and``/``batch_or``/
``batch_xor``/``batch_not``/``batch_mux`` dispatchers in
:mod:`repro.bitstream` pick between the two. The circuit classes check
:func:`repro.arith._coerce.packed_pair` before falling back here: when
*both* operands are packed, ``compute`` stays word-parallel and these
uint8 kernels are never touched; a mixed packed/unpacked pair is unpacked
first and runs through them.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_same_length

__all__ = ["and_bits", "or_bits", "xor_bits", "not_bits", "mux_bits"]


def _pairwise(x: np.ndarray, y: np.ndarray, op) -> np.ndarray:
    x = np.asarray(x, dtype=np.uint8)
    y = np.asarray(y, dtype=np.uint8)
    check_same_length(x, y, context="gate operation")
    return op(x, y)


def and_bits(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Bitwise AND: multiply (uncorrelated) / min (SCC=+1) / max(0,x+y-1) (SCC=-1)."""
    return _pairwise(x, y, np.bitwise_and)


def or_bits(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Bitwise OR: saturating add (SCC=-1) / max (SCC=+1) / x+y-xy (uncorrelated)."""
    return _pairwise(x, y, np.bitwise_or)


def xor_bits(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Bitwise XOR: absolute difference |x-y| when inputs are maximally correlated."""
    return _pairwise(x, y, np.bitwise_xor)


def not_bits(x: np.ndarray) -> np.ndarray:
    """Bitwise NOT: the complement stream encodes ``1 - p`` (unipolar)."""
    return (1 - np.asarray(x, dtype=np.uint8)).astype(np.uint8)


def mux_bits(select: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """2:1 multiplexer: emits ``y`` where select=1, else ``x``.

    With an input-independent select of value ``s`` this computes the
    weighted sum ``(1-s)*px + s*py`` — the scaled adder for ``s = 0.5``.
    """
    select = np.asarray(select, dtype=np.uint8)
    x = np.asarray(x, dtype=np.uint8)
    y = np.asarray(y, dtype=np.uint8)
    check_same_length(x, y, context="mux data inputs")
    check_same_length(x, select, context="mux select input")
    return np.where(select == 1, y, x).astype(np.uint8)
