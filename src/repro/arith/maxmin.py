"""Naive single-gate SC maximum and minimum (the paper's baselines).

With maximally positively correlated inputs, OR computes
``max(pX, pY)`` exactly (the larger SN's 1s mask the smaller's) and AND
computes ``min(pX, pY)``. Fed uncorrelated inputs — the realistic case the
paper's Table III evaluates — a bare OR overshoots
(``px + py - px*py >= max``) and a bare AND undershoots
(``px*py <= min``), producing the ~0.087 / ~0.082 average absolute errors
in the table's first and fourth rows.

The paper's fix is to *make* the inputs correlated on the fly:
:class:`repro.core.improved_ops.SyncMax` / ``SyncMin``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, packed_pair, rewrap, unwrap
from .gates import and_bits, or_bits

__all__ = ["OrMax", "AndMin"]


class OrMax:
    """Single OR gate used as a maximum.

    Exact only for SCC = +1 inputs; biased high otherwise.
    Combinational: packed operands stay word-parallel end to end.
    """

    REQUIRED_SCC = 1.0

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        packed = packed_pair(x, y, context="max")
        if packed is not None:
            return packed[0] | packed[1]
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("max operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        return rewrap(or_bits(xb, yb), kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(px, dtype=np.float64), np.asarray(py, dtype=np.float64))


class AndMin:
    """Single AND gate used as a minimum.

    Exact only for SCC = +1 inputs; biased low otherwise.
    Combinational: packed operands stay word-parallel end to end.
    """

    REQUIRED_SCC = 1.0

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        packed = packed_pair(x, y, context="min")
        if packed is not None:
            return packed[0] & packed[1]
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("min operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        return rewrap(and_bits(xb, yb), kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        return np.minimum(np.asarray(px, dtype=np.float64), np.asarray(py, dtype=np.float64))
