"""SC multiplication — a single AND gate (paper Fig. 2d).

``pZ = pX * pY`` holds exactly in expectation when the operands are
*uncorrelated* (SCC = 0). Positively correlated operands push the result
toward ``min(pX, pY)``; negatively correlated operands toward
``max(0, pX + pY - 1)`` (paper Table I). The circuit itself cannot tell —
use :func:`repro.bitstream.scc` to check operands, or a
:class:`~repro.core.decorrelator.Decorrelator` to fix them.
"""

from __future__ import annotations

import numpy as np

from ..bitstream import Encoding
from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, packed_pair, rewrap, unwrap
from .gates import and_bits, xor_bits

__all__ = ["Multiplier"]


class Multiplier:
    """AND-gate multiplier (unipolar) / XNOR multiplier (bipolar).

    Required operand correlation: **uncorrelated** (SCC = 0).

    Combinational: packed operands stay word-parallel end to end.
    """

    REQUIRED_SCC = 0.0

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        """Multiply two SNs. Encodings must match; bipolar uses XNOR."""
        packed = packed_pair(x, y, context="multiplier")
        if packed is not None:
            px, py = packed
            return px.xnor(py) if px.encoding is Encoding.BIPOLAR else px & py
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError(
                f"multiplier operands must share an encoding ({enc_x.value} vs {enc_y.value})"
            )
        xb, yb = broadcast_pair(xb, yb)
        if enc_x is Encoding.BIPOLAR:
            bits = (1 - xor_bits(xb, yb)).astype(np.uint8)
        else:
            bits = and_bits(xb, yb)
        return rewrap(bits, kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The nominal function: element-wise product of unipolar values."""
        return np.asarray(px, dtype=np.float64) * np.asarray(py, dtype=np.float64)
