"""SC arithmetic circuits (paper Fig. 2) and correlation-agnostic baselines.

Each circuit documents its *required operand correlation*; feeding it
anything else silently computes a different function (paper Table I). The
``REQUIRED_SCC`` class attribute records the requirement programmatically
(+1, -1, 0, or ``None`` for agnostic).

| Circuit | Gate | Function | Required SCC |
|---------|------|----------|--------------|
| :class:`Multiplier` | AND / XNOR | ``px * py`` | 0 |
| :class:`ScaledAdder` | MUX | ``0.5 (px + py)`` | select vs. data: 0 |
| :class:`SaturatingAdder` | OR | ``min(1, px + py)`` | -1 |
| :class:`AbsSubtractor` | XOR | ``|px - py|`` | +1 |
| :class:`CorDiv` | DFF + mux | ``px / py`` | +1 |
| :class:`OrMax` / :class:`AndMin` | OR / AND | ``max`` / ``min`` | +1 |
| :class:`CAAdder` / :class:`CAMax` | counters | exact add / max | any |
"""

from .agnostic import CAAdder, CAMax
from .divide import CorDiv
from .gates import and_bits, mux_bits, not_bits, or_bits, xor_bits
from .maxmin import AndMin, OrMax
from .multiply import Multiplier
from .saturating_add import SaturatingAdder
from .scaled_add import ScaledAdder
from .subtract import AbsSubtractor

__all__ = [
    "and_bits",
    "or_bits",
    "xor_bits",
    "not_bits",
    "mux_bits",
    "Multiplier",
    "ScaledAdder",
    "SaturatingAdder",
    "AbsSubtractor",
    "CorDiv",
    "OrMax",
    "AndMin",
    "CAAdder",
    "CAMax",
]
