"""SC saturating addition — a single OR gate (paper Fig. 2b).

``pZ = min(1, pX + pY)`` holds when the operands are maximally *negatively*
correlated (SCC = -1): then their 1s overlap as little as mathematically
possible and the OR collects all of them (clipping at 1 when they must
overlap). For uncorrelated inputs the OR computes
``pX + pY - pX*pY`` instead, and for positively correlated inputs it
degrades all the way to ``max(pX, pY)``.

The paper's improved saturating adder
(:class:`repro.core.improved_ops.DesyncSaturatingAdder`) prepends a
desynchronizer so arbitrary inputs meet the SCC = -1 requirement.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EncodingError
from ._coerce import StreamLike, broadcast_pair, packed_pair, rewrap, unwrap
from .gates import or_bits

__all__ = ["SaturatingAdder"]


class SaturatingAdder:
    """OR-gate saturating adder.

    Required operand correlation: **negative** (SCC = -1).
    Combinational: packed operands stay word-parallel end to end.
    """

    REQUIRED_SCC = -1.0

    def compute(self, x: StreamLike, y: StreamLike) -> StreamLike:
        packed = packed_pair(x, y, context="saturating adder")
        if packed is not None:
            return packed[0] | packed[1]
        xb, kind, enc_x = unwrap(x, name="x")
        yb, _, enc_y = unwrap(y, name="y")
        if enc_x is not enc_y:
            raise EncodingError("saturating adder operands must share an encoding")
        xb, yb = broadcast_pair(xb, yb)
        return rewrap(or_bits(xb, yb), kind, enc_x)

    @staticmethod
    def expected(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The nominal function: ``min(1, px + py)``."""
        return np.minimum(1.0, np.asarray(px, dtype=np.float64) + np.asarray(py, dtype=np.float64))
