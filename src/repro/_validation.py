"""Internal argument-validation helpers shared across the library.

These helpers normalise user input into the canonical internal forms
(numpy ``uint8`` bit arrays, positive integers, probabilities) and raise
library-specific exceptions with actionable messages. They are private:
the public API re-raises their errors but does not re-export them.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from .exceptions import (
    CircuitConfigurationError,
    EncodingError,
    LengthMismatchError,
)

ArrayLike = Union[np.ndarray, Iterable[int], str]


def as_bit_array(bits: ArrayLike, *, name: str = "bits") -> np.ndarray:
    """Normalise ``bits`` into a numpy ``uint8`` array of 0s and 1s.

    Accepts numpy arrays, iterables of ints/bools, and strings such as
    ``"01101"`` (a convenience for writing the paper's literal examples).

    Raises:
        EncodingError: if any element is not 0 or 1.
    """
    if isinstance(bits, str):
        try:
            arr = np.array([int(ch) for ch in bits], dtype=np.uint8)
        except ValueError as exc:
            raise EncodingError(
                f"{name}: bit strings may only contain '0' and '1', got {bits!r}"
            ) from exc
    else:
        arr = np.asarray(bits)
        if arr.dtype == bool:
            arr = arr.astype(np.uint8)
    if arr.size and not np.isin(np.unique(arr), (0, 1)).all():
        raise EncodingError(f"{name}: bit arrays may only contain 0 and 1")
    return arr.astype(np.uint8, copy=False)


def as_bit_matrix(bits: ArrayLike, *, name: str = "bits") -> np.ndarray:
    """Normalise ``bits`` into a 2-D ``(batch, length)`` uint8 bit matrix."""
    arr = as_bit_array(bits, name=name)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise EncodingError(f"{name}: expected a 1-D or 2-D bit array, got ndim={arr.ndim}")
    return arr


def check_same_length(x: np.ndarray, y: np.ndarray, *, context: str = "operation") -> None:
    """Raise :class:`LengthMismatchError` unless the trailing axes match."""
    if x.shape[-1] != y.shape[-1]:
        raise LengthMismatchError(
            f"{context}: bitstream lengths differ ({x.shape[-1]} vs {y.shape[-1]})"
        )


def check_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise CircuitConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise CircuitConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise CircuitConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise CircuitConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise EncodingError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_power_of_two(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    value = check_positive_int(value, name=name)
    if value & (value - 1):
        raise CircuitConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def check_stream_length(value: int, *, name: str = "length") -> int:
    """Validate a logical stream length N and return it as an ``int``.

    The single source of truth for stream-length validation across
    ``bitstream``, ``engine``, and the CLI: N must be a positive integer
    but is otherwise unconstrained — *odd* lengths (N not a multiple of
    64) are explicitly supported everywhere. The packed backend stores
    such streams with zeroed tail bits in the final uint64 word, and the
    tile iterators emit a final partial tile of ``N mod tile_bits`` bits
    whose packed form keeps the same zero-tail convention.

    Raises:
        EncodingError: if ``value`` is not a positive integer (the
            historical error type of the packed layer's length checks).
    """
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise EncodingError(
            f"{name} must be an integer stream length, got {type(value).__name__}"
        )
    if value <= 0:
        raise EncodingError(f"{name} must be positive, got {value}")
    return int(value)


def check_jobs(value: int, *, name: str = "jobs") -> int:
    """Validate a worker-process count and return it.

    The single source of truth for every ``jobs=`` knob (streaming
    executor, accelerator, runner, CLI): any positive integer is legal —
    ``1`` means inline sequential execution, and counts beyond the
    available CPUs merely oversubscribe the pool.

    Raises:
        CircuitConfigurationError: if ``value`` is not a positive integer.
    """
    return check_positive_int(value, name=name)


def check_tile_words(value: int, *, name: str = "tile_words") -> int:
    """Validate a streaming tile size in 64-bit words and return it.

    A tile is ``tile_words * 64`` stream bits; every tile but the last is
    exactly that long, and the last covers the odd-length tail (see
    :func:`check_stream_length`). Any positive integer is legal — tile
    sizes need not divide the stream length or be powers of two.

    Raises:
        CircuitConfigurationError: if ``value`` is not a positive integer.
    """
    return check_positive_int(value, name=name)
