"""Bench: packed (uint64-word) vs unpacked (uint8) backend throughput.

Not a paper table — this tracks the speedup delivered by the packed-bit
fast path (:mod:`repro.bitstream.packed`) over the unpacked byte-per-bit
path at the paper's operating point (N = 256, exhaustive-sweep batch
sizes). Each kernel is timed on identical bit content in both
representations; results are archived under ``benchmarks/results/`` so
the speedup is a tracked number, not a claim.

The equivalence tests in ``tests/test_packed.py`` guarantee the two
paths agree bit for bit; this bench guarantees the packed one is worth
having. The ``>= 4x`` assertions mirror the repo's acceptance floor —
measured speedups on a dev box are ~10-100x.

Run directly (``python benchmarks/bench_packed_backend.py``) or through
pytest (``pytest benchmarks/bench_packed_backend.py -s``).
"""

import pathlib
import time

import numpy as np
import pytest

import _snapshot
from repro.bitstream import BitstreamBatch, PackedBitstreamBatch
from repro.bitstream.metrics import scc_batch, scc_batch_packed
from repro.bitstream.packed import pack_bits

N = 256
BATCH = 16384  # acceptance floor is 4096; bigger batch = steadier timings
MIN_SPEEDUP = 4.0
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _best_of(fn, repeats=7):
    """Best-of-N wall time (min is the standard noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _make_backends():
    rng = np.random.default_rng(42)
    x = (rng.random((BATCH, N)) < rng.random((BATCH, 1))).astype(np.uint8)
    y = (rng.random((BATCH, N)) < rng.random((BATCH, 1))).astype(np.uint8)
    return {
        "unpacked": (BitstreamBatch(x), BitstreamBatch(y)),
        "packed": (PackedBitstreamBatch.pack(x), PackedBitstreamBatch.pack(y)),
        "raw": (x, y),
        "words": (pack_bits(x), pack_bits(y)),
    }


@pytest.fixture(scope="module")
def backends():
    return _make_backends()


def _measure_all(backends):
    x, y = backends["raw"]
    xw, yw = backends["words"]
    ub, vb = backends["unpacked"]
    pb, qb = backends["packed"]
    kernels = [
        ("SCC", lambda: scc_batch(x, y), lambda: scc_batch_packed(xw, yw, N)),
        ("AND", lambda: ub & vb, lambda: pb & qb),
        ("OR", lambda: ub | vb, lambda: pb | qb),
        ("XOR", lambda: ub ^ vb, lambda: pb ^ qb),
        ("NOT", lambda: ~ub, lambda: ~pb),
        ("values", lambda: ub.values, lambda: pb.values),
    ]
    rows = []
    for name, unpacked_fn, packed_fn in kernels:
        t_unpacked = _best_of(unpacked_fn)
        t_packed = _best_of(packed_fn)
        rows.append((name, t_unpacked * 1e3, t_packed * 1e3, t_unpacked / t_packed))
    return rows


def _render(rows):
    lines = [
        f"packed vs unpacked backend (N={N}, batch={BATCH})",
        f"{'kernel':<8} {'unpacked ms':>12} {'packed ms':>10} {'speedup':>8}",
    ]
    for name, tu, tp, speedup in rows:
        lines.append(f"{name:<8} {tu:>12.3f} {tp:>10.3f} {speedup:>7.1f}x")
    return "\n".join(lines)


def _run_and_archive(backends):
    rows = _measure_all(backends)
    text = _render(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "packed_backend.txt").write_text(text + "\n")
    config = {"n": N, "batch": BATCH}
    for name, tu, tp, speedup in rows:
        _snapshot.add_entry(
            "packed_backend", op=name, wall_ms=tp, config=config, speedup=speedup,
        )
        _snapshot.add_entry(
            "packed_backend", op=f"{name} [unpacked]", wall_ms=tu, config=config,
        )
    _snapshot.write("packed_backend")
    print("\n" + text)
    return rows, text


def test_packed_backend_speedup(backends):
    rows, text = _run_and_archive(backends)
    for name, _, _, speedup in rows:
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: packed path only {speedup:.1f}x faster "
            f"(floor is {MIN_SPEEDUP}x)\n{text}"
        )


def test_pack_roundtrip_amortises(backends):
    """Even paying pack+unpack at the boundaries, a single packed SCC
    sweep beats the unpacked kernel at the paper's batch sizes."""
    x, y = backends["raw"]
    t_unpacked = _best_of(lambda: scc_batch(x, y))
    t_packed_e2e = _best_of(lambda: scc_batch_packed(pack_bits(x), pack_bits(y), N))
    assert t_packed_e2e < t_unpacked, (
        f"end-to-end packed SCC ({t_packed_e2e * 1e3:.2f} ms) should beat "
        f"unpacked ({t_unpacked * 1e3:.2f} ms) even including pack time"
    )


if __name__ == "__main__":
    _run_and_archive(_make_backends())
