"""Bench: time-parallel FSM kernels vs the per-bit reference loops.

The acceptance scenario for :mod:`repro.kernels`: a 1024-configuration,
N = 1024, depth-4 synchronizer sweep — the last interpreter-bound hot
path after the packed combinational domain (PR 1) and the compiled
engine (PR 2). The reference implementation steps a python loop once per
stream bit; the kernel layer compiles the FSM to transition tables and
advances whole symbol chunks per numpy gather, batch axis intact.

The ``>= 10x`` assertion mirrors the repo's acceptance floor for this
subsystem (measured margins on a dev box are ~20-30x). Equivalence is
not just spot-checked here — every row timed is also compared
bit-for-bit against its reference, and the engine audit of the FSM zoo
graph is checked float-identical across backends, so the bench cannot
report a speedup for wrong bits.

Results are archived under ``benchmarks/results/fsm_kernels.txt`` (human
table) and ``benchmarks/results/BENCH_fsm_kernels.json`` (machine
snapshot). Run directly (``python benchmarks/bench_fsm_kernels.py``) or
through pytest (``pytest benchmarks/bench_fsm_kernels.py -s``).
"""

import pathlib
import time

import numpy as np
import pytest

import _snapshot
from repro import engine, kernels
from repro.arith.agnostic import CAAdder, CAMax
from repro.arith.divide import CorDiv
from repro.core import Decorrelator, Desynchronizer, Synchronizer, TrackingForecastMemory
from repro.engine.library import build_graph
from repro.rng import LFSR, Halton, VanDerCorput

CONFIGS = 1024
N = 1024
DEPTH = 4
MIN_SPEEDUP = 10.0
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CONFIG = {"configs": CONFIGS, "n": N, "depth": DEPTH}


def _best_of(fn, repeats=5):
    """Best-of-N wall time (min is the standard noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_pair():
    """The 1024-configuration sweep batch: comparator D/S conversion of
    evenly spread level pairs through two independent RNGs."""
    levels = np.linspace(0, N - 1, CONFIGS).astype(np.int64)
    sx = VanDerCorput(10).sequence(N)
    sy = Halton(3, 10).sequence(N)
    x = (levels[:, None] > sx[None, :]).astype(np.uint8)
    y = (levels[::-1, None] > sy[None, :]).astype(np.uint8)
    return x, y


def _case(call):
    """Time ``call`` on both backends (the dispatch switch selects the
    reference loops) and verify the outputs are bit-identical."""
    out = call()
    with kernels.use_backend("reference"):
        ref = call()
        t_ref = _best_of(call)
    t_kernel = _best_of(call)
    if isinstance(out, tuple):
        identical = all(np.array_equal(r, o) for r, o in zip(ref, out))
    else:
        identical = np.array_equal(ref, out)
    return t_ref, t_kernel, identical


def _pair_case(circuit, x, y):
    return _case(lambda: circuit._process_bits(x, y))


def _op_case(circuit, x, y):
    return _case(lambda: circuit.compute(x, y))


def _stream_case(circuit, x):
    return _case(lambda: circuit._process_stream_bits(x))


def _measure():
    x, y = _sweep_pair()
    cases = [
        ("synchronizer(D=4)", _pair_case, Synchronizer(DEPTH)),
        ("synchronizer(D=4,flush)", _pair_case, Synchronizer(DEPTH, flush=True)),
        ("desynchronizer(D=4)", _pair_case, Desynchronizer(DEPTH)),
        ("desynchronizer(D=4,flush)", _pair_case, Desynchronizer(DEPTH, flush=True)),
        ("decorrelator(D=4)", _pair_case,
         Decorrelator(LFSR(10, seed=45), LFSR(10, seed=142), depth=4)),
        ("tfm(bits=8)", _stream_case, TrackingForecastMemory(LFSR(10, seed=7))),
        ("cordiv", _op_case, CorDiv()),
        ("ca_adder", _op_case, CAAdder()),
        ("ca_max(6b)", _op_case, CAMax()),
    ]
    rows = []
    for name, runner, circuit in cases:
        args = (circuit, x) if runner is _stream_case else (circuit, x, y)
        t_ref, t_kernel, identical = runner(*args)
        rows.append((name, t_ref * 1e3, t_kernel * 1e3, t_ref / t_kernel, identical))
    return rows


def _render(rows):
    lines = [
        f"fsm kernels vs per-bit reference loops "
        f"({CONFIGS} configs, N={N}, depth={DEPTH})",
        f"{'circuit':<28} {'ref ms':>10} {'kernel ms':>10} {'speedup':>9}  bit-identical",
    ]
    for name, ref_ms, kernel_ms, speedup, identical in rows:
        lines.append(
            f"{name:<28} {ref_ms:>10.2f} {kernel_ms:>10.2f} {speedup:>8.1f}x  {identical}"
        )
    return "\n".join(lines)


def _run_and_archive():
    rows = _measure()
    text = _render(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fsm_kernels.txt").write_text(text + "\n")
    for name, ref_ms, kernel_ms, speedup, _ in rows:
        _snapshot.add_entry(
            "fsm_kernels", op=name, wall_ms=kernel_ms,
            config=CONFIG, speedup=speedup,
        )
        _snapshot.add_entry(
            "fsm_kernels", op=f"{name} [reference]", wall_ms=ref_ms, config=CONFIG,
        )
    _snapshot.write("fsm_kernels")
    print("\n" + text)
    return rows, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_all_rows_bit_identical(measured):
    rows, text = measured
    bad = [name for name, *_, identical in rows if not identical]
    assert not bad, f"kernel output differs from reference for {bad}\n{text}"


def test_synchronizer_sweep_speedup(measured):
    rows, text = measured
    speedup = {r[0]: r[3] for r in rows}["synchronizer(D=4)"]
    assert speedup >= MIN_SPEEDUP, (
        f"depth-{DEPTH} synchronizer kernel only {speedup:.1f}x over the "
        f"per-bit reference (floor is {MIN_SPEEDUP}x)\n{text}"
    )


def test_every_fsm_kernel_beats_reference(measured):
    rows, text = measured
    slow = [(name, speedup) for name, _, _, speedup, _ in rows if speedup < 1.0]
    assert not slow, f"kernels slower than their reference loops: {slow}\n{text}"


def test_engine_audit_float_identical_across_backends():
    plan = engine.compile(build_graph("fsm_zoo"))
    with_kernels = plan.audit(256)
    with kernels.use_backend("reference"):
        reference = plan.audit(256)
    assert with_kernels.values == reference.values
    for a, b in zip(with_kernels.entries, reference.entries):
        assert a.measured_scc == b.measured_scc
        assert a.measured_value == b.measured_value


if __name__ == "__main__":
    _run_and_archive()
