"""Bench: paper Table I — functions of a single AND gate vs. correlation.

Regenerates the literal example rows (exact bitstreams from the paper) and
times the experiment. The measured column must equal the paper's stated
function values bit for bit.
"""

from repro.analysis import table1


def test_table1_and_gate_functions(benchmark, record_result):
    result = benchmark(table1)
    record_result(result)
