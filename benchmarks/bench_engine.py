"""Bench: compiled engine vs graph interpreter on a batched design sweep.

The acceptance scenario from the engine's introduction: a depth-8 SC
dataflow graph evaluated against 1024 input configurations at N = 256.
The interpreter must run the graph once per configuration (that is its
API — sources carry fixed values); the engine compiles the graph once and
evaluates the whole configuration batch in a single packed-domain pass
(``engine.compile(g).run_batch(...)``).

The ``>= 20x`` assertion mirrors the repo's acceptance floor for this
subsystem; measured speedups on a dev box are comfortably higher. Results
are archived under ``benchmarks/results/engine.txt`` so the speedup is a
tracked number, not a claim. Equivalence (engine rows bit-identical to
per-configuration interpretation) is enforced by ``tests/test_engine.py``
— and spot-checked here so the bench cannot drift from the tests.

Run directly (``python benchmarks/bench_engine.py``) or through pytest
(``pytest benchmarks/bench_engine.py -s``).
"""

import pathlib
import time

import numpy as np
import pytest

import _snapshot
from repro import engine
from repro.engine.library import depth_chain_graph

DEPTH = 8
CONFIGS = 1024
N = 256
MIN_SPEEDUP = 20.0
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _best_of(fn, repeats=3):
    """Best-of-N wall time (min is the standard noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_values():
    rng = np.random.default_rng(42)
    return {f"src{i}": rng.random(CONFIGS) for i in range(DEPTH + 1)}


def _interpreter_sweep(values):
    """The pre-engine way: one graph interpretation per configuration."""
    out = []
    for row in range(CONFIGS):
        g = depth_chain_graph(
            DEPTH, [values[f"src{i}"][row] for i in range(DEPTH + 1)]
        )
        out.append(g.run(N, backend="interpreter")[f"n{DEPTH}"])
    return out


def _measure():
    values = _sweep_values()
    graph = depth_chain_graph(DEPTH)

    engine.clear_cache()
    t_compile_cold = _best_of(
        lambda: engine.compile_graph(graph, use_cache=False), repeats=7
    )
    engine.compile_graph(graph)  # prime the cache
    t_compile_cached = _best_of(lambda: engine.compile_graph(graph), repeats=7)
    plan = engine.compile_graph(graph)

    t_engine = _best_of(lambda: plan.run_batch(N, values=values))
    t_engine_audit = _best_of(lambda: plan.audit_batch(N, values=values))
    t_interp = _best_of(lambda: _interpreter_sweep(values))

    rows = [
        ("compile (cold)", t_compile_cold * 1e3, None),
        ("compile (plan cache hit)", t_compile_cached * 1e3, None),
        (f"interpreter x{CONFIGS} runs", t_interp * 1e3, None),
        ("engine run_batch", t_engine * 1e3, t_interp / t_engine),
        ("engine audit_batch", t_engine_audit * 1e3, t_interp / t_engine_audit),
    ]
    return rows, values, plan


def _render(rows):
    lines = [
        f"engine vs interpreter (depth={DEPTH} graph, {CONFIGS} configs, N={N})",
        f"{'stage':<28} {'wall ms':>10} {'speedup':>9}",
    ]
    for name, ms, speedup in rows:
        rendered = f"{speedup:>8.1f}x" if speedup is not None else f"{'-':>9}"
        lines.append(f"{name:<28} {ms:>10.3f} {rendered}")
    return "\n".join(lines)


def _run_and_archive():
    rows, values, plan = _measure()
    text = _render(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine.txt").write_text(text + "\n")
    config = {"depth": DEPTH, "configs": CONFIGS, "n": N}
    for name, ms, speedup in rows:
        _snapshot.add_entry(
            "engine", op=name, wall_ms=ms, config=config, speedup=speedup,
        )
    _snapshot.write("engine")
    print("\n" + text)
    return rows, values, plan, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_engine_sweep_speedup(measured):
    rows, _, _, text = measured
    speedup = dict((r[0], r[2]) for r in rows)["engine run_batch"]
    assert speedup >= MIN_SPEEDUP, (
        f"engine sweep only {speedup:.1f}x faster than the interpreter "
        f"(floor is {MIN_SPEEDUP}x)\n{text}"
    )


def test_engine_sweep_rows_match_interpreter(measured):
    """Spot-check: random engine rows equal per-config interpretation."""
    _, values, plan, _ = measured
    result = plan.run_batch(N, values=values)
    sink = f"n{DEPTH}"
    for row in (0, CONFIGS // 2, CONFIGS - 1):
        g = depth_chain_graph(
            DEPTH, [values[f"src{i}"][row] for i in range(DEPTH + 1)]
        )
        expected = g.run(N, backend="interpreter")[sink]
        assert np.array_equal(result.bits(sink)[row], expected)


def test_plan_cache_hit_is_cheap(measured):
    rows = dict((r[0], r[1]) for r in measured[0])
    assert rows["compile (plan cache hit)"] <= rows["compile (cold)"]


if __name__ == "__main__":
    _run_and_archive()
