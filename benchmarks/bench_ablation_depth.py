"""Bench: Section III-B ablation — FSM save depth D vs. induced SCC,
bias, and hardware cost."""

from repro.analysis import ablation_save_depth


def test_ablation_save_depth(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_save_depth, kwargs={"step": 2, "depths": (1, 2, 4, 8, 16)},
        rounds=1, iterations=1,
    )
    record_result(result)
