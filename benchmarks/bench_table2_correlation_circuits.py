"""Bench: paper Table II — average SCC before/after each correlation
manipulating circuit over the exhaustive 256x256 level-pair sweep
(65,536 pairs x 256 cycles per configuration, 15 configurations)."""

from repro.analysis import table2


def test_table2_scc_before_after(benchmark, record_result):
    result = benchmark.pedantic(
        table2, kwargs={"n": 256, "step": 1}, rounds=1, iterations=1
    )
    record_result(result)
