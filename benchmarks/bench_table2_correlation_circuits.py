"""Bench: paper Table II — average SCC before/after each correlation
manipulating circuit over the exhaustive 256x256 level-pair sweep
(65,536 pairs x 256 cycles per configuration, 15 configurations).

Routed through :mod:`repro.runner`: the 15 (design, X RNG, Y RNG)
configurations are independent shards scheduled onto ``REPRO_BENCH_JOBS``
worker processes (default 1 = inline) and their payloads archived in the
session's content-addressed store, so ``repro report`` can regenerate
this table from the same run the benchmark timed.
"""

import os

from repro.runner import run_spec


def test_table2_scc_before_after(benchmark, record_result, runner_store):
    report = benchmark.pedantic(
        run_spec,
        args=("table2",),
        kwargs={
            "fidelity": "exhaustive",
            "store": runner_store,
            "jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1")),
            "log": None,
        },
        rounds=1,
        iterations=1,
    )
    assert report.computed == report.shard_count, "timed run must not be cached"
    record_result(report.result)
