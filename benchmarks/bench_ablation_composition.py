"""Bench: Section III-B ablation — series composition of D=1
synchronizers (diminishing returns toward SCC=+1, compounding bias)."""

from repro.analysis import ablation_composition


def test_ablation_composition(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_composition, kwargs={"step": 2, "stages": (1, 2, 3, 4, 6, 8)},
        rounds=1, iterations=1,
    )
    record_result(result)
