"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables/figures (full
resolution — the paper's exhaustive sweeps) inside the timed region, then
archives the rendered comparison table under ``benchmarks/results/`` and
echoes it to stdout (run with ``-s`` to see tables inline).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Persist and echo an ExperimentResult produced inside a benchmark."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.to_text()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print("\n" + text)
        assert result.all_checks_pass, (
            f"{result.experiment_id}: shape checks failed: "
            f"{[k for k, v in result.checks.items() if not v]}"
        )
        return result

    return _record
