"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables/figures (full
resolution — the paper's exhaustive sweeps) inside the timed region, then
archives the rendered comparison table under ``benchmarks/results/`` and
echoes it to stdout (run with ``-s`` to see tables inline).

Additionally, every bench test's wall time is recorded into the
machine-readable ``BENCH_<name>.json`` snapshots (see ``_snapshot.py``)
at session end, so the perf trajectory is tracked across PRs even for
benches without explicit timing tables.
"""

import pathlib

import pytest

import _snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_runtest_logreport(report):
    """Record each passing bench test's call duration as a snapshot row."""
    if report.when != "call" or not report.passed:
        return
    path = report.nodeid.split("::", 1)[0]
    bench = _snapshot.bench_name(path)
    if bench is None:
        return
    _snapshot.add_entry(
        bench,
        op=report.nodeid.split("::", 1)[1],
        wall_ms=report.duration * 1e3,
    )


def pytest_sessionfinish(session, exitstatus):
    _snapshot.write_all()


@pytest.fixture(scope="session")
def runner_store(tmp_path_factory):
    """A fresh content-addressed result store for runner-routed benches.

    Session-scoped and empty at start, so the timed region really
    computes (no cache hits from earlier runs) while benches within one
    session share payloads — and ``repro report`` can regenerate every
    archived table from it afterwards.
    """
    from repro.runner import ResultStore

    return ResultStore(tmp_path_factory.mktemp("repro-store"))


@pytest.fixture
def record_result():
    """Persist and echo an ExperimentResult produced inside a benchmark."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.to_text()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print("\n" + text)
        assert result.all_checks_pass, (
            f"{result.experiment_id}: shape checks failed: "
            f"{[k for k, v in result.checks.items() if not v]}"
        )
        return result

    return _record
