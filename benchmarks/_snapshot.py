"""Machine-readable perf snapshots: ``benchmarks/results/BENCH_<name>.json``.

The rendered ``.txt`` tables under ``benchmarks/results/`` are for humans;
these JSON twins are for tooling — each bench module leaves one
``BENCH_<name>.json`` whose entries carry ``(op, config, wall_ms,
speedup)``, so the perf trajectory can be diffed across PRs and uploaded
as a CI artifact without scraping text tables.

Two feeders populate the store:

* benches with explicit timing tables (``bench_engine``,
  ``bench_packed_backend``, ``bench_fsm_kernels``) call
  :func:`add_entry` / :func:`write` themselves — this also covers direct
  ``python benchmarks/bench_x.py`` runs;
* the pytest hooks in ``benchmarks/conftest.py`` record every bench
  test's call duration, so even the pure-table benches (Tables I–IV,
  figures) leave a wall-time trace.

Entries are keyed per bench module; :func:`write` rewrites the whole
file, so repeated runs replace rather than append.
"""

import json
import pathlib
from typing import Dict, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCHEMA_VERSION = 1

_STORE: Dict[str, List[dict]] = {}


def bench_name(path) -> Optional[str]:
    """``benchmarks/bench_engine.py`` -> ``engine`` (None if not a bench)."""
    stem = pathlib.Path(str(path)).stem
    if not stem.startswith("bench_"):
        return None
    return stem[len("bench_"):]


def add_entry(
    bench: str,
    op: str,
    wall_ms: float,
    *,
    config: Optional[dict] = None,
    speedup: Optional[float] = None,
) -> dict:
    """Record one measurement row for ``bench``; replaces a same-``op``
    row from an earlier run in this process (best-of semantics stay with
    the caller)."""
    entry = {
        "op": op,
        "config": dict(config or {}),
        "wall_ms": round(float(wall_ms), 3),
        "speedup": None if speedup is None else round(float(speedup), 2),
    }
    rows = _STORE.setdefault(bench, [])
    for i, existing in enumerate(rows):
        if existing["op"] == op:
            rows[i] = entry
            return entry
    rows.append(entry)
    return entry


def write(bench: str) -> pathlib.Path:
    """Write ``BENCH_<bench>.json``, merging with any existing file.

    Rows recorded in this process replace same-``op`` rows on disk;
    rows this run did not produce are kept — so a partial pytest run
    (``-k``, ``--lf``, a single test id) refreshes what it measured
    without destroying the rest of an archived snapshot.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    entries = list(_STORE.get(bench, []))
    if path.exists():
        try:
            previous = json.loads(path.read_text()).get("entries", [])
        except (ValueError, OSError):
            previous = []
        fresh_ops = {entry["op"] for entry in entries}
        entries.extend(e for e in previous if e.get("op") not in fresh_ops)
    payload = {
        "bench": bench,
        "schema": SCHEMA_VERSION,
        "entries": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def write_all() -> List[pathlib.Path]:
    return [write(bench) for bench in sorted(_STORE)]
