"""Bench: paper Table IV — the Gaussian-blur -> Roberts-cross accelerator
(floating point, no manipulation, regeneration, synchronizer) on the
synthetic image set at N=256 with 10x10 tiles."""

from repro.analysis import table4


def test_table4_image_pipeline(benchmark, record_result):
    result = benchmark.pedantic(
        table4, kwargs={"image_size": 32, "stream_length": 256},
        rounds=1, iterations=1,
    )
    record_result(result)
