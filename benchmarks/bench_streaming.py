"""Bench: streaming tile execution — fusion speedup and constant memory.

Three tracked numbers for the streaming executor
(:mod:`repro.engine.streaming`):

* **fused vs unfused** — a depth-64 MUX scaled-add chain (the SC
  weighted-sum construction, one long run of single-consumer packed ops)
  evaluated tile by tile with and without super-step fusion. Fusion
  collapses the 64 ops into one pass over each tile with in-place
  kernels and zero interior buffers; the floor is ``>= 1.3x`` (measured
  ~1.5x on a quiet box).
* **streaming vs materialised peak memory** — the width-matched
  manipulation graph at N = 2^20, measured with ``tracemalloc``: the
  materialised engine holds every node's full-length buffer plus the
  full comparator sequences; the streaming executor holds O(tile).
  Floor ``>= 8x`` reduction (measured ~15-30x).
* **long-stream convergence** — the ``long_stream`` experiment at
  exhaustive fidelity (N up to 2^22), archived like every other
  experiment table.

``python benchmarks/bench_streaming.py --rss-smoke`` is the CI
constant-memory proof: it caps the process address space via
``resource.setrlimit`` at its current peak plus a margin *smaller than
the materialised working set*, then runs N = 2^22 streaming evaluations
to completion — and checks (in a subprocess under the same cap) that the
materialised engine dies of ``MemoryError`` where streaming survives.
"""

import pathlib
import subprocess
import sys
import time
import tracemalloc

import pytest

import _snapshot
from repro import engine
from repro.engine.library import depth_chain_graph, long_stream_graph, mux_chain_graph
from repro.engine.streaming import run_streaming

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FUSION_DEPTH = 64
FUSION_N = 1 << 22
FUSION_TILE_WORDS = 4096
MIN_FUSED_SPEEDUP = 1.3

MEMORY_N = 1 << 20
MEMORY_TILE_WORDS = 512
MIN_MEMORY_REDUCTION = 8.0

SMOKE_N = 1 << 22
# Address-space headroom for the --rss-smoke run. The materialised
# engine's working set at N = 2^22 starts at ~170 MB of comparator
# sequences alone, so this margin proves streaming never materialises
# them.
SMOKE_MARGIN_BYTES = 128 << 20


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_fusion():
    plan = engine.compile_graph(mux_chain_graph(FUSION_DEPTH))
    sink = f"n{FUSION_DEPTH}"
    kwargs = dict(tile_words=FUSION_TILE_WORDS, keep=(sink,))
    # Warm the select-tile memo and the FSM-free schedule once per mode.
    fused_run = run_streaming(plan, FUSION_N, fuse=True, **kwargs)
    unfused_run = run_streaming(plan, FUSION_N, fuse=False, **kwargs)
    import numpy as np

    assert np.array_equal(fused_run.words(sink), unfused_run.words(sink)), (
        "fusion changed bits"
    )
    t_fused = _best_of(lambda: run_streaming(plan, FUSION_N, fuse=True, **kwargs))
    t_unfused = _best_of(lambda: run_streaming(plan, FUSION_N, fuse=False, **kwargs))
    return t_fused, t_unfused, fused_run.fused_super_steps


def _measure_memory():
    plan = engine.compile_graph(long_stream_graph(20))
    engine.clear_sequence_cache()
    tracemalloc.start()
    engine.executor.run_batch(plan, MEMORY_N)
    _, materialized_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    engine.clear_sequence_cache()
    tracemalloc.start()
    run_streaming(plan, MEMORY_N, tile_words=MEMORY_TILE_WORDS, keep=())
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return materialized_peak, streaming_peak


def _run_and_archive():
    t_fused, t_unfused, super_steps = _measure_fusion()
    mat_peak, stream_peak = _measure_memory()
    speedup = t_unfused / t_fused
    reduction = mat_peak / stream_peak
    lines = [
        f"streaming tile execution (tile={FUSION_TILE_WORDS} words)",
        f"{'measurement':<42} {'value':>14}",
        f"{'fused super-steps (depth-64 mux chain)':<42} {super_steps:>14d}",
        f"{'unfused wall ms (N=2^22)':<42} {t_unfused * 1e3:>12.1f}",
        f"{'fused wall ms (N=2^22)':<42} {t_fused * 1e3:>12.1f}",
        f"{'fusion speedup':<42} {speedup:>13.2f}x",
        f"{'materialised peak bytes (N=2^20)':<42} {mat_peak:>14d}",
        f"{'streaming peak bytes (N=2^20)':<42} {stream_peak:>14d}",
        f"{'peak-memory reduction':<42} {reduction:>13.1f}x",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "streaming.txt").write_text(text + "\n")
    _snapshot.add_entry(
        "streaming", op="unfused run (depth-64 mux chain)",
        wall_ms=t_unfused * 1e3,
        config={"depth": FUSION_DEPTH, "n": FUSION_N, "tile_words": FUSION_TILE_WORDS},
    )
    _snapshot.add_entry(
        "streaming", op="fused run (depth-64 mux chain)",
        wall_ms=t_fused * 1e3,
        config={"depth": FUSION_DEPTH, "n": FUSION_N, "tile_words": FUSION_TILE_WORDS},
        speedup=speedup,
    )
    _snapshot.add_entry(
        "streaming", op="peak-memory reduction (N=2^20)",
        wall_ms=0.0,
        config={
            "n": MEMORY_N, "tile_words": MEMORY_TILE_WORDS,
            "materialized_peak_bytes": mat_peak,
            "streaming_peak_bytes": stream_peak,
        },
        speedup=reduction,
    )
    _snapshot.write("streaming")
    print("\n" + text)
    return speedup, reduction, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_fused_speedup_floor(measured):
    speedup, _, text = measured
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused super-steps only {speedup:.2f}x over unfused tile execution "
        f"(floor is {MIN_FUSED_SPEEDUP}x)\n{text}"
    )


def test_memory_reduction_floor(measured):
    _, reduction, text = measured
    assert reduction >= MIN_MEMORY_REDUCTION, (
        f"streaming peak memory only {reduction:.1f}x below materialised "
        f"(floor is {MIN_MEMORY_REDUCTION}x)\n{text}"
    )


def test_long_stream_experiment(record_result):
    from repro.analysis.experiments import (
        _LONG_STREAM_EXPONENTS_EXHAUSTIVE,
        long_stream,
    )

    record_result(long_stream(exponents=_LONG_STREAM_EXPONENTS_EXHAUSTIVE))


# ---------------------------------------------------------------------- #
# Constant-memory RSS smoke (CI): run N = 2^22 under a hard ceiling
# ---------------------------------------------------------------------- #

def _current_vm_peak_bytes() -> int:
    for line in pathlib.Path("/proc/self/status").read_text().splitlines():
        if line.startswith("VmPeak:"):
            return int(line.split()[1]) * 1024
    raise RuntimeError("VmPeak not found (non-Linux host?)")


def _materialized_probe() -> int:
    """Subprocess body: try the materialised engine under the cap.

    Exit 42 = MemoryError as expected; exit 1 = it survived (the ceiling
    proves nothing); other = unrelated crash.
    """
    import resource

    limit = _current_vm_peak_bytes() + SMOKE_MARGIN_BYTES
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    plan = engine.compile_graph(long_stream_graph(22))
    try:
        engine.executor.run_batch(plan, SMOKE_N)
    except MemoryError:
        return 42
    return 1


def _rss_smoke() -> int:
    import resource

    # The probe must inherit the same ceiling *policy* but compute its
    # own baseline, so spawn it before capping this process. Absolute
    # paths throughout: the parent may run from any working directory
    # with a relative PYTHONPATH.
    import os

    here = pathlib.Path(__file__).resolve()
    env = dict(os.environ)
    src = str(here.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    probe = subprocess.run(
        [sys.executable, str(here), "--materialized-probe"],
        cwd=str(here.parent),
        env=env,
    )
    assert probe.returncode == 42, (
        f"materialised engine survived the address-space ceiling "
        f"(exit {probe.returncode}); the smoke proves nothing"
    )

    limit = _current_vm_peak_bytes() + SMOKE_MARGIN_BYTES
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    start = time.perf_counter()
    # The ISSUE's depth-4 library graph (8-bit sources) plus the
    # width-matched manipulation graph — both at N = 2^22, both under
    # the ceiling the materialised engine just died of.
    for plan in (
        engine.compile_graph(depth_chain_graph(4)),
        engine.compile_graph(long_stream_graph(22)),
    ):
        result = run_streaming(plan, SMOKE_N, tile_words=4096, keep=())
        assert result.tiles == SMOKE_N // (4096 * 64)
    wall = time.perf_counter() - start
    _snapshot.add_entry(
        "streaming", op="rss smoke (N=2^22 under AS ceiling)",
        wall_ms=wall * 1e3,
        config={"n": SMOKE_N, "margin_bytes": SMOKE_MARGIN_BYTES},
    )
    _snapshot.write("streaming")
    print(
        f"rss smoke: 2 graphs x N=2^22 streamed in {wall:.1f}s under a "
        f"{SMOKE_MARGIN_BYTES >> 20} MiB address-space margin "
        f"(materialised probe correctly died)"
    )
    return 0


if __name__ == "__main__":
    if "--materialized-probe" in sys.argv:
        sys.exit(_materialized_probe())
    if "--rss-smoke" in sys.argv:
        sys.exit(_rss_smoke())
    _run_and_archive()
