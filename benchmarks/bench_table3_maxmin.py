"""Bench: paper Table III — accuracy, bias, area, power, energy of the
five max/min designs over the exhaustive VDC x Halton-3 input sweep.

Routed through :mod:`repro.runner`: the five designs are independent
shards (each one batched packed pass) scheduled onto ``REPRO_BENCH_JOBS``
workers and archived in the session's content-addressed store.
"""

import os

from repro.runner import run_spec


def test_table3_maxmin_designs(benchmark, record_result, runner_store):
    report = benchmark.pedantic(
        run_spec,
        args=("table3",),
        kwargs={
            "fidelity": "exhaustive",
            "store": runner_store,
            "jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1")),
            "log": None,
        },
        rounds=1,
        iterations=1,
    )
    assert report.computed == report.shard_count, "timed run must not be cached"
    record_result(report.result)
