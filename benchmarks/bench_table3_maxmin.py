"""Bench: paper Table III — accuracy, bias, area, power, energy of the
five max/min designs over the exhaustive VDC x Halton-3 input sweep."""

from repro.analysis import table3


def test_table3_maxmin_designs(benchmark, record_result):
    result = benchmark.pedantic(
        table3, kwargs={"n": 256, "step": 1}, rounds=1, iterations=1
    )
    record_result(result)
