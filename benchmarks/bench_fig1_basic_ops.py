"""Bench: paper Fig. 1 — the worked multiply and scaled-add examples."""

from repro.analysis import fig1


def test_fig1_worked_examples(benchmark, record_result):
    result = benchmark(fig1)
    record_result(result)
