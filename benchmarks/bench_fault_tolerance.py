"""Bench: the paper's intro claim — SC's "improved error tolerance".

Injects equal per-bit fault rates into stochastic streams and binary
words; SC value error must stay below binary value error at every rate,
degrading linearly rather than catastrophically.
"""

from repro.analysis import fault_tolerance


def test_fault_tolerance_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        fault_tolerance,
        kwargs={"rates": (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2), "trials": 512},
        rounds=1, iterations=1,
    )
    record_result(result)
