"""Bench: the experiment runner itself — cold scheduling vs cached
replay, parallel shard execution, and store-backed artifact regeneration.

Floors enforced here:

* a second ``run all`` against a warm store must be >= 10x faster than
  the cold run (it executes nothing — every shard is a cache hit);
* with >= 4 CPUs available, ``--jobs 4`` must beat serial by >= 3x on the
  smoke suite (skipped on smaller machines — same stance as the other
  wall-clock floors: shared CI runners get continue-on-error);
* tables regenerated from the store are byte-identical to rendering the
  in-memory results.
"""

import os
import time

import pytest

import _snapshot

from repro.runner import ResultStore, load_results, run_all, write_archives


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity
        return os.cpu_count() or 1


def test_cached_replay_floor(tmp_path):
    store = ResultStore(tmp_path / "store")
    started = time.perf_counter()
    run_all(fidelity="smoke", store=store, log=None)
    cold = time.perf_counter() - started

    started = time.perf_counter()
    reports = run_all(fidelity="smoke", store=store, log=None)
    warm = time.perf_counter() - started

    assert all(r.all_from_cache for r in reports)
    speedup = cold / warm
    _snapshot.add_entry(
        "runner", op="smoke_cold_vs_cached", wall_ms=warm * 1e3,
        config={"fidelity": "smoke", "cold_ms": round(cold * 1e3, 3)},
        speedup=speedup,
    )
    print(f"\nrunner smoke: cold {cold:.2f}s, cached replay {warm:.3f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 10.0, (
        f"cached replay should be >= 10x faster, got {speedup:.1f}x"
    )


@pytest.mark.skipif(_cpus() < 4, reason="parallel speedup floor needs >= 4 CPUs")
def test_parallel_speedup_floor(tmp_path):
    started = time.perf_counter()
    run_all(fidelity="smoke", jobs=1, store=ResultStore(tmp_path / "serial"), log=None)
    serial = time.perf_counter() - started

    started = time.perf_counter()
    run_all(fidelity="smoke", jobs=4, store=ResultStore(tmp_path / "par"), log=None)
    parallel = time.perf_counter() - started

    speedup = serial / parallel
    _snapshot.add_entry(
        "runner", op="smoke_jobs4_vs_serial", wall_ms=parallel * 1e3,
        config={"fidelity": "smoke", "jobs": 4,
                "serial_ms": round(serial * 1e3, 3)},
        speedup=speedup,
    )
    print(f"\nrunner smoke: serial {serial:.2f}s, jobs=4 {parallel:.2f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 3.0, f"expected >= 3x at --jobs 4, got {speedup:.1f}x"


def test_store_regeneration_is_byte_identical(tmp_path):
    store = ResultStore(tmp_path / "store")
    reports = run_all(fidelity="smoke", store=store, log=None)
    out_dir = tmp_path / "archives"
    results = load_results(store, fidelity="smoke")
    assert write_archives(results, out_dir, log=None) == 0
    for report in reports:
        regenerated = (out_dir / f"{report.spec}.txt").read_text()
        assert regenerated == report.result.to_text() + "\n", report.spec
