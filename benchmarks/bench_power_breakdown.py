"""Bench: the Section IV-B per-block power breakdown of the accelerator
variants (converters / kernels / RNGs / correlation manipulation)."""

from repro.analysis import power_breakdown


def test_power_breakdown(benchmark, record_result):
    result = benchmark(power_breakdown)
    record_result(result)
