"""Bench: the paper's prose claims — CA adder 5.6x/10.7x (Section II-B),
CA max vs sync max 5.2x/11.6x (Table III), manipulation overhead 3.0x and
total energy saving 24% (Section IV-B)."""

from repro.analysis import claims


def test_prose_claims(benchmark, record_result):
    result = benchmark(claims)
    record_result(result)
