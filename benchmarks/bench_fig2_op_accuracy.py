"""Bench: paper Fig. 2 — each SC operator under required vs. wrong
correlation, exhaustive N=256 level sweep."""

from repro.analysis import fig2


def test_fig2_operator_accuracy(benchmark, record_result):
    result = benchmark.pedantic(fig2, kwargs={"step": 1}, rounds=1, iterations=1)
    record_result(result)
