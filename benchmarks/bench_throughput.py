"""Bench: library throughput microbenchmarks.

Not a paper table — these track the simulator's own performance (the
"runtime in SC is proportional to bitstream length" reality): SCC over
large batches, FSM stepping rate, decorrelator stepping rate, D/S
conversion, and one full accelerator tile.
"""

import numpy as np
import pytest

from repro.analysis import generate_level_batch, pair_levels
from repro.bitstream.metrics import scc_batch
from repro.core import Decorrelator, Desynchronizer, Synchronizer
from repro.pipeline import AcceleratorConfig, SCAccelerator
from repro.rng import LFSR, Halton, VanDerCorput


@pytest.fixture(scope="module")
def big_pair():
    xs, ys = pair_levels(256, 2)
    x = generate_level_batch(xs, VanDerCorput(8), 256)
    y = generate_level_batch(ys, Halton(3, 8), 256)
    return x, y


def test_scc_batch_throughput(benchmark, big_pair):
    x, y = big_pair
    out = benchmark(scc_batch, x, y)
    assert out.shape[0] == x.shape[0]


def test_synchronizer_throughput(benchmark, big_pair):
    x, y = big_pair
    sync = Synchronizer(1)
    ox, oy = benchmark(sync._process_bits, x, y)
    assert ox.shape == x.shape


def test_desynchronizer_throughput(benchmark, big_pair):
    x, y = big_pair
    desync = Desynchronizer(1)
    ox, _ = benchmark(desync._process_bits, x, y)
    assert ox.shape == x.shape


def test_decorrelator_throughput(benchmark, big_pair):
    x, y = big_pair
    deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
    ox, _ = benchmark(deco._process_bits, x, y)
    assert ox.shape == x.shape


def test_d2s_conversion_throughput(benchmark):
    levels = np.arange(256, dtype=np.int64)
    out = benchmark(generate_level_batch, levels, VanDerCorput(8), 256)
    assert out.shape == (256, 256)


def test_accelerator_tile_throughput(benchmark):
    acc = SCAccelerator(AcceleratorConfig(variant="synchronizer"))
    tile = np.linspace(0.1, 0.9, 100).reshape(10, 10)
    out = benchmark(acc.process_tile, tile)
    assert out.shape == (7, 7)
