"""Bench: the parallel tile scheduler — span workers vs the sequential walk.

Two tracked properties for :mod:`repro.engine.parallel`:

* **identity at every worker count** — the paper's width-matched
  manipulation graph (``long_stream_graph``) at N = 2^20, evaluated
  sequentially and at jobs ∈ {2, 4}: every node's popcount totals and
  every audit entry must be *equal*, not approximately equal. These rows
  run on any machine — a single-core box still forks the span workers
  and must produce the same bits.
* **speedup floor** — ``jobs=4`` must beat the sequential walk by
  >= 2x on the same workload. Wall-clock floors only mean something with
  real cores underneath, so the floor test skips below 4 CPUs (same
  stance as ``bench_runner``'s shard-pool floor); the timing rows are
  archived regardless, so the JSON snapshot records what the box did.
"""

import os
import pathlib
import time

import numpy as np
import pytest

import _snapshot
from repro import engine
from repro.engine.library import long_stream_graph
from repro.engine.streaming import audit_streaming, run_streaming

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WIDTH = 20
N = 1 << 20
TILE_WORDS = 512
JOBS_GRID = (1, 2, 4)
MIN_PARALLEL_SPEEDUP = 2.0  # jobs=4 vs jobs=1, >= 4 CPUs only


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity
        return os.cpu_count() or 1


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_and_archive():
    plan = engine.compile_graph(long_stream_graph(WIDTH))

    # Identity first: ones totals and audit entries at every jobs value
    # must equal the sequential walk before any timing is worth keeping.
    reference = run_streaming(plan, N, tile_words=TILE_WORDS, keep=())
    ref_audit = audit_streaming(plan, N, tile_words=TILE_WORDS)
    for jobs in JOBS_GRID[1:]:
        result = run_streaming(plan, N, tile_words=TILE_WORDS, keep=(), jobs=jobs)
        for name in reference.ones:
            assert np.array_equal(result.ones[name], reference.ones[name]), (
                f"jobs={jobs} changed popcounts on {name}"
            )
        par_audit = audit_streaming(plan, N, tile_words=TILE_WORDS, jobs=jobs)
        assert par_audit.entries == ref_audit.entries, f"jobs={jobs} audit drifted"
        assert par_audit.values == ref_audit.values

    times = {
        jobs: _best_of(
            lambda jobs=jobs: run_streaming(
                plan, N, tile_words=TILE_WORDS, keep=(), jobs=jobs
            )
        )
        for jobs in JOBS_GRID
    }
    speedups = {jobs: times[1] / times[jobs] for jobs in JOBS_GRID}

    lines = [
        f"parallel tile scheduler (long_stream width={WIDTH}, N=2^{WIDTH}, "
        f"tile={TILE_WORDS} words, {_cpus()} CPU(s))",
        f"{'jobs':>6} {'wall ms':>12} {'speedup':>10}",
    ]
    for jobs in JOBS_GRID:
        lines.append(
            f"{jobs:>6} {times[jobs] * 1e3:>12.1f} {speedups[jobs]:>9.2f}x"
        )
        _snapshot.add_entry(
            "parallel_streaming",
            op=f"long_stream run (jobs={jobs})",
            wall_ms=times[jobs] * 1e3,
            config={
                "width": WIDTH, "n": N, "tile_words": TILE_WORDS,
                "jobs": jobs, "cpus": _cpus(),
            },
            speedup=speedups[jobs],
        )
    _snapshot.write("parallel_streaming")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_streaming.txt").write_text(text + "\n")
    print("\n" + text)
    return speedups, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_identity_rows_recorded(measured):
    # _run_and_archive already asserted bit-identity at every jobs value;
    # this test exists so the identity check runs on every machine even
    # when the speedup floor below is skipped.
    speedups, _ = measured
    assert set(speedups) == set(JOBS_GRID)


@pytest.mark.skipif(
    _cpus() < 4, reason="parallel speedup floor needs >= 4 CPUs"
)
def test_parallel_speedup_floor(measured):
    speedups, text = measured
    assert speedups[4] >= MIN_PARALLEL_SPEEDUP, (
        f"jobs=4 only {speedups[4]:.2f}x over the sequential walk "
        f"(floor is {MIN_PARALLEL_SPEEDUP}x)\n{text}"
    )


if __name__ == "__main__":
    _run_and_archive()
