"""Bench: correlation propagation through SC operators — quantifying the
open question the paper raises in Section II-B ("the quantitative impact
of how each SC arithmetic operation changes the SN correlation ... is not
well-understood")."""

from repro.analysis import propagation


def test_correlation_propagation(benchmark, record_result):
    result = benchmark.pedantic(
        propagation, kwargs={"step": 1}, rounds=1, iterations=1
    )
    record_result(result)
