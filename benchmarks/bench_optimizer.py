"""Bench: the plan optimizer — CSE sweep speedup and arena peak memory.

Two tracked numbers for :mod:`repro.engine.optimize`:

* **CSE sweep speedup** — the ``cse_sweep`` library graph (16
  structurally identical depth-4 operator trees, each re-declaring its
  own copies of one source quadruple — the shape every batched design
  sweep produces) evaluated over 1024 configurations with and without
  optimization. Structural CSE collapses the 64 batched comparator
  packs to 4 and the 80 scheduled ops to 20, and the arena recycles
  the survivors' buffers; the floor is ``>= 1.5x``.
* **arena peak-memory reduction** — the depth-64 MUX scaled-add chain,
  materialised ``run_batch`` over a 256-configuration sweep, measured
  with ``tracemalloc``: the faithful plan allocates one fresh
  full-length buffer per node, the optimized plan serves every op from
  the liveness-driven :class:`~repro.engine.optimize.BufferArena`.
  Floor ``>= 2x`` reduction (measured ~10-20x).

Both floors gate in CI (the ``optimizer-smoke`` job); results are
archived to ``benchmarks/results/optimizer.txt`` and
``BENCH_optimizer.json``.
"""

import pathlib
import time
import tracemalloc

import numpy as np
import pytest

import _snapshot
from repro import engine
from repro.engine.executor import run_batch
from repro.engine.library import cse_sweep_graph, mux_chain_graph

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SWEEP_COPIES = 16
SWEEP_BATCH = 1024
SWEEP_N = 2048
MIN_CSE_SPEEDUP = 1.5

MEMORY_DEPTH = 64
MEMORY_BATCH = 256
MEMORY_N = 1 << 15
MIN_MEMORY_REDUCTION = 2.0


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_values(copies, batch):
    """(batch,)-valued overrides for every tree's copy of the interior
    source quadruple — identical arrays per stem, which is what a real
    design sweep does (each replicated subtree re-declares the same
    inputs). Every merge class stays consistent, so the optimized
    schedule packs each quadruple member once instead of ``copies``
    times; the per-tree weight sources keep their graph values."""
    sweeps = {
        "a": np.linspace(0.55, 0.95, batch),
        "b": np.linspace(0.05, 0.45, batch),
        "c": np.linspace(0.35, 0.75, batch),
        "d": np.linspace(0.25, 0.65, batch),
    }
    return {
        f"t{t}_{stem}": sweep
        for stem, sweep in sweeps.items()
        for t in range(copies)
    }


def _measure_cse():
    graph = cse_sweep_graph(SWEEP_COPIES)
    optimized = engine.compile_graph(graph, optimize=True)
    raw = engine.compile_graph(graph, optimize=False)
    values = _sweep_values(SWEEP_COPIES, SWEEP_BATCH)
    keep = [f"t{t}_out" for t in range(SWEEP_COPIES)]

    opt_run = run_batch(optimized, SWEEP_N, values=values, keep=keep)
    raw_run = run_batch(raw, SWEEP_N, values=values, keep=keep)
    for name in keep:
        assert np.array_equal(opt_run.words(name), raw_run.words(name)), (
            "optimizer changed bits", name,
        )

    t_opt = _best_of(lambda: run_batch(optimized, SWEEP_N, values=values, keep=keep))
    t_raw = _best_of(lambda: run_batch(raw, SWEEP_N, values=values, keep=keep))
    return t_opt, t_raw, optimized.report.merged


def _measure_memory():
    graph = mux_chain_graph(MEMORY_DEPTH)
    optimized = engine.compile_graph(graph, optimize=True)
    raw = engine.compile_graph(graph, optimize=False)
    values = {"src0": np.linspace(0.05, 0.95, MEMORY_BATCH)}
    sink = f"n{MEMORY_DEPTH}"

    peaks = {}
    for label, plan in (("raw", raw), ("optimized", optimized)):
        engine.clear_sequence_cache()
        run_batch(plan, 256, values=values, keep=[sink])  # warm memos
        tracemalloc.start()
        run_batch(plan, MEMORY_N, values=values, keep=[sink])
        _, peaks[label] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return peaks["raw"], peaks["optimized"]


def _run_and_archive():
    t_opt, t_raw, merged = _measure_cse()
    raw_peak, opt_peak = _measure_memory()
    speedup = t_raw / t_opt
    reduction = raw_peak / opt_peak
    lines = [
        f"plan optimizer (cse_sweep copies={SWEEP_COPIES}, "
        f"batch={SWEEP_BATCH}, N={SWEEP_N})",
        f"{'measurement':<46} {'value':>14}",
        f"{'CSE merges (cse_sweep)':<46} {merged:>14d}",
        f"{'raw sweep wall ms':<46} {t_raw * 1e3:>12.1f}",
        f"{'optimized sweep wall ms':<46} {t_opt * 1e3:>12.1f}",
        f"{'CSE sweep speedup':<46} {speedup:>13.2f}x",
        f"{'raw peak bytes (depth-64 mux, batch=256)':<46} {raw_peak:>14d}",
        f"{'arena peak bytes (depth-64 mux, batch=256)':<46} {opt_peak:>14d}",
        f"{'peak-memory reduction':<46} {reduction:>13.1f}x",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "optimizer.txt").write_text(text + "\n")
    _snapshot.add_entry(
        "optimizer", op="raw sweep (cse_sweep x 1024 configs)",
        wall_ms=t_raw * 1e3,
        config={"copies": SWEEP_COPIES, "batch": SWEEP_BATCH, "n": SWEEP_N},
    )
    _snapshot.add_entry(
        "optimizer", op="optimized sweep (cse_sweep x 1024 configs)",
        wall_ms=t_opt * 1e3,
        config={"copies": SWEEP_COPIES, "batch": SWEEP_BATCH, "n": SWEEP_N,
                "merged": merged},
        speedup=speedup,
    )
    _snapshot.add_entry(
        "optimizer", op="arena peak-memory reduction (depth-64 mux chain)",
        wall_ms=0.0,
        config={"depth": MEMORY_DEPTH, "batch": MEMORY_BATCH, "n": MEMORY_N,
                "raw_peak_bytes": raw_peak, "optimized_peak_bytes": opt_peak},
        speedup=reduction,
    )
    _snapshot.write("optimizer")
    print("\n" + text)
    return speedup, reduction, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_cse_speedup_floor(measured):
    speedup, _, text = measured
    assert speedup >= MIN_CSE_SPEEDUP, (
        f"structural CSE only {speedup:.2f}x over the faithful schedule "
        f"(floor is {MIN_CSE_SPEEDUP}x)\n{text}"
    )


def test_memory_reduction_floor(measured):
    _, reduction, text = measured
    assert reduction >= MIN_MEMORY_REDUCTION, (
        f"arena peak memory only {reduction:.1f}x below the faithful "
        f"schedule (floor is {MIN_MEMORY_REDUCTION}x)\n{text}"
    )


if __name__ == "__main__":
    _run_and_archive()
