"""Bench: serving throughput — micro-batch coalescing vs solo dispatch.

The serving front-end's perf claim: under concurrent load, coalescing
requests that share a structural plan into single batched engine passes
multiplies throughput, because one batched pass over ``k``
configurations costs far less than ``k`` solo passes (shared source
generation, one schedule walk, vectorised kernels).

Two server arms, identical except for the micro-batch knobs:

* **coalesce=on** — ``window_ms=4, max_batch=64`` (requests group);
* **coalesce=off** — ``window_ms=0, max_batch=1`` (every request is its
  own engine pass — the classic request-per-pass server).

Both serve the same closed-loop load: ``audit depth8 N=65536`` with
per-request distinct source values (the batched value-merge path, not
the degenerate shared-row case), no result store (every request must
reach the engine). Floors, asserted at concurrency 32:

* **throughput**: coalesce=on >= 3x coalesce=off — a relative
  same-box measure, legitimate to gate in CI;
* **byte identity**: sampled coalesced responses equal their solo
  service (direct ``execute_group`` group-of-one) as canonical JSON.

``python benchmarks/bench_serve.py`` archives
``benchmarks/results/serve.txt`` + ``BENCH_serve.json`` and exits
non-zero on a floor miss; ``--smoke`` runs a single reduced comparison
(concurrency 16) for the CI smoke job.
"""

import pathlib
import sys

import pytest

import _snapshot
from repro.engine.library import build_graph
from repro.engine.plan import compile_graph
from repro.serve import ServeConfig, ServerThread, execute_group
from repro.serve.loadgen import audit_request, run_load
from repro.serve.protocol import canonical_result, parse_request

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

GRAPH = "depth8"
LENGTH = 1 << 16
CONCURRENCY_SWEEP = (1, 8, 32)
GATE_CONCURRENCY = 32
PER_WORKER = 3
MIN_SPEEDUP = 3.0
# The CI smoke arm runs at lower concurrency (16), where the coalescing
# win is structurally smaller; it gates a softer floor so shared-runner
# noise doesn't flake the job — the strict 3x gate rides on the c=32 arm.
SMOKE_MIN_SPEEDUP = 2.0
IDENTITY_SAMPLES = 8

_ARMS = {
    "on": dict(window_ms=4.0, max_batch=64),
    "off": dict(window_ms=0.0, max_batch=1),
}


def _make_request(i: int) -> dict:
    payload = audit_request(GRAPH, LENGTH, i)
    payload["id"] = f"g{i}"
    return payload


def _measure_arm(arm: str, concurrency: int, per_worker: int = PER_WORKER):
    config = ServeConfig(store_root=None, **_ARMS[arm])
    with ServerThread(config) as srv:
        report = run_load(
            "127.0.0.1", srv.port,
            concurrency=concurrency, per_worker=per_worker,
            make_request=_make_request,
        )
        counters = dict(srv.server.counters)
    assert report.errors == 0, f"arm {arm}: {report.errors} request errors"
    return report, counters


def _assert_identity(responses):
    """Sampled coalesced responses == their solo service, byte for byte."""
    plan = compile_graph(build_graph(GRAPH))
    by_id = {r["id"]: r for r in responses if r.get("ok")}
    sampled = sorted(by_id)[:IDENTITY_SAMPLES]
    assert sampled, "no successful responses to check"
    for rid in sampled:
        i = int(rid[1:])
        solo_req = parse_request({**_make_request(i), "id": "solo"})
        solo = execute_group([solo_req], plan)[0]
        assert canonical_result(by_id[rid]["result"]) == canonical_result(
            solo["result"]
        ), f"coalesced response {rid} diverged from solo service"


def _warmup():
    """One solo pass before any timing: the engine's process-global
    sequence memos (source RNG sequences at N) warm up once, so the
    first-measured arm isn't charged the cold-start cost."""
    plan = compile_graph(build_graph(GRAPH))
    execute_group([parse_request({**_make_request(0), "id": "warm"})], plan)


def _run_and_archive():
    _warmup()
    rows = []
    gate = {}
    for concurrency in CONCURRENCY_SWEEP:
        reports = {}
        for arm in ("off", "on"):
            report, counters = _measure_arm(arm, concurrency)
            reports[arm] = (report, counters)
            _snapshot.add_entry(
                "serve",
                op=f"audit {GRAPH} c={concurrency} coalesce={arm}",
                wall_ms=report.duration_s * 1e3,
                config={
                    "graph": GRAPH, "length": LENGTH,
                    "concurrency": concurrency,
                    "requests": report.requests,
                    "rps": round(report.throughput_rps, 1),
                    "p50_ms": round(report.p50_ms, 2),
                    "p99_ms": round(report.p99_ms, 2),
                    "coalesced_max": report.coalesced_max,
                    "batched": counters.get("serve.coalesce.batched", 0),
                    "solo": counters.get("serve.coalesce.solo", 0),
                },
            )
        off, on = reports["off"][0], reports["on"][0]
        speedup = on.throughput_rps / off.throughput_rps if off.throughput_rps else 0.0
        rows.append((concurrency, off, on, speedup))
        if concurrency == GATE_CONCURRENCY:
            gate["speedup"] = speedup
            gate["responses"] = on.responses
            _snapshot.add_entry(
                "serve",
                op=f"coalescing speedup c={GATE_CONCURRENCY}",
                wall_ms=on.duration_s * 1e3,
                config={"floor": MIN_SPEEDUP},
                speedup=speedup,
            )

    lines = [
        f"serving throughput — audit {GRAPH} N={LENGTH}, "
        f"{PER_WORKER} requests/worker",
        "",
        f"{'conc':>5} {'off rps':>9} {'on rps':>9} {'speedup':>8} "
        f"{'off p99 ms':>11} {'on p99 ms':>11} {'max batch':>10}",
    ]
    for concurrency, off, on, speedup in rows:
        lines.append(
            f"{concurrency:>5} {off.throughput_rps:>9.1f} "
            f"{on.throughput_rps:>9.1f} {speedup:>7.2f}x "
            f"{off.p99_ms:>11.2f} {on.p99_ms:>11.2f} "
            f"{on.coalesced_max:>10}"
        )
    lines.append("")
    lines.append(
        f"floor: coalesce=on >= {MIN_SPEEDUP:.0f}x coalesce=off at "
        f"concurrency {GATE_CONCURRENCY} "
        f"(measured {gate['speedup']:.2f}x)"
    )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve.txt").write_text(text + "\n")
    _snapshot.write("serve")
    print("\n" + text)
    return gate, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_coalescing_throughput_floor(measured):
    gate, text = measured
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"coalescing speedup {gate['speedup']:.2f}x under the "
        f"{MIN_SPEEDUP:.0f}x floor at concurrency {GATE_CONCURRENCY}\n{text}"
    )


def test_coalesced_responses_byte_identical(measured):
    gate, _ = measured
    _assert_identity(gate["responses"])


def _smoke(concurrency: int = 16) -> int:
    """The CI smoke arm: one reduced comparison, same floors."""
    _warmup()
    off, _ = _measure_arm("off", concurrency, per_worker=2)
    on, counters = _measure_arm("on", concurrency, per_worker=2)
    speedup = on.throughput_rps / off.throughput_rps
    batched = counters.get("serve.coalesce.batched", 0)
    solo = counters.get("serve.coalesce.solo", 0)
    print(f"smoke c={concurrency}: off={off.throughput_rps:.1f} rps, "
          f"on={on.throughput_rps:.1f} rps, speedup={speedup:.2f}x, "
          f"batched={batched}, solo={solo}")
    _assert_identity(on.responses)
    print("byte identity: coalesced == solo (sampled)")
    if batched <= solo:
        print(f"FAIL: batched ({batched}) <= solo ({solo})")
        return 1
    if speedup < SMOKE_MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < {SMOKE_MIN_SPEEDUP:.0f}x "
              "smoke floor")
        return 1
    print(f"OK: batched > solo and speedup >= {SMOKE_MIN_SPEEDUP:.0f}x")
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    gate, _ = _run_and_archive()
    _assert_identity(gate["responses"])
    print("byte identity: coalesced == solo (sampled)")
    sys.exit(0 if gate["speedup"] >= MIN_SPEEDUP else 1)
