"""Bench: observability overhead — disabled is free, enabled is cheap.

The instrumentation of :mod:`repro.obs` is permanently wired into the
execution stack, so its cost model is a tracked number like any other
perf claim:

* **disabled overhead** — with no session active every instrumentation
  point is one module-global load plus an identity/None check. The bound
  is proven *analytically*: measure the per-call cost of the disabled
  ``span()`` / ``counter_add()`` paths in a tight loop, count how many
  instrumentation events the workload actually emits (by tracing it
  once), and bound overhead as ``events x per_call_cost / wall_time``.
  This is robust on noisy shared runners where a differential timing of
  a sub-percent effect would drown in scheduler jitter. Floor: <= 2%.
* **enabled overhead** — the same analytic construction with the
  *enabled* per-call cost (span append + counter bump inside a live
  session). Differential traced-vs-untraced timings are archived as
  context but not asserted: the workloads' run-to-run variance on a
  shared box (±15%) swamps the sub-1% effect. Floor: <= 10%.
* **bit identity** — the traced runs must produce byte-identical words
  to the untraced runs (checked here on top of the hypothesis property
  in ``tests/test_obs.py``).

``python benchmarks/bench_obs.py --disabled-floor`` runs just the
analytic disabled-path proof (the CI gate); a full run archives
``benchmarks/results/obs.txt`` and ``BENCH_obs.json``.
"""

import pathlib
import sys
import time

import numpy as np
import pytest

import _snapshot
from repro import engine, obs
from repro.engine.library import build_graph, long_stream_graph
from repro.engine.streaming import run_streaming

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10

ENGINE_GRAPHS = ("fsm_zoo", "mixed_pipeline", "correlated_multiply")
ENGINE_N = 1 << 14
STREAM_EXP = 18
STREAM_N = 1 << STREAM_EXP
STREAM_TILE_WORDS = 512

NULL_CALL_LOOPS = 200_000
ENABLED_CALL_LOOPS = 20_000


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _engine_sweep():
    out = {}
    for name in ENGINE_GRAPHS:
        plan = engine.compile_graph(build_graph(name))
        run = plan.run_batch(ENGINE_N)
        out[name] = {node: run.words(node) for node in run.names}
    return out


def _stream_run():
    plan = engine.compile_graph(long_stream_graph(STREAM_EXP))
    result = run_streaming(plan, STREAM_N, tile_words=STREAM_TILE_WORDS)
    return {name: np.array(v) for name, v in result.ones.items()}


def _null_call_cost_s() -> float:
    """Per-call wall cost of the *disabled* instrumentation paths."""
    assert not obs.enabled()
    span = obs.span
    counter = obs.counter_add

    def spans():
        for _ in range(NULL_CALL_LOOPS):
            with span("bench.null"):
                pass

    def counters():
        for _ in range(NULL_CALL_LOOPS):
            counter("bench.null")

    per_span = _best_of(spans) / NULL_CALL_LOOPS
    per_counter = _best_of(counters) / NULL_CALL_LOOPS
    # One bound for both kinds of instrumentation point.
    return max(per_span, per_counter)


def _enabled_call_cost_s() -> float:
    """Per-call wall cost of the *enabled* instrumentation paths."""
    span = obs.span
    counter = obs.counter_add

    def spans():
        for _ in range(ENABLED_CALL_LOOPS):
            with span("bench.enabled"):
                pass

    def counters():
        for _ in range(ENABLED_CALL_LOOPS):
            counter("bench.enabled")

    worst = 0.0
    for fn in (spans, counters):
        best = float("inf")
        for _ in range(3):
            # Fresh session per repeat so the span buffer stays bounded.
            with obs.observe():
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
        worst = max(worst, best / ENABLED_CALL_LOOPS)
    return worst


def _event_count(workload) -> int:
    """How many instrumentation events the workload emits, by tracing it."""
    with obs.observe() as trace:
        workload()
    spans = len(trace.spans)
    counter_calls = sum(
        1 for _ in trace.metrics["counters"]
    ) + int(sum(trace.metrics["counters"].values()))
    return spans + counter_calls


def measure_disabled_overhead():
    """Analytic disabled-path bound for both workloads.

    Returns ``(overhead_fraction, per_call_s, details)`` where the
    fraction is the *worst* workload's ``events x per_call / wall``.
    """
    per_call = _null_call_cost_s()
    details = {}
    worst = 0.0
    for label, workload in (("engine_sweep", _engine_sweep),
                            ("stream_run", _stream_run)):
        events = _event_count(workload)
        wall = _best_of(workload)
        fraction = events * per_call / wall
        details[label] = {
            "events": events,
            "wall_ms": wall * 1e3,
            "overhead_fraction": fraction,
        }
        worst = max(worst, fraction)
    return worst, per_call, details


def measure_enabled_overhead():
    """Analytic enabled-path bound plus bit-identity.

    Returns ``(overhead_fraction, per_call_s, details)``. The asserted
    fraction is ``events x enabled_per_call / untraced_wall`` per
    workload (worst of the two); the differential traced-vs-untraced
    timing is recorded alongside for context only — on a shared box the
    workloads' run-to-run variance swamps the sub-1% effect.
    """
    per_call = _enabled_call_cost_s()
    results = {}
    worst = 0.0
    for label, workload in (("engine_sweep", _engine_sweep),
                            ("stream_run", _stream_run)):
        base_out = workload()
        untraced = _best_of(workload)

        def traced_once():
            with obs.observe():
                return workload()

        traced_out = traced_once()
        traced = _best_of(traced_once)
        for key in base_out:
            if isinstance(base_out[key], dict):
                for node in base_out[key]:
                    assert np.array_equal(base_out[key][node],
                                          traced_out[key][node]), (
                        "tracing changed bits", label, key, node,
                    )
            else:
                assert np.array_equal(base_out[key], traced_out[key]), (
                    "tracing changed bits", label, key,
                )
        events = _event_count(workload)
        fraction = events * per_call / untraced
        worst = max(worst, fraction)
        results[label] = {
            "untraced_ms": untraced * 1e3,
            "traced_ms": traced * 1e3,
            "events": events,
            "overhead_fraction": fraction,
            "differential_fraction": traced / untraced - 1.0,
        }
    return worst, per_call, results


def _run_and_archive():
    disabled_worst, per_call, disabled_details = measure_disabled_overhead()
    enabled_worst, enabled_call, enabled_details = measure_enabled_overhead()
    lines = [
        "observability overhead (repro.obs)",
        f"{'measurement':<46} {'value':>14}",
        f"{'disabled per-call cost (ns)':<46} {per_call * 1e9:>14.1f}",
        f"{'enabled per-call cost (ns)':<46} {enabled_call * 1e9:>14.1f}",
    ]
    for label, d in disabled_details.items():
        lines.append(
            f"{'disabled bound: ' + label:<46} "
            f"{d['overhead_fraction'] * 100:>13.3f}%"
        )
        _snapshot.add_entry(
            "obs", op=f"disabled bound ({label})", wall_ms=d["wall_ms"],
            config={"events": d["events"],
                    "per_call_ns": round(per_call * 1e9, 1),
                    "overhead_pct": round(d["overhead_fraction"] * 100, 4)},
        )
    for label, d in enabled_details.items():
        lines.append(
            f"{'enabled bound: ' + label:<46} "
            f"{d['overhead_fraction'] * 100:>13.3f}%"
        )
        _snapshot.add_entry(
            "obs", op=f"enabled bound ({label})", wall_ms=d["traced_ms"],
            config={"untraced_ms": round(d["untraced_ms"], 3),
                    "events": d["events"],
                    "per_call_ns": round(enabled_call * 1e9, 1),
                    "overhead_pct": round(d["overhead_fraction"] * 100, 4),
                    "differential_pct":
                        round(d["differential_fraction"] * 100, 2)},
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.txt").write_text(text + "\n")
    _snapshot.write("obs")
    print("\n" + text)
    return disabled_worst, enabled_worst, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_disabled_overhead_floor(measured):
    disabled_worst, _, text = measured
    assert disabled_worst <= MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation bound {disabled_worst * 100:.3f}% exceeds "
        f"{MAX_DISABLED_OVERHEAD * 100:.0f}%\n{text}"
    )


def test_enabled_overhead_floor(measured):
    _, enabled_worst, text = measured
    assert enabled_worst <= MAX_ENABLED_OVERHEAD, (
        f"enabled tracing bound {enabled_worst * 100:.3f}% exceeds "
        f"{MAX_ENABLED_OVERHEAD * 100:.0f}%\n{text}"
    )


if __name__ == "__main__":
    if "--disabled-floor" in sys.argv:
        worst, per_call, details = measure_disabled_overhead()
        print(f"disabled per-call cost: {per_call * 1e9:.1f} ns")
        for label, d in details.items():
            print(f"  {label}: {d['events']} events over "
                  f"{d['wall_ms']:.1f} ms -> "
                  f"{d['overhead_fraction'] * 100:.4f}% bound")
        if worst > MAX_DISABLED_OVERHEAD:
            print(f"FAIL: {worst * 100:.3f}% > "
                  f"{MAX_DISABLED_OVERHEAD * 100:.0f}%")
            sys.exit(1)
        print(f"OK: worst disabled bound {worst * 100:.4f}% <= "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}%")
        sys.exit(0)
    disabled_worst, enabled_worst, _ = _run_and_archive()
    status = (disabled_worst <= MAX_DISABLED_OVERHEAD
              and enabled_worst <= MAX_ENABLED_OVERHEAD)
    sys.exit(0 if status else 1)
