"""Bench: the persistent execution runtime — warm pool vs fork-per-call.

The pool's whole premise is amortisation: fork once, keep plan/kernel
caches and shared-memory segments warm, and make *repeated* parallel
calls cheap. Three tracked properties for :mod:`repro.engine.pool`:

* **warm-call throughput floor** — 64 repeated ``run_streaming`` calls
  on the same compiled plan (N = 2^14, jobs=4) must run >= 3x faster
  through the warm pool than through the legacy fork-per-call span
  scheduler. Wall-clock floors only mean something with real cores
  underneath, so the floor skips below 4 CPUs (same stance as
  ``bench_parallel_streaming``); the timing rows are archived
  regardless, so the JSON snapshot records what the box did.
* **no regression at jobs=1** — the pool must never tax the sequential
  walk: ``jobs=1`` takes the same code path whether the pool default is
  on or off, and the bench bounds the ratio to rule out accidental
  pool engagement on single-job calls.
* **runner store byte-identity** — the same spec run through pooled and
  fork-per-call shard workers must leave byte-identical stores (the
  runner's content-addressed records are part of the reproducibility
  contract, so the runtime swap must be invisible on disk).
"""

import os
import pathlib
import time

import numpy as np
import pytest

import _snapshot
from repro import engine
from repro.engine.library import long_stream_graph
from repro.engine.pool import default_pool, set_default_pool, shutdown_pool
from repro.engine.streaming import run_streaming
from repro.runner import ResultStore, run_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WIDTH = 14
N = 1 << WIDTH
TILE_WORDS = 16           # 256 words -> 16 tiles: real spans at jobs=4
JOBS = 4
CALLS = 64
MIN_WARM_SPEEDUP = 3.0    # warm pool vs fork-per-call, >= 4 CPUs only
MAX_JOBS1_RATIO = 1.25    # pool default on must not tax jobs=1


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity
        return os.cpu_count() or 1


def _timed_calls(plan, *, jobs, pooled):
    """Wall-clock for CALLS repeated runs under one runtime, plus the
    popcount totals of the last run (for the identity check)."""
    previous = default_pool()
    set_default_pool(pooled)
    try:
        if pooled:
            # Warm-up: fork the workers and install the plan token so the
            # measured calls see the steady state the pool exists for.
            run_streaming(plan, N, tile_words=TILE_WORDS, keep=(), jobs=jobs)
        else:
            shutdown_pool()  # make every measured call pay the fork
        started = time.perf_counter()
        for _ in range(CALLS):
            result = run_streaming(
                plan, N, tile_words=TILE_WORDS, keep=(), jobs=jobs
            )
        return time.perf_counter() - started, result.ones
    finally:
        set_default_pool(previous)


def _run_and_archive():
    plan = engine.compile_graph(long_stream_graph(WIDTH))

    sequential = run_streaming(plan, N, tile_words=TILE_WORDS, keep=())
    warm_s, warm_ones = _timed_calls(plan, jobs=JOBS, pooled=True)
    fork_s, fork_ones = _timed_calls(plan, jobs=JOBS, pooled=False)

    # Identity before timing is worth keeping: both runtimes reproduce
    # the sequential popcounts exactly.
    for name in sequential.ones:
        assert np.array_equal(warm_ones[name], sequential.ones[name]), (
            f"warm pool changed popcounts on {name}"
        )
        assert np.array_equal(fork_ones[name], sequential.ones[name]), (
            f"fork-per-call changed popcounts on {name}"
        )

    # jobs=1 never engages the pool: same walk either way.
    one_on_s, _ = _timed_calls(plan, jobs=1, pooled=True)
    one_off_s, _ = _timed_calls(plan, jobs=1, pooled=False)

    speedup = fork_s / warm_s
    jobs1_ratio = one_on_s / one_off_s
    rows = [
        ("warm pool", warm_s, speedup),
        ("fork-per-call", fork_s, 1.0),
        ("jobs=1 pool on", one_on_s, one_off_s / one_on_s),
        ("jobs=1 pool off", one_off_s, 1.0),
    ]
    lines = [
        f"persistent pool ({CALLS} repeated run_streaming calls, "
        f"N=2^{WIDTH}, tile={TILE_WORDS} words, jobs={JOBS}, "
        f"{_cpus()} CPU(s))",
        f"{'runtime':>16} {'wall ms':>12} {'per call ms':>12} {'speedup':>9}",
    ]
    for label, wall, rel in rows:
        lines.append(
            f"{label:>16} {wall * 1e3:>12.1f} "
            f"{wall * 1e3 / CALLS:>12.2f} {rel:>8.2f}x"
        )
        _snapshot.add_entry(
            "pool",
            op=f"repeated run_streaming ({label})",
            wall_ms=wall * 1e3,
            config={
                "width": WIDTH, "n": N, "tile_words": TILE_WORDS,
                "jobs": JOBS if "jobs=1" not in label else 1,
                "calls": CALLS, "cpus": _cpus(),
            },
            speedup=rel,
        )
    _snapshot.write("pool")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "pool.txt").write_text(text + "\n")
    print("\n" + text)
    return speedup, jobs1_ratio, text


@pytest.fixture(scope="module")
def measured():
    return _run_and_archive()


def test_identity_rows_recorded(measured):
    # _run_and_archive already asserted popcount identity across both
    # runtimes; this test exists so the identity check runs on every
    # machine even when the speedup floor below is skipped.
    speedup, jobs1_ratio, _ = measured
    assert speedup > 0 and jobs1_ratio > 0


@pytest.mark.skipif(
    _cpus() < 4, reason="warm-pool speedup floor needs >= 4 CPUs"
)
def test_warm_pool_speedup_floor(measured):
    speedup, _, text = measured
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm pool only {speedup:.2f}x over fork-per-call "
        f"(floor is {MIN_WARM_SPEEDUP}x)\n{text}"
    )


@pytest.mark.skipif(
    _cpus() < 4, reason="jobs=1 timing bound is noise-prone when oversubscribed"
)
def test_no_regression_at_jobs_one(measured):
    _, jobs1_ratio, text = measured
    assert jobs1_ratio <= MAX_JOBS1_RATIO, (
        f"pool default-on taxed jobs=1 by {jobs1_ratio:.2f}x "
        f"(bound is {MAX_JOBS1_RATIO}x)\n{text}"
    )


def _store_bytes(root: pathlib.Path) -> dict:
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def test_runner_store_byte_identical_pool_on_vs_off(tmp_path):
    previous = default_pool()
    try:
        set_default_pool(True)
        run_spec("table2", fidelity="smoke", jobs=2, log=None,
                 store=ResultStore(tmp_path / "pooled"))
        set_default_pool(False)
        run_spec("table2", fidelity="smoke", jobs=2, log=None,
                 store=ResultStore(tmp_path / "forked"))
    finally:
        set_default_pool(previous)
    pooled = _store_bytes(tmp_path / "pooled")
    forked = _store_bytes(tmp_path / "forked")
    assert pooled.keys() == forked.keys()
    assert pooled == forked, "runtime swap changed stored bytes"


if __name__ == "__main__":
    _run_and_archive()
