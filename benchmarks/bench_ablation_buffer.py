"""Bench: Section III-C ablation — shuffle buffer depth and initial-fill
policy vs. decorrelation strength and bias."""

from repro.analysis import ablation_buffer_depth


def test_ablation_buffer_depth(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_buffer_depth, kwargs={"step": 2, "depths": (2, 4, 8, 16, 32)},
        rounds=1, iterations=1,
    )
    record_result(result)
