"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that ``pip install -e . --no-use-pep517`` works in offline
environments that lack the ``wheel`` package required by PEP 517 editable
builds.
"""

from setuptools import setup

setup()
