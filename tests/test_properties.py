"""Property-based tests (hypothesis) for the library's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arith import CAAdder, CAMax
from repro.bitstream import Bitstream, correlated_pair, exact_stream, scc
from repro.core import (
    Decorrelator,
    Desynchronizer,
    ShuffleBuffer,
    Synchronizer,
)
from repro.rng import LFSR, SystemRNG


def bit_arrays(min_len=4, max_len=96):
    return arrays(
        dtype=np.uint8,
        shape=st.integers(min_len, max_len),
        elements=st.integers(0, 1),
    )


def bit_pairs(min_len=4, max_len=96):
    """Two equal-length bit arrays."""
    return st.integers(min_len, max_len).flatmap(
        lambda n: st.tuples(
            arrays(np.uint8, n, elements=st.integers(0, 1)),
            arrays(np.uint8, n, elements=st.integers(0, 1)),
        )
    )


class TestSCCProperties:
    @given(bit_pairs())
    @settings(max_examples=150, deadline=None)
    def test_scc_bounded(self, pair):
        x, y = pair
        assert -1.0 <= scc(x, y) <= 1.0

    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_scc_symmetric(self, pair):
        x, y = pair
        assert scc(x, y) == pytest.approx(scc(y, x), abs=1e-12)

    @given(bit_arrays())
    @settings(max_examples=100, deadline=None)
    def test_scc_self_is_one_or_degenerate_zero(self, x):
        value = scc(x, x)
        if 0 < x.sum() < x.size:
            assert value == 1.0
        else:
            assert value == 0.0

    @given(bit_arrays())
    @settings(max_examples=100, deadline=None)
    def test_scc_complement_is_minus_one_or_degenerate(self, x):
        value = scc(x, 1 - x)
        if 0 < x.sum() < x.size:
            assert value == -1.0
        else:
            assert value == 0.0


class TestSynchronizerProperties:
    @given(bit_pairs(), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_never_creates_ones(self, pair, depth):
        x, y = pair
        ox, oy = Synchronizer(depth)._process_bits(x.reshape(1, -1), y.reshape(1, -1))
        assert ox.sum() <= x.sum()
        assert oy.sum() <= y.sum()

    @given(bit_pairs(), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_loss_bounded_by_depth(self, pair, depth):
        x, y = pair
        sync = Synchronizer(depth)
        stuck = sync.stuck_bits(x, y)
        assert 0 <= stuck[0] <= depth

    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_never_decreases_overlap(self, pair):
        # Pairing up 1s can only grow the 11-overlap count a.
        x, y = pair
        ox, oy = Synchronizer(1)._process_bits(x.reshape(1, -1), y.reshape(1, -1))
        overlap_in = int((x & y).sum())
        overlap_out = int((ox[0] & oy[0]).sum())
        assert overlap_out >= overlap_in - 1  # the last stuck pair may linger

    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_flush_never_loses_more_than_plain(self, pair):
        x, y = pair
        plain = Synchronizer(1).stuck_bits(x, y)
        flushed = Synchronizer(1, flush=True).stuck_bits(x, y)
        assert flushed[0] <= plain[0]
        assert 0 <= flushed[0] <= 1

    @given(bit_arrays())
    @settings(max_examples=50, deadline=None)
    def test_identical_inputs_pass_through(self, x):
        ox, oy = Synchronizer(1)._process_bits(x.reshape(1, -1), x.reshape(1, -1))
        assert np.array_equal(ox[0], x)
        assert np.array_equal(oy[0], x)


class TestDesynchronizerProperties:
    @given(bit_pairs(), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_total_ones_conserved_up_to_depth(self, pair, depth):
        x, y = pair
        stuck = Desynchronizer(depth).stuck_bits(x, y)
        assert 0 <= stuck[0] <= depth

    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_never_increases_overlap(self, pair):
        x, y = pair
        ox, oy = Desynchronizer(1)._process_bits(x.reshape(1, -1), y.reshape(1, -1))
        assert int((ox[0] & oy[0]).sum()) <= int((x & y).sum())

    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_differing_bits_pass_through(self, pair):
        x, y = pair
        ox, oy = Desynchronizer(1)._process_bits(x.reshape(1, -1), y.reshape(1, -1))
        differ = x != y
        assert np.array_equal(ox[0][differ], x[differ])
        assert np.array_equal(oy[0][differ], y[differ])


class TestShuffleBufferProperties:
    @given(bit_arrays(min_len=8), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_bit_conservation(self, x, depth, seed):
        buf = ShuffleBuffer(SystemRNG(8, seed=seed), depth=depth)
        out = buf._process_stream_bits(x.reshape(1, -1))
        drift = abs(int(out.sum()) - int(x.sum()))
        assert drift <= depth

    @given(bit_arrays(min_len=8), st.integers(2, 8), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_output_is_binary(self, x, depth, seed):
        buf = ShuffleBuffer(SystemRNG(8, seed=seed), depth=depth)
        out = buf._process_stream_bits(x.reshape(1, -1))
        assert set(np.unique(out)).issubset({0, 1})


class TestCAAdderProperties:
    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_exact_floor_half_sum(self, pair):
        x, y = pair
        z = CAAdder().compute(x, y)
        assert int(z.sum()) == (int(x.sum()) + int(y.sum())) // 2

    @given(bit_pairs())
    @settings(max_examples=50, deadline=None)
    def test_camax_at_least_half_max(self, pair):
        x, y = pair
        z = CAMax().compute(x, y)
        true_max = max(x.mean(), y.mean())
        assert z.mean() >= true_max / 2 - 0.25


class TestGenerationProperties:
    @given(st.integers(0, 64), st.integers(0, 64))
    @settings(max_examples=100, deadline=None)
    def test_correlated_pair_plus_one(self, kx, ky):
        x, y = correlated_pair(kx / 64, ky / 64, 64, scc=1)
        assert x.ones == kx and y.ones == ky
        if 0 < kx < 64 and 0 < ky < 64:
            assert scc(x.bits, y.bits) == 1.0

    @given(st.integers(0, 64), st.integers(0, 64))
    @settings(max_examples=100, deadline=None)
    def test_correlated_pair_minus_one(self, kx, ky):
        x, y = correlated_pair(kx / 64, ky / 64, 64, scc=-1)
        assert x.ones == kx and y.ones == ky
        if 0 < kx < 64 and 0 < ky < 64:
            assert scc(x.bits, y.bits) == -1.0

    @given(st.integers(0, 32))
    @settings(max_examples=50, deadline=None)
    def test_exact_stream_value(self, k):
        assert exact_stream(k / 32, 32).ones == k


class TestDecorrelatorProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_preserves_values_within_depth(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, (4, 64)).astype(np.uint8)
        y = rng.integers(0, 2, (4, 64)).astype(np.uint8)
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
        ox, oy = deco._process_bits(x, y)
        drift_x = ox.sum(axis=1, dtype=np.int64) - x.sum(axis=1, dtype=np.int64)
        drift_y = oy.sum(axis=1, dtype=np.int64) - y.sum(axis=1, dtype=np.int64)
        assert np.abs(drift_x).max() <= 4
        assert np.abs(drift_y).max() <= 4
