"""Shared non-fixture helpers for the test suite."""

import numpy as np


def assert_backends_equivalent(
    graph,
    length,
    *,
    tile_words=(7,),
    jobs=2,
    audit=False,
    traced=False,
    optimize="optimized",
    serve=False,
    pool="default",
):
    """The cross-backend equivalence matrix, as one assertion.

    Pins the repo's core contract for a single ``(graph, length)``:

        interpreter == engine == streaming == parallel streaming

    Every node's bit stream must be *identical* (not approximately
    equal) across all four execution routes, at every requested tile
    size, with the parallel tile scheduler running ``jobs`` span
    workers. With ``audit=True`` the four audit routes are compared
    too — float-exact, because streaming and parallel totals are the
    same integers the materialised engine counts. With ``traced=True``
    the whole matrix runs inside an active :mod:`repro.obs` session —
    tracing must never change a result bit. ``optimize`` selects which
    compiled plan drives the engine/streaming/parallel legs:
    ``"optimized"`` (the default plan), ``"raw"``
    (``optimize=False``), or ``"both"`` — the optimizer's bit-safety
    contract, running the whole matrix once per plan. With
    ``serve=True`` the serving axis joins the matrix: the micro-batch
    group executor (:func:`repro.serve.batcher.execute_group`) must
    return bit-identical streams and byte-identical payloads whether a
    request is served solo or coalesced between other requests.
    ``pool`` selects the execution runtime for the parallel leg:
    ``"default"`` leaves the persistent worker pool setting alone;
    ``"both"`` runs the parallel leg twice — once through the warm
    pool and once through fork-per-call workers — and requires the
    two runtimes to agree bit for bit.
    """
    import contextlib

    from repro import obs

    with obs.observe() if traced else contextlib.nullcontext():
        _assert_backends_equivalent(
            graph,
            length,
            tile_words=tile_words,
            jobs=jobs,
            audit=audit,
            optimize=optimize,
            serve=serve,
            pool=pool,
        )


_OPTIMIZE_FLAGS = {"optimized": (True,), "raw": (False,), "both": (True, False)}


def _assert_backends_equivalent(
    graph, length, *, tile_words, jobs, audit, optimize, serve=False,
    pool="default",
):
    from repro import engine

    if isinstance(tile_words, int):
        tile_words = (tile_words,)

    interp = graph.run(length, backend="interpreter")
    a_interp = graph.audit(length, backend="interpreter") if audit else None
    for flag in _OPTIMIZE_FLAGS[optimize]:
        plan = engine.compile(graph, optimize=flag)
        eng = plan.run(length)
        assert list(interp) == list(eng)
        for name in interp:
            assert np.array_equal(interp[name], eng[name]), (
                "interpreter vs engine", name, length, flag,
            )

        for tw in tile_words:
            stream = engine.run_streaming(plan, length, tile_words=tw)
            par = engine.run_streaming(plan, length, tile_words=tw, jobs=jobs)
            if pool == "both":
                from repro.engine.pool import default_pool, set_default_pool

                previous = default_pool()
                set_default_pool(not previous)
                try:
                    other = engine.run_streaming(
                        plan, length, tile_words=tw, jobs=jobs
                    )
                finally:
                    set_default_pool(previous)
                for name in interp:
                    assert np.array_equal(other.words(name), par.words(name)), (
                        "pool vs fork-per-call", name, length, tw, jobs, flag,
                    )
                    assert np.array_equal(other.ones[name], par.ones[name]), (
                        "pool vs fork-per-call ones", name, length, tw, jobs, flag,
                    )
            for name in interp:
                assert np.array_equal(stream.bits(name)[0], eng[name]), (
                    "engine vs streaming", name, length, tw, flag,
                )
                assert np.array_equal(par.words(name), stream.words(name)), (
                    "streaming vs parallel", name, length, tw, jobs, flag,
                )
                assert np.array_equal(par.ones[name], stream.ones[name]), (
                    "streaming vs parallel ones", name, length, tw, jobs, flag,
                )

        if audit:
            a_eng = plan.audit(length)
            assert a_interp.entries == a_eng.entries  # every field, float-exact
            assert a_interp.values == a_eng.values
            assert a_interp.expected == a_eng.expected
            for tw in tile_words:
                a_stream = engine.audit_streaming(plan, length, tile_words=tw)
                a_par = engine.audit_streaming(
                    plan, length, tile_words=tw, jobs=jobs
                )
                assert a_stream.values == a_eng.values
                for eng_entry, got in zip(a_eng.entries, a_stream.entries):
                    assert eng_entry.node == got.node
                    assert eng_entry.measured_scc == got.measured_scc
                    assert eng_entry.measured_value == got.measured_value
                    assert eng_entry.violated == got.violated
                assert a_par.entries == a_stream.entries
                assert a_par.values == a_stream.values
                assert a_par.expected == a_stream.expected

        if serve:
            _assert_serve_equivalent(plan, length, interp, audit=audit)


def _assert_serve_equivalent(plan, length, interp, *, audit):
    """The serving axis: solo == coalesced == engine, bit for bit.

    Goes through :func:`repro.serve.batcher.execute_group` directly
    (the exact code path the asyncio server dispatches to), with the
    middle request of a coalesced group compared byte-for-byte against
    its solo service and its streams against the interpreter's.
    """
    from repro.bitstream.packed import unpack_bits
    from repro.serve.batcher import execute_group
    from repro.serve.protocol import ServeRequest, b64_to_words, canonical_result

    probe = ServeRequest(id="solo", kind="run", graph="g", length=length, bits=True)
    solo = execute_group([probe], plan)[0]
    assert solo["ok"], solo
    for name in interp:
        words = b64_to_words(solo["result"]["words"][name]).reshape(1, -1)
        assert np.array_equal(unpack_bits(words, length)[0], interp[name]), (
            "interpreter vs serve", name, length,
        )

    src = plan.source_names[0]
    flank_a = ServeRequest(
        id="a", kind="run", graph="g", length=length,
        values=((src, 0.25),), bits=True,
    )
    flank_b = ServeRequest(
        id="b", kind="run", graph="g", length=length,
        values=((src, 0.875),), bits=True,
    )
    grouped = execute_group([flank_a, probe, flank_b], plan)
    assert canonical_result(grouped[1]["result"]) == canonical_result(
        solo["result"]
    ), ("serve solo vs coalesced", length)

    if audit:
        a_probe = ServeRequest(id="solo", kind="audit", graph="g", length=length)
        a_solo = execute_group([a_probe], plan)[0]
        a_flank = ServeRequest(
            id="a", kind="audit", graph="g", length=length, values=((src, 0.25),)
        )
        a_grouped = execute_group([a_flank, a_probe], plan)
        assert canonical_result(a_grouped[1]["result"]) == canonical_result(
            a_solo["result"]
        ), ("serve audit solo vs coalesced", length)


def make_pair_batch(rng_x, rng_y, n=256, step=16):
    """Small exhaustive pair batch: comparator D/S through two RNGs.

    Returns ``(x_bits, y_bits, x_levels, y_levels)``.
    """
    levels = np.arange(0, n, step, dtype=np.int64)
    xs = np.repeat(levels, levels.size)
    ys = np.tile(levels, levels.size)
    sx = rng_x.sequence(n)
    sy = rng_y.sequence(n)
    x = (xs[:, None] > sx[None, :]).astype(np.uint8)
    y = (ys[:, None] > sy[None, :]).astype(np.uint8)
    return x, y, xs, ys
