"""Shared non-fixture helpers for the test suite."""

import numpy as np


def make_pair_batch(rng_x, rng_y, n=256, step=16):
    """Small exhaustive pair batch: comparator D/S through two RNGs.

    Returns ``(x_bits, y_bits, x_levels, y_levels)``.
    """
    levels = np.arange(0, n, step, dtype=np.int64)
    xs = np.repeat(levels, levels.size)
    ys = np.tile(levels, levels.size)
    sx = rng_x.sequence(n)
    sy = rng_y.sequence(n)
    x = (xs[:, None] > sx[None, :]).astype(np.uint8)
    y = (ys[:, None] > sy[None, :]).astype(np.uint8)
    return x, y, xs, ys
