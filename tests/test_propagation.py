"""Unit tests for correlation propagation analysis."""

import pytest

from repro.analysis import correlation_propagation, propagation, run_experiment


class TestCorrelationPropagation:
    def test_entry_per_gate(self):
        entries = correlation_propagation(step=16)
        assert len(entries) == 4
        gates = {e.gate.split()[0] for e in entries}
        assert gates == {"AND", "OR", "XOR", "MUX"}

    def test_setup_correlations(self):
        entries = correlation_propagation(step=16)
        e = entries[0]
        assert e.scc_a_c > 0.85      # A shares C's RNG
        assert abs(e.scc_b_c) < 0.25  # B independent

    def test_retention_ordering(self):
        entries = {e.gate.split()[0]: e for e in correlation_propagation(step=16)}
        # XOR against an uncorrelated operand scrambles A's correlation the
        # most; AND and OR keep most of it.
        assert abs(entries["XOR"].retention) < abs(entries["AND"].retention)
        assert abs(entries["XOR"].retention) < abs(entries["OR"].retention)

    def test_rows_render(self):
        row = correlation_propagation(step=32)[0].as_row()
        assert len(row) == 5

    def test_experiment_checks_pass(self):
        result = run_experiment("propagation", step=16)
        assert result.all_checks_pass

    def test_power_breakdown_experiment(self):
        result = run_experiment("power_breakdown")
        assert result.all_checks_pass
        variants = {row[0] for row in result.rows}
        assert variants == {"none", "regeneration", "synchronizer"}
