"""Unit tests for the application layer (repro.apps)."""

import numpy as np
import pytest

from repro.apps import (
    CompareExchangeNetwork,
    bitonic_network,
    median5_network,
    median9_network,
)
from repro.exceptions import CircuitConfigurationError
from repro.rng import LFSR


def make_streams(values: np.ndarray, n: int = 256) -> np.ndarray:
    """(batch, lanes) values -> (batch, lanes, n) mutually decorrelated
    streams via phase-rotated LFSR conversion."""
    base = LFSR(width=8).sequence(255)
    batch, lanes = values.shape
    levels = np.rint(values * n).astype(np.int64)
    streams = np.empty((batch, lanes, n), dtype=np.uint8)
    for i in range(lanes):
        idx = (np.arange(n) + 31 * i) % 255
        streams[:, i, :] = (levels[:, i : i + 1] > base[idx][None, :]).astype(np.uint8)
    return streams


class TestScheduleCorrectness:
    """Float-path verification: the schedules really compute their claims."""

    def test_median9_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.random((200, 9))
        out = median9_network().apply_values(values)
        assert np.allclose(out[:, 0], np.median(values, axis=1))

    def test_median5_matches_numpy(self):
        rng = np.random.default_rng(1)
        values = rng.random((200, 5))
        out = median5_network().apply_values(values)
        assert np.allclose(out[:, 0], np.median(values, axis=1))

    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_bitonic_sorts(self, width):
        rng = np.random.default_rng(width)
        values = rng.random((64, width))
        out = bitonic_network(width).apply_values(values)
        assert np.allclose(out, np.sort(values, axis=1))

    def test_bitonic_requires_power_of_two(self):
        with pytest.raises(CircuitConfigurationError):
            bitonic_network(6)


class TestStreamEvaluation:
    def test_median9_streams_accurate_with_synchronizers(self):
        rng = np.random.default_rng(2)
        values = rng.random((32, 9))
        streams = make_streams(values)
        out = median9_network().apply_streams(streams).mean(axis=-1)
        expected = np.median(values, axis=1)
        assert np.abs(out[:, 0] - expected).mean() < 0.05

    def test_synchronized_beats_gate_only(self):
        rng = np.random.default_rng(3)
        values = rng.random((32, 9))
        streams = make_streams(values)
        expected = np.median(values, axis=1)
        synced = median9_network(use_synchronizers=True).apply_streams(streams)
        naive = median9_network(use_synchronizers=False).apply_streams(streams)
        err_synced = np.abs(synced.mean(axis=-1)[:, 0] - expected).mean()
        err_naive = np.abs(naive.mean(axis=-1)[:, 0] - expected).mean()
        assert err_synced < err_naive / 2

    def test_bitonic_sort_streams(self):
        rng = np.random.default_rng(4)
        values = rng.random((16, 4))
        streams = make_streams(values)
        out = bitonic_network(4).apply_streams(streams).mean(axis=-1)
        expected = np.sort(values, axis=1)
        assert np.abs(out - expected).mean() < 0.05

    def test_sorted_outputs_monotone(self):
        rng = np.random.default_rng(5)
        values = rng.random((16, 8))
        streams = make_streams(values)
        out = bitonic_network(8).apply_streams(streams).mean(axis=-1)
        assert (np.diff(out, axis=1) >= -0.05).all()

    def test_stream_shape_validation(self):
        net = median5_network()
        with pytest.raises(CircuitConfigurationError):
            net.apply_streams(np.zeros((2, 4, 16), dtype=np.uint8))

    def test_value_shape_validation(self):
        with pytest.raises(CircuitConfigurationError):
            median9_network().apply_values(np.zeros((3, 5)))


class TestNetworkHardware:
    def test_netlist_scales_with_stages(self):
        med9 = median9_network().netlist()
        med5 = median5_network().netlist()
        assert med9.area_um2 > med5.area_um2

    def test_gate_only_much_smaller(self):
        synced = median9_network(use_synchronizers=True).netlist()
        naive = median9_network(use_synchronizers=False).netlist()
        assert naive.area_um2 < synced.area_um2 / 10

    def test_schedule_validation(self):
        with pytest.raises(CircuitConfigurationError):
            CompareExchangeNetwork(4, [(0, 4)], output_slots=(0,))
        with pytest.raises(CircuitConfigurationError):
            CompareExchangeNetwork(4, [(1, 1)], output_slots=(0,))
        with pytest.raises(CircuitConfigurationError):
            CompareExchangeNetwork(4, [(0, 1)], output_slots=(9,))
