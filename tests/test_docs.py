"""Documentation code blocks are executable and must stay that way.

Runs the ``>>>`` examples embedded in README.md and docs/*.md (the same
blocks CI runs via ``python -m doctest``), so a refactor that breaks a
documented example fails tier-1 instead of rotting silently.
"""

import doctest
import importlib
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

# Modules whose docstrings carry worked examples (the packed-vs-unpacked
# contract lives in these docs, so their examples are load-bearing).
DOCTEST_MODULES = [
    "repro.bitstream.bitstream",
    "repro.bitstream.batch",
    "repro.bitstream.metrics",
    "repro.bitstream.packed",
    "repro.bitstream.streaming",
]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_examples_run(path):
    assert path.exists(), f"documented file vanished: {path}"
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, f"{path.name} has no runnable examples"
    assert results.failed == 0, f"{results.failed} doctest failures in {path.name}"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.attempted > 0, f"{module_name} has no runnable examples"
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
