"""Trace-equivalence between the RTL-style scalar models and the
vectorised circuits — this reproduction's analogue of the paper's
"cycle-level simulator ... verified against RTL simulation traces"."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arith import CAAdder, CAMax, CorDiv
from repro.core import (
    Desynchronizer,
    Isolator,
    ShuffleBuffer,
    Synchronizer,
    TrackingForecastMemory,
)
from repro.rtl import (
    CAAdderRTL,
    CAMaxRTL,
    CorDivRTL,
    DesynchronizerRTL,
    IsolatorRTL,
    ShuffleBufferRTL,
    SynchronizerRTL,
    TFMRTL,
)
from repro.rng import LFSR, SystemRNG


def bit_pairs(min_len=4, max_len=80):
    return st.integers(min_len, max_len).flatmap(
        lambda n: st.tuples(
            arrays(np.uint8, n, elements=st.integers(0, 1)),
            arrays(np.uint8, n, elements=st.integers(0, 1)),
        )
    )


def bit_arrays(min_len=4, max_len=80):
    return arrays(np.uint8, st.integers(min_len, max_len), elements=st.integers(0, 1))


class TestSynchronizerEquivalence:
    @given(bit_pairs(), st.integers(1, 4))
    @settings(max_examples=150, deadline=None)
    def test_trace_equivalence(self, pair, depth):
        x, y = pair
        rtl = SynchronizerRTL(depth)
        rtl_x, rtl_y = rtl.trace(x, y)
        vec_x, vec_y = Synchronizer(depth)._process_bits(
            x.reshape(1, -1), y.reshape(1, -1)
        )
        assert rtl_x == vec_x[0].tolist()
        assert rtl_y == vec_y[0].tolist()

    def test_fig3a_state_names(self):
        rtl = SynchronizerRTL(1)
        rtl.reset()
        assert rtl.state == "S0"
        rtl.step(1, 0)
        assert rtl.state == "S1"
        rtl.step(0, 1)
        assert rtl.state == "S0"
        rtl.step(0, 1)
        assert rtl.state == "S2"

    def test_bit_validation(self):
        with pytest.raises(ValueError):
            SynchronizerRTL(1).step(2, 0)


class TestDesynchronizerEquivalence:
    @given(bit_pairs(), st.integers(1, 4))
    @settings(max_examples=150, deadline=None)
    def test_trace_equivalence(self, pair, depth):
        x, y = pair
        rtl = DesynchronizerRTL(depth)
        rtl_x, rtl_y = rtl.trace(x, y)
        vec_x, vec_y = Desynchronizer(depth)._process_bits(
            x.reshape(1, -1), y.reshape(1, -1)
        )
        assert rtl_x == vec_x[0].tolist()
        assert rtl_y == vec_y[0].tolist()

    def test_fig3b_state_names(self):
        rtl = DesynchronizerRTL(1)
        rtl.reset()
        assert rtl.state == "E0"
        rtl.step(1, 1)          # save X's 1
        assert rtl.state == "HX"
        rtl.step(0, 0)          # emit it
        assert rtl.state == "E1"
        rtl.step(1, 1)          # save Y's 1
        assert rtl.state == "HY"
        rtl.step(0, 0)
        assert rtl.state == "E0"


class TestShuffleBufferEquivalence:
    @given(bit_arrays(), st.integers(1, 8), st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, x, depth, seed):
        vec = ShuffleBuffer(SystemRNG(8, seed=seed), depth=depth)
        out_vec = vec._process_stream_bits(x.reshape(1, -1))[0]
        rtl = ShuffleBufferRTL(SystemRNG(8, seed=seed), depth=depth)
        assert rtl.trace(x) == out_vec.tolist()

    @given(bit_arrays(), st.sampled_from(["zeros", "ones", "half_ones"]))
    @settings(max_examples=50, deadline=None)
    def test_init_policies_match(self, x, init):
        vec = ShuffleBuffer(SystemRNG(8, seed=9), depth=4, init=init)
        rtl = ShuffleBufferRTL(SystemRNG(8, seed=9), depth=4, init=init)
        assert rtl.trace(x) == vec._process_stream_bits(x.reshape(1, -1))[0].tolist()


class TestCorDivEquivalence:
    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, pair):
        x, y = pair
        rtl = CorDivRTL()
        rtl_z = [rtl.step(int(a), int(b))[0] for a, b in zip(x, y)]
        vec_z = CorDiv().compute(x, y)
        assert rtl_z == vec_z.tolist()


class TestCAAdderEquivalence:
    @given(bit_pairs())
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, pair):
        x, y = pair
        rtl = CAAdderRTL()
        rtl.reset()
        rtl_z = [rtl.step(int(a), int(b))[0] for a, b in zip(x, y)]
        assert rtl_z == CAAdder().compute(x, y).tolist()


class TestCAMaxEquivalence:
    @given(bit_pairs(), st.integers(2, 8))
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, pair, bits):
        x, y = pair
        rtl = CAMaxRTL(counter_bits=bits)
        rtl.reset()
        rtl_z = [rtl.step(int(a), int(b))[0] for a, b in zip(x, y)]
        assert rtl_z == CAMax(counter_bits=bits).compute(x, y).tolist()


class TestTFMEquivalence:
    @given(bit_arrays(), st.integers(0, 30), st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, x, seed, shift):
        vec = TrackingForecastMemory(LFSR(8, seed=seed + 1), bits=8, shift=shift)
        out_vec = vec._process_stream_bits(x.reshape(1, -1))[0]
        rtl = TFMRTL(LFSR(8, seed=seed + 1), bits=8, shift=shift)
        assert rtl.trace(x) == out_vec.tolist()


class TestIsolatorEquivalence:
    @given(bit_arrays(), st.integers(1, 6), st.integers(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_trace_equivalence(self, x, delay, fill):
        vec = Isolator(delay=delay, fill=fill)
        out_vec = vec._process_stream_bits(x.reshape(1, -1))[0]
        rtl = IsolatorRTL(delay=delay, fill=fill)
        assert rtl.trace(x) == out_vec.tolist()
